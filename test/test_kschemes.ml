(* The k-iteration scheme families (ROADMAP item 4).

   Three contracts:

   - Reduction: at k = 1 the families are the paper's schemes.
     [path-profile-k1] must equal [path-profile] and [net-k1] must equal
     [net] bit-for-bit — every outcome field except the scheme name,
     the event stream, and the counter registry — across the whole
     benchmark suite, at every jobs/chunk granularity the sharded
     engines accept.  This is the guard that the sliding-window trie
     and the re-armed NET counter are strict generalizations, not
     near-misses.

   - Static bounds: the saturating [Bounds] mirrors agree exactly with
     the raising analyzer ([Overflow] iff [Ball_larus.num_kpaths]
     raises, equal when neither trips), collapse to the k-free
     analyses at k = 1, and dominate the dynamic counter space the
     replayed trie ever allocates.

   - Grammar: [Schemes.of_name] accepts exactly the canonical
     [net-k<k>]/[path-profile-k<k>] spellings and returns typed errors
     for the rest — the same parse the serve handshake uses. *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Kpath = Hotpath_trace.Kpath
module Ball_larus = Hotpath_profiling.Ball_larus
module Bounds = Hotpath_analysis.Bounds
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Net_k = Hotpath_prediction.Net_k
module Path_profile_k = Hotpath_prediction.Path_profile_k
module Schemes = Hotpath_prediction.Schemes
module Replay = Hotpath_prediction.Replay
module Suite = Hotpath_workloads.Suite
module Events = Hotpath_util.Events
module Pool = Hotpath_util.Pool

let delays = [ 1; 7; 50 ]

(* One small recording per benchmark, shared across the suite. *)
let recordings =
  lazy (List.map (fun b -> (b.Suite.b_name, Suite.record ~scale:0.02 b)) Suite.all)

(* (k-scheme, base scheme) pairs that must coincide at k = 1. *)
let k1_pairs : (string * Scheme.packed * string * Scheme.packed) list =
  [
    ("net-k1", Net_k.make 1, "net", (module Net));
    ( "path-profile-k1",
      Path_profile_k.make 1,
      "path-profile",
      (module Path_profile) );
  ]

(* Every outcome field except the scheme's own name. *)
let check_outcome_sans_name label (a : Replay.outcome) (b : Replay.outcome) =
  let chk name = Alcotest.(check int) (label ^ ": " ^ name) in
  chk "delay" a.Replay.delay b.Replay.delay;
  chk "total_instances" a.Replay.total_instances b.Replay.total_instances;
  Alcotest.(check bool)
    (label ^ ": predictions") true
    (a.Replay.predictions = b.Replay.predictions);
  Alcotest.(check (array int)) (label ^ ": predicted_at") a.Replay.predicted_at
    b.Replay.predicted_at;
  Alcotest.(check (array int)) (label ^ ": freq") a.Replay.freq b.Replay.freq;
  Alcotest.(check (array int)) (label ^ ": captured") a.Replay.captured
    b.Replay.captured;
  chk "profiled_instances" a.Replay.profiled_instances
    b.Replay.profiled_instances;
  chk "captured_instances" a.Replay.captured_instances
    b.Replay.captured_instances;
  chk "counter_space" a.Replay.counter_space b.Replay.counter_space;
  chk "profiling_ops" a.Replay.profiling_ops b.Replay.profiling_ops;
  chk "collection_ops" a.Replay.collection_ops b.Replay.collection_ops

let check_outcomes_sans_name label xs ys =
  Alcotest.(check int) (label ^ ": lane count") (List.length xs)
    (List.length ys);
  List.iter2 (check_outcome_sans_name label) xs ys

(* ------------------------------------------------------------------ *)
(* k = 1 reduction: outcomes                                           *)
(* ------------------------------------------------------------------ *)

(* The CI gate for the reduction: all nine benchmarks, both pairs, the
   base scheme replayed serially and the k1 scheme through every
   jobs/chunk engine.  jobs = 4 runs under a real 4-domain budget (the
   fan-out clamps to available cores; results are identical either
   way). *)
let test_k1_equals_base_all_benchmarks () =
  List.iter
    (fun (bname, r) ->
       List.iter
         (fun (kname, kscheme, base_name, base) ->
            let expected = Replay.run_many base ~delays r in
            List.iter
              (fun (jobs, chunk) ->
                 let got =
                   Pool.with_domain_limit 4 (fun () ->
                       Replay.run_many ~jobs ~chunk kscheme ~delays r)
                 in
                 check_outcomes_sans_name
                   (Printf.sprintf "%s: %s==%s jobs=%d chunk=%d" bname kname
                      base_name jobs chunk)
                   expected got)
              [
                (1, Replay.default_chunk);
                (1, 997);
                (4, Replay.default_chunk);
                (4, 1);
                (4, 997);
              ])
         k1_pairs)
    (Lazy.force recordings)

(* ------------------------------------------------------------------ *)
(* k = 1 reduction: event streams and the counter registry             *)
(* ------------------------------------------------------------------ *)

(* The sampler embeds the scheme name in every emitted window, so the
   streams are compared after rewriting "net-k1" -> "net" (resp.
   path-profile); everything else must match byte-for-byte. *)
let rewrite ~from ~into s =
  let flen = String.length from in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + flen <= n && String.sub s !i flen = from then begin
      Buffer.add_string buf into;
      i := !i + flen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_k1_event_streams_and_registry () =
  let r = List.assoc "compress" (Lazy.force recordings) in
  List.iter
    (fun (kname, kscheme, base_name, base) ->
       let capture scheme =
         let buf = Buffer.create 4096 in
         let ev = Replay.events ~window:512 (Events.of_buffer buf) in
         Events.Registry.reset ();
         ignore
           (Replay.run_many ~events:ev scheme ~delays r : Replay.outcome list);
         let snap = Events.Registry.snapshot () in
         Events.Registry.reset ();
         (Buffer.contents buf, snap)
       in
       let base_lines, base_registry = capture base in
       let k_lines, k_registry = capture kscheme in
       Alcotest.(check string)
         (kname ^ " event stream == " ^ base_name)
         base_lines
         (rewrite ~from:kname ~into:base_name k_lines);
       Alcotest.(check bool)
         (kname ^ " registry snapshot == " ^ base_name)
         true (base_registry = k_registry))
    k1_pairs

(* ------------------------------------------------------------------ *)
(* Kernel == generic walker at k > 1                                   *)
(* ------------------------------------------------------------------ *)

(* Eta-expanding [create] breaks the physical identity the kernel
   dispatch keys on, so the wrapped module takes the generic
   first-class-module loop; outcomes must not change. *)
let wrap (module S : Scheme.S) : Scheme.packed =
  (module struct
    type t = S.t

    let name = S.name
    let create ~delay ~program = S.create ~delay ~program
    let observe = S.observe
    let collect = S.collect
    let counter_space = S.counter_space
    let profiling_ops = S.profiling_ops
    let collection_ops = S.collection_ops
  end)

let test_kernels_equal_generic () =
  let r = List.assoc "compress" (Lazy.force recordings) in
  List.iter
    (fun k ->
       List.iter
         (fun (family, make) ->
            let packed = make k in
            let kernel = Replay.run_many packed ~delays r in
            let generic = Replay.run_many (wrap packed) ~delays r in
            check_outcomes_sans_name
              (Printf.sprintf "%s-k%d kernel==generic" family k)
              generic kernel;
            let sharded =
              Pool.with_domain_limit 4 (fun () ->
                  Replay.run_many ~jobs:4 ~chunk:997 packed ~delays r)
            in
            check_outcomes_sans_name
              (Printf.sprintf "%s-k%d sharded==generic" family k)
              generic sharded)
         [ ("net", Net_k.make); ("path-profile", Path_profile_k.make) ])
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Static bounds                                                       *)
(* ------------------------------------------------------------------ *)

(* The saturating mirror and the raising analyzer run the same DP in
   the same order, so they must agree exactly: [Overflow] iff
   [num_kpaths] raises, equal values otherwise. *)
let test_bounds_mirror_analyzer () =
  let cap = 1 lsl 50 in
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let program = r.Recorder.program in
       for k = 1 to 4 do
         for proc = 0 to Cfg.num_procs program - 1 do
           let static = Bounds.bl_kpaths ~cap program ~proc ~k in
           let exact =
             match Ball_larus.num_kpaths program ~proc ~k with
             | n -> Some n
             | exception Invalid_argument _ -> None
           in
           match (static, exact) with
           | Bounds.Exact s, Some n ->
             Alcotest.(check int)
               (Printf.sprintf "%s proc %d k=%d" bname proc k)
               n s
           | Bounds.Overflow, None -> ()
           | Bounds.Exact s, None ->
             Alcotest.failf "%s proc %d k=%d: analyzer overflowed, mirror %d"
               bname proc k s
           | Bounds.Overflow, Some n ->
             Alcotest.failf "%s proc %d k=%d: mirror overflowed, analyzer %d"
               bname proc k n
         done
       done)
    (Lazy.force recordings)

let test_bounds_k1_reductions () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let program = r.Recorder.program in
       for proc = 0 to Cfg.num_procs program - 1 do
         Alcotest.(check bool)
           (Printf.sprintf "%s proc %d: bl_kpaths k1 == bl_paths" bname proc)
           true
           (Bounds.bl_kpaths program ~proc ~k:1 = Bounds.bl_paths program ~proc)
       done;
       Alcotest.(check bool)
         (bname ^ ": kpath_walks k1 == forward_walks")
         true
         (Bounds.kpath_walks program ~k:1 = Bounds.forward_walks program))
    (Lazy.force recordings)

(* A tiny cap forces the saturation paths (count_mul's division guard
   included) without needing a pathological program. *)
let test_bounds_small_cap_saturates () =
  let r = List.assoc "gcc" (Lazy.force recordings) in
  let program = r.Recorder.program in
  Alcotest.(check bool) "gcc k=2 cap=8 saturates" true
    (Bounds.bl_ktotal ~cap:8 program ~k:2 = Bounds.Overflow);
  Alcotest.(check bool) "gcc kpath_walks cap=8 saturates" true
    (Bounds.kpath_walks ~cap:8 program ~k:2 = Bounds.Overflow);
  Alcotest.(check bool) "count_mul saturates at the cap" true
    (Bounds.count_mul ~cap:100 (Bounds.Exact 11) (Bounds.Exact 10)
     = Bounds.Overflow);
  Alcotest.(check bool) "count_mul zero absorbs overflow-sized factors" true
    (Bounds.count_mul ~cap:100 (Bounds.Exact 0) (Bounds.Exact max_int)
     = Bounds.Exact 0)

(* The replayed trie (suffix nodes included) can never allocate more
   counters than the static walk bound. *)
let test_dynamic_counter_space_within_bounds () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let program = r.Recorder.program in
       List.iter
         (fun k ->
            let outcome =
              Replay.run (Path_profile_k.make k) ~delay:1 r
            in
            match Bounds.kpath_walks program ~k with
            | Bounds.Overflow -> ()
            | Bounds.Exact bound ->
              Alcotest.(check bool)
                (Printf.sprintf "%s k=%d: %d counters <= %d walks" bname k
                   outcome.Replay.counter_space bound)
                true
                (outcome.Replay.counter_space <= bound))
         [ 1; 2; 3; 4 ])
    (Lazy.force recordings)

(* ------------------------------------------------------------------ *)
(* The scheme-name grammar                                             *)
(* ------------------------------------------------------------------ *)

let test_schemes_of_name_valid () =
  List.iter
    (fun name ->
       match Schemes.of_name name with
       | Ok packed ->
         Alcotest.(check string) ("round-trips " ^ name) name (Scheme.name packed)
       | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [
      "net"; "net-once"; "let"; "path-profile"; "net-k1"; "net-k2";
      "path-profile-k1"; "path-profile-k3";
      "net-k" ^ string_of_int Schemes.max_k;
    ];
  (* Parsed k-schemes are the memoized instances the kernels recognize. *)
  (match Schemes.of_name "path-profile-k2" with
   | Ok packed ->
     Alcotest.(check (option int)) "recognized as k=2" (Some 2)
       (Path_profile_k.recognize packed)
   | Error e -> Alcotest.failf "path-profile-k2: %s" e);
  match Schemes.of_name "net-k3" with
  | Ok packed ->
    Alcotest.(check (option int)) "recognized as k=3" (Some 3)
      (Net_k.recognize packed)
  | Error e -> Alcotest.failf "net-k3: %s" e

let test_schemes_of_name_rejects () =
  let expect_error name fragment =
    match Schemes.of_name name with
    | Ok _ -> Alcotest.failf "%S accepted" name
    | Error e ->
      let lower = String.lowercase_ascii e in
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions %S (got %S)" name fragment e)
        true
        (let flen = String.length fragment in
         let n = String.length lower in
         let rec scan i =
           i + flen <= n
           && (String.sub lower i flen = fragment || scan (i + 1))
         in
         scan 0)
  in
  expect_error "path-profile-k0" "within [1,";
  expect_error "net-k0" "within [1,";
  expect_error ("net-k" ^ string_of_int (Schemes.max_k + 1)) "within [1,";
  expect_error "net-kfoo" "decimal";
  expect_error "path-profile-k" "decimal";
  (* Non-canonical spellings of a valid k are rejected, so a scheme
     string is a unique key everywhere it is logged or compared. *)
  expect_error "net-k02" "decimal";
  expect_error "net-k+2" "decimal";
  expect_error "nope" "unknown scheme";
  match Schemes.of_name "net" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "net rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Kpath interner unit tests                                           *)
(* ------------------------------------------------------------------ *)

let test_kpath_window_slides () =
  let t = Kpath.create ~k:2 in
  let a = Kpath.advance t ~cur:Kpath.root ~arrival:Hotpath_trace.Path.Entry ~pid:5 in
  Alcotest.(check int) "depth 1 after entry" 1 (Kpath.depth t a);
  let b = Kpath.advance t ~cur:a ~arrival:Hotpath_trace.Path.Loop_head ~pid:6 in
  Alcotest.(check int) "depth 2 after extension" 2 (Kpath.depth t b);
  let c = Kpath.advance t ~cur:b ~arrival:Hotpath_trace.Path.Loop_head ~pid:7 in
  Alcotest.(check int) "depth capped at k" 2 (Kpath.depth t c);
  (* Sliding off [5;6;7] leaves the window [6;7]: re-walking 6 then 7
     from the root must land on the same node. *)
  let b' = Kpath.advance t ~cur:Kpath.root ~arrival:Hotpath_trace.Path.Entry ~pid:6 in
  let c' = Kpath.advance t ~cur:b' ~arrival:Hotpath_trace.Path.Loop_head ~pid:7 in
  Alcotest.(check int) "suffix window shared" c c';
  (* An entry arrival restarts the window regardless of depth. *)
  let d = Kpath.advance t ~cur:c ~arrival:Hotpath_trace.Path.Entry ~pid:5 in
  Alcotest.(check int) "entry restarts to the k=1 node" a d;
  let n = Kpath.num_nodes t in
  ignore (Kpath.advance t ~cur:b ~arrival:Hotpath_trace.Path.Loop_head ~pid:7);
  Alcotest.(check int) "interning is idempotent" n (Kpath.num_nodes t)

let test_kpath_k1_is_flat () =
  let t = Kpath.create ~k:1 in
  let a = Kpath.advance t ~cur:Kpath.root ~arrival:Hotpath_trace.Path.Entry ~pid:3 in
  let b = Kpath.advance t ~cur:a ~arrival:Hotpath_trace.Path.Loop_head ~pid:4 in
  let c = Kpath.advance t ~cur:b ~arrival:Hotpath_trace.Path.Loop_head ~pid:3 in
  Alcotest.(check int) "k=1 re-interns the same path node" a c;
  Alcotest.(check int) "two distinct paths, two nodes past the root" 2
    (Kpath.num_nodes t - 1);
  Alcotest.(check int) "depth never exceeds 1" 1 (Kpath.depth t b)

let suites =
  [
    ( "kschemes.reduction",
      [
        Alcotest.test_case "k1 == base across suite x jobs x chunks" `Quick
          test_k1_equals_base_all_benchmarks;
        Alcotest.test_case "k1 event streams and registry" `Quick
          test_k1_event_streams_and_registry;
        Alcotest.test_case "kernels == generic walker (k=2,3)" `Quick
          test_kernels_equal_generic;
      ] );
    ( "kschemes.bounds",
      [
        Alcotest.test_case "saturating mirror iff analyzer raise" `Quick
          test_bounds_mirror_analyzer;
        Alcotest.test_case "k=1 collapses to the k-free analyses" `Quick
          test_bounds_k1_reductions;
        Alcotest.test_case "small caps saturate" `Quick
          test_bounds_small_cap_saturates;
        Alcotest.test_case "dynamic counter space <= static walks" `Quick
          test_dynamic_counter_space_within_bounds;
      ] );
    ( "kschemes.grammar",
      [
        Alcotest.test_case "canonical names accepted" `Quick
          test_schemes_of_name_valid;
        Alcotest.test_case "malformed names typed-rejected" `Quick
          test_schemes_of_name_rejects;
      ] );
    ( "kschemes.kpath",
      [
        Alcotest.test_case "window slides via suffix links" `Quick
          test_kpath_window_slides;
        Alcotest.test_case "k=1 trie is flat" `Quick test_kpath_k1_is_flat;
      ] );
  ]
