(* Tests for the abstract evaluation metrics: hot sets, hit/noise rates,
   delay sweeps. *)

module Recorder = Hotpath_trace.Recorder
module Replay = Hotpath_prediction.Replay
module Scheme = Hotpath_prediction.Scheme
module Path_profile = Hotpath_prediction.Path_profile
module Net = Hotpath_prediction.Net
module Hot_set = Hotpath_metrics.Hot_set
module Rates = Hotpath_metrics.Rates
module Sweep = Hotpath_metrics.Sweep
module Prng = Hotpath_util.Prng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Hot_set                                                             *)
(* ------------------------------------------------------------------ *)

let test_hot_set_basic () =
  let freq = [| 50; 30; 15; 4; 1 |] in
  let hot = Hot_set.compute ~freq ~total_flow:100 ~threshold:0.1 in
  (* Cutoff 10: paths 0, 1, 2 are hot. *)
  Alcotest.(check int) "size" 3 (Hot_set.size hot);
  Alcotest.(check bool) "0 hot" true (Hot_set.is_hot hot 0);
  Alcotest.(check bool) "3 cold" false (Hot_set.is_hot hot 3);
  Alcotest.(check int) "hot flow" 95 hot.Hot_set.hot_flow;
  check_float "flow pct" 95.0 (Hot_set.flow_pct hot);
  Alcotest.(check (array int)) "descending ids" [| 0; 1; 2 |] hot.Hot_set.ids

let test_hot_set_strict_inequality () =
  (* A path at exactly the cutoff is NOT hot (freq(p) > h, strictly). *)
  let freq = [| 10; 90 |] in
  let hot = Hot_set.compute ~freq ~total_flow:100 ~threshold:0.1 in
  Alcotest.(check bool) "at-cutoff path is cold" false (Hot_set.is_hot hot 0)

let test_hot_set_validation () =
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Hot_set.compute: threshold must be in (0,1)") (fun () ->
      ignore (Hot_set.compute ~freq:[| 1 |] ~total_flow:1 ~threshold:1.0));
  Alcotest.check_raises "flow mismatch"
    (Invalid_argument "Hot_set.compute: total_flow 5 <> sum of freq 3") (fun () ->
      ignore (Hot_set.compute ~freq:[| 1; 2 |] ~total_flow:5 ~threshold:0.1))

let test_hot_set_is_hot_bounds () =
  let hot = Hot_set.compute ~freq:[| 10 |] ~total_flow:10 ~threshold:0.5 in
  Alcotest.(check bool) "negative id" false (Hot_set.is_hot hot (-1));
  Alcotest.(check bool) "out of range id" false (Hot_set.is_hot hot 99)

(* ------------------------------------------------------------------ *)
(* Rates                                                               *)
(* ------------------------------------------------------------------ *)

let record_simple ?(iterations = 12) () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations () in
  Recorder.record program behavior ~rng:(Prng.create ~seed:1)

let test_rates_hand_computed () =
  (* 12 instances: entry(1), loop x10, exit(1).  Hot threshold 20% ->
     cutoff 2.4 -> only the loop path (freq 10) is hot. *)
  let r = record_simple ~iterations:12 () in
  let o = Replay.run (module Path_profile) ~delay:3 r in
  let hot = Hot_set.of_outcome o ~threshold:0.2 in
  Alcotest.(check int) "hot size" 1 (Hot_set.size hot);
  let rates = Rates.operational o hot in
  (* Loop path predicted at its 3rd execution: 7 captured, 3 lost. *)
  Alcotest.(check int) "hits" 7 rates.Rates.hits;
  check_float "hit rate" 70.0 rates.Rates.hit_rate;
  Alcotest.(check int) "moc" 3 rates.Rates.moc;
  Alcotest.(check int) "no noise" 0 rates.Rates.noise;
  check_float "noise rate" 0.0 rates.Rates.noise_rate;
  Alcotest.(check int) "predicted hot" 1 rates.Rates.predicted_hot;
  Alcotest.(check int) "predicted cold" 0 rates.Rates.predicted_cold;
  (* Profiled: entry, 3 loop executions, exit = 5 of 12. *)
  check_float "profiled pct" (100.0 *. 5.0 /. 12.0) rates.Rates.profiled_flow_pct

let test_rates_noise_counted () =
  (* Delay 1 predicts everything on first sight: entry and exit paths are
     cold and each captures 0 (freq 1, predicted at the only execution). *)
  let r = record_simple ~iterations:12 () in
  let o = Replay.run (module Path_profile) ~delay:1 r in
  let hot = Hot_set.of_outcome o ~threshold:0.2 in
  let rates = Rates.operational o hot in
  Alcotest.(check int) "two cold predictions" 2 rates.Rates.predicted_cold;
  Alcotest.(check int) "their captured flow is zero" 0 rates.Rates.noise;
  Alcotest.(check int) "hot captured 9 of 10" 9 rates.Rates.hits

let test_closed_form_agrees_for_path_profile () =
  let r = record_simple ~iterations:50 () in
  List.iter
    (fun delay ->
       let o = Replay.run (module Path_profile) ~delay r in
       let hot = Hot_set.of_outcome o ~threshold:0.05 in
       let op = Rates.operational o hot and cf = Rates.closed_form o hot in
       Alcotest.(check int) (Printf.sprintf "hits tau=%d" delay) op.Rates.hits
         cf.Rates.hits;
       Alcotest.(check int) (Printf.sprintf "noise tau=%d" delay) op.Rates.noise
         cf.Rates.noise;
       Alcotest.(check int) (Printf.sprintf "moc tau=%d" delay) op.Rates.moc cf.Rates.moc)
    [ 1; 2; 5; 10; 25 ]

let prop_closed_form_matches_operational_pp =
  QCheck.Test.make
    ~name:"closed form = operational for path-profile prediction" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 1 30))
    (fun (seed, delay) ->
       let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.03 () in
       let r =
         Recorder.record ~max_steps:4_000 program behavior ~rng:(Prng.create ~seed)
       in
       let o = Replay.run (module Path_profile) ~delay r in
       let hot = Hot_set.of_outcome o ~threshold:0.01 in
       let op = Rates.operational o hot and cf = Rates.closed_form o hot in
       op.Rates.hits = cf.Rates.hits && op.Rates.noise = cf.Rates.noise
       && op.Rates.moc = cf.Rates.moc)

let prop_rates_bounds =
  QCheck.Test.make ~name:"rate bounds and conservation" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 1 100))
    (fun (seed, delay) ->
       let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.03 () in
       let r =
         Recorder.record ~max_steps:4_000 program behavior ~rng:(Prng.create ~seed)
       in
       let o = Replay.run (module Net) ~delay r in
       let hot = Hot_set.of_outcome o ~threshold:0.01 in
       let rates = Rates.operational o hot in
       rates.Rates.hit_rate >= 0.0
       && rates.Rates.hit_rate <= 100.0
       && rates.Rates.noise >= 0
       && rates.Rates.moc >= 0
       (* hits + moc accounts for all flow of predicted hot paths *)
       && rates.Rates.hits + rates.Rates.moc <= hot.Hot_set.hot_flow)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_monotone_profiled () =
  let r = record_simple ~iterations:200 () in
  let o = Replay.run (module Net) ~delay:1 r in
  let hot = Hot_set.of_outcome o ~threshold:0.001 in
  let points =
    Sweep.run (module Net) r ~hot ~delays:[ 1; 5; 20; 50; 100; 500 ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "profiled flow grows with delay" true
        (a.Sweep.profiled_pct <= b.Sweep.profiled_pct +. 1e-9);
      check rest
    | _ -> ()
  in
  check points

let test_sweep_interpolation () =
  let mk delay profiled hit noise =
    {
      Sweep.delay;
      profiled_pct = profiled;
      hit_rate = hit;
      noise_rate = noise;
      predictions = 0;
      counter_space = 0;
      profiling_ops = 0;
      collection_ops = 0;
    }
  in
  let points = [ mk 1 0.0 100.0 50.0; mk 2 10.0 90.0 30.0; mk 3 20.0 50.0 0.0 ] in
  Alcotest.(check (option (float 1e-6))) "midpoint" (Some 95.0)
    (Sweep.interpolate_hit_at points ~profiled_pct:5.0);
  Alcotest.(check (option (float 1e-6))) "exact point" (Some 90.0)
    (Sweep.interpolate_hit_at points ~profiled_pct:10.0);
  Alcotest.(check (option (float 1e-6))) "noise midpoint" (Some 15.0)
    (Sweep.interpolate_noise_at points ~profiled_pct:15.0);
  Alcotest.(check (option (float 1e-6))) "out of range" None
    (Sweep.interpolate_hit_at points ~profiled_pct:30.0)

let test_sweep_interpolation_boundaries () =
  let mk delay profiled hit noise =
    {
      Sweep.delay;
      profiled_pct = profiled;
      hit_rate = hit;
      noise_rate = noise;
      predictions = 0;
      counter_space = 0;
      profiling_ops = 0;
      collection_ops = 0;
    }
  in
  let points = [ mk 1 2.0 100.0 50.0; mk 2 10.0 90.0 30.0; mk 3 20.0 50.0 0.0 ] in
  (* Exact matches on the smallest and largest swept points return those
     points' values — they are not "outside the range". *)
  Alcotest.(check (option (float 1e-6))) "exact smallest point" (Some 100.0)
    (Sweep.interpolate_hit_at points ~profiled_pct:2.0);
  Alcotest.(check (option (float 1e-6))) "exact largest point" (Some 50.0)
    (Sweep.interpolate_hit_at points ~profiled_pct:20.0);
  Alcotest.(check (option (float 1e-6))) "exact within rounding noise" (Some 90.0)
    (Sweep.interpolate_hit_at points ~profiled_pct:(10.0 +. 1e-12));
  Alcotest.(check (option (float 1e-6))) "below range" None
    (Sweep.interpolate_hit_at points ~profiled_pct:1.0);
  Alcotest.(check (option (float 1e-6))) "above range" None
    (Sweep.interpolate_noise_at points ~profiled_pct:20.5);
  (* A saturated sweep can produce several points at the same profiled
     flow; an exact query on the duplicated level must not divide by the
     zero-width span. *)
  let flat = [ mk 1 5.0 80.0 10.0; mk 2 5.0 70.0 20.0; mk 3 12.0 40.0 5.0 ] in
  Alcotest.(check (option (float 1e-6))) "duplicated point" (Some 80.0)
    (Sweep.interpolate_hit_at flat ~profiled_pct:5.0);
  Alcotest.(check (option (float 1e-6))) "between duplicate and next"
    (Some 55.0)
    (Sweep.interpolate_hit_at flat ~profiled_pct:8.5);
  (* Degenerate inputs. *)
  Alcotest.(check (option (float 1e-6))) "singleton exact" (Some 80.0)
    (Sweep.interpolate_hit_at [ mk 1 5.0 80.0 10.0 ] ~profiled_pct:5.0);
  Alcotest.(check (option (float 1e-6))) "singleton off-point" None
    (Sweep.interpolate_hit_at [ mk 1 5.0 80.0 10.0 ] ~profiled_pct:6.0);
  Alcotest.(check (option (float 1e-6))) "empty" None
    (Sweep.interpolate_hit_at [] ~profiled_pct:5.0)

let test_sweep_default_delays () =
  let d = Sweep.default_delays in
  Alcotest.(check bool) "ascending" true (List.sort Int.compare d = d);
  Alcotest.(check bool) "covers the paper's range" true
    (List.mem 10 d && List.mem 1_000_000 d);
  Alcotest.(check bool) "extends into the scaled-noise regime" true (List.mem 2 d)

let test_sweep_hit_decreases_with_delay () =
  let r = record_simple ~iterations:500 () in
  let o = Replay.run (module Net) ~delay:1 r in
  let hot = Hot_set.of_outcome o ~threshold:0.001 in
  let points = Sweep.run (module Net) r ~hot ~delays:[ 2; 20; 200 ] in
  match points with
  | [ a; b; c ] ->
    Alcotest.(check bool) "hit falls with delay" true
      (a.Sweep.hit_rate >= b.Sweep.hit_rate && b.Sweep.hit_rate >= c.Sweep.hit_rate)
  | _ -> Alcotest.fail "expected three points"

let suites =
  [
    ( "metrics.hot_set",
      [
        Alcotest.test_case "basic" `Quick test_hot_set_basic;
        Alcotest.test_case "strict inequality" `Quick test_hot_set_strict_inequality;
        Alcotest.test_case "validation" `Quick test_hot_set_validation;
        Alcotest.test_case "is_hot bounds" `Quick test_hot_set_is_hot_bounds;
      ] );
    ( "metrics.rates",
      [
        Alcotest.test_case "hand computed" `Quick test_rates_hand_computed;
        Alcotest.test_case "noise counted" `Quick test_rates_noise_counted;
        Alcotest.test_case "closed form agrees (path-profile)" `Quick
          test_closed_form_agrees_for_path_profile;
        QCheck_alcotest.to_alcotest prop_closed_form_matches_operational_pp;
        QCheck_alcotest.to_alcotest prop_rates_bounds;
      ] );
    ( "metrics.sweep",
      [
        Alcotest.test_case "monotone profiled flow" `Quick test_sweep_monotone_profiled;
        Alcotest.test_case "interpolation" `Quick test_sweep_interpolation;
        Alcotest.test_case "interpolation boundaries" `Quick
          test_sweep_interpolation_boundaries;
        Alcotest.test_case "default delays" `Quick test_sweep_default_delays;
        Alcotest.test_case "hit falls with delay" `Quick
          test_sweep_hit_decreases_with_delay;
      ] );
  ]
