(* Online prediction sessions: the differential harness.

   The contract under test is the tentpole guarantee: pushing a trace
   into a [Session] in *any* granularity — one instance at a time, prime
   chunk sizes, chunks larger than the trace — produces outcomes, event
   streams, and counter-registry snapshots bit-identical to the batch
   engine ([Replay.run_many]) and the streamed engine
   ([Replay.run_many_stream]) on the same instances.  The suite drives
   every scheme over several fixtures at adversarial granularities, and
   separately proves the online lint gate rejects a malformed chunk with
   zero session mutation. *)

module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Stream = Hotpath_trace.Serialize.Stream
module Lint = Hotpath_trace.Lint
module Diag = Hotpath_analysis.Diag
module Replay = Hotpath_prediction.Replay
module Session = Hotpath_prediction.Session
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Events = Hotpath_util.Events
module Prng = Hotpath_util.Prng

let schemes : (string * Scheme.packed) list =
  [
    ("net", (module Net));
    ("net-once", (module Net.Net_once));
    ("let", (module Net.Last_executed_tail));
    ("path-profile", (module Path_profile));
    (* The k-iteration families ride the same differential matrix: k = 1
       (the reduction case) and one k > 1 per family. *)
    ("net-k1", Hotpath_prediction.Net_k.make 1);
    ("net-k2", Hotpath_prediction.Net_k.make 2);
    ("path-profile-k1", Hotpath_prediction.Path_profile_k.make 1);
    ("path-profile-k2", Hotpath_prediction.Path_profile_k.make 2);
  ]

let fixtures () =
  [
    ("indirect_loop", Test_serialize.record_fixture ());
    ("call_loop", Test_serialize.record_calls ());
    ( "compress",
      Hotpath_workloads.Suite.record ~scale:0.01
        (Hotpath_workloads.Suite.find_exn "compress") );
  ]

let delays = [ 1; 7; 50 ]

(* Granularities chosen to be adversarial: per-instance, prime sizes
   that never align with internal chunking, exactly the trace length,
   and longer than the trace. *)
let granularities n = [ 1; 13; 997; n; n + 17 ]

let session_exn ?events ?lint ?on_predict packed ~delays (r : Recorder.t) =
  match
    Session.create ?events ?lint ?on_predict packed ~delays
      ~program:r.Recorder.program ~table:r.Recorder.table
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "Session.create on clean fixture: %s" e

let push_sliced sess (r : Recorder.t) g =
  let n = Array.length r.Recorder.instances in
  let off = ref 0 in
  while !off < n do
    let len = min g (n - !off) in
    let ids = Array.sub r.Recorder.instances !off len in
    let arrivals = Bytes.sub r.Recorder.arrivals !off len in
    (match Session.push_chunk sess ~ids ~arrivals with
    | Ok () -> ()
    | Error e -> Alcotest.failf "push_chunk (granularity %d): %s" g e);
    off := !off + len
  done

let check_outcome label (a : Replay.outcome) (b : Session.outcome) =
  let chk name = Alcotest.(check int) (label ^ ": " ^ name) in
  Alcotest.(check string) (label ^ ": scheme") a.Replay.scheme_name
    b.Session.scheme_name;
  chk "delay" a.Replay.delay b.Session.delay;
  chk "total_instances" a.Replay.total_instances b.Session.total_instances;
  Alcotest.(check bool)
    (label ^ ": predictions") true
    (a.Replay.predictions = b.Session.predictions);
  Alcotest.(check (array int)) (label ^ ": predicted_at") a.Replay.predicted_at
    b.Session.predicted_at;
  Alcotest.(check (array int)) (label ^ ": freq") a.Replay.freq b.Session.freq;
  Alcotest.(check (array int)) (label ^ ": captured") a.Replay.captured
    b.Session.captured;
  chk "profiled_instances" a.Replay.profiled_instances
    b.Session.profiled_instances;
  chk "captured_instances" a.Replay.captured_instances
    b.Session.captured_instances;
  chk "counter_space" a.Replay.counter_space b.Session.counter_space;
  chk "profiling_ops" a.Replay.profiling_ops b.Session.profiling_ops;
  chk "collection_ops" a.Replay.collection_ops b.Session.collection_ops

let check_outcomes label batch session =
  Alcotest.(check int) (label ^ ": lane count") (List.length batch)
    (List.length session);
  List.iter2 (check_outcome label) batch session

(* ------------------------------------------------------------------ *)
(* Differential: every scheme x fixture x granularity vs batch          *)
(* ------------------------------------------------------------------ *)

let test_differential_granularities () =
  List.iter
    (fun (fname, r) ->
      let n = Array.length r.Recorder.instances in
      List.iter
        (fun (sname, packed) ->
          let batch = Replay.run_many packed ~delays r in
          List.iter
            (fun g ->
              let sess = session_exn packed ~delays r in
              push_sliced sess r g;
              let label = Printf.sprintf "%s/%s/g=%d" fname sname g in
              check_outcomes label batch (Session.finish sess))
            (granularities n))
        schemes)
    (fixtures ())

let test_differential_single_push () =
  (* The one-instance convenience API decodes arrival kinds itself. *)
  let r = Test_serialize.record_fixture () in
  List.iter
    (fun (sname, packed) ->
      let batch = Replay.run_many packed ~delays r in
      let sess = session_exn packed ~delays r in
      Array.iteri
        (fun i path_id ->
          match Session.push sess ~path_id ~arrival:(Recorder.arrival r i) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "push %d: %s" i e)
        r.Recorder.instances;
      check_outcomes ("push/" ^ sname) batch (Session.finish sess))
    schemes

let test_differential_vs_stream () =
  (* Three engines, one answer: batch, streamed reader, session. *)
  let r = Test_serialize.record_calls () in
  List.iter
    (fun (sname, packed) ->
      let batch = Replay.run_many packed ~delays r in
      let streamed =
        match Stream.open_string (Stream.to_string ~chunk_instances:64 r) with
        | Error e -> Alcotest.failf "open_string: %s" e
        | Ok rd -> (
          match Replay.run_many_stream packed ~delays rd with
          | Error e -> Alcotest.failf "run_many_stream: %s" e
          | Ok os -> os)
      in
      check_outcomes ("stream/" ^ sname) batch streamed;
      let sess = session_exn packed ~delays r in
      push_sliced sess r 64;
      check_outcomes ("session/" ^ sname) batch (Session.finish sess))
    schemes

(* ------------------------------------------------------------------ *)
(* push_batch: the batched-decode twin of push_chunk                   *)
(* ------------------------------------------------------------------ *)

module Batch = Hotpath_trace.Batch

(* Same slicing as [push_sliced], but each slice is decoded into a
   single reused batch first — exactly the serve daemon's ingest shape,
   where the decoder refills one pooled batch per frame. *)
let push_sliced_batch sess (r : Recorder.t) g =
  let b = Batch.create ~capacity:8 () in
  let n = Array.length r.Recorder.instances in
  let off = ref 0 in
  while !off < n do
    let len = min g (n - !off) in
    Batch.fill_of_chunk b
      ~ids:(Array.sub r.Recorder.instances !off len)
      ~arrivals:(Bytes.sub r.Recorder.arrivals !off len);
    (match Session.push_batch sess b with
    | Ok () -> ()
    | Error e -> Alcotest.failf "push_batch (granularity %d): %s" g e);
    off := !off + len
  done

let test_differential_push_batch () =
  (* Pushing batches refilled from the same storage must be
     bit-identical to push_chunk and to the batch engine, for every
     scheme at every adversarial granularity. *)
  List.iter
    (fun (fname, r) ->
      let n = Array.length r.Recorder.instances in
      List.iter
        (fun (sname, packed) ->
          let batch = Replay.run_many packed ~delays r in
          List.iter
            (fun g ->
              let sess = session_exn packed ~delays r in
              push_sliced_batch sess r g;
              let label = Printf.sprintf "batch %s/%s/g=%d" fname sname g in
              check_outcomes label batch (Session.finish sess))
            (granularities n))
        schemes)
    (fixtures ())

let test_push_batch_event_stream_identical () =
  let r = Test_serialize.record_fixture () in
  let window = 1024 in
  List.iter
    (fun (sname, packed) ->
      let run_batch () =
        let buf = Buffer.create 4096 in
        let ev = Replay.events ~window (Events.of_buffer buf) in
        ignore (Replay.run_many ~events:ev packed ~delays r : Replay.outcome list);
        Buffer.contents buf
      in
      let run_session g =
        let buf = Buffer.create 4096 in
        let ev = Session.events ~window (Events.of_buffer buf) in
        let sess = session_exn ~events:ev packed ~delays r in
        push_sliced_batch sess r g;
        ignore (Session.finish sess : Session.outcome list);
        Buffer.contents buf
      in
      let batch_lines = run_batch () in
      List.iter
        (fun g ->
          Alcotest.(check string)
            (Printf.sprintf "%s batch events g=%d" sname g)
            batch_lines (run_session g))
        [ 1; 13; 4096 ])
    [ ("net", (module Net : Scheme.S)); ("path-profile", (module Path_profile)) ]

let test_push_batch_validates_like_push_chunk () =
  (* The decode-level gate must hold for batches too: undeclared ids and
     invalid arrival codes refused with zero state movement, even with
     the trace linter off. *)
  let r = Test_serialize.record_fixture () in
  let sess = session_exn ~lint:false (module Net) ~delays r in
  let np = Hotpath_trace.Path_table.size r.Recorder.table in
  let b = Batch.create () in
  Batch.fill_of_chunk b ~ids:[| np + 3 |] ~arrivals:(Bytes.make 1 '\000');
  (match Session.push_batch sess b with
  | Ok () -> Alcotest.fail "out-of-range path id accepted"
  | Error _ -> ());
  Batch.fill_of_chunk b ~ids:[| 0 |] ~arrivals:(Bytes.make 1 '\007');
  (match Session.push_batch sess b with
  | Ok () -> Alcotest.fail "invalid arrival code accepted"
  | Error _ -> ());
  Alcotest.(check int) "nothing accepted" 0 (Session.instances sess)

(* ------------------------------------------------------------------ *)
(* Event streams and the counter registry                              *)
(* ------------------------------------------------------------------ *)

let test_event_stream_identical () =
  let r = Test_serialize.record_fixture () in
  let window = 1024 in
  List.iter
    (fun (sname, packed) ->
      let run_batch () =
        let buf = Buffer.create 4096 in
        let ev = Replay.events ~window (Events.of_buffer buf) in
        ignore (Replay.run_many ~events:ev packed ~delays r : Replay.outcome list);
        Buffer.contents buf
      in
      let run_session g =
        let buf = Buffer.create 4096 in
        let ev = Session.events ~window (Events.of_buffer buf) in
        let sess = session_exn ~events:ev packed ~delays r in
        push_sliced sess r g;
        ignore (Session.finish sess : Session.outcome list);
        Buffer.contents buf
      in
      let batch_lines = run_batch () in
      List.iter
        (fun g ->
          Alcotest.(check string)
            (Printf.sprintf "%s events g=%d" sname g)
            batch_lines (run_session g))
        [ 1; 13; 4096 ])
    schemes

let test_registry_identical () =
  let r = Test_serialize.record_fixture () in
  let snapshot run =
    Events.Registry.reset ();
    run ();
    Events.Registry.snapshot ()
  in
  let buf = Buffer.create 4096 in
  let batch =
    snapshot (fun () ->
        let ev = Replay.events ~window:512 (Events.of_buffer buf) in
        ignore
          (Replay.run_many ~events:ev (module Net) ~delays r
            : Replay.outcome list))
  in
  let session =
    snapshot (fun () ->
        let ev = Session.events ~window:512 (Events.of_buffer buf) in
        let sess = session_exn ~events:ev (module Net) ~delays r in
        push_sliced sess r 13;
        ignore (Session.finish sess : Session.outcome list))
  in
  Events.Registry.reset ();
  Alcotest.(check bool) "registry snapshots identical" true (batch = session)

let test_on_predict_matches_outcomes () =
  let r = Test_serialize.record_fixture () in
  let fired = ref [] in
  let on_predict ~delay ~target ~at_instance =
    fired := (delay, target, at_instance) :: !fired
  in
  let sess = session_exn ~on_predict (module Net) ~delays r in
  push_sliced sess r 13;
  let outcomes = Session.finish sess in
  let expected =
    List.concat_map
      (fun (o : Session.outcome) ->
        Array.to_list o.Session.predictions
        |> List.map (fun (p : Session.prediction) ->
               (o.Session.delay, p.Session.target, p.Session.at_instance)))
      outcomes
    |> List.sort compare
  in
  Alcotest.(check bool)
    "on_predict fired exactly the outcome predictions" true
    (List.sort compare !fired = expected)

(* ------------------------------------------------------------------ *)
(* The online lint gate                                                *)
(* ------------------------------------------------------------------ *)

(* A fresh recording with one arrival byte mid-trace rewritten to
   "entry" — a T2xx-class trace error the full linter rejects. *)
let corrupted_fixture () =
  let r = Test_serialize.record_fixture () in
  let n = Bytes.length r.Recorder.arrivals in
  Alcotest.(check bool) "fixture long enough" true (n > 16);
  let i =
    let j = ref ((n / 2) + 1) in
    while !j < n && Bytes.get r.Recorder.arrivals !j = '\001' do
      incr j
    done;
    if !j >= n then Alcotest.fail "no corruptible arrival after midpoint";
    !j
  in
  let orig = Bytes.get r.Recorder.arrivals i in
  Bytes.set r.Recorder.arrivals i '\001';
  let diags =
    Lint.check_parts ~program:r.Recorder.program ~table:r.Recorder.table
      ~instances:r.Recorder.instances ~arrivals:r.Recorder.arrivals
  in
  Alcotest.(check bool) "full linter rejects the mutation" true
    (Diag.has_errors diags);
  (r, i, orig)

let test_lint_rejects_without_mutation () =
  (* Once with the paper's scheme, once with a k-iteration scheme: the
     gate sits in front of the scheme, so recovery must be
     scheme-agnostic — including the sliding-window trie state. *)
  List.iter
    (fun (sname, packed) ->
      let r, bad_at, orig = corrupted_fixture () in
      let sess = session_exn packed ~delays r in
      (* Clean prefix: everything before the bad instance. *)
      let push lo len =
        Session.push_chunk sess
          ~ids:(Array.sub r.Recorder.instances lo len)
          ~arrivals:(Bytes.sub r.Recorder.arrivals lo len)
      in
      (match push 0 bad_at with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: clean prefix rejected: %s" sname e);
      let before = Session.instances sess in
      let n = Array.length r.Recorder.instances in
      (* The chunk containing the bad arrival must be refused... *)
      (match push bad_at (n - bad_at) with
      | Ok () -> Alcotest.failf "%s: lint gate accepted a T2xx trace chunk" sname
      | Error e ->
        Alcotest.(check bool) (sname ^ ": error mentions a T-code") true
          (String.length e > 0 && String.contains e 'T'));
      (* ...with zero state mutation: the instance count is unchanged and
         the session still accepts the *corrected* suffix, finishing
         bit-identical to batch on the corrected trace. *)
      Alcotest.(check int)
        (sname ^ ": no instances accepted from the bad chunk")
        before (Session.instances sess);
      Bytes.set r.Recorder.arrivals bad_at orig;
      (match push bad_at (n - bad_at) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: corrected suffix rejected: %s" sname e);
      let batch = Replay.run_many packed ~delays r in
      check_outcomes (sname ^ ": after-recovery") batch (Session.finish sess))
    [
      ("net", (module Net : Scheme.S));
      ("path-profile-k2", Hotpath_prediction.Path_profile_k.make 2);
    ]

let test_unlinted_session_still_validates_ids () =
  (* lint:false skips the trace linter but not decode-level sanity:
     undeclared path ids and bad arrival codes must still be refused
     (capacity-grown arrays would silently absorb them otherwise). *)
  let r = Test_serialize.record_fixture () in
  let sess = session_exn ~lint:false (module Net) ~delays r in
  let np = Hotpath_trace.Path_table.size r.Recorder.table in
  (match
     Session.push_chunk sess ~ids:[| np + 3 |] ~arrivals:(Bytes.make 1 '\000')
   with
  | Ok () -> Alcotest.fail "out-of-range path id accepted"
  | Error _ -> ());
  (match
     Session.push_chunk sess ~ids:[| 0 |] ~arrivals:(Bytes.make 1 '\007')
   with
  | Ok () -> Alcotest.fail "invalid arrival code accepted"
  | Error _ -> ());
  Alcotest.(check int) "nothing accepted" 0 (Session.instances sess)

(* ------------------------------------------------------------------ *)
(* Lifecycle edges                                                     *)
(* ------------------------------------------------------------------ *)

let test_finish_idempotent_and_final () =
  let r = Test_serialize.record_fixture () in
  let sess = session_exn (module Net) ~delays r in
  push_sliced sess r 997;
  let a = Session.finish sess in
  let b = Session.finish sess in
  Alcotest.(check bool) "finish is idempotent" true (a = b);
  match
    Session.push_chunk sess
      ~ids:(Array.sub r.Recorder.instances 0 1)
      ~arrivals:(Bytes.sub r.Recorder.arrivals 0 1)
  with
  | Ok () -> Alcotest.fail "push after finish accepted"
  | Error _ -> ()

let test_empty_session () =
  let r = Test_serialize.record_fixture () in
  let sess = session_exn (module Net) ~delays r in
  let outcomes = Session.finish sess in
  Alcotest.(check int) "lanes" (List.length delays) (List.length outcomes);
  List.iter
    (fun (o : Session.outcome) ->
      Alcotest.(check int) "no instances" 0 o.Session.total_instances;
      Alcotest.(check int) "no predictions" 0
        (Array.length o.Session.predictions))
    outcomes

let test_length_mismatch_rejected () =
  let r = Test_serialize.record_fixture () in
  let sess = session_exn (module Net) ~delays r in
  match
    Session.push_chunk sess
      ~ids:(Array.sub r.Recorder.instances 0 4)
      ~arrivals:(Bytes.sub r.Recorder.arrivals 0 3)
  with
  | Ok () -> Alcotest.fail "mismatched chunk accepted"
  | Error _ -> Alcotest.(check int) "nothing accepted" 0 (Session.instances sess)

let suites =
  [
    ( "session.differential",
      [
        Alcotest.test_case "all schemes x granularities ≡ batch" `Quick
          test_differential_granularities;
        Alcotest.test_case "single-instance push ≡ batch" `Quick
          test_differential_single_push;
        Alcotest.test_case "batch ≡ stream ≡ session" `Quick
          test_differential_vs_stream;
        Alcotest.test_case "push_batch ≡ push_chunk (all schemes)" `Quick
          test_differential_push_batch;
        Alcotest.test_case "push_batch event streams byte-identical" `Quick
          test_push_batch_event_stream_identical;
        Alcotest.test_case "push_batch validates like push_chunk" `Quick
          test_push_batch_validates_like_push_chunk;
        Alcotest.test_case "event streams byte-identical" `Quick
          test_event_stream_identical;
        Alcotest.test_case "registry snapshots identical" `Quick
          test_registry_identical;
        Alcotest.test_case "on_predict mirrors outcomes" `Quick
          test_on_predict_matches_outcomes;
      ] );
    ( "session.lint",
      [
        Alcotest.test_case "T2xx chunk rejected without mutation" `Quick
          test_lint_rejects_without_mutation;
        Alcotest.test_case "unlinted sessions still validate input" `Quick
          test_unlinted_session_still_validates_ids;
      ] );
    ( "session.lifecycle",
      [
        Alcotest.test_case "finish idempotent, then pushes fail" `Quick
          test_finish_idempotent_and_final;
        Alcotest.test_case "empty session" `Quick test_empty_session;
        Alcotest.test_case "length mismatch rejected" `Quick
          test_length_mismatch_rejected;
      ] );
  ]
