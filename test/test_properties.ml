(* Cross-layer property tests: random workload specs are generated with
   QCheck and every layer's invariants are checked on the resulting
   programs, recordings, replays, serializations, and Dynamo runs. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior
module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Generator = Hotpath_workloads.Generator
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Branch_profile = Hotpath_prediction.Branch_profile
module Replay = Hotpath_prediction.Replay
module Hot_set = Hotpath_metrics.Hot_set
module Rates = Hotpath_metrics.Rates
module Ball_larus = Hotpath_profiling.Ball_larus
module Cost_model = Hotpath_dynamo.Cost_model
module Engine = Hotpath_dynamo.Engine
module Prng = Hotpath_util.Prng
module Pool = Hotpath_util.Pool

(* ------------------------------------------------------------------ *)
(* Random workload specs                                               *)
(* ------------------------------------------------------------------ *)

let gen_loop_kind =
  QCheck.Gen.(
    let* branches = 0 -- 5 in
    let* bias = float_range 0.5 0.95 in
    let* iterations = 2 -- 50 in
    let* calls = bool in
    let* indirect = oneofl [ 0; 0; 0; 2; 3; 4 ] in
    return (Generator.loop ~branches ~bias ~iterations ~calls ~indirect ()))

let gen_spec =
  QCheck.Gen.(
    let* n_groups = 1 -- 3 in
    let* groups =
      list_repeat n_groups
        (let* count = 1 -- 3 in
         let* kind = gen_loop_kind in
         return (count, kind))
    in
    let* micros = 0 -- 12 in
    let* procs = 1 -- 3 in
    let groups =
      if micros > 0 then (micros, Generator.micro_loop ~fire_period:6 ()) :: groups
      else groups
    in
    return { Generator.g_name = "prop"; g_loops = groups; g_procs = procs;
             g_phase_steps = None })

let print_spec spec =
  Printf.sprintf "{loops=%d procs=%d}" (Generator.total_loops spec)
    spec.Generator.g_procs

let arb_workload =
  QCheck.make ~print:(fun (spec, seed) -> print_spec spec ^ Printf.sprintf " seed=%d" seed)
    QCheck.Gen.(pair gen_spec (0 -- 1_000_000))

let record_spec (spec, seed) =
  let program, behavior = Generator.build spec ~seed in
  let recorded =
    Recorder.record ~max_steps:15_000 program behavior
      ~rng:(Prng.create ~seed:(seed + 1))
  in
  (program, recorded)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_generated_programs_valid =
  QCheck.Test.make ~name:"generated programs and behaviours validate" ~count:60
    arb_workload
    (fun (spec, seed) ->
       let program, behavior = Generator.build spec ~seed in
       Cfg.validate program = Ok () && Behavior.validate behavior = Ok ())

let prop_recording_partitions_blocks =
  QCheck.Test.make ~name:"recorded paths partition the executed blocks" ~count:40
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let recorded_blocks =
         Array.fold_left
           (fun acc pid ->
              acc
              + Array.length
                  (Path_table.path recorded.Recorder.table pid).Path.blocks)
           0 recorded.Recorder.instances
       in
       (* Fuel stops drop the in-flight unexecuted block, so recorded blocks
          can undershoot by at most one partial path (bounded by the cap's
          block count); they can never overshoot. *)
       recorded_blocks <= recorded.Recorder.vm_stats.Hotpath_vm.Vm.blocks
       && recorded.Recorder.vm_stats.Hotpath_vm.Vm.blocks - recorded_blocks < 1_000)

let prop_counter_space_ordering =
  QCheck.Test.make ~name:"NET counter space <= path-profile counter space"
    ~count:40 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded = 0
       ||
       let net = Replay.run (module Net) ~delay:10 recorded in
       let pp = Replay.run (module Path_profile) ~delay:10 recorded in
       net.Replay.counter_space <= pp.Replay.counter_space)

let prop_hits_bounded_by_hot_flow =
  QCheck.Test.make ~name:"hits + MOC never exceed hot flow (all schemes)" ~count:30
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded < 100
       ||
       let hot =
         Hot_set.compute
           ~freq:(Recorder.frequencies recorded)
           ~total_flow:(Recorder.num_instances recorded)
           ~threshold:0.01
       in
       let check outcome =
         let r = Rates.operational outcome hot in
         r.Rates.hits + r.Rates.moc <= hot.Hot_set.hot_flow
         && r.Rates.hit_rate >= 0.0
         && r.Rates.hit_rate <= 100.0
       in
       check (Replay.run (module Net) ~delay:7 recorded)
       && check (Replay.run (module Path_profile) ~delay:7 recorded)
       && check (Branch_profile.run ~delay:7 recorded).Branch_profile.base)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialization round-trips generated recordings" ~count:30
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       match Serialize.of_string (Serialize.to_string recorded) with
       | Error _ -> false
       | Ok r ->
         r.Recorder.instances = recorded.Recorder.instances
         && r.Recorder.arrivals = recorded.Recorder.arrivals
         && Recorder.num_paths r = Recorder.num_paths recorded)

let prop_engine_invariants =
  QCheck.Test.make ~name:"Dynamo engine accounting invariants" ~count:30 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded = 0
       ||
       let cost = Cost_model.default in
       let result =
         Engine.run
           (Engine.config ~cost
              ~scheme:(module Net : Scheme.S)
              ~scheme_costs:(Engine.net_costs cost) ~delay:10 ())
           recorded
       in
       let breakdown =
         result.Engine.r_cycles_fragment +. result.Engine.r_cycles_interp
         +. result.Engine.r_cycles_profile +. result.Engine.r_cycles_overhead
         +. result.Engine.r_cycles_flush
       in
       let native_tail_cycles =
         result.Engine.r_dynamo_cycles -. breakdown
       in
       Float.abs
         (result.Engine.r_full_hits + result.Engine.r_partial_hits
          + result.Engine.r_misses + result.Engine.r_native_tail
          - Recorder.num_instances recorded
          |> float_of_int)
       < 0.5
       && native_tail_cycles >= -1e-6
       && result.Engine.r_cache_coverage_pct >= 0.0
       && result.Engine.r_cache_coverage_pct <= 100.0
       && result.Engine.r_native_cycles > 0.0)

let prop_engine_native_cycles_exact =
  QCheck.Test.make ~name:"engine native cycles equal executed instructions"
    ~count:30 arb_workload
    (fun w ->
       let program, recorded = record_spec w in
       Recorder.num_instances recorded = 0
       ||
       let cost = Cost_model.default in
       let result =
         Engine.run
           (Engine.config ~cost
              ~scheme:(module Net : Scheme.S)
              ~scheme_costs:(Engine.net_costs cost) ~delay:10 ())
           recorded
       in
       let expected =
         Array.fold_left
           (fun acc pid ->
              acc
              + Array.fold_left
                  (fun a b -> a + (Cfg.block program b).Cfg.weight)
                  0
                  (Path_table.path recorded.Recorder.table pid).Path.blocks)
           0 recorded.Recorder.instances
       in
       Float.abs (result.Engine.r_native_cycles -. float_of_int expected) < 0.5)

let prop_ball_larus_on_generated_procs =
  QCheck.Test.make ~name:"Ball-Larus numbering on generated procedures" ~count:30
    arb_workload
    (fun (spec, seed) ->
       let program, _ = Generator.build spec ~seed in
       Array.for_all
         (fun (procedure : Cfg.proc) ->
            let t = Ball_larus.analyze program ~proc:procedure.Cfg.pid in
            let n = Ball_larus.num_paths t in
            n >= 1
            &&
            if n <= 512 then
              Array.for_all
                (fun blocks ->
                   Ball_larus.path_number t blocks >= 0)
                (Ball_larus.enumerate t)
            else true)
         program.Cfg.procs)

let prop_boa_phantoms_never_in_table =
  QCheck.Test.make ~name:"Boa phantoms are genuinely absent from the trace"
    ~count:30 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let o = Branch_profile.run ~delay:5 recorded in
       List.for_all
         (fun s -> Path_table.find recorded.Recorder.table s = None)
         o.Branch_profile.phantoms)

let outcome_equal (a : Replay.outcome) (b : Replay.outcome) =
  a.Replay.scheme_name = b.Replay.scheme_name
  && a.Replay.delay = b.Replay.delay
  && a.Replay.total_instances = b.Replay.total_instances
  && a.Replay.predictions = b.Replay.predictions
  && a.Replay.predicted_at = b.Replay.predicted_at
  && a.Replay.freq = b.Replay.freq
  && a.Replay.captured = b.Replay.captured
  && a.Replay.profiled_instances = b.Replay.profiled_instances
  && a.Replay.captured_instances = b.Replay.captured_instances
  && a.Replay.counter_space = b.Replay.counter_space
  && a.Replay.profiling_ops = b.Replay.profiling_ops
  && a.Replay.collection_ops = b.Replay.collection_ops

let prop_run_many_equals_per_delay_runs =
  QCheck.Test.make
    ~name:"run_many is bit-identical to per-delay runs (all schemes)" ~count:30
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            let multiplexed = Replay.run_many scheme ~delays recorded in
            List.length multiplexed = List.length delays
            && List.for_all2
                 (fun delay o -> outcome_equal (Replay.run scheme ~delay recorded) o)
                 delays multiplexed)
         [
           (module Net : Scheme.S);
           (module Net.Net_once);
           (module Net.Last_executed_tail);
           (module Path_profile);
         ])

(* Streamed replay is driven from an HOTPATH3 chunk iterator; the chunk
   size is drawn from the workload seed so the split points vary. *)
let stream_reader ~seed recorded =
  Serialize.Stream.of_recorder ~chunk_instances:(1 + (seed mod 97)) recorded

let prop_stream_roundtrip =
  QCheck.Test.make
    ~name:"HOTPATH3 streams round-trip generated recordings" ~count:30
    arb_workload
    (fun ((_, seed) as w) ->
       let _, recorded = record_spec w in
       match
         Serialize.of_string
           (Serialize.Stream.to_string ~chunk_instances:(1 + (seed mod 97))
              recorded)
       with
       | Error _ -> false
       | Ok r ->
         r.Recorder.instances = recorded.Recorder.instances
         && r.Recorder.arrivals = recorded.Recorder.arrivals
         && Recorder.num_paths r = Recorder.num_paths recorded
         && r.Recorder.vm_stats = recorded.Recorder.vm_stats)

let prop_run_stream_equals_run =
  QCheck.Test.make
    ~name:"run_stream is bit-identical to run (all schemes)" ~count:25
    arb_workload
    (fun ((_, seed) as w) ->
       let _, recorded = record_spec w in
       List.for_all
         (fun scheme ->
            List.for_all
              (fun delay ->
                 match
                   Replay.run_stream scheme ~delay (stream_reader ~seed recorded)
                 with
                 | Error _ -> false
                 | Ok streamed ->
                   outcome_equal (Replay.run scheme ~delay recorded) streamed)
              [ 2; 11; 400 ])
         [
           (module Net : Scheme.S);
           (module Net.Net_once);
           (module Net.Last_executed_tail);
           (module Path_profile);
         ])

let prop_run_many_stream_equals_run_many =
  QCheck.Test.make
    ~name:"run_many_stream is bit-identical to run_many (all schemes)"
    ~count:25 arb_workload
    (fun ((_, seed) as w) ->
       let _, recorded = record_spec w in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            match
              Replay.run_many_stream scheme ~delays (stream_reader ~seed recorded)
            with
            | Error _ -> false
            | Ok streamed ->
              List.length streamed = List.length delays
              && List.for_all2 outcome_equal
                   (Replay.run_many scheme ~delays recorded)
                   streamed)
         [
           (module Net : Scheme.S);
           (module Net.Net_once);
           (module Net.Last_executed_tail);
           (module Path_profile);
         ])

let prop_run_many_stream_jobs_equals_serial =
  QCheck.Test.make
    ~name:"run_many_stream ?jobs == serial stream (all schemes)" ~count:10
    QCheck.(pair arb_workload (int_range 2 4))
    (fun (((_, seed) as w), jobs) ->
       let _, recorded = record_spec w in
       (* Moderate frame chunks: each decoded chunk is one fan-out round,
          so frame size controls how many seams the lane groups cross. *)
       let rd () =
         Serialize.Stream.of_recorder
           ~chunk_instances:(64 + (seed mod 97))
           recorded
       in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            match Replay.run_many_stream scheme ~delays (rd ()) with
            | Error _ -> false
            | Ok serial ->
              Pool.with_domain_limit 4 (fun () ->
                  match
                    Replay.run_many_stream ~jobs scheme ~delays (rd ())
                  with
                  | Error _ -> false
                  | Ok sharded -> List.for_all2 outcome_equal serial sharded))
         [
           (module Net : Scheme.S);
           (module Net.Net_once);
           (module Net.Last_executed_tail);
           (module Path_profile);
         ]
       &&
       (* The streamed event merge must also reproduce serial bytes. *)
       let stream_bytes jobs =
         let buf = Buffer.create 4_096 in
         let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
         match
           Replay.run_many_stream ~events:ev ~jobs (module Net) ~delays (rd ())
         with
         | Error _ -> None
         | Ok _ -> Some (Buffer.contents buf)
       in
       match stream_bytes 1 with
       | None -> false
       | Some serial ->
         serial <> ""
         && Pool.with_domain_limit 4 (fun () -> stream_bytes jobs = Some serial))

let prop_run_many_single_pass =
  QCheck.Test.make
    ~name:"run_many reads the trace exactly once, at every job count"
    ~count:20 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let n = Recorder.num_instances recorded in
       let delays = [ 1; 5; 25; 125; 625 ] in
       let reads_of jobs =
         let before = Replay.instance_reads () in
         ignore (Replay.run_many ~jobs (module Net) ~delays recorded);
         Replay.instance_reads () - before
       in
       (* ?jobs parallelizes the one logical traversal — the documented
          [+ length trace] must hold whether the fan-out is clamped away
          (1-core machine) or running on real domains. *)
       reads_of 1 = n
       && reads_of 4 = n
       && Pool.with_domain_limit 4 (fun () -> reads_of 4 = n))

(* ------------------------------------------------------------------ *)
(* Monomorphized kernels and lane sharding                             *)
(* ------------------------------------------------------------------ *)

(* The packed entry points dispatch the built-in schemes to specialized
   kernels; Make(S) always compiles the generic loop.  Comparing the two
   on the same scheme is therefore the kernel-vs-reference differential. *)
module Make_net = Replay.Make (Net)
module Make_net_once = Replay.Make (Net.Net_once)
module Make_let = Replay.Make (Net.Last_executed_tail)
module Make_pp = Replay.Make (Path_profile)

let prop_functor_equals_packed =
  QCheck.Test.make
    ~name:"Make(S) generic loop is bit-identical to packed kernels" ~count:25
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun (packed, via_functor, via_functor_one) ->
            List.for_all2 outcome_equal
              (Replay.run_many packed ~delays recorded)
              (via_functor ~delays recorded)
            && outcome_equal
                 (Replay.run packed ~delay:7 recorded)
                 (via_functor_one ~delay:7 recorded))
         [
           ( (module Net : Scheme.S),
             (fun ~delays r -> Make_net.run_many ~delays r),
             fun ~delay r -> Make_net.run ~delay r );
           ( (module Net.Net_once),
             (fun ~delays r -> Make_net_once.run_many ~delays r),
             fun ~delay r -> Make_net_once.run ~delay r );
           ( (module Net.Last_executed_tail),
             (fun ~delays r -> Make_let.run_many ~delays r),
             fun ~delay r -> Make_let.run ~delay r );
           ( (module Path_profile),
             (fun ~delays r -> Make_pp.run_many ~delays r),
             fun ~delay r -> Make_pp.run ~delay r );
         ])

(* The chunk-seam hand-off is the correctness core of sharded replay:
   scheme state carries across every chunk boundary, so any chunking of
   the instance stream must replay to the same bits as the serial walk.
   Chunk size and worker count are orthogonal axes — the seam protocol
   is exercised under a simulated 1-core machine (inline, every chunk a
   seam), the domain fan-out and merge under a forced 4-domain budget
   so both run regardless of the CI host's real core count. *)
let seam_schemes =
  [
    (module Net : Scheme.S);
    (module Net.Net_once);
    (module Net.Last_executed_tail);
    (module Path_profile);
  ]

let prop_chunk_seam_equals_serial =
  QCheck.Test.make
    ~name:"chunk-sharded run_many == serial (schemes x jobs x chunk)"
    ~count:10 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let n = Recorder.num_instances recorded in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       (* Adversarial chunk sizes: every instance a seam, a prime that
          never aligns with anything, one chunk spanning past the end. *)
       let chunks = [ 1; 13; n + 1 ] in
       List.for_all
         (fun scheme ->
            let serial = Replay.run_many scheme ~delays recorded in
            Pool.with_domain_limit 1 (fun () ->
                List.for_all
                  (fun jobs ->
                     List.for_all
                       (fun chunk ->
                          List.for_all2 outcome_equal serial
                            (Replay.run_many ~jobs ~chunk scheme ~delays
                               recorded))
                       chunks)
                  [ 1; 2; 3; 4 ]))
         seam_schemes)

let prop_multi_domain_shards_equal_serial =
  QCheck.Test.make
    ~name:"chunk-sharded run_many == serial on a real 4-domain budget"
    ~count:10
    QCheck.(pair arb_workload (int_range 2 9))
    (fun (w, jobs) ->
       let _, recorded = record_spec w in
       (* More jobs than the budget is legal: the fan-out clamps. *)
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            let serial = Replay.run_many scheme ~delays recorded in
            Pool.with_domain_limit 4 (fun () ->
                List.for_all2 outcome_equal serial
                  (Replay.run_many ~jobs ~chunk:37 scheme ~delays recorded)))
         seam_schemes)

let prop_sharded_events_byte_identical =
  (* Chunk-sharded replay samples into per-worker buffers that are
     merged after the join; the merged stream must reproduce the serial
     emission to the byte, window samples and is_hot hits/noise
     included.  Forced 4-domain budget so the merge path runs even on a
     1-core CI machine. *)
  QCheck.Test.make
    ~name:"chunk-sharded event stream is byte-identical to serial" ~count:15
    QCheck.(pair arb_workload (int_range 2 6))
    (fun (w, jobs) ->
       let _, recorded = record_spec w in
       let n = Recorder.num_instances recorded in
       n = 0
       ||
       let hot =
         Hot_set.compute
           ~freq:(Recorder.frequencies recorded)
           ~total_flow:n ~threshold:0.01
       in
       let stream_bytes jobs =
         let buf = Buffer.create 4_096 in
         let ev =
           Replay.events ~window:97 ~is_hot:(Hot_set.is_hot hot)
             (Hotpath_util.Events.of_buffer buf)
         in
         ignore
           (Replay.run_many ~events:ev ~jobs ~chunk:61 (module Net)
              ~delays:[ 1; 3; 7; 20; 100 ] recorded);
         Buffer.contents buf
       in
       let serial = stream_bytes 1 in
       String.length serial > 0
       && Pool.with_domain_limit 4 (fun () -> stream_bytes jobs = serial))

let prop_replay_capture_monotone_in_delay =
  QCheck.Test.make ~name:"captured flow shrinks as delay grows" ~count:30
    arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       let captured delay =
         (Replay.run (module Path_profile) ~delay recorded).Replay.captured_instances
       in
       captured 2 >= captured 8 && captured 8 >= captured 64)

(* ------------------------------------------------------------------ *)
(* Batched decode: generic-walker fan-out and the mapped reader        *)
(* ------------------------------------------------------------------ *)

(* Under ?jobs the generic Make(S) walker re-packs each chunk once into
   a dense shared batch and fans it out over the lane groups.  That
   branch only engages when *every* lane compiles to the generic walker,
   so these twins eta-expand the member the kernel dispatch keys on —
   [observe] for the base schemes, [create] for the k-iteration families
   (whose [observe] is shared across every k). *)
module Net_generic : Scheme.S = struct
  include Net

  let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
    Net.observe t ~head ~arrival ~path_id ~n_branches ~n_blocks
end

module Pp_generic : Scheme.S = struct
  include Path_profile

  let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
    Path_profile.observe t ~head ~arrival ~path_id ~n_branches ~n_blocks
end

module Net_k2 = (val Hotpath_prediction.Net_k.make 2)
module Pp_k2 = (val Hotpath_prediction.Path_profile_k.make 2)

module Net_k2_generic : Scheme.S = struct
  include Net_k2

  let create ~delay ~program = Net_k2.create ~delay ~program
end

module Pp_k2_generic : Scheme.S = struct
  include Pp_k2

  let create ~delay ~program = Pp_k2.create ~delay ~program
end

let prop_batch_fanout_equals_serial =
  (* Covers what [prop_chunk_seam_equals_serial] cannot: the k-iteration
     kernels and the generic batch fan-out.  Adversarial chunk sizes
     (every instance a seam; one chunk spanning past the end) run under
     a simulated 1-core budget where the fan-out is inline — a real
     4-domain spawn per 1-instance chunk would cost minutes, not test
     more — and the true multi-domain fan-out runs at chunk sizes that
     give every domain real work per round. *)
  QCheck.Test.make
    ~name:"batched fan-out == serial (k-kernels + generic walkers x chunk)"
    ~count:8
    QCheck.(pair arb_workload (int_range 2 4))
    (fun (w, jobs) ->
       let _, recorded = record_spec w in
       let n = Recorder.num_instances recorded in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            let serial = Replay.run_many scheme ~delays recorded in
            let sharded ~chunk =
              List.for_all2 outcome_equal serial
                (Replay.run_many ~jobs ~chunk scheme ~delays recorded)
            in
            Pool.with_domain_limit 1 (fun () ->
                sharded ~chunk:1 && sharded ~chunk:13)
            && Pool.with_domain_limit 4 (fun () ->
                sharded ~chunk:37 && sharded ~chunk:(n + 1)))
         [
           (module Net_k2 : Scheme.S);
           (module Pp_k2);
           (module Net_generic);
           (module Pp_generic);
           (module Net_k2_generic);
           (module Pp_k2_generic);
         ])

let prop_run_many_mapped_equals_serial =
  (* The zero-copy mapped driver against the materialized reference:
     same outcomes and byte-identical event streams for every scheme, at
     jobs=1 and under a forced multi-domain fan-out (where all lane
     groups walk one shared batch). *)
  QCheck.Test.make
    ~name:"run_many_mapped == run_many (+ events), serial and fanned out"
    ~count:10
    QCheck.(pair arb_workload (int_range 2 4))
    (fun (((_, seed) as w), jobs) ->
       let _, recorded = record_spec w in
       let blob =
         Serialize.Stream.to_string ~chunk_instances:(64 + (seed mod 97))
           recorded
       in
       let mapped () =
         match Serialize.Stream.Mapped.of_string blob with
         | Ok m -> m
         | Error _ -> QCheck.assume_fail ()
       in
       let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
       List.for_all
         (fun scheme ->
            let materialized = Replay.run_many scheme ~delays recorded in
            let check ?jobs () =
              match Replay.run_many_mapped ?jobs scheme ~delays (mapped ()) with
              | Error _ -> false
              | Ok ms ->
                List.length ms = List.length delays
                && List.for_all2 outcome_equal materialized ms
            in
            check ()
            && Pool.with_domain_limit 4 (fun () -> check ~jobs ()))
         seam_schemes
       &&
       let mapped_bytes jobs =
         let buf = Buffer.create 4_096 in
         let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
         match
           Replay.run_many_mapped ~events:ev ~jobs (module Net) ~delays
             (mapped ())
         with
         | Error _ -> None
         | Ok _ -> Some (Buffer.contents buf)
       in
       let reference =
         let buf = Buffer.create 4_096 in
         let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
         ignore (Replay.run_many ~events:ev (module Net) ~delays recorded);
         Buffer.contents buf
       in
       Recorder.num_instances recorded = 0
       || String.length reference > 0
          && mapped_bytes 1 = Some reference
          && Pool.with_domain_limit 4 (fun () -> mapped_bytes jobs = Some reference))

(* ------------------------------------------------------------------ *)
(* Closed-form vs operational rates (Section 3)                        *)
(* ------------------------------------------------------------------ *)

let rates_pair scheme ~delay recorded =
  let o = Replay.run scheme ~delay recorded in
  let hot = Hot_set.of_outcome o ~threshold:0.01 in
  (Rates.operational o hot, Rates.closed_form o hot)

let prop_rates_closed_form_exact_for_path_profile =
  (* A path predicted by path-profile counting has executed exactly τ
     times at prediction, so the paper's aggregate formulas
     (Hits = freq(P∩Hot) − |P∩Hot|·τ, MOC = |P∩Hot|·τ) are not an
     approximation: every field agrees with the measured replay. *)
  QCheck.Test.make
    ~name:"closed form = operational on generated workloads (path-profile)"
    ~count:30
    QCheck.(pair arb_workload (int_range 1 40))
    (fun (w, delay) ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded < 50
       ||
       let op, cf = rates_pair (module Path_profile) ~delay recorded in
       op.Rates.hits = cf.Rates.hits
       && op.Rates.noise = cf.Rates.noise
       && op.Rates.moc = cf.Rates.moc
       && op.Rates.predicted_hot = cf.Rates.predicted_hot
       && op.Rates.predicted_cold = cf.Rates.predicted_cold
       && Float.equal op.Rates.hit_rate cf.Rates.hit_rate
       && Float.equal op.Rates.noise_rate cf.Rates.noise_rate
       && Float.equal op.Rates.profiled_flow_pct cf.Rates.profiled_flow_pct)

let prop_rates_closed_form_undershoots_for_net_once =
  (* A non-re-arming head fires exactly once, at its τ-th observed
     arrival, so the predicted tail has executed at most τ times — the
     closed form's per-path subtraction of a full τ can only undershoot:
     hits and noise come back low, MOC comes back high, never the other
     way.  (Re-arming NET does not obey this: a tail can sit out several
     firings and exceed τ pre-prediction executions, see
     [prop_rates_closed_form_conserves_for_net].)  The sum hits + MOC is
     the predicted hot flow under both accountings and must agree
     exactly. *)
  QCheck.Test.make
    ~name:"closed form undershoots operational for net-once, conserving hot flow"
    ~count:30
    QCheck.(pair arb_workload (int_range 1 40))
    (fun (w, delay) ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded < 50
       ||
       let op, cf = rates_pair (module Net.Net_once) ~delay recorded in
       cf.Rates.hits <= op.Rates.hits
       && cf.Rates.noise <= op.Rates.noise
       && cf.Rates.moc >= op.Rates.moc
       && cf.Rates.hits + cf.Rates.moc = op.Rates.hits + op.Rates.moc
       && op.Rates.predicted_hot = cf.Rates.predicted_hot
       && op.Rates.predicted_cold = cf.Rates.predicted_cold)

let prop_rates_closed_form_conserves_for_net =
  (* Re-arming NET loses the per-path τ bound, so the closed form can
     land on either side of the measured hits/noise; what survives is
     the accounting structure: both views agree on the predicted sets,
     MOC is exactly |P∩Hot|·τ by definition, and hits + MOC equals the
     predicted hot flow under both. *)
  QCheck.Test.make
    ~name:"closed form conserves predicted flow for re-arming NET" ~count:30
    QCheck.(pair arb_workload (int_range 1 40))
    (fun (w, delay) ->
       let _, recorded = record_spec w in
       Recorder.num_instances recorded < 50
       ||
       let op, cf = rates_pair (module Net) ~delay recorded in
       cf.Rates.hits + cf.Rates.moc = op.Rates.hits + op.Rates.moc
       && cf.Rates.moc = cf.Rates.predicted_hot * delay
       && op.Rates.predicted_hot = cf.Rates.predicted_hot
       && op.Rates.predicted_cold = cf.Rates.predicted_cold)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_generated_programs_valid;
        QCheck_alcotest.to_alcotest prop_recording_partitions_blocks;
        QCheck_alcotest.to_alcotest prop_counter_space_ordering;
        QCheck_alcotest.to_alcotest prop_hits_bounded_by_hot_flow;
        QCheck_alcotest.to_alcotest prop_serialize_roundtrip;
        QCheck_alcotest.to_alcotest prop_engine_invariants;
        QCheck_alcotest.to_alcotest prop_engine_native_cycles_exact;
        QCheck_alcotest.to_alcotest prop_ball_larus_on_generated_procs;
        QCheck_alcotest.to_alcotest prop_boa_phantoms_never_in_table;
        QCheck_alcotest.to_alcotest prop_replay_capture_monotone_in_delay;
        QCheck_alcotest.to_alcotest prop_run_many_equals_per_delay_runs;
        QCheck_alcotest.to_alcotest prop_functor_equals_packed;
        QCheck_alcotest.to_alcotest prop_chunk_seam_equals_serial;
        QCheck_alcotest.to_alcotest prop_multi_domain_shards_equal_serial;
        QCheck_alcotest.to_alcotest prop_sharded_events_byte_identical;
        QCheck_alcotest.to_alcotest prop_run_many_single_pass;
        QCheck_alcotest.to_alcotest prop_stream_roundtrip;
        QCheck_alcotest.to_alcotest prop_run_stream_equals_run;
        QCheck_alcotest.to_alcotest prop_run_many_stream_equals_run_many;
        QCheck_alcotest.to_alcotest prop_run_many_stream_jobs_equals_serial;
        QCheck_alcotest.to_alcotest prop_batch_fanout_equals_serial;
        QCheck_alcotest.to_alcotest prop_run_many_mapped_equals_serial;
        QCheck_alcotest.to_alcotest prop_rates_closed_form_exact_for_path_profile;
        QCheck_alcotest.to_alcotest prop_rates_closed_form_undershoots_for_net_once;
        QCheck_alcotest.to_alcotest prop_rates_closed_form_conserves_for_net;
      ] );
  ]
