(* Aggregated test runner: every library contributes its suites. *)

let () =
  Alcotest.run "hotpath"
    (List.concat
       [ Test_util.suites; Test_cfg.suites; Test_vm.suites; Test_trace.suites;
         Test_profiling.suites; Test_prediction.suites; Test_metrics.suites;
         Test_workloads.suites; Test_dynamo.suites; Test_boa.suites;
         Test_serialize.suites; Test_stream.suites; Test_events.suites; Test_ablations.suites; Test_properties.suites; Test_offline.suites; Test_phased.suites; Test_segmenter.suites;
         Test_analysis.suites; Test_session.suites; Test_serve.suites;
         Test_kschemes.suites; Test_static.suites; Test_experiments.suites ])
