(* HOTPATH3 streaming format: round trips, constant-memory contracts,
   the serializer fuzz suite, and the on-disk regression corpus.

   The fuzz suite's contract is strict for HOTPATH3: the per-frame CRC
   makes *every* byte-level corruption of a valid stream detectable, so
   each mutated blob must come back [Error _] — never [Ok], never an
   exception, never a hang.  HOTPATH2 has no checksum, so its byte-flip
   cases only demand no-crash ([Ok] or [Error]), while truncations and
   count-field corruptions are still strict. *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Stream = Hotpath_trace.Serialize.Stream
module Path_table = Hotpath_trace.Path_table
module Replay = Hotpath_prediction.Replay
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Sweep = Hotpath_metrics.Sweep
module Hot_set = Hotpath_metrics.Hot_set
module Suite = Hotpath_workloads.Suite
module Generator = Hotpath_workloads.Generator
module Prng = Hotpath_util.Prng

let record_fixture = Test_serialize.record_fixture

let check_same_recording = Test_serialize.check_same_recording

let fixture_program () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  (program, behavior)

let stream_of_recorder ?chunk_instances r =
  match Stream.open_string (Stream.to_string ?chunk_instances r) with
  | Ok rd -> rd
  | Error e -> Alcotest.failf "open_string on valid stream failed: %s" e

let drain rd =
  match Stream.to_recorder rd with
  | Ok r -> r
  | Error e -> Alcotest.failf "to_recorder on valid stream failed: %s" e

(* ------------------------------------------------------------------ *)
(* Round trips and boundaries                                          *)
(* ------------------------------------------------------------------ *)

let test_stream_roundtrip () =
  let r = record_fixture () in
  List.iter
    (fun chunk_instances ->
       check_same_recording r (drain (stream_of_recorder ~chunk_instances r)))
    [ 1; 7; 256; Stream.default_chunk_instances ]

let test_chunk_boundaries () =
  (* Chunk sizes straddling the trace length: exactly one chunk, one
     short, one over. *)
  let r = record_fixture () in
  let n = Recorder.num_instances r in
  Alcotest.(check bool) "fixture is non-trivial" true (n > 2);
  List.iter
    (fun chunk_instances ->
       check_same_recording r (drain (stream_of_recorder ~chunk_instances r)))
    [ n - 1; n; n + 1 ]

let test_empty_trace_roundtrip () =
  let program, behavior = fixture_program () in
  let empty =
    Recorder.record ~max_paths:0 program behavior ~rng:(Prng.create ~seed:7)
  in
  Alcotest.(check int) "empty trace" 0 (Recorder.num_instances empty);
  let r' = drain (stream_of_recorder empty) in
  check_same_recording empty r'

let test_streamed_record_matches_materialized_bytes () =
  (* Recording straight to a sink must emit the same bytes as
     serializing the materialized recording at the same chunk size. *)
  let program, behavior = fixture_program () in
  let buf = Buffer.create 4096 in
  let summary =
    Stream.record ~max_steps:20_000 ~chunk_instances:128 program behavior
      ~rng:(Prng.create ~seed:7) ~sink:(Buffer.add_string buf)
  in
  let r =
    Recorder.record ~max_steps:20_000 program behavior
      ~rng:(Prng.create ~seed:7)
  in
  Alcotest.(check int) "summary instances" (Recorder.num_instances r)
    summary.Recorder.cs_instances;
  Alcotest.(check int) "summary paths" (Recorder.num_paths r)
    summary.Recorder.cs_paths;
  Alcotest.(check string) "byte-identical stream"
    (Stream.to_string ~chunk_instances:128 r)
    (Buffer.contents buf)

let test_record_chunked_invariant_under_chunk_size () =
  let program, behavior = fixture_program () in
  let at chunk_instances =
    let buf = Buffer.create 4096 in
    ignore
      (Stream.record ~max_steps:20_000 ~chunk_instances program behavior
         ~rng:(Prng.create ~seed:7) ~sink:(Buffer.add_string buf));
    match Serialize.of_string (Buffer.contents buf) with
    | Ok r -> r
    | Error e -> Alcotest.failf "chunked stream unreadable: %s" e
  in
  let reference = at 1 in
  List.iter
    (fun c -> check_same_recording reference (at c))
    [ 2; 63; 4096 ]

let test_file_roundtrip_and_load_dispatch () =
  let r = record_fixture () in
  let path = Filename.temp_file "hotpath_stream" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Stream.save ~chunk_instances:100 r ~path;
       (* Serialize.load sniffs the magic and chunk-reads HOTPATH3. *)
       (match Serialize.load ~path with
        | Ok r' -> check_same_recording r r'
        | Error e -> Alcotest.failf "load of streamed file failed: %s" e);
       match Stream.open_file ~path with
       | Error e -> Alcotest.failf "open_file failed: %s" e
       | Ok rd -> check_same_recording r (drain rd))

let test_legacy_file_still_loads () =
  (* The HOTPATH2 fallback: files written by the legacy writer keep
     loading through the same entry point. *)
  let r = record_fixture () in
  let path = Filename.temp_file "hotpath_legacy" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Serialize.save r ~path;
       match Serialize.load ~path with
       | Ok r' -> check_same_recording r r'
       | Error e -> Alcotest.failf "legacy load failed: %s" e)

let test_reader_accessors () =
  let r = record_fixture () in
  let rd = stream_of_recorder ~chunk_instances:50 r in
  Alcotest.(check bool) "no stats before end" true (Stream.vm_stats rd = None);
  let rec pull () =
    match Stream.next rd with
    | Error e -> Alcotest.failf "next failed: %s" e
    | Ok (Some chunk) ->
      Alcotest.(check int) "arrivals per id"
        (Array.length chunk.Stream.ids)
        (Bytes.length chunk.Stream.arrivals);
      let np = Path_table.size (Stream.table rd) in
      Array.iter
        (fun id ->
           Alcotest.(check bool) "id already declared" true (id >= 0 && id < np))
        chunk.Stream.ids;
      pull ()
    | Ok None -> ()
  in
  pull ();
  Alcotest.(check int) "instances_read" (Recorder.num_instances r)
    (Stream.instances_read rd);
  Alcotest.(check bool) "stats after end" true (Stream.vm_stats rd <> None);
  (match Stream.next rd with
   | Ok None -> ()
   | _ -> Alcotest.fail "next after end must keep returning Ok None");
  Stream.close rd;
  Stream.close rd

(* ------------------------------------------------------------------ *)
(* Streamed replay differential                                        *)
(* ------------------------------------------------------------------ *)

let schemes : (string * (module Scheme.S)) list =
  [
    ("net", (module Net));
    ("net-once", (module Net.Net_once));
    ("let", (module Net.Last_executed_tail));
    ("path-profile", (module Path_profile));
  ]

let test_run_stream_matches_run () =
  let r = record_fixture () in
  List.iter
    (fun (name, scheme) ->
       List.iter
         (fun delay ->
            let materialized = Replay.run scheme ~delay r in
            match
              Replay.run_stream scheme ~delay (stream_of_recorder ~chunk_instances:33 r)
            with
            | Error e -> Alcotest.failf "%s: run_stream failed: %s" name e
            | Ok streamed ->
              Alcotest.(check bool)
                (Printf.sprintf "%s delay=%d identical" name delay)
                true
                (Test_properties.outcome_equal materialized streamed))
         [ 1; 7; 50; 100_000 ])
    schemes

let test_run_many_stream_matches_run_many () =
  let r = record_fixture () in
  let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
  List.iter
    (fun (name, scheme) ->
       let materialized = Replay.run_many scheme ~delays r in
       match
         Replay.run_many_stream scheme ~delays (stream_of_recorder ~chunk_instances:61 r)
       with
       | Error e -> Alcotest.failf "%s: run_many_stream failed: %s" name e
       | Ok streamed ->
         Alcotest.(check int) "one outcome per delay" (List.length delays)
           (List.length streamed);
         List.iter2
           (fun a b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s lane identical" name)
                true
                (Test_properties.outcome_equal a b))
           materialized streamed)
    schemes

let test_run_many_stream_single_pass () =
  let r = record_fixture () in
  let n = Recorder.num_instances r in
  let before = Replay.instance_reads () in
  (match
     Replay.run_many_stream (module Net) ~delays:[ 1; 5; 25; 125 ]
       (stream_of_recorder r)
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "run_many_stream failed: %s" e);
  Alcotest.(check int) "stream read once" n (Replay.instance_reads () - before)

let test_sweep_stream_matches_sweep () =
  let r = record_fixture () in
  let threshold = Suite.hot_threshold in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies r)
      ~total_flow:(Recorder.num_instances r)
      ~threshold
  in
  let delays = [ 2; 10; 100; 1_000 ] in
  let materialized = Sweep.run (module Net) r ~hot ~delays in
  match Sweep.run_stream (module Net) (stream_of_recorder r) ~threshold ~delays with
  | Error e -> Alcotest.failf "run_stream sweep failed: %s" e
  | Ok streamed ->
    Alcotest.(check bool) "sweep points identical" true (materialized = streamed)

let test_run_stream_surfaces_decode_errors () =
  (* A stream corrupted past the program frame fails inside the replay
     loop; the error must surface as Error, not an exception, and the
     reader must stay poisoned. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:40 r in
  let b = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  match Stream.open_string (Bytes.to_string b) with
  | Error _ -> () (* corruption already hit the program frame: fine *)
  | Ok rd -> (
      match Replay.run_stream (module Net) ~delay:7 rd with
      | Ok _ -> Alcotest.fail "corrupt stream replayed to Ok"
      | Error first -> (
          match Stream.next rd with
          | Error second ->
            Alcotest.(check string) "reader stays poisoned" first second
          | Ok _ -> Alcotest.fail "poisoned reader yielded a chunk"))

(* ------------------------------------------------------------------ *)
(* Fuzz suite                                                          *)
(* ------------------------------------------------------------------ *)

let expect_error name s =
  match Serialize.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: corrupt input accepted" name

let flip_bit s ~pos ~bit =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.to_string b

let test_fuzz_h3_bitflips () =
  (* 400 random single-bit flips over a valid HOTPATH3 blob: the CRC
     guarantees every one is detected. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:64 r in
  let rng = Prng.create ~seed:0xF1255 in
  for case = 1 to 400 do
    let pos = Prng.int rng ~bound:(String.length s) in
    let bit = Prng.int rng ~bound:8 in
    expect_error
      (Printf.sprintf "h3 bitflip %d (pos=%d bit=%d)" case pos bit)
      (flip_bit s ~pos ~bit)
  done

let test_fuzz_h3_truncations () =
  (* Every strict prefix is a torn write; 120 spread across the blob. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:64 r in
  let n = String.length s in
  for i = 0 to 119 do
    let keep = i * (n - 1) / 119 in
    expect_error (Printf.sprintf "h3 truncated to %d" keep) (String.sub s 0 keep)
  done

let frame_offsets s =
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else
      let len = Int32.to_int (String.get_int32_le s (off + 1)) in
      go (off + 5 + len + 4) ((off, len) :: acc)
  in
  go (String.length Stream.magic) []

let test_fuzz_h3_length_fields () =
  (* Every frame's payload-length field, mutated five ways.  Plausible
     lengths are caught by the CRC (the header is covered), implausible
     ones by the bound check before any allocation. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:4 r in
  let offsets = frame_offsets s in
  (* program + >=1 paths + >=2 instances + end *)
  Alcotest.(check bool) "multi-frame stream" true (List.length offsets >= 5);
  List.iter
    (fun (off, len) ->
       List.iter
         (fun v ->
            if v <> len then begin
              let b = Bytes.of_string s in
              Bytes.set_int32_le b (off + 1) (Int32.of_int v);
              expect_error
                (Printf.sprintf "h3 frame@%d len %d->%d" off len v)
                (Bytes.to_string b)
            end)
         [ -1; 0; len - 1; len + 1; Stream.max_frame_payload + 1 ])
    offsets

let test_fuzz_h3_trailing_garbage () =
  let r = record_fixture () in
  let s = Stream.to_string r in
  expect_error "h3 trailing garbage" (s ^ "x");
  expect_error "h3 trailing frame"
    (s ^ String.sub s (String.length Stream.magic) 32)

let test_fuzz_h2_bitflips_never_crash () =
  (* No checksum in HOTPATH2: a flip may legitimately decode, but it
     must never escape as an exception. *)
  let r = record_fixture () in
  let s = Serialize.to_string r in
  let rng = Prng.create ~seed:0xBEE5 in
  for _ = 1 to 300 do
    let pos = Prng.int rng ~bound:(String.length s) in
    let bit = Prng.int rng ~bound:8 in
    match Serialize.of_string (flip_bit s ~pos ~bit) with
    | Ok _ | Error _ -> ()
  done

let test_fuzz_h2_truncations () =
  let r = record_fixture () in
  let s = Serialize.to_string r in
  let n = String.length s in
  for i = 0 to 59 do
    let keep = i * (n - 1) / 59 in
    expect_error (Printf.sprintf "h2 truncated to %d" keep) (String.sub s 0 keep)
  done

let test_fuzz_h2_count_fields () =
  (* The count fields that once drove unchecked allocations (or, for the
     64-bit instance count, an overflow that escaped as an uncaught
     exception): extreme values must come back Error. *)
  let r = record_fixture () in
  let s = Serialize.to_string r in
  let n = Recorder.num_instances r in
  let count_off = String.length s - 57 - (5 * n) - 8 in
  List.iter
    (fun shift ->
       let b = Bytes.of_string s in
       Bytes.set_int64_le b count_off (Int64.shift_left 1L shift);
       expect_error
         (Printf.sprintf "h2 instance count 2^%d" shift)
         (Bytes.to_string b))
    [ 20; 31; 61; 62; 63 ]

(* ------------------------------------------------------------------ *)
(* Regression corpus                                                   *)
(* ------------------------------------------------------------------ *)

let corpus_files () =
  match Sys.readdir "fixtures" with
  | exception Sys_error e -> Alcotest.failf "corpus missing: %s" e
  | files ->
    (* fixtures/ also holds the golden/ directory; the corpus is the
       .trace files only. *)
    let files =
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".trace")
      |> List.sort String.compare
    in
    Alcotest.(check bool) "corpus populated" true (List.length files >= 10);
    files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus () =
  List.iter
    (fun name ->
       let path = Filename.concat "fixtures" name in
       let contents = read_file path in
       let from_string = Serialize.of_string contents in
       let from_file = Serialize.load ~path in
       if String.length name >= 6 && String.sub name 0 6 = "valid_" then begin
         (match from_string with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s: of_string rejected: %s" name e);
         match from_file with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "%s: load rejected: %s" name e
       end
       else begin
         (match from_string with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "%s: of_string accepted corrupt input" name);
         match from_file with
         | Error _ -> ()
         | Ok _ -> Alcotest.failf "%s: load accepted corrupt input" name
       end)
    (corpus_files ())

(* ------------------------------------------------------------------ *)
(* Frame-flood robustness.  Empty k_paths frames are legal (a chunk
   flush that declared no new paths), so an adversarial or degenerate
   writer can emit millions of them.  Stream.next used to recurse once
   per skipped frame *inside* its try block — a non-tail call — so a
   flood overflowed the stack with an uncaught exception; now it must
   decode in bounded time and memory to the same recording.            *)
(* ------------------------------------------------------------------ *)

let raw_frame ~kind payload =
  let module Crc32 = Hotpath_util.Crc32 in
  let len = String.length payload in
  let hdr = Bytes.create 5 in
  Bytes.set_uint8 hdr 0 kind;
  Bytes.set_int32_le hdr 1 (Int32.of_int len);
  let crc = Crc32.update_bytes Crc32.empty hdr ~pos:0 ~len:5 in
  let crc = Crc32.update_string crc payload ~pos:0 ~len in
  let tl = Bytes.create 4 in
  Bytes.set_int32_le tl 0 crc;
  Bytes.to_string hdr ^ payload ^ Bytes.to_string tl

(* Splice [extra] into a valid stream just after its program frame (the
   first frame following the magic). *)
let splice_after_program blob extra =
  let m = String.length Stream.magic in
  let payload_len =
    Int32.to_int (String.get_int32_le blob (m + 1))
  in
  let cut = m + 5 + payload_len + 4 in
  String.sub blob 0 cut ^ extra ^ String.sub blob cut (String.length blob - cut)

let flood_frames n =
  (* A k_paths payload is a 4-byte path count followed by that many
     paths; count = 0 is the legal "no new paths" frame. *)
  let frame = raw_frame ~kind:1 (* k_paths *) "\x00\x00\x00\x00" in
  let buf = Buffer.create (n * String.length frame) in
  for _ = 1 to n do
    Buffer.add_string buf frame
  done;
  Buffer.contents buf

let test_empty_paths_frame_flood () =
  let r = record_fixture () in
  let blob = Stream.to_string r in
  let flooded = splice_after_program blob (flood_frames 2_000_000) in
  match Stream.open_string flooded with
  | Error e -> Alcotest.failf "flooded stream rejected at open: %s" e
  | Ok rd ->
    (match Stream.to_recorder rd with
     | Error e -> Alcotest.failf "flooded stream rejected: %s" e
     | Ok r' -> check_same_recording r r')

let test_flood_then_truncation_rejected () =
  (* A flood that ends in a torn frame must surface as Error, not an
     exception: the skip loop cannot outrun the truncation check. *)
  let r = record_fixture () in
  let blob = Stream.to_string r in
  let m = String.length Stream.magic in
  let payload_len = Int32.to_int (String.get_int32_le blob (m + 1)) in
  let prefix = String.sub blob 0 (m + 5 + payload_len + 4) in
  let truncated = prefix ^ flood_frames 100_000 ^ "\x01\x00" in
  match Stream.open_string truncated with
  | Error _ -> ()
  | Ok rd ->
    (match Stream.to_recorder rd with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "truncated flood decoded to Ok")

let test_corpus_valid_members_agree () =
  (* The two valid encodings of the same recording must load to the same
     recording. *)
  let load name =
    match Serialize.load ~path:(Filename.concat "fixtures" name) with
    | Ok r -> r
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  check_same_recording (load "valid_hotpath2.trace") (load "valid_hotpath3.trace");
  let empty = load "valid_hotpath3_empty.trace" in
  Alcotest.(check int) "empty corpus member" 0 (Recorder.num_instances empty)

(* ------------------------------------------------------------------ *)
(* Push decoder: the incremental counterpart of the pull reader         *)
(* ------------------------------------------------------------------ *)

(* Feed [s] to a fresh decoder [feed] bytes at a time, pumping between
   feeds.  Returns the decoder plus everything it produced. *)
let decode_all ?(feed = 4096) s =
  let d = Stream.Decoder.create () in
  let ids = ref [] in
  let arrs = ref [] in
  let error = ref None in
  let rec pump () =
    if !error = None then
      match Stream.Decoder.next d with
      | Error e -> error := Some e
      | Ok Stream.Decoder.Need_more -> ()
      | Ok (Stream.Decoder.Program _) -> pump ()
      | Ok (Stream.Decoder.Chunk c) ->
        ids := c.Stream.ids :: !ids;
        arrs := Bytes.to_string c.Stream.arrivals :: !arrs;
        pump ()
      | Ok (Stream.Decoder.End _) -> ()
  in
  let off = ref 0 in
  let n = String.length s in
  while !off < n && !error = None do
    let len = min feed (n - !off) in
    Stream.Decoder.feed d s ~pos:!off ~len;
    off := !off + len;
    pump ()
  done;
  ( d,
    Array.concat (List.rev !ids),
    String.concat "" (List.rev !arrs),
    !error )

let test_decoder_matches_reader () =
  let r = record_fixture () in
  let blob = Stream.to_string ~chunk_instances:256 r in
  List.iter
    (fun feed ->
      let d, ids, arrs, error = decode_all ~feed blob in
      (match error with
      | Some e -> Alcotest.failf "decoder (feed=%d) errored: %s" feed e
      | None -> ());
      Alcotest.(check bool)
        (Printf.sprintf "finished at feed=%d" feed)
        true
        (Stream.Decoder.finished d);
      Alcotest.(check (array int)) "ids match recorder" r.Recorder.instances
        ids;
      Alcotest.(check string) "arrivals match recorder"
        (Bytes.to_string r.Recorder.arrivals)
        arrs;
      Alcotest.(check int) "instances_read"
        (Array.length r.Recorder.instances)
        (Stream.Decoder.instances_read d);
      Alcotest.(check int) "table size" (Recorder.num_paths r)
        (Path_table.size (Stream.Decoder.table d));
      Alcotest.(check bool) "program decoded" true
        (Stream.Decoder.program d <> None);
      Alcotest.(check int) "buffer drained" 0 (Stream.Decoder.buffered d))
    [ 1; 7; 4096 ]

let test_decoder_bitflip_fuzz () =
  (* Every byte-level corruption of a valid HOTPATH3 blob is covered by
     a frame CRC, so an incremental decode must never finish cleanly:
     either a typed error, or a stream left incomplete (a torn length
     field can only look like "more bytes coming" — the serve layer
     turns that into a disconnect at EOF).  Never an exception. *)
  let r = record_fixture () in
  let blob = Stream.to_string ~chunk_instances:256 r in
  let rng = Prng.create ~seed:0xDEC0DE in
  for _ = 1 to 200 do
    let pos = Prng.int rng ~bound:(String.length blob) in
    let bit = Prng.int rng ~bound:8 in
    let b = Bytes.of_string blob in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    let mutated = Bytes.to_string b in
    let d, _, _, error = decode_all ~feed:509 mutated in
    if error = None && Stream.Decoder.finished d then
      Alcotest.failf "bitflip at byte %d bit %d decoded to a finished stream"
        pos bit;
    (* A poisoned decoder repeats its error and ignores further food. *)
    match error with
    | None -> ()
    | Some e -> (
      Stream.Decoder.feed d blob ~pos:0 ~len:16;
      match Stream.Decoder.next d with
      | Error e' -> Alcotest.(check string) "error is sticky" e e'
      | Ok _ -> Alcotest.fail "decoder recovered after an error")
  done

let test_decoder_trailing_garbage () =
  let r = record_fixture () in
  let blob = Stream.to_string r in
  let _, _, _, error = decode_all ~feed:1021 (blob ^ "zz") in
  match error with
  | None -> Alcotest.fail "trailing garbage not surfaced"
  | Some e ->
    Alcotest.(check bool) "mentions garbage" true
      (String.length e > 0)

let test_decoder_end_repeats () =
  let r = record_fixture () in
  let blob = Stream.to_string r in
  let d, _, _, error = decode_all blob in
  Alcotest.(check bool) "no error" true (error = None);
  match (Stream.Decoder.next d, Stream.Decoder.next d) with
  | Ok (Stream.Decoder.End _), Ok (Stream.Decoder.End _) -> ()
  | _ -> Alcotest.fail "End is not repeated after completion"

let test_decoder_feed_validation () =
  let d = Stream.Decoder.create () in
  Alcotest.check_raises "bad substring"
    (Invalid_argument "Serialize.Stream.Decoder.feed: bad substring")
    (fun () -> Stream.Decoder.feed d "abc" ~pos:2 ~len:5)

(* ------------------------------------------------------------------ *)
(* Mapped (zero-copy) reader: differential vs the pull reader, plus     *)
(* its own bitflip/truncation fuzz — the in-place validation must make  *)
(* exactly the pull reader's accept/reject decisions and never crash.   *)
(* ------------------------------------------------------------------ *)

module Mapped = Stream.Mapped
module Batch = Hotpath_trace.Batch

(* Drain a mapped reader through one reused batch.  Returns the
   concatenated ids and re-packed arrival bytes plus the terminal state:
   [Ok ()] for a clean end frame, [Error e] when the reader poisoned. *)
let drain_mapped m =
  let b = Batch.create ~capacity:16 () in
  let ids = ref [] in
  let arrs = ref [] in
  let rec loop () =
    match Mapped.next_batch m b with
    | Ok true ->
      let n = Batch.length b in
      ids := Array.sub b.Batch.ids 0 n :: !ids;
      arrs :=
        String.init n (fun j -> Char.chr (b.Batch.arrs.(j) land 0xFF)) :: !arrs;
      loop ()
    | Ok false -> Ok ()
    | Error e -> Error e
  in
  let final = loop () in
  (Array.concat (List.rev !ids), String.concat "" (List.rev !arrs), final)

let test_mapped_matches_recorder () =
  let r = record_fixture () in
  List.iter
    (fun chunk_instances ->
       let blob = Stream.to_string ~chunk_instances r in
       match Mapped.of_string blob with
       | Error e -> Alcotest.failf "of_string on valid stream: %s" e
       | Ok m ->
         let ids, arrs, final = drain_mapped m in
         (match final with
          | Ok () -> ()
          | Error e -> Alcotest.failf "drain (chunk=%d): %s" chunk_instances e);
         Alcotest.(check (array int)) "ids match recorder"
           r.Recorder.instances ids;
         Alcotest.(check string) "arrivals match recorder"
           (Bytes.to_string r.Recorder.arrivals)
           arrs;
         Alcotest.(check int) "instances_read" (Recorder.num_instances r)
           (Mapped.instances_read m);
         Alcotest.(check int) "table size" (Recorder.num_paths r)
           (Path_table.size (Mapped.table m));
         Alcotest.(check bool) "stats after end" true (Mapped.vm_stats m <> None);
         (* The end state is sticky. *)
         (match Mapped.next_batch m (Batch.create ()) with
          | Ok false -> ()
          | _ -> Alcotest.fail "next_batch after end must keep returning Ok false"))
    [ 1; 7; 256; Stream.default_chunk_instances ]

let test_mapped_file_and_fallback () =
  let r = record_fixture () in
  let path = Filename.temp_file "hotpath_mapped" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Stream.save ~chunk_instances:100 r ~path;
       (match Mapped.map_file ~path with
        | Error e -> Alcotest.failf "map_file failed: %s" e
        | Ok m ->
          let ids, arrs, final = drain_mapped m in
          Alcotest.(check bool) "clean end" true (final = Ok ());
          Alcotest.(check (array int)) "ids via mmap" r.Recorder.instances ids;
          Alcotest.(check string) "arrivals via mmap"
            (Bytes.to_string r.Recorder.arrivals)
            arrs);
       (* Non-regular files must bounce to the pull reader, not crash:
          a directory and a character device both refuse to map. *)
       (match Mapped.map_file ~path:(Filename.get_temp_dir_name ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "mapped a directory");
       (match Mapped.map_file ~path:"/dev/null" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "mapped a character device");
       (match Mapped.map_file ~path:(path ^ ".does-not-exist") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "mapped a missing file"))

let test_mapped_corpus_agrees_with_pull_reader () =
  (* The one differential that matters for a second decoder: identical
     accept/reject decisions on every corpus member (HOTPATH2 members
     fail the magic in both; corrupt HOTPATH3 members must poison both). *)
  List.iter
    (fun name ->
       let contents = read_file (Filename.concat "fixtures" name) in
       let pull_ok =
         match Stream.open_string contents with
         | Error _ -> false
         | Ok rd -> (match Stream.to_recorder rd with Ok _ -> true | Error _ -> false)
       in
       let mapped_ok =
         match Mapped.of_string contents with
         | Error _ -> false
         | Ok m -> (match drain_mapped m with _, _, Ok () -> true | _ -> false)
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s: mapped verdict = pull verdict" name)
         pull_ok mapped_ok)
    (corpus_files ())

let test_mapped_bitflip_fuzz () =
  (* 400 random single-bit flips: the per-frame CRC covers every byte,
     so no mutation may drain to a clean end — Error at open or Error
     mid-drain, never an exception.  Errors are sticky. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:64 r in
  let rng = Prng.create ~seed:0x3A99ED in
  for case = 1 to 400 do
    let pos = Prng.int rng ~bound:(String.length s) in
    let bit = Prng.int rng ~bound:8 in
    match Mapped.of_string (flip_bit s ~pos ~bit) with
    | Error _ -> ()
    | Ok m -> (
        match drain_mapped m with
        | _, _, Ok () ->
          Alcotest.failf "mapped bitflip %d (pos=%d bit=%d) drained clean" case
            pos bit
        | _, _, Error e -> (
            match Mapped.next_batch m (Batch.create ()) with
            | Error e' -> Alcotest.(check string) "error is sticky" e e'
            | Ok _ -> Alcotest.fail "poisoned mapped reader recovered"))
  done

let test_mapped_truncation_fuzz () =
  (* 120 prefixes: every torn write is Error, never a crash or a clean
     end. *)
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:64 r in
  let n = String.length s in
  for i = 0 to 119 do
    let keep = i * (n - 1) / 119 in
    match Mapped.of_string (String.sub s 0 keep) with
    | Error _ -> ()
    | Ok m -> (
        match drain_mapped m with
        | _, _, Ok () -> Alcotest.failf "truncation to %d drained clean" keep
        | _, _, Error _ -> ())
  done

let test_run_mapped_matches_run () =
  let r = record_fixture () in
  let mapped ?(chunk_instances = 33) () =
    match Mapped.of_string (Stream.to_string ~chunk_instances r) with
    | Ok m -> m
    | Error e -> Alcotest.failf "of_string on valid stream: %s" e
  in
  List.iter
    (fun (name, scheme) ->
       List.iter
         (fun delay ->
            let materialized = Replay.run scheme ~delay r in
            match Replay.run_mapped scheme ~delay (mapped ()) with
            | Error e -> Alcotest.failf "%s: run_mapped failed: %s" name e
            | Ok m ->
              Alcotest.(check bool)
                (Printf.sprintf "%s delay=%d identical" name delay)
                true
                (Test_properties.outcome_equal materialized m))
         [ 1; 7; 50; 100_000 ])
    schemes

let test_run_many_mapped_matches_run_many () =
  let r = record_fixture () in
  let delays = [ 1; 3; 7; 20; 100; 5_000 ] in
  let mapped ~chunk_instances () =
    match Mapped.of_string (Stream.to_string ~chunk_instances r) with
    | Ok m -> m
    | Error e -> Alcotest.failf "of_string on valid stream: %s" e
  in
  List.iter
    (fun (name, scheme) ->
       let materialized = Replay.run_many scheme ~delays r in
       let check_jobs jobs =
         match
           Replay.run_many_mapped ~jobs scheme ~delays
             (mapped ~chunk_instances:61 ())
         with
         | Error e -> Alcotest.failf "%s: run_many_mapped failed: %s" name e
         | Ok ms ->
           Alcotest.(check int) "one outcome per delay" (List.length delays)
             (List.length ms);
           List.iter2
             (fun a b ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s lane identical (jobs=%d)" name jobs)
                  true
                  (Test_properties.outcome_equal a b))
             materialized ms
       in
       check_jobs 1;
       (* Forced 4-domain budget: the shared-batch fan-out must run for
          real even on a 1-core CI machine. *)
       Hotpath_util.Pool.with_domain_limit 4 (fun () -> check_jobs 3))
    schemes

let test_run_many_mapped_events_identical () =
  (* One event stream, three drivers: materialized, pull-streamed, and
     mapped replay must emit byte-identical samples. *)
  let r = record_fixture () in
  let delays = [ 1; 3; 7; 20; 100 ] in
  let via_run_many () =
    let buf = Buffer.create 4096 in
    let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
    ignore (Replay.run_many ~events:ev (module Net) ~delays r);
    Buffer.contents buf
  in
  let via_stream () =
    let buf = Buffer.create 4096 in
    let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
    (match
       Replay.run_many_stream ~events:ev (module Net) ~delays
         (stream_of_recorder ~chunk_instances:61 r)
     with
     | Ok _ -> ()
     | Error e -> Alcotest.failf "run_many_stream: %s" e);
    Buffer.contents buf
  in
  let via_mapped () =
    let buf = Buffer.create 4096 in
    let ev = Replay.events ~window:97 (Hotpath_util.Events.of_buffer buf) in
    (match Mapped.of_string (Stream.to_string ~chunk_instances:61 r) with
     | Error e -> Alcotest.failf "of_string: %s" e
     | Ok m -> (
         match Replay.run_many_mapped ~events:ev (module Net) ~delays m with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "run_many_mapped: %s" e));
    Buffer.contents buf
  in
  let reference = via_run_many () in
  Alcotest.(check bool) "events non-empty" true (String.length reference > 0);
  Alcotest.(check string) "stream events identical" reference (via_stream ());
  Alcotest.(check string) "mapped events identical" reference (via_mapped ())

let test_run_mapped_surfaces_decode_errors () =
  let r = record_fixture () in
  let s = Stream.to_string ~chunk_instances:40 r in
  let b = Bytes.of_string s in
  let mid = String.length s / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  match Mapped.of_string (Bytes.to_string b) with
  | Error _ -> () (* corruption already hit the program frame: fine *)
  | Ok m -> (
      match Replay.run_mapped (module Net) ~delay:7 m with
      | Ok _ -> Alcotest.fail "corrupt mapped stream replayed to Ok"
      | Error first -> (
          match Mapped.next_batch m (Batch.create ()) with
          | Error second ->
            Alcotest.(check string) "mapped reader stays poisoned" first second
          | Ok _ -> Alcotest.fail "poisoned mapped reader yielded a batch"))

let suites =
  [
    ( "trace.stream",
      [
        Alcotest.test_case "roundtrip at several chunk sizes" `Quick
          test_stream_roundtrip;
        Alcotest.test_case "chunk boundary sizes" `Quick test_chunk_boundaries;
        Alcotest.test_case "empty trace roundtrip" `Quick
          test_empty_trace_roundtrip;
        Alcotest.test_case "streamed record = materialized bytes" `Quick
          test_streamed_record_matches_materialized_bytes;
        Alcotest.test_case "record_chunked invariant in chunk size" `Quick
          test_record_chunked_invariant_under_chunk_size;
        Alcotest.test_case "file roundtrip + load dispatch" `Quick
          test_file_roundtrip_and_load_dispatch;
        Alcotest.test_case "legacy HOTPATH2 file still loads" `Quick
          test_legacy_file_still_loads;
        Alcotest.test_case "reader accessors" `Quick test_reader_accessors;
        Alcotest.test_case "run_stream = run (all schemes)" `Quick
          test_run_stream_matches_run;
        Alcotest.test_case "run_many_stream = run_many (all schemes)" `Quick
          test_run_many_stream_matches_run_many;
        Alcotest.test_case "run_many_stream reads stream once" `Quick
          test_run_many_stream_single_pass;
        Alcotest.test_case "sweep over stream = materialized sweep" `Quick
          test_sweep_stream_matches_sweep;
        Alcotest.test_case "replay surfaces decode errors" `Quick
          test_run_stream_surfaces_decode_errors;
      ] );
    ( "trace.stream.fuzz",
      [
        Alcotest.test_case "400 h3 bitflips all rejected" `Quick
          test_fuzz_h3_bitflips;
        Alcotest.test_case "120 h3 truncations all rejected" `Quick
          test_fuzz_h3_truncations;
        Alcotest.test_case "h3 length-field mutations all rejected" `Quick
          test_fuzz_h3_length_fields;
        Alcotest.test_case "h3 trailing garbage rejected" `Quick
          test_fuzz_h3_trailing_garbage;
        Alcotest.test_case "300 h2 bitflips never crash" `Quick
          test_fuzz_h2_bitflips_never_crash;
        Alcotest.test_case "60 h2 truncations all rejected" `Quick
          test_fuzz_h2_truncations;
        Alcotest.test_case "h2 count-field corruption rejected" `Quick
          test_fuzz_h2_count_fields;
        Alcotest.test_case "2M empty-paths-frame flood decodes" `Quick
          test_empty_paths_frame_flood;
        Alcotest.test_case "frame flood + torn frame rejected" `Quick
          test_flood_then_truncation_rejected;
        Alcotest.test_case "regression corpus" `Quick test_corpus;
        Alcotest.test_case "corpus valid members agree" `Quick
          test_corpus_valid_members_agree;
      ] );
    ( "trace.stream.decoder",
      [
        Alcotest.test_case "push decoder = pull reader (feed 1/7/4096)" `Quick
          test_decoder_matches_reader;
        Alcotest.test_case "200 bitflips never finish clean" `Quick
          test_decoder_bitflip_fuzz;
        Alcotest.test_case "trailing garbage surfaced" `Quick
          test_decoder_trailing_garbage;
        Alcotest.test_case "End repeats after completion" `Quick
          test_decoder_end_repeats;
        Alcotest.test_case "feed validates substring" `Quick
          test_decoder_feed_validation;
      ] );
    ( "trace.stream.mapped",
      [
        Alcotest.test_case "mapped reader = recorder (chunk 1/7/256/default)"
          `Quick test_mapped_matches_recorder;
        Alcotest.test_case "map_file roundtrip + non-regular files refused"
          `Quick test_mapped_file_and_fallback;
        Alcotest.test_case "corpus verdicts agree with pull reader" `Quick
          test_mapped_corpus_agrees_with_pull_reader;
        Alcotest.test_case "400 bitflips never drain clean" `Quick
          test_mapped_bitflip_fuzz;
        Alcotest.test_case "120 truncations never drain clean" `Quick
          test_mapped_truncation_fuzz;
        Alcotest.test_case "run_mapped = run (all schemes)" `Quick
          test_run_mapped_matches_run;
        Alcotest.test_case "run_many_mapped = run_many (jobs 1/3)" `Quick
          test_run_many_mapped_matches_run_many;
        Alcotest.test_case "event streams byte-identical across drivers" `Quick
          test_run_many_mapped_events_identical;
        Alcotest.test_case "replay surfaces mapped decode errors" `Quick
          test_run_mapped_surfaces_decode_errors;
      ] );
  ]
