(* Unit and property tests for Hotpath_util: PRNG, Vec, Stats, Tablefmt. *)

module Prng = Hotpath_util.Prng
module Vec = Hotpath_util.Vec
module Stats = Hotpath_util.Stats
module Tablefmt = Hotpath_util.Tablefmt
module Pool = Hotpath_util.Pool
module Bqueue = Hotpath_util.Bqueue

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_copy_replays () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  (* Not a statistical test; just check the streams are not identical. *)
  let same = ref true in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then same := false
  done;
  Alcotest.(check bool) "split streams differ" false !same

let test_prng_int_bounds () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int t ~bound:7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_prng_int_invalid () =
  let t = Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t ~bound:0))

let test_prng_int_uniformish () =
  let t = Prng.create ~seed:11 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Prng.int t ~bound:4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
       Alcotest.(check bool) "within 5% of uniform" true
         (abs (c - (n / 4)) < n / 20))
    counts

let test_prng_float_range () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_bool_extremes () =
  let t = Prng.create ~seed:5 in
  Alcotest.(check bool) "p=0" false (Prng.bool t ~p:0.0);
  Alcotest.(check bool) "p=1" true (Prng.bool t ~p:1.0)

let test_prng_bool_bias () =
  let t = Prng.create ~seed:13 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bool t ~p:0.9 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.9" true (abs_float (rate -. 0.9) < 0.01)

let test_prng_pick () =
  let t = Prng.create ~seed:17 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Prng.pick t arr in
    Alcotest.(check bool) "member" true (Array.mem v arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick t [||]))

let test_prng_pick_weighted () =
  let t = Prng.create ~seed:19 in
  let weights = [| 0.0; 1.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.pick_weighted t ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(0);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(1) in
  Alcotest.(check bool) "3:1 ratio approx" true (abs_float (ratio -. 3.0) < 0.25)

let test_prng_pick_weighted_invalid () =
  let t = Prng.create ~seed:19 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Prng.pick_weighted: empty weights") (fun () ->
      ignore (Prng.pick_weighted t ~weights:[||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Prng.pick_weighted: negative weight") (fun () ->
      ignore (Prng.pick_weighted t ~weights:[| 1.0; -1.0 |]));
  Alcotest.check_raises "zero sum"
    (Invalid_argument "Prng.pick_weighted: zero total weight") (fun () ->
      ignore (Prng.pick_weighted t ~weights:[| 0.0; 0.0 |]))

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:23 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "last" (99 * 99) (Vec.last v)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob"
    (Invalid_argument "Vec.set: index -1 out of bounds [0,1)") (fun () -> Vec.set v (-1) 0)

let test_vec_pop () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.push v 2;
  Alcotest.(check int) "pop" 2 (Vec.pop v);
  Alcotest.(check int) "pop" 1 (Vec.pop v);
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_clear_reuse () =
  let v = Vec.create () in
  for i = 0 to 9 do Vec.push v i done;
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 42;
  Alcotest.(check int) "reusable" 42 (Vec.get v 0)

let test_vec_conversions () =
  let v = Vec.of_array [| 3; 1; 4 |] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4 ] (Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4 |] (Vec.to_array v);
  Alcotest.(check int) "fold" 8 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 4) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 5) v)

let test_vec_iteri () =
  let v = Vec.of_array [| 10; 20 |] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (1, 20); (0, 10) ] !acc

let prop_vec_matches_list =
  QCheck.Test.make ~name:"vec push/to_list matches list building" ~count:200
    QCheck.(list int)
    (fun xs ->
       let v = Vec.create () in
       List.iter (Vec.push v) xs;
       Vec.to_list v = xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "empty" 0.0 (Stats.mean [||])

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "known" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.percentile xs ~p:50.0);
  check_float "min" 1.0 (Stats.percentile xs ~p:0.0);
  check_float "max" 5.0 (Stats.percentile xs ~p:100.0);
  check_float "interpolated" 1.5 (Stats.percentile [| 1.0; 2.0 |] ~p:50.0)

let test_stats_minmax_ratio () =
  check_float "min" 1.0 (Stats.minimum [| 3.0; 1.0; 2.0 |]);
  check_float "max" 3.0 (Stats.maximum [| 3.0; 1.0; 2.0 |]);
  check_float "ratio" 0.5 (Stats.ratio 1.0 2.0);
  check_float "ratio by zero" 0.0 (Stats.ratio 1.0 0.0);
  check_float "pct" 25.0 (Stats.pct 1.0 4.0);
  check_float "round" 3.14 (Stats.round_to 2 3.14159)

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    Tablefmt.create ~columns:[ ("name", Tablefmt.Left); ("count", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "compress"; "230" ];
  Tablefmt.add_row t [ "gcc"; "36,738" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  Alcotest.(check bool) "right-aligned count" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "compress     230") lines)

let test_table_width_mismatch () =
  let t = Tablefmt.create ~columns:[ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Tablefmt.add_row: expected 1 cells, got 2") (fun () ->
      Tablefmt.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Tablefmt.create ~columns:[ ("a", Tablefmt.Left); ("b", Tablefmt.Left) ] in
  Tablefmt.add_row t [ "x,y"; "plain" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "has \"quote\""; "z" ];
  let csv = Tablefmt.render_csv t in
  Alcotest.(check string) "csv escaping" "a,b\n\"x,y\",plain\n\"has \"\"quote\"\"\",z\n" csv

let test_table_cells () =
  Alcotest.(check string) "int" "12,345" (Tablefmt.cell_int 12345);
  Alcotest.(check string) "negative int" "-1,000" (Tablefmt.cell_int (-1000));
  Alcotest.(check string) "small int" "999" (Tablefmt.cell_int 999);
  Alcotest.(check string) "float" "3.1" (Tablefmt.cell_float 3.14);
  Alcotest.(check string) "pct" "97.53%" (Tablefmt.cell_pct ~digits:2 97.531)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_preserves_order () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
       Alcotest.(check (list int)) "input order"
         (List.map (fun x -> x * x) items)
         (Pool.map ~jobs (fun x -> x * x) items))
    [ 1; 2; 4; 64 ]

let test_pool_map_array () =
  let items = Array.init 17 Fun.id in
  Alcotest.(check (array int)) "array map"
    (Array.map succ items)
    (Pool.map_array ~jobs:4 succ items)

let test_pool_iter_runs_everything () =
  let hits = Array.make 50 0 in
  (* Each index is touched by exactly one job, so no two domains write the
     same cell. *)
  Pool.iter ~jobs:4 (fun i -> hits.(i) <- hits.(i) + 1) (List.init 50 Fun.id);
  Alcotest.(check bool) "every item once" true (Array.for_all (( = ) 1) hits)

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:8 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~jobs:8 succ [ 1 ])

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool: jobs must be >= 1")
    (fun () -> ignore (Pool.map ~jobs:0 succ [ 1 ]))

exception Boom of int

let test_pool_propagates_exception () =
  List.iter
    (fun jobs ->
       match Pool.map ~jobs (fun x -> if x = 13 then raise (Boom x) else x)
               (List.init 40 Fun.id)
       with
       | exception Boom 13 -> ()
       | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
       | _ -> Alcotest.fail "exception swallowed")
    [ 1; 4 ]

let test_pool_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_pool_uncapped_honours_jobs () =
  (* [~cap:false] must run exactly [jobs] concurrent workers even above
     the machine's recommended domain count.  Each of the 4 items blocks
     on a 4-party barrier, so the map can only complete if 4 distinct
     workers hold one item each — a capped (or silently serialized) pool
     would deadlock here, not merely slow down. *)
  let m = Mutex.create () and cv = Condition.create () in
  let arrived = ref 0 in
  let barrier _ =
    Mutex.lock m;
    incr arrived;
    if !arrived >= 4 then Condition.broadcast cv
    else
      while !arrived < 4 do
        Condition.wait cv m
      done;
    Mutex.unlock m;
    !arrived
  in
  let results = Pool.map ~cap:false ~jobs:4 barrier (List.init 4 Fun.id) in
  Alcotest.(check (list int)) "all joined" [ 4; 4; 4; 4 ] results;
  Alcotest.(check (list int)) "capped still works"
    [ 1; 4; 9 ]
    (Pool.map ~cap:true ~jobs:64 (fun x -> x * x) [ 1; 2; 3 ])

let test_pool_domain_limit () =
  let before = Pool.effective_workers ~jobs:100 in
  (* 1-core simulation: the oversubscription clamp becomes observable on
     any machine. *)
  Pool.with_domain_limit 1 (fun () ->
      Alcotest.(check int) "budget" 1 (Pool.default_jobs ());
      Alcotest.(check int) "jobs=8 clamps to 1" 1 (Pool.effective_workers ~jobs:8);
      Alcotest.(check (list int)) "capped map degrades to inline"
        [ 1; 4; 9 ]
        (Pool.map ~jobs:8 (fun x -> x * x) [ 1; 2; 3 ]));
  (* The other direction: a raised budget forces real multi-domain
     fan-out on small CI hosts. *)
  Pool.with_domain_limit 4 (fun () ->
      Alcotest.(check int) "raised budget" 4 (Pool.effective_workers ~jobs:8);
      Alcotest.(check int) "still min with jobs" 2 (Pool.effective_workers ~jobs:2);
      Alcotest.(check (list int)) "multi-domain map"
        (List.init 20 (fun x -> x * x))
        (Pool.map ~jobs:4 (fun x -> x * x) (List.init 20 Fun.id)));
  Alcotest.(check int) "restored on exit" before
    (Pool.effective_workers ~jobs:100);
  Alcotest.check_raises "limit 0"
    (Invalid_argument "Pool.with_domain_limit: limit must be >= 1")
    (fun () -> Pool.with_domain_limit 0 (fun () -> ()));
  Alcotest.check_raises "effective_workers jobs 0"
    (Invalid_argument "Pool: jobs must be >= 1")
    (fun () -> ignore (Pool.effective_workers ~jobs:0))

(* ------------------------------------------------------------------ *)
(* Bqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_bqueue_fifo () =
  let q = Bqueue.create ~capacity:8 in
  List.iter (fun x -> assert (Bqueue.push q x)) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Bqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Bqueue.peek q);
  Alcotest.(check (list (option int))) "pop order"
    [ Some 1; Some 2; Some 3; Some 4; None ]
    (List.init 5 (fun _ -> Bqueue.pop q));
  Alcotest.(check bool) "empty after drain" true (Bqueue.is_empty q)

let test_bqueue_full_refuses () =
  let q = Bqueue.create ~capacity:2 in
  assert (Bqueue.push q 10);
  assert (Bqueue.push q 20);
  Alcotest.(check bool) "is_full" true (Bqueue.is_full q);
  Alcotest.(check bool) "push refused" false (Bqueue.push q 30);
  (* The refused push must leave the queue untouched. *)
  Alcotest.(check int) "length unchanged" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "head unchanged" (Some 10) (Bqueue.pop q);
  Alcotest.(check (option int)) "tail unchanged" (Some 20) (Bqueue.pop q)

let test_bqueue_wraparound () =
  (* Run many more elements than the capacity through a tiny ring so the
     read/write cursors wrap repeatedly; FIFO order must survive. *)
  let q = Bqueue.create ~capacity:3 in
  let popped = ref [] in
  for x = 1 to 100 do
    if not (Bqueue.push q x) then begin
      (match Bqueue.pop q with
      | Some y -> popped := y :: !popped
      | None -> Alcotest.fail "full queue popped None");
      assert (Bqueue.push q x)
    end
  done;
  let rec drain () =
    match Bqueue.pop q with
    | Some y ->
      popped := y :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "all elements in order"
    (List.init 100 (fun i -> i + 1))
    (List.rev !popped);
  Alcotest.(check int) "high water hit capacity" 3 (Bqueue.high_water q)

let test_bqueue_clear () =
  let q = Bqueue.create ~capacity:4 in
  List.iter (fun x -> assert (Bqueue.push q x)) [ 1; 2; 3 ];
  Bqueue.clear q;
  Alcotest.(check bool) "empty" true (Bqueue.is_empty q);
  Alcotest.(check (option int)) "peek none" None (Bqueue.peek q);
  Alcotest.(check int) "high water survives clear" 3 (Bqueue.high_water q);
  assert (Bqueue.push q 9);
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Bqueue.pop q)

let test_bqueue_invalid_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Bqueue.create: capacity must be >= 1")
    (fun () -> ignore (Bqueue.create ~capacity:0 : int Bqueue.t))

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
        Alcotest.test_case "int uniformish" `Quick test_prng_int_uniformish;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "bool extremes" `Quick test_prng_bool_extremes;
        Alcotest.test_case "bool bias" `Quick test_prng_bool_bias;
        Alcotest.test_case "pick" `Quick test_prng_pick;
        Alcotest.test_case "pick_weighted" `Quick test_prng_pick_weighted;
        Alcotest.test_case "pick_weighted invalid" `Quick test_prng_pick_weighted_invalid;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
      ] );
    ( "util.vec",
      [
        Alcotest.test_case "push/get" `Quick test_vec_push_get;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "pop" `Quick test_vec_pop;
        Alcotest.test_case "clear/reuse" `Quick test_vec_clear_reuse;
        Alcotest.test_case "conversions" `Quick test_vec_conversions;
        Alcotest.test_case "iteri" `Quick test_vec_iteri;
        QCheck_alcotest.to_alcotest prop_vec_matches_list;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "min/max/ratio" `Quick test_stats_minmax_ratio;
      ] );
    ( "util.tablefmt",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        Alcotest.test_case "csv" `Quick test_table_csv;
        Alcotest.test_case "cells" `Quick test_table_cells;
      ] );
    ( "util.pool",
      [
        Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
        Alcotest.test_case "map_array" `Quick test_pool_map_array;
        Alcotest.test_case "iter covers all" `Quick test_pool_iter_runs_everything;
        Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_singleton;
        Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
        Alcotest.test_case "propagates exception" `Quick
          test_pool_propagates_exception;
        Alcotest.test_case "default jobs" `Quick test_pool_default_jobs_positive;
        Alcotest.test_case "uncapped honours jobs" `Quick
          test_pool_uncapped_honours_jobs;
        Alcotest.test_case "domain limit override" `Quick
          test_pool_domain_limit;
      ] );
    ( "util.bqueue",
      [
        Alcotest.test_case "fifo order" `Quick test_bqueue_fifo;
        Alcotest.test_case "full push refused" `Quick test_bqueue_full_refuses;
        Alcotest.test_case "wraparound" `Quick test_bqueue_wraparound;
        Alcotest.test_case "clear" `Quick test_bqueue_clear;
        Alcotest.test_case "invalid capacity" `Quick
          test_bqueue_invalid_capacity;
      ] );
  ]
