(* Regenerates the serializer regression corpus under test/fixtures.

   Run from test/:  dune exec test/gen_corpus.exe -- [output-dir]

   Naming convention (enforced by test_stream.ml): files named
   [valid_*] must parse to [Ok _] through both [Serialize.of_string] and
   [Serialize.load]; files named [corrupt_*] must return [Error _] —
   never raise, never hang.  The corpus pins corruptions that were once
   mishandled (notably the 2^61 instance-count overflow that escaped
   [of_string] as an uncaught [Invalid_argument]) so they stay fixed. *)

module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Path_table = Hotpath_trace.Path_table
module Suite = Hotpath_workloads.Suite
module Generator = Hotpath_workloads.Generator
module Prng = Hotpath_util.Prng

let out_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fixtures"

let write_file name contents =
  let path = Filename.concat out_dir name in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let patch s ~pos f =
  let b = Bytes.of_string s in
  f b pos;
  Bytes.to_string b

(* Frame offsets of an HOTPATH3 blob: (offset, kind, total length)
   triples, in stream order, starting just past the magic. *)
let frames s =
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else
      let kind = Char.code s.[off] in
      let len = Int32.to_int (String.get_int32_le s (off + 1)) in
      let total = 5 + len + 4 in
      go (off + total) ((off, kind, total) :: acc)
  in
  go (String.length Serialize.Stream.magic) []

let () =
  (if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755);
  let r = Suite.record ~scale:0.001 (Suite.find_exn "deltablue") in
  let n = Recorder.num_instances r in
  Printf.printf "corpus recording: %d instances, %d paths\n" n
    (Recorder.num_paths r);

  (* Valid members: both formats, plus the empty-trace boundary. *)
  let h2 = Serialize.to_string r in
  let h3 = Serialize.Stream.to_string ~chunk_instances:256 r in
  write_file "valid_hotpath2.trace" h2;
  write_file "valid_hotpath3.trace" h3;
  let empty = Buffer.create 256 in
  let b = Suite.find_exn "deltablue" in
  let program, behavior = Generator.build b.Suite.b_spec ~seed:b.Suite.b_seed in
  ignore
    (Serialize.Stream.record ~max_paths:0 program behavior
       ~rng:(Prng.create ~seed:1) ~sink:(Buffer.add_string empty));
  write_file "valid_hotpath3_empty.trace" (Buffer.contents empty);

  (* HOTPATH2 instance-count overflow: the 64-bit count field patched to
     2^61.  The layout puts it at len - stats(57) - arrivals(n) - ids(4n)
     - count(8). *)
  let count_off = String.length h2 - 57 - (5 * n) - 8 in
  write_file "corrupt_h2_instance_count_2pow61.trace"
    (patch h2 ~pos:count_off (fun b pos ->
         Bytes.set_int64_le b pos (Int64.shift_left 1L 61)));

  (* HOTPATH2 truncation. *)
  write_file "corrupt_h2_truncated.trace"
    (String.sub h2 0 (String.length h2 / 2));

  (* HOTPATH3 corruptions. *)
  let fs = frames h3 in
  let instance_frame =
    match List.find_opt (fun (_, kind, _) -> kind = 2) fs with
    | Some f -> f
    | None -> failwith "corpus recording produced no instance frame"
  in
  let off, _, total = instance_frame in
  (* A payload byte flipped mid-frame: only the CRC can catch it. *)
  write_file "corrupt_h3_payload_bitflip.trace"
    (patch h3 ~pos:(off + 5 + ((total - 9) / 2)) (fun b pos ->
         Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10))));
  (* The frame length field patched past max_frame_payload: must be
     rejected before any allocation. *)
  write_file "corrupt_h3_len_huge.trace"
    (patch h3 ~pos:(off + 1) (fun b pos ->
         Bytes.set_int32_le b pos 0x7FFFFFFFl));
  (* Torn writes. *)
  write_file "corrupt_h3_truncated.trace"
    (String.sub h3 0 (String.length h3 - 10));
  let last_off, last_kind, last_total =
    List.nth fs (List.length fs - 1)
  in
  assert (last_kind = 3 && last_off + last_total = String.length h3);
  write_file "corrupt_h3_missing_end.trace" (String.sub h3 0 last_off);
  (* A dropped interior chunk: every frame still checksums, but the end
     frame's totals no longer match what the stream carried. *)
  write_file "corrupt_h3_dropped_chunk.trace"
    (String.sub h3 0 off
     ^ String.sub h3 (off + total) (String.length h3 - off - total));
  (* An instance referencing a path the stream never declared.  The
     writer does not re-validate ids, so the corrupt stream can be
     produced through the public API. *)
  let bad = Buffer.create 1024 in
  let w =
    Serialize.Stream.writer (Buffer.add_string bad) ~program:r.Recorder.program
  in
  Serialize.Stream.write_chunk w ~table:r.Recorder.table
    ~ids:[| Path_table.size r.Recorder.table |]
    ~arrivals:(Bytes.make 1 '\000');
  Serialize.Stream.finish w ~table:r.Recorder.table
    ~vm_stats:r.Recorder.vm_stats;
  write_file "corrupt_h3_undeclared_path_id.trace" (Buffer.contents bad)
