(* Integration tests: the paper-shape criteria of DESIGN.md §4, at reduced
   scale so the whole suite stays fast. *)

module Suite = Hotpath_workloads.Suite
module Table1 = Hotpath_experiments.Table1
module Table2 = Hotpath_experiments.Table2
module Figures23 = Hotpath_experiments.Figures23
module Fig4 = Hotpath_experiments.Fig4
module Fig5 = Hotpath_experiments.Fig5
module Runs = Hotpath_experiments.Runs
module Sweep = Hotpath_metrics.Sweep

let scale = 0.1

let table1 = lazy (Table1.compute ~scale ())

let find1 name = List.find (fun r -> r.Table1.name = name) (Lazy.force table1)

let test_table1_row_count () =
  Alcotest.(check int) "nine rows" 9 (List.length (Lazy.force table1))

let test_table1_compress_shape () =
  let c = find1 "compress" in
  Alcotest.(check bool) "fewest paths" true
    (List.for_all (fun r -> r.Table1.paths >= c.Table1.paths) (Lazy.force table1));
  Alcotest.(check bool)
    (Printf.sprintf "dominant hot flow (%.1f%%)" c.Table1.hot_flow_pct)
    true (c.Table1.hot_flow_pct > 94.0)

let test_table1_gcc_shape () =
  let g = find1 "gcc" in
  Alcotest.(check bool) "most paths" true
    (List.for_all (fun r -> r.Table1.paths <= g.Table1.paths) (Lazy.force table1));
  Alcotest.(check bool)
    (Printf.sprintf "weak hot flow (%.1f%%)" g.Table1.hot_flow_pct)
    true
    (g.Table1.hot_flow_pct < 65.0)

let test_table1_dominant_band () =
  List.iter
    (fun name ->
       let r = find1 name in
       Alcotest.(check bool)
         (Printf.sprintf "%s hot flow %.1f%% in band" name r.Table1.hot_flow_pct)
         true
         (r.Table1.hot_flow_pct > 80.0))
    [ "ijpeg"; "li"; "m88ksim"; "perl"; "deltablue" ]

let test_table1_flow_ratios () =
  (* Flow column scales with the paper's Flow(M) column. *)
  List.iter
    (fun r ->
       Alcotest.(check int)
         (Printf.sprintf "%s flow" r.Table1.name)
         (int_of_float (scale *. float_of_int (r.Table1.paper_flow_m * 100)))
         r.Table1.flow)
    (Lazy.force table1)

let table2 = lazy (Table2.compute ~scale ())

let find2 name = List.find (fun r -> r.Table2.name = name) (Lazy.force table2)

let test_table2_heads_below_paths () =
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: heads (%d) < paths (%d)" r.Table2.name
            r.Table2.unique_heads r.Table2.paths)
         true
         (r.Table2.unique_heads < r.Table2.paths))
    (Lazy.force table2)

let test_table2_ratio_ordering () =
  let ratio r = float_of_int r.Table2.unique_heads /. float_of_int r.Table2.paths in
  Alcotest.(check bool) "compress densest heads" true
    (ratio (find2 "compress") > ratio (find2 "gcc"));
  Alcotest.(check bool) "go sparse" true (ratio (find2 "go") < 0.15)

let test_fig4_ratios () =
  (* Counter space is measured dynamically; at tiny scales rarely-arriving
     heads are never observed, so Figure 4 is checked at full scale and the
     Dynamo operating point. *)
  let rows = Fig4.compute ~scale:1.0 ~delay:50 () in
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s ratio %.3f in (0,1)" r.Fig4.name r.Fig4.ratio)
         true
         (r.Fig4.ratio > 0.0 && r.Fig4.ratio < 1.0))
    rows;
  let avg = Fig4.average_ratio rows in
  Alcotest.(check bool)
    (Printf.sprintf "average ratio %.3f in the paper's band" avg)
    true
    (avg > 0.2 && avg < 0.6);
  let ratio name = (List.find (fun r -> r.Fig4.name = name) rows).Fig4.ratio in
  Alcotest.(check bool) "compress ratio above gcc's" true
    (ratio "compress" > ratio "gcc")

let figures = lazy (Figures23.compute ~scale ~delays:[ 2; 10; 100; 2_000 ] ())

let test_fig2_net_matches_path_profile () =
  let t = Lazy.force figures in
  List.iter
    (fun bench ->
       let point scheme =
         match Figures23.series t ~scheme ~bench with
         | Some s -> List.nth s.Figures23.s_points 1 (* delay 10 *)
         | None -> Alcotest.failf "missing series %s/%s" scheme bench
       in
       let net = point "net" and pp = point "path-profile" in
       Alcotest.(check bool)
         (Printf.sprintf "%s: NET %.1f ~ PP %.1f at tau=10" bench
            net.Sweep.hit_rate pp.Sweep.hit_rate)
         true
         (abs_float (net.Sweep.hit_rate -. pp.Sweep.hit_rate) < 10.0))
    Suite.names

let test_fig2_hit_declines () =
  let t = Lazy.force figures in
  List.iter
    (fun (scheme, _) ->
       match Figures23.series t ~scheme ~bench:"average" with
       | None -> Alcotest.fail "missing average"
       | Some s ->
         let hits = List.map (fun p -> p.Sweep.hit_rate) s.Figures23.s_points in
         (match (hits, List.rev hits) with
          | first :: _, last :: _ when scheme = "static" ->
            (* The zero-profiling scheme never reacts to tau: flat. *)
            Alcotest.(check bool)
              (Printf.sprintf "static: %.1f == %.1f (delay-inert)" first last)
              true
              (Float.abs (first -. last) < 1e-9)
          | first :: _, last :: _ ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %.1f -> %.1f declines" scheme first last)
              true (first > last +. 10.0)
          | _ -> Alcotest.fail "no points"))
    Figures23.schemes

let test_fig3_noise_declines () =
  let t = Lazy.force figures in
  List.iter
    (fun (scheme, _) ->
       match Figures23.series t ~scheme ~bench:"gcc" with
       | None -> Alcotest.fail "missing gcc"
       | Some s ->
         (match s.Figures23.s_points with
          | p2 :: _ when scheme = "static" ->
            let last = List.nth s.Figures23.s_points 3 in
            Alcotest.(check bool)
              (Printf.sprintf "static gcc noise %.1f == %.1f (delay-inert)"
                 p2.Sweep.noise_rate last.Sweep.noise_rate)
              true
              (Float.abs (p2.Sweep.noise_rate -. last.Sweep.noise_rate) < 1e-9)
          | p2 :: _ ->
            let last = List.nth s.Figures23.s_points 3 in
            Alcotest.(check bool)
              (Printf.sprintf "%s gcc noise %.1f -> %.1f falls" scheme
                 p2.Sweep.noise_rate last.Sweep.noise_rate)
              true
              (p2.Sweep.noise_rate > last.Sweep.noise_rate)
          | [] -> Alcotest.fail "no points"))
    Figures23.schemes

let test_figures_summary_well_formed () =
  let t = Lazy.force figures in
  let summaries = Figures23.summarize t in
  Alcotest.(check int) "one summary per scheme"
    (List.length Figures23.schemes)
    (List.length summaries);
  List.iter
    (fun su ->
       Alcotest.(check bool) "hit@10% benchmarks counted" true
         (su.Figures23.su_hit_at_10pct_n >= 0
          && su.Figures23.su_hit_at_10pct_n <= 9))
    summaries

(* Figure 5 at moderate scale: relative claims only. *)
let test_fig5_net_beats_path_profile () =
  let rows = Fig5.compute ~scale:1.0 () in
  let avg = List.find (fun r -> r.Fig5.name = "Average") rows in
  let cell scheme delay =
    let _, _, c =
      List.find (fun (s, d, _) -> s = scheme && d = delay) avg.Fig5.cells
    in
    c
  in
  let net50 = cell "net" 50 and pp50 = cell "path-profile" 50 in
  Alcotest.(check bool)
    (Printf.sprintf "NET50 (%.1f%%) > PP50 (%.1f%%)" net50.Fig5.speedup_pct
       pp50.Fig5.speedup_pct)
    true
    (net50.Fig5.speedup_pct > pp50.Fig5.speedup_pct)

let test_fig5_compress_positive () =
  let rows = Fig5.compute ~scale:1.0 () in
  let compress = List.find (fun r -> r.Fig5.name = "compress") rows in
  let _, _, c =
    List.find (fun (s, d, _) -> s = "net" && d = 50) compress.Fig5.cells
  in
  Alcotest.(check bool)
    (Printf.sprintf "compress NET50 positive (%.1f%%)" c.Fig5.speedup_pct)
    true
    (c.Fig5.speedup_pct > 5.0 && not c.Fig5.bailed)

let test_fig5_gcc_bails () =
  let rows = Fig5.compute_all ~scale:1.0 () in
  List.iter
    (fun name ->
       let row = List.find (fun r -> r.Fig5.name = name) rows in
       let bails =
         List.exists (fun (_, _, c) -> c.Fig5.bailed) row.Fig5.cells
       in
       Alcotest.(check bool) (name ^ " bails at some delay") true bails)
    [ "gcc"; "go" ]

let test_jobs_invariance () =
  (* The --jobs fan-out must never change what is rendered, only how fast:
     byte-identical output at one domain and at many. *)
  let delays = [ 2; 10; 100 ] in
  Alcotest.(check string) "figures 2/3"
    (Figures23.render ~scale ~delays ~jobs:1 ~hit:true ~zoom:false ())
    (Figures23.render ~scale ~delays ~jobs:4 ~hit:true ~zoom:false ());
  Alcotest.(check string) "fig4"
    (Fig4.render ~scale ~jobs:1 ())
    (Fig4.render ~scale ~jobs:4 ());
  Alcotest.(check string) "fig5"
    (Fig5.render ~scale:1.0 ~jobs:1 ())
    (Fig5.render ~scale:1.0 ~jobs:4 ());
  let module A = Hotpath_experiments.Ablations in
  Alcotest.(check string) "net variants"
    (A.render_net_variants ~scale ~jobs:1 ())
    (A.render_net_variants ~scale ~jobs:4 ());
  Alcotest.(check string) "thresholds"
    (A.render_thresholds ~scale ~jobs:1 ())
    (A.render_thresholds ~scale ~jobs:4 ())

let test_runs_load_all_parallel () =
  Runs.clear_cache ();
  let sequential = Runs.load_all ~scale:0.02 () in
  Runs.clear_cache ();
  let parallel = Runs.load_all ~scale:0.02 ~jobs:4 () in
  Alcotest.(check int) "same length" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (a : Runs.run) (b : Runs.run) ->
       Alcotest.(check string) "same bench order" a.Runs.bench.Suite.b_name
         b.Runs.bench.Suite.b_name;
       Alcotest.(check (array int)) "same instances"
         a.Runs.recorded.Hotpath_trace.Recorder.instances
         b.Runs.recorded.Hotpath_trace.Recorder.instances)
    sequential parallel;
  Runs.clear_cache ()

let test_runs_cache () =
  let b = Suite.find_exn "compress" in
  let r1 = Runs.load ~scale:0.01 b and r2 = Runs.load ~scale:0.01 b in
  Alcotest.(check bool) "memoized" true (r1 == r2);
  Runs.clear_cache ();
  let r3 = Runs.load ~scale:0.01 b in
  Alcotest.(check bool) "fresh after clear" true (r1 != r3)

let suites =
  [
    ( "experiments.table1",
      [
        Alcotest.test_case "row count" `Quick test_table1_row_count;
        Alcotest.test_case "compress shape" `Quick test_table1_compress_shape;
        Alcotest.test_case "gcc shape" `Quick test_table1_gcc_shape;
        Alcotest.test_case "dominant band" `Quick test_table1_dominant_band;
        Alcotest.test_case "flow ratios" `Quick test_table1_flow_ratios;
      ] );
    ( "experiments.table2",
      [
        Alcotest.test_case "heads below paths" `Quick test_table2_heads_below_paths;
        Alcotest.test_case "ratio ordering" `Quick test_table2_ratio_ordering;
      ] );
    ( "experiments.fig4",
      [ Alcotest.test_case "counter-space ratios" `Quick test_fig4_ratios ] );
    ( "experiments.fig23",
      [
        Alcotest.test_case "NET ~ path-profile hit rates" `Quick
          test_fig2_net_matches_path_profile;
        Alcotest.test_case "hit declines with delay" `Quick test_fig2_hit_declines;
        Alcotest.test_case "noise declines" `Quick test_fig3_noise_declines;
        Alcotest.test_case "summary well-formed" `Quick test_figures_summary_well_formed;
      ] );
    ( "experiments.fig5",
      [
        Alcotest.test_case "NET beats path-profile" `Slow test_fig5_net_beats_path_profile;
        Alcotest.test_case "compress positive" `Slow test_fig5_compress_positive;
        Alcotest.test_case "gcc/go bail" `Slow test_fig5_gcc_bails;
      ] );
    ( "experiments.runs",
      [
        Alcotest.test_case "cache" `Quick test_runs_cache;
        Alcotest.test_case "parallel load_all identical" `Quick
          test_runs_load_all_parallel;
        Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance;
      ] );
  ]
