(* Tests for the online prediction schemes and the replay engine. *)

module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Recorder = Hotpath_trace.Recorder
module Scheme = Hotpath_prediction.Scheme
module Path_profile = Hotpath_prediction.Path_profile
module Net = Hotpath_prediction.Net
module Replay = Hotpath_prediction.Replay
module Prng = Hotpath_util.Prng

let dummy_program =
  let b = Cfg.Builder.create ~name:"dummy" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 Cfg.Exit;
  Cfg.Builder.finish b

let observe_pp t ~path_id ?(head = 0) ?(arrival = Path.Loop_head) ?(n_branches = 2) () =
  Path_profile.observe t ~head ~arrival ~path_id ~n_branches ~n_blocks:3

let observe_net (type a) (module N : Scheme.S with type t = a) (t : a) ~head ~path_id
    ?(arrival = Path.Loop_head) ?(n_branches = 2) ?(n_blocks = 3) () =
  N.observe t ~head ~arrival ~path_id ~n_branches ~n_blocks

(* ------------------------------------------------------------------ *)
(* Path-profile-based prediction                                       *)
(* ------------------------------------------------------------------ *)

let test_pp_predicts_at_delay () =
  let t = Path_profile.create ~delay:3 ~program:dummy_program in
  Alcotest.(check (option int)) "1st" None (observe_pp t ~path_id:7 ());
  Alcotest.(check (option int)) "2nd" None (observe_pp t ~path_id:7 ());
  Alcotest.(check (option int)) "3rd fires" (Some 7) (observe_pp t ~path_id:7 ());
  (* Past the threshold the path keeps being offered (re-prediction after a
     cache flush); consumers dedupe. *)
  Alcotest.(check (option int)) "4th re-offers" (Some 7) (observe_pp t ~path_id:7 ())

let test_pp_counts_paths_independently () =
  let t = Path_profile.create ~delay:2 ~program:dummy_program in
  Alcotest.(check (option int)) "a1" None (observe_pp t ~path_id:1 ());
  Alcotest.(check (option int)) "b1" None (observe_pp t ~path_id:2 ());
  Alcotest.(check (option int)) "a2 fires" (Some 1) (observe_pp t ~path_id:1 ());
  Alcotest.(check (option int)) "b2 fires" (Some 2) (observe_pp t ~path_id:2 ())

let test_pp_counter_space_and_ops () =
  let t = Path_profile.create ~delay:100 ~program:dummy_program in
  ignore (observe_pp t ~path_id:1 ~n_branches:4 ());
  ignore (observe_pp t ~path_id:2 ~n_branches:6 ());
  ignore (observe_pp t ~path_id:1 ~n_branches:4 ());
  Alcotest.(check int) "one counter per distinct path" 2
    (Path_profile.counter_space t);
  (* Ops: one shift per branch plus one table update per instance. *)
  Alcotest.(check int) "ops" (5 + 7 + 5) (Path_profile.profiling_ops t);
  Alcotest.(check int) "no collection cost" 0 (Path_profile.collection_ops t)

let test_pp_ignores_arrival_kind () =
  let t = Path_profile.create ~delay:2 ~program:dummy_program in
  ignore (observe_pp t ~path_id:3 ~arrival:Path.Entry ());
  Alcotest.(check (option int)) "continuation arrival counted" (Some 3)
    (observe_pp t ~path_id:3 ~arrival:Path.Continuation ())

let test_pp_invalid_delay () =
  Alcotest.check_raises "delay 0"
    (Invalid_argument "Path_profile.create: delay must be >= 1") (fun () ->
      ignore (Path_profile.create ~delay:0 ~program:dummy_program))

(* ------------------------------------------------------------------ *)
(* NET                                                                 *)
(* ------------------------------------------------------------------ *)

let test_net_predicts_next_tail () =
  let t = Net.create ~delay:3 ~program:dummy_program in
  let obs = observe_net (module Net) t ~head:5 in
  Alcotest.(check (option int)) "1st" None (obs ~path_id:10 ());
  Alcotest.(check (option int)) "2nd" None (obs ~path_id:11 ());
  (* Third arrival at the head trips the counter; the tail executing right
     now is predicted. *)
  Alcotest.(check (option int)) "3rd fires with current tail" (Some 12)
    (obs ~path_id:12 ())

let test_net_ignores_non_loop_heads () =
  let t = Net.create ~delay:1 ~program:dummy_program in
  let obs = observe_net (module Net) t ~head:5 in
  Alcotest.(check (option int)) "entry ignored" None
    (obs ~path_id:1 ~arrival:Path.Entry ());
  Alcotest.(check (option int)) "continuation ignored" None
    (obs ~path_id:1 ~arrival:Path.Continuation ());
  Alcotest.(check int) "no ops for ignored arrivals" 0 (Net.profiling_ops t);
  Alcotest.(check (option int)) "loop head counts" (Some 1) (obs ~path_id:1 ())

let test_net_rearms () =
  let t = Net.create ~delay:2 ~program:dummy_program in
  let obs = observe_net (module Net) t ~head:5 in
  ignore (obs ~path_id:1 ());
  Alcotest.(check (option int)) "first trip" (Some 2) (obs ~path_id:2 ());
  ignore (obs ~path_id:3 ());
  Alcotest.(check (option int)) "re-armed second trip" (Some 4) (obs ~path_id:4 ())

let test_net_counter_space () =
  let t = Net.create ~delay:10 ~program:dummy_program in
  ignore (observe_net (module Net) t ~head:1 ~path_id:1 ());
  ignore (observe_net (module Net) t ~head:2 ~path_id:2 ());
  ignore (observe_net (module Net) t ~head:1 ~path_id:3 ());
  Alcotest.(check int) "one counter per head" 2 (Net.counter_space t)

let test_net_collection_ops () =
  let t = Net.create ~delay:1 ~program:dummy_program in
  ignore (observe_net (module Net) t ~head:1 ~path_id:1 ~n_blocks:7 ());
  (* Tripping only offers the prediction; the driver charges collection
     when it accepts (one breakpoint per block of the collected tail). *)
  Alcotest.(check int) "offer alone costs nothing" 0 (Net.collection_ops t);
  Net.collect t ~n_blocks:7;
  Alcotest.(check int) "collection ops" 7 (Net.collection_ops t);
  Alcotest.(check int) "profiling ops" 1 (Net.profiling_ops t)

let test_net_once_retires_head () =
  let module O = Net.Net_once in
  let t = O.create ~delay:1 ~program:dummy_program in
  let obs = observe_net (module O) t ~head:5 in
  Alcotest.(check (option int)) "fires once" (Some 1) (obs ~path_id:1 ());
  Alcotest.(check (option int)) "retired" None (obs ~path_id:2 ());
  Alcotest.(check (option int)) "still retired" None (obs ~path_id:3 ())

let test_let_predicts_previous_tail () =
  let module L = Net.Last_executed_tail in
  let t = L.create ~delay:2 ~program:dummy_program in
  let obs = observe_net (module L) t ~head:5 in
  Alcotest.(check (option int)) "1st" None (obs ~path_id:10 ());
  (* Trips on the second arrival and predicts the tail seen before. *)
  Alcotest.(check (option int)) "previous tail predicted" (Some 10)
    (obs ~path_id:11 ())

let test_let_falls_back_to_current () =
  let module L = Net.Last_executed_tail in
  let t = L.create ~delay:1 ~program:dummy_program in
  let obs = observe_net (module L) t ~head:5 in
  (* No history at the first trip: the current tail is used. *)
  Alcotest.(check (option int)) "fallback" (Some 42) (obs ~path_id:42 ())

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let record_simple ?(iterations = 12) () =
  let program, behavior, ids = Fixtures.simple_loop ~iterations () in
  (Recorder.record program behavior ~rng:(Prng.create ~seed:1), ids)

let test_replay_path_profile_semantics () =
  let r, _ = record_simple ~iterations:12 () in
  (* Instances: entry(1), loop x10, exit(1).  Delay 3: the loop path is
     predicted at its 3rd execution; 7 later executions are captured. *)
  let o = Replay.run (module Path_profile) ~delay:3 r in
  Alcotest.(check int) "total" 12 o.Replay.total_instances;
  Alcotest.(check int) "one prediction" 1 (Array.length o.Replay.predictions);
  let p = o.Replay.predictions.(0) in
  Alcotest.(check int) "fired at instance 3 (0-based)" 3 p.Replay.at_instance;
  Alcotest.(check int) "captured 7" 7 o.Replay.captured.(p.Replay.target);
  Alcotest.(check int) "profiled 5" 5 o.Replay.profiled_instances;
  Alcotest.(check int) "captured total" 7 o.Replay.captured_instances

let test_replay_freq_matches_recorder () =
  let r, _ = record_simple () in
  let o = Replay.run (module Path_profile) ~delay:5 r in
  Alcotest.(check (array int)) "freq" (Recorder.frequencies r) o.Replay.freq

let test_replay_net_on_loop () =
  let r, _ = record_simple ~iterations:12 () in
  (* NET delay 3: loop-head arrivals are instances 1..11; the 3rd loop-head
     arrival trips and predicts the tail executing then (the loop path). *)
  let o = Replay.run (module Net) ~delay:3 r in
  Alcotest.(check int) "one prediction" 1 (Array.length o.Replay.predictions);
  Alcotest.(check int) "fired at instance 3" 3
    o.Replay.predictions.(0).Replay.at_instance;
  Alcotest.(check int) "captured 7" 7 o.Replay.captured_instances

let test_replay_conservation () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  let r = Recorder.record ~max_steps:20_000 program behavior ~rng:(Prng.create ~seed:4) in
  List.iter
    (fun delay ->
       let o = Replay.run (module Net) ~delay r in
       Alcotest.(check int) "profiled + captured = total" o.Replay.total_instances
         (o.Replay.profiled_instances + o.Replay.captured_instances))
    [ 1; 2; 5; 50; 1_000 ]

let test_replay_counter_space_bounds () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  let r = Recorder.record ~max_steps:20_000 program behavior ~rng:(Prng.create ~seed:4) in
  let net = Replay.run (module Net) ~delay:10 r in
  let pp = Replay.run (module Path_profile) ~delay:10 r in
  Alcotest.(check bool) "net counters <= loop heads" true
    (net.Replay.counter_space <= Recorder.unique_loop_heads r);
  Alcotest.(check bool) "pp counters <= distinct paths" true
    (pp.Replay.counter_space <= Recorder.num_paths r);
  Alcotest.(check bool) "net uses fewer counters" true
    (net.Replay.counter_space <= pp.Replay.counter_space)

let test_replay_determinism () =
  let program, behavior, _ = Fixtures.indirect_loop () in
  let r = Recorder.record ~max_steps:5_000 program behavior ~rng:(Prng.create ~seed:4) in
  let o1 = Replay.run (module Net) ~delay:7 r in
  let o2 = Replay.run (module Net) ~delay:7 r in
  Alcotest.(check (array int)) "same predicted_at" o1.Replay.predicted_at
    o2.Replay.predicted_at

let test_replay_predicted_paths_sorted () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  let r = Recorder.record ~max_steps:20_000 program behavior ~rng:(Prng.create ~seed:4) in
  let o = Replay.run (module Net) ~delay:5 r in
  let ids = Replay.predicted_paths o in
  Alcotest.(check (list int)) "ascending" (List.sort Int.compare ids) ids;
  Alcotest.(check int) "matches prediction count" (Array.length o.Replay.predictions)
    (List.length ids)

let test_net_dropped_offer_costs_nothing () =
  let t = Net.create ~delay:1 ~program:dummy_program in
  (* The head trips twice on the same tail; the driver accepts only the
     first offer (the target is already predicted at the second), so only
     the accepted one is collected. *)
  Alcotest.(check (option int)) "first trip" (Some 9)
    (observe_net (module Net) t ~head:1 ~path_id:9 ~n_blocks:4 ());
  Net.collect t ~n_blocks:4;
  Alcotest.(check (option int)) "second trip, same tail" (Some 9)
    (observe_net (module Net) t ~head:1 ~path_id:9 ~n_blocks:4 ());
  Alcotest.(check int) "charged once" 4 (Net.collection_ops t)

let sum_predicted_blocks r (o : Replay.outcome) =
  Array.fold_left
    (fun acc (p : Replay.prediction) ->
       acc
       + Array.length
           (Hotpath_trace.Path_table.path r.Recorder.table p.Replay.target).Path.blocks)
    0 o.Replay.predictions

let test_replay_collection_matches_predictions () =
  (* Accounting invariant for every NET variant: collection ops are one
     breakpoint per block of each *accepted* prediction, no matter how
     often the heads re-trip on already-predicted tails. *)
  let r, _ = record_simple ~iterations:12 () in
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  let r2 =
    Recorder.record ~max_steps:20_000 program behavior ~rng:(Prng.create ~seed:4)
  in
  List.iter
    (fun recorded ->
       List.iter
         (fun delay ->
            List.iter
              (fun scheme ->
                 let o = Replay.run scheme ~delay recorded in
                 Alcotest.(check int) "collection = blocks of accepted predictions"
                   (sum_predicted_blocks recorded o)
                   o.Replay.collection_ops)
              [
                (module Net : Scheme.S);
                (module Net.Net_once);
                (module Net.Last_executed_tail);
              ])
         [ 1; 2; 5; 50 ])
    [ r; r2 ]

let prop_replay_invariants =
  QCheck.Test.make ~name:"replay invariants on random indirect loops" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range 1 40))
    (fun (seed, delay) ->
       let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.03 () in
       let r =
         Recorder.record ~max_steps:4_000 program behavior
           ~rng:(Prng.create ~seed)
       in
       let check scheme =
         let o = Replay.run scheme ~delay r in
         o.Replay.profiled_instances + o.Replay.captured_instances
         = o.Replay.total_instances
         && Array.for_all2 (fun c f -> c >= 0 && c <= f) o.Replay.captured o.Replay.freq
         && Array.fold_left ( + ) 0 o.Replay.captured = o.Replay.captured_instances
         && Array.for_all
              (fun (p : Replay.prediction) ->
                 o.Replay.predicted_at.(p.Replay.target) = p.Replay.at_instance)
              o.Replay.predictions
       in
       check (module Net : Scheme.S) && check (module Path_profile : Scheme.S))

let suites =
  [
    ( "prediction.path_profile",
      [
        Alcotest.test_case "predicts at delay" `Quick test_pp_predicts_at_delay;
        Alcotest.test_case "independent counters" `Quick
          test_pp_counts_paths_independently;
        Alcotest.test_case "counter space and ops" `Quick test_pp_counter_space_and_ops;
        Alcotest.test_case "arrival-kind agnostic" `Quick test_pp_ignores_arrival_kind;
        Alcotest.test_case "invalid delay" `Quick test_pp_invalid_delay;
      ] );
    ( "prediction.net",
      [
        Alcotest.test_case "predicts next executing tail" `Quick
          test_net_predicts_next_tail;
        Alcotest.test_case "ignores non-loop heads" `Quick test_net_ignores_non_loop_heads;
        Alcotest.test_case "re-arms" `Quick test_net_rearms;
        Alcotest.test_case "counter space" `Quick test_net_counter_space;
        Alcotest.test_case "collection ops" `Quick test_net_collection_ops;
        Alcotest.test_case "dropped offer costs nothing" `Quick
          test_net_dropped_offer_costs_nothing;
        Alcotest.test_case "net-once retires" `Quick test_net_once_retires_head;
        Alcotest.test_case "LET previous tail" `Quick test_let_predicts_previous_tail;
        Alcotest.test_case "LET fallback" `Quick test_let_falls_back_to_current;
      ] );
    ( "prediction.replay",
      [
        Alcotest.test_case "path-profile semantics" `Quick
          test_replay_path_profile_semantics;
        Alcotest.test_case "freq matches recorder" `Quick test_replay_freq_matches_recorder;
        Alcotest.test_case "net on loop" `Quick test_replay_net_on_loop;
        Alcotest.test_case "conservation" `Quick test_replay_conservation;
        Alcotest.test_case "counter-space bounds" `Quick test_replay_counter_space_bounds;
        Alcotest.test_case "determinism" `Quick test_replay_determinism;
        Alcotest.test_case "collection matches predictions" `Quick
          test_replay_collection_matches_predictions;
        Alcotest.test_case "predicted paths sorted" `Quick
          test_replay_predicted_paths_sorted;
        QCheck_alcotest.to_alcotest prop_replay_invariants;
      ] );
  ]
