(* Differential tests for the observability layer: events are observation
   only.  For every scheme × seed × delay, replay with an enabled sink
   must produce a byte-identical outcome to replay with no events at all,
   and the final window sample's cumulative fields must equal the
   outcome's totals.  Also covers the JSON-Lines round trip and the
   counter registry. *)

module Events = Hotpath_util.Events
module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Replay = Hotpath_prediction.Replay
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Hot_set = Hotpath_metrics.Hot_set
module Prng = Hotpath_util.Prng

(* ------------------------------------------------------------------ *)
(* JSON-Lines round trip                                               *)
(* ------------------------------------------------------------------ *)

let value_eq a b =
  match (a, b) with
  | Events.Float x, Events.Float y -> Float.equal x y
  | _ -> a = b

let fields_eq a b =
  List.length a = List.length b
  && List.for_all2 (fun (n, v) (n', v') -> n = n' && value_eq v v') a b

let parse_ok line =
  match Events.parse_line line with
  | Ok fields -> fields
  | Error e -> Alcotest.failf "parse_line %S: %s" line e

let test_roundtrip_scalars () =
  let buf = Buffer.create 256 in
  let sink = Events.of_buffer buf in
  let fields =
    [ ("i", Events.Int 42); ("neg", Events.Int (-7));
      ("f", Events.Float 3.5); ("tiny", Events.Float 1e-9);
      ("s", Events.Str "plain"); ("b", Events.Bool true);
      ("b2", Events.Bool false) ]
  in
  Events.emit sink ~kind:"test.kind" fields;
  let line = Buffer.contents buf in
  Alcotest.(check bool) "one newline, at the end" true
    (String.length line > 0
    && line.[String.length line - 1] = '\n'
    && not (String.contains (String.sub line 0 (String.length line - 1)) '\n'));
  let parsed = parse_ok line in
  Alcotest.(check (option string)) "kind" (Some "test.kind")
    (Events.kind parsed);
  Alcotest.(check bool) "fields survive" true
    (fields_eq (("ev", Events.Str "test.kind") :: fields) parsed)

let test_roundtrip_string_escapes () =
  let buf = Buffer.create 256 in
  let sink = Events.of_buffer buf in
  let tricky = "quote\" back\\slash \t tab \n newline \x01 ctl" in
  Events.emit sink ~kind:"esc" [ ("s", Events.Str tricky) ];
  let parsed = parse_ok (Buffer.contents buf) in
  Alcotest.(check (option string)) "escaped string survives" (Some tricky)
    (Events.find_str parsed "s")

let test_parse_rejects_garbage () =
  List.iter
    (fun line ->
       match Events.parse_line line with
       | Ok _ -> Alcotest.failf "accepted %S" line
       | Error _ -> ())
    [ ""; "not json"; "{\"ev\":"; "{\"ev\":\"x\""; "{\"ev\":\"x\",}";
      "[1,2]"; "{\"a\":{\"nested\":1}}" ]

let test_null_sink_counts_nothing () =
  Events.emit Events.null ~kind:"dropped" [ ("x", Events.Int 1) ];
  Alcotest.(check int) "null emits nothing" 0 (Events.emitted Events.null);
  Alcotest.(check bool) "is_null" true (Events.is_null Events.null);
  let sink = Events.of_buffer (Buffer.create 16) in
  Alcotest.(check bool) "buffer sink is live" false (Events.is_null sink)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_semantics () =
  Events.Registry.reset ();
  let c = Events.Registry.counter "test.counter" in
  Alcotest.(check int) "starts at 0" 0 (Events.Registry.value c);
  Events.Registry.incr c;
  Events.Registry.add c 9;
  Alcotest.(check int) "value" 10 (Events.Registry.value c);
  Events.Registry.add c (-4);
  Alcotest.(check int) "gauge down" 6 (Events.Registry.value c);
  Alcotest.(check int) "high water sticks" 10 (Events.Registry.high_water c);
  Events.Registry.set c 3;
  Alcotest.(check int) "set" 3 (Events.Registry.value c);
  Alcotest.(check int) "hw unchanged by lower set" 10
    (Events.Registry.high_water c);
  let c' = Events.Registry.counter "test.counter" in
  Events.Registry.incr c';
  Alcotest.(check int) "interned: same counter" 4 (Events.Registry.value c);
  let snap = Events.Registry.snapshot () in
  Alcotest.(check bool) "snapshot holds (value, hw)" true
    (List.assoc "test.counter" snap = (4, 10));
  Events.Registry.reset ()

let test_registry_snapshot_event () =
  Events.Registry.reset ();
  let c = Events.Registry.counter "snap.a" in
  Events.Registry.set c 17;
  let buf = Buffer.create 64 in
  Events.registry_snapshot (Events.of_buffer buf);
  let parsed = parse_ok (Buffer.contents buf) in
  Alcotest.(check (option string)) "kind" (Some "registry")
    (Events.kind parsed);
  Alcotest.(check (option int)) "value field" (Some 17)
    (Events.find_int parsed "snap.a");
  Alcotest.(check (option int)) "hw field" (Some 17)
    (Events.find_int parsed "snap.a.hw");
  Events.Registry.reset ()

(* ------------------------------------------------------------------ *)
(* Differential: events on vs off                                      *)
(* ------------------------------------------------------------------ *)

let schemes : (string * Scheme.packed) list =
  [ ("net", (module Net)); ("net-once", (module Net.Net_once));
    ("let", (module Net.Last_executed_tail));
    ("path-profile", (module Path_profile)) ]

let seeds = [ 1; 4; 9 ]

let delays = [ 1; 3; 10; 50 ]

let recording seed =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  Recorder.record ~max_steps:8_000 program behavior ~rng:(Prng.create ~seed)

let outcome_equal (a : Replay.outcome) (b : Replay.outcome) =
  a.Replay.scheme_name = b.Replay.scheme_name
  && a.Replay.delay = b.Replay.delay
  && a.Replay.total_instances = b.Replay.total_instances
  && a.Replay.predictions = b.Replay.predictions
  && a.Replay.predicted_at = b.Replay.predicted_at
  && a.Replay.freq = b.Replay.freq
  && a.Replay.captured = b.Replay.captured
  && a.Replay.profiled_instances = b.Replay.profiled_instances
  && a.Replay.captured_instances = b.Replay.captured_instances
  && a.Replay.counter_space = b.Replay.counter_space
  && a.Replay.profiling_ops = b.Replay.profiling_ops
  && a.Replay.collection_ops = b.Replay.collection_ops

let parse_all buf =
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map parse_ok

let int_field what fields name =
  match Events.find_int fields name with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing int field %S" what name

(* Last replay.window sample of one (scheme, delay) lane. *)
let last_window events ~scheme ~delay =
  let lane =
    List.filter
      (fun f ->
         Events.kind f = Some "replay.window"
         && Events.find_str f "scheme" = Some scheme
         && Events.find_int f "delay" = Some delay)
      events
  in
  match List.rev lane with
  | [] -> Alcotest.failf "no replay.window samples for %s delay=%d" scheme delay
  | last :: _ -> (List.length lane, last)

let check_final_window ~what ~scheme (o : Replay.outcome) events =
  let n, last = last_window events ~scheme ~delay:o.Replay.delay in
  let f = int_field what last in
  Alcotest.(check int) (what ^ ": final seq") (n - 1) (f "seq");
  Alcotest.(check int) (what ^ ": upto = total") o.Replay.total_instances
    (f "upto");
  Alcotest.(check int) (what ^ ": predictions")
    (Array.length o.Replay.predictions) (f "predictions");
  Alcotest.(check int) (what ^ ": profiled") o.Replay.profiled_instances
    (f "profiled");
  Alcotest.(check int) (what ^ ": captured") o.Replay.captured_instances
    (f "captured");
  Alcotest.(check int) (what ^ ": profiling_ops") o.Replay.profiling_ops
    (f "profiling_ops");
  Alcotest.(check int) (what ^ ": collection_ops") o.Replay.collection_ops
    (f "collection_ops");
  Alcotest.(check int) (what ^ ": counter_space") o.Replay.counter_space
    (f "counter_space");
  Alcotest.(check bool) (what ^ ": hw >= final") true
    (f "counter_space_hw" >= f "counter_space")

let test_differential_run () =
  List.iter
    (fun seed ->
       let r = recording seed in
       List.iter
         (fun (name, scheme) ->
            List.iter
              (fun delay ->
                 let plain = Replay.run scheme ~delay r in
                 let buf = Buffer.create 4096 in
                 let ev =
                   Replay.events ~window:1_000 (Events.of_buffer buf)
                 in
                 let sampled = Replay.run ~events:ev scheme ~delay r in
                 Alcotest.(check bool)
                   (Printf.sprintf "%s seed=%d delay=%d identical" name seed
                      delay)
                   true
                   (outcome_equal plain sampled);
                 let what = Printf.sprintf "%s/%d/%d" name seed delay in
                 check_final_window ~what ~scheme:name plain
                   (parse_all buf))
              delays)
         schemes)
    seeds

let test_differential_run_many () =
  let r = recording 4 in
  List.iter
    (fun (name, scheme) ->
       let plain = List.map (fun d -> Replay.run scheme ~delay:d r) delays in
       let buf = Buffer.create 4096 in
       let ev = Replay.events ~window:700 (Events.of_buffer buf) in
       let sampled = Replay.run_many ~events:ev scheme ~delays r in
       List.iter2
         (fun a b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s delay=%d run_many identical" name
                 a.Replay.delay)
              true (outcome_equal a b))
         plain sampled;
       (* Every lane samples into the same stream; each final window must
          still reconcile with its own outcome. *)
       let events = parse_all buf in
       List.iter
         (fun o ->
            check_final_window
              ~what:(Printf.sprintf "%s many/%d" name o.Replay.delay)
              ~scheme:name o events)
         plain)
    schemes

let test_differential_stream () =
  let r = recording 9 in
  let blob = Serialize.Stream.to_string ~chunk_instances:512 r in
  List.iter
    (fun (name, scheme) ->
       let open_reader () =
         match Serialize.Stream.open_string blob with
         | Ok rd -> rd
         | Error e -> Alcotest.failf "open_string: %s" e
       in
       let plain =
         match Replay.run_stream scheme ~delay:5 (open_reader ()) with
         | Ok o -> o
         | Error e -> Alcotest.failf "plain stream replay: %s" e
       in
       let buf = Buffer.create 4096 in
       let ev = Replay.events ~window:900 (Events.of_buffer buf) in
       match Replay.run_stream ~events:ev scheme ~delay:5 (open_reader ()) with
       | Error e -> Alcotest.failf "sampled stream replay: %s" e
       | Ok sampled ->
         Alcotest.(check bool) (name ^ ": stream identical") true
           (outcome_equal plain sampled);
         let events = parse_all buf in
         check_final_window ~what:(name ^ " stream") ~scheme:name plain events;
         (* Streamed replay cannot know the hot set mid-pass. *)
         let _, last = last_window events ~scheme:name ~delay:5 in
         Alcotest.(check (option int)) (name ^ ": no hits field") None
           (Events.find_int last "hits"))
    schemes

let test_hits_noise_partition_captured () =
  let r = recording 1 in
  let plain = Replay.run (module Net) ~delay:3 r in
  let hot = Hot_set.of_outcome plain ~threshold:0.001 in
  let buf = Buffer.create 4096 in
  let ev =
    Replay.events ~window:500 ~is_hot:(Hot_set.is_hot hot)
      (Events.of_buffer buf)
  in
  let o = Replay.run ~events:ev (module Net) ~delay:3 r in
  Alcotest.(check bool) "is_hot does not perturb outcome" true
    (outcome_equal plain o);
  let events = parse_all buf in
  let _, last = last_window events ~scheme:"net" ~delay:3 in
  let hits = int_field "hits/noise" last "hits" in
  let noise = int_field "hits/noise" last "noise" in
  Alcotest.(check int) "hits + noise = captured" o.Replay.captured_instances
    (hits + noise)

let test_null_sink_events_are_free () =
  let r = recording 1 in
  let plain = Replay.run (module Net) ~delay:3 r in
  let ev = Replay.events ~window:500 Events.null in
  let o = Replay.run ~events:ev (module Net) ~delay:3 r in
  Alcotest.(check bool) "null-sink events identical" true
    (outcome_equal plain o);
  Alcotest.(check int) "nothing emitted" 0 (Events.emitted Events.null)

let test_short_trace_still_samples_once () =
  (* A trace shorter than one window must still emit exactly one final
     sample per lane, reconciling to the totals. *)
  let program, behavior, _ = Fixtures.simple_loop ~iterations:12 () in
  let r = Recorder.record program behavior ~rng:(Prng.create ~seed:1) in
  let buf = Buffer.create 512 in
  let ev = Replay.events ~window:1_000_000 (Events.of_buffer buf) in
  let o = Replay.run ~events:ev (module Net) ~delay:3 r in
  let events = parse_all buf in
  let n, _ = last_window events ~scheme:"net" ~delay:3 in
  Alcotest.(check int) "exactly one window" 1 n;
  check_final_window ~what:"short trace" ~scheme:"net" o events

let test_events_window_validation () =
  Alcotest.check_raises "window 0 rejected"
    (Invalid_argument "Replay.events: window must be >= 1") (fun () ->
      ignore (Replay.events ~window:0 Events.null))

let suites =
  [ ( "events.stream",
      [ Alcotest.test_case "scalar round trip" `Quick test_roundtrip_scalars;
        Alcotest.test_case "string escapes survive" `Quick
          test_roundtrip_string_escapes;
        Alcotest.test_case "garbage rejected" `Quick test_parse_rejects_garbage;
        Alcotest.test_case "null sink inert" `Quick
          test_null_sink_counts_nothing ] );
    ( "events.registry",
      [ Alcotest.test_case "counter semantics" `Quick test_registry_semantics;
        Alcotest.test_case "snapshot event" `Quick
          test_registry_snapshot_event ] );
    ( "events.differential",
      [ Alcotest.test_case "run: on = off, final window = totals" `Quick
          test_differential_run;
        Alcotest.test_case "run_many: multiplexed lanes reconcile" `Quick
          test_differential_run_many;
        Alcotest.test_case "run_stream: on = off, no hits mid-pass" `Quick
          test_differential_stream;
        Alcotest.test_case "hits + noise = captured" `Quick
          test_hits_noise_partition_captured;
        Alcotest.test_case "null sink is free" `Quick
          test_null_sink_events_are_free;
        Alcotest.test_case "short trace: one final sample" `Quick
          test_short_trace_still_samples_once;
        Alcotest.test_case "window validation" `Quick
          test_events_window_validation ] ) ]
