(* The static-estimation stack (ISSUE 10): Wu–Larus branch heuristics,
   block/edge frequency propagation, the zero-profiling [static] scheme,
   and profile-guided k selection.

   Contracts:

   - Probabilities are distributions: at every block with successors the
     heuristic successor probabilities sum to 1 (to 1e-9), across every
     hand-built program and the whole benchmark suite.

   - Frequencies conserve flow: away from the procedure entry, capped
     loop heads, and irreducible (degraded) procedures, a block's
     frequency equals the sum of its incoming edge frequencies.

   - Degradation is surfaced, not silent: irreducible regions solve via
     the bounded fallback and lint as P113; a cyclic probability that
     would exceed [Freq.cp_cap] is clamped and the head is listed.

   - The static scheme is genuinely zero-profiling: no counters, no
     profiling ops, delay-inert, deterministic, and every prediction
     lands on a statically-armed head of a lint-clean trace.

   - kauto reduces: where Kselect chooses k = 1, net-kauto and
     path-profile-kauto observe exactly like net and path-profile. *)

module Cfg = Hotpath_cfg.Cfg
module Diag = Hotpath_analysis.Diag
module Procgraph = Hotpath_analysis.Procgraph
module Dominators = Hotpath_analysis.Dominators
module Loops = Hotpath_analysis.Loops
module Bounds = Hotpath_analysis.Bounds
module Heuristics = Hotpath_analysis.Heuristics
module Freq = Hotpath_analysis.Freq
module Kselect = Hotpath_analysis.Kselect
module Lint = Hotpath_analysis.Lint
module Trace_lint = Hotpath_trace.Lint
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Scheme = Hotpath_prediction.Scheme
module Schemes = Hotpath_prediction.Schemes
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Static = Hotpath_prediction.Static
module Net_kauto = Hotpath_prediction.Net_kauto
module Path_profile_kauto = Hotpath_prediction.Path_profile_kauto
module Replay = Hotpath_prediction.Replay
module Suite = Hotpath_workloads.Suite
module Stats = Hotpath_util.Stats

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags

let check_feq name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g ~ %.12g" name expected got)
    true
    (Float.abs (expected -. got) <= 1e-9 *. Float.max 1.0 (Float.abs expected))

(* One small recording per benchmark, shared across the suite. *)
let recordings =
  lazy (List.map (fun b -> (b.Suite.b_name, Suite.record ~scale:0.02 b)) Suite.all)

(* ------------------------------------------------------------------ *)
(* Hand-built programs                                                 *)
(* ------------------------------------------------------------------ *)

(* 0: if, 1/2: arms, 3: loop branch back to 0, 4: exit. *)
let diamond_loop () =
  let b = Cfg.Builder.create ~name:"diamond" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Branch { taken = b2; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b3);
  Cfg.Builder.set_term b b2 (Cfg.Jump b3);
  Cfg.Builder.set_term b b3 (Cfg.Branch { taken = b0; fallthrough = b4 });
  Cfg.Builder.set_term b b4 Cfg.Exit;
  Cfg.Builder.finish b

(* Loop-free diamond: 0 branches to 1/2, both join at 3, exit. *)
let loop_free () =
  let b = Cfg.Builder.create ~name:"loopfree" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Branch { taken = b2; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b3);
  Cfg.Builder.set_term b b2 (Cfg.Jump b3);
  Cfg.Builder.set_term b b3 Cfg.Exit;
  Cfg.Builder.finish b

(* A doubly-latched loop: both 1 and 2 branch back to head 0.  Two
   back-edge branches at >= 0.88 each put the raw cyclic probability at
   >= 0.88 + 0.12 * 0.88 = 0.9856 > cp_cap, forcing the cap. *)
let double_latch () =
  let b = Cfg.Builder.create ~name:"doublelatch" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Branch { taken = b0; fallthrough = b2 });
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b0; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Exit;
  Cfg.Builder.finish b

(* The cycle {1,2} is entered at both 1 and 2: irreducible. *)
let irreducible () =
  let b = Cfg.Builder.create ~name:"irreducible" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Branch { taken = b2; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b1; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Exit;
  Cfg.Builder.finish b

(* [depth] reducible nested loops: heads H1..Hn chain inward, latches
   Ln..L1 branch back to their own head or fall outward.  Depth beyond
   Lint.static_depth_threshold must draw P113 while staying reducible
   (no P110). *)
let deep_nest ~depth =
  let b = Cfg.Builder.create ~name:"deepnest" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let heads = Array.init depth (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:1) in
  let latches =
    Array.init depth (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:1)
  in
  let exit = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  for i = 0 to depth - 1 do
    Cfg.Builder.set_term b heads.(i)
      (Cfg.Jump (if i = depth - 1 then latches.(depth - 1) else heads.(i + 1)));
    Cfg.Builder.set_term b latches.(i)
      (Cfg.Branch
         {
           taken = heads.(i);
           fallthrough = (if i = 0 then exit else latches.(i - 1));
         })
  done;
  Cfg.Builder.set_term b exit Cfg.Exit;
  Cfg.Builder.finish b

let analyses program ~proc =
  let g = Procgraph.build program ~proc in
  let dom = Dominators.compute g in
  let loops = Loops.analyze dom in
  (g, loops, Heuristics.analyze g loops)

(* ------------------------------------------------------------------ *)
(* Heuristics                                                          *)
(* ------------------------------------------------------------------ *)

let test_combine () =
  check_feq "0.5 is the identity" 0.7 (Heuristics.combine 0.5 0.7);
  check_feq "commutes" (Heuristics.combine 0.8 0.6) (Heuristics.combine 0.6 0.8);
  Alcotest.(check bool) "agreeing evidence strengthens" true
    (Heuristics.combine 0.88 0.8 > 0.88);
  Alcotest.(check bool) "opposing evidence weakens" true
    (Heuristics.combine 0.88 0.2 < 0.88)

let test_diamond_heuristics () =
  let program = diamond_loop () in
  let _, _, h = analyses program ~proc:0 in
  (* The latch 3 takes its back edge: loop-branch evidence, possibly
     reinforced by loop-exit (the fallthrough leaves the loop). *)
  let latch =
    List.find (fun br -> br.Heuristics.br_block = 3) (Heuristics.branches h)
  in
  Alcotest.(check bool) "loop-branch fired" true
    (List.mem Heuristics.Loop_branch latch.Heuristics.br_fired);
  Alcotest.(check bool) "latch taken-prob >= table confidence" true
    (latch.Heuristics.br_taken_prob
     >= Heuristics.confidence Heuristics.Loop_branch -. 1e-9);
  (* The body if at 0 has symmetric arms: only the fallback applies, so
     the forward branch leans not-taken. *)
  let body =
    List.find (fun br -> br.Heuristics.br_block = 0) (Heuristics.branches h)
  in
  Alcotest.(check bool) "body if leans not-taken" true
    (body.Heuristics.br_taken_prob < 0.5);
  Alcotest.(check bool) "probabilities stay in (0,1)" true
    (List.for_all
       (fun br ->
          br.Heuristics.br_taken_prob > 0.0 && br.Heuristics.br_taken_prob < 1.0)
       (Heuristics.branches h))

let check_distributions name program =
  for proc = 0 to Cfg.num_procs program - 1 do
    let g, _, h =
      let g = Procgraph.build program ~proc in
      let dom = Dominators.compute g in
      let loops = Loops.analyze dom in
      (g, loops, Heuristics.analyze g loops)
    in
    for local = 0 to Procgraph.size g - 1 do
      let b = Procgraph.global g local in
      let probs = Heuristics.succ_probs h b in
      Alcotest.(check int)
        (Printf.sprintf "%s b%d: one prob per graph successor" name b)
        (Array.length (Procgraph.succ g local))
        (List.length probs);
      if probs <> [] then begin
        let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 probs in
        check_feq (Printf.sprintf "%s b%d: probs sum to 1" name b) 1.0 total;
        Alcotest.(check bool)
          (Printf.sprintf "%s b%d: probs positive" name b)
          true
          (List.for_all (fun (_, p) -> p > 0.0) probs)
      end
    done
  done

let test_distributions_hand_programs () =
  List.iter
    (fun (name, program) -> check_distributions name program)
    [
      ("diamond", diamond_loop ()); ("loop-free", loop_free ());
      ("double-latch", double_latch ()); ("irreducible", irreducible ());
      ("deep-nest", deep_nest ~depth:17);
    ]

let test_distributions_suite () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       check_distributions bname r.Recorder.program)
    (Lazy.force recordings)

(* ------------------------------------------------------------------ *)
(* Frequencies                                                         *)
(* ------------------------------------------------------------------ *)

let test_diamond_freq () =
  let program = diamond_loop () in
  let g, loops, h = analyses program ~proc:0 in
  let pf = Freq.analyze_proc g loops h in
  Alcotest.(check bool) "reducible path, not degraded" false
    (Freq.proc_degraded pf);
  Alcotest.(check (list int)) "no capped heads" [] (Freq.capped_heads pf);
  (match Freq.cyclic_prob pf 0 with
   | None -> Alcotest.fail "head 0 has no cyclic probability"
   | Some cp ->
     Alcotest.(check bool) "cp in (0, cap]" true (cp > 0.0 && cp <= Freq.cp_cap);
     (* The entry heads the loop, so its frequency is the multiplier. *)
     check_feq "entry freq = 1/(1-cp)" (1.0 /. (1.0 -. cp)) (Freq.block_freq pf 0));
  (* Exit is reached exactly once per invocation. *)
  check_feq "exit freq = 1" 1.0 (Freq.block_freq pf 4);
  (* The two arms split the head's flow. *)
  check_feq "arms rejoin"
    (Freq.block_freq pf 0)
    (Freq.block_freq pf 1 +. Freq.block_freq pf 2);
  check_feq "join = head flow" (Freq.block_freq pf 0) (Freq.block_freq pf 3)

let test_double_latch_capped () =
  let program = double_latch () in
  let g, loops, h = analyses program ~proc:0 in
  let pf = Freq.analyze_proc g loops h in
  Alcotest.(check (list int)) "head capped" [ 0 ] (Freq.capped_heads pf);
  (match Freq.cyclic_prob pf 0 with
   | None -> Alcotest.fail "head 0 has no cyclic probability"
   | Some cp -> check_feq "cp clamped to the cap" Freq.cp_cap cp);
  check_feq "multiplier bounded at 1/(1-cap)"
    (1.0 /. (1.0 -. Freq.cp_cap))
    (Freq.block_freq pf 0)

let test_irreducible_degraded () =
  let program = irreducible () in
  let g, loops, h = analyses program ~proc:0 in
  let pf = Freq.analyze_proc g loops h in
  Alcotest.(check bool) "degraded" true (Freq.proc_degraded pf);
  let t = Freq.estimate program in
  Alcotest.(check (list int)) "degraded proc listed" [ 0 ] (Freq.degraded_procs t);
  (* The bounded solver still yields finite, non-negative flow. *)
  for b = 0 to 3 do
    let f = Freq.block_freq pf b in
    Alcotest.(check bool)
      (Printf.sprintf "b%d finite and >= 0" b)
      true
      (Float.is_finite f && f >= 0.0)
  done

(* Flow conservation: away from the entry, capped heads, and degraded
   procedures, inflow equals block frequency, and outflow does wherever
   the block has successors.  Exact modulo float error. *)
let check_conservation name program =
  let t = Freq.estimate program in
  for proc = 0 to Cfg.num_procs program - 1 do
    let pf = Freq.of_proc t proc in
    if not (Freq.proc_degraded pf) then begin
      let g = Procgraph.build program ~proc in
      let reachable = Procgraph.reachable g in
      let capped = Freq.capped_heads pf in
      for local = 0 to Procgraph.size g - 1 do
        let b = Procgraph.global g local in
        if reachable.(local) && not (List.mem b capped) then begin
          let bf = Freq.block_freq pf b in
          let eps = 1e-6 *. Float.max 1.0 bf in
          if local <> Procgraph.entry g then begin
            let inflow =
              Array.fold_left
                (fun acc p ->
                   acc +. Freq.edge_freq pf ~src:(Procgraph.global g p) ~dst:b)
                0.0 (Procgraph.pred g local)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s b%d: inflow %.9g ~ freq %.9g" name b inflow bf)
              true
              (Float.abs (inflow -. bf) <= eps)
          end;
          let succs = Procgraph.succ g local in
          if Array.length succs > 0 then begin
            let outflow =
              Array.fold_left
                (fun acc s ->
                   acc +. Freq.edge_freq pf ~src:b ~dst:(Procgraph.global g s))
                0.0 succs
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s b%d: outflow %.9g ~ freq %.9g" name b outflow bf)
              true
              (Float.abs (outflow -. bf) <= eps)
          end
        end
      done
    end
  done

let test_conservation_hand_programs () =
  List.iter
    (fun (name, program) -> check_conservation name program)
    [
      ("diamond", diamond_loop ()); ("loop-free", loop_free ());
      ("double-latch", double_latch ()); ("deep-nest", deep_nest ~depth:17);
    ]

let test_conservation_suite () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       check_conservation bname r.Recorder.program)
    (Lazy.force recordings)

let test_invocations_and_ranking () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let t = Freq.cached r.Recorder.program in
       Alcotest.(check bool) (bname ^ ": main invoked at least once") true
         (Freq.invocation_freq t 0 >= 1.0);
       let ranked = Freq.ranked_heads t in
       Alcotest.(check int)
         (bname ^ ": ranking covers the full head set")
         (Bounds.full_head_count (Bounds.static_heads r.Recorder.program))
         (List.length ranked);
       Alcotest.(check bool) (bname ^ ": ranking is descending") true
         (let rec mono = function
            | (_, a) :: ((_, b) :: _ as tl) -> a >= b && mono tl
            | _ -> true
          in
          mono ranked);
       Alcotest.(check bool) (bname ^ ": flows finite and non-negative") true
         (List.for_all (fun (_, f) -> Float.is_finite f && f >= 0.0) ranked))
    (Lazy.force recordings)

(* ------------------------------------------------------------------ *)
(* Lint P113                                                           *)
(* ------------------------------------------------------------------ *)

let test_p113_irreducible () =
  let diags = Lint.check_program (irreducible ()) in
  Alcotest.(check bool) "P110 fired" true (has_code "P110" diags);
  Alcotest.(check bool) "P113 fired" true (has_code "P113" diags);
  Alcotest.(check bool) "P113 is a warning" true
    (List.for_all
       (fun d -> d.Diag.code <> "P113" || d.Diag.severity = Diag.Warning)
       diags)

let test_p113_deep_nest () =
  let deep = Lint.check_program (deep_nest ~depth:(Lint.static_depth_threshold + 1)) in
  Alcotest.(check bool) "over-deep nest draws P113" true (has_code "P113" deep);
  Alcotest.(check bool) "still reducible: no P110" false (has_code "P110" deep);
  let shallow = Lint.check_program (deep_nest ~depth:Lint.static_depth_threshold) in
  Alcotest.(check bool) "at the threshold: clean" false (has_code "P113" shallow)

let test_p113_clean_programs () =
  List.iter
    (fun (name, program) ->
       Alcotest.(check bool) (name ^ ": no P113") false
         (has_code "P113" (Lint.check_program program)))
    [ ("diamond", diamond_loop ()); ("loop-free", loop_free ()) ]

(* ------------------------------------------------------------------ *)
(* The static scheme                                                   *)
(* ------------------------------------------------------------------ *)

let armed_heads program =
  let ranked = Freq.ranked_heads (Freq.cached program) in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 ranked in
  List.filter_map
    (fun (h, f) ->
       if total > 0.0 && f >= Suite.hot_threshold *. total then Some h else None)
    ranked

let test_static_zero_profiling () =
  let total_predictions = ref 0 in
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let outcome = Replay.run (module Static) ~delay:50 r in
       Alcotest.(check int) (bname ^ ": zero counters") 0
         outcome.Replay.counter_space;
       Alcotest.(check int) (bname ^ ": zero profiling ops") 0
         outcome.Replay.profiling_ops;
       total_predictions :=
         !total_predictions + Array.length outcome.Replay.predictions;
       (* Exactly one prediction per armed head the trace actually
          arrives at via a loop head — no more (each head fires once),
          no fewer (the first arrival's path cannot be predicted yet).
          Benchmarks whose estimated-hot heads are never visited
          genuinely predict nothing: the zero-profiling floor. *)
       let armed = armed_heads r.Recorder.program in
       let arrived_armed = Hashtbl.create 16 in
       Array.iteri
         (fun i pid ->
            if Char.code (Bytes.get r.Recorder.arrivals i) = 0 then begin
              let head = Path.head (Path_table.path r.Recorder.table pid) in
              if List.mem head armed then Hashtbl.replace arrived_armed head ()
            end)
         r.Recorder.instances;
       Alcotest.(check int)
         (bname ^ ": one prediction per arrived armed head")
         (Hashtbl.length arrived_armed)
         (Array.length outcome.Replay.predictions);
       let seen = Hashtbl.create 16 in
       Array.iter
         (fun (p : Replay.prediction) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: target %d in table" bname p.Replay.target)
              true
              (p.Replay.target >= 0
               && p.Replay.target < Path_table.size r.Recorder.table);
            let head = Path.head (Path_table.path r.Recorder.table p.Replay.target) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: head %d armed" bname head)
              true (List.mem head armed);
            Alcotest.(check bool)
              (Printf.sprintf "%s: head %d fires once" bname head)
              false (Hashtbl.mem seen head);
            Hashtbl.replace seen head ())
         outcome.Replay.predictions;
       (* The predictions ride a lint-clean trace. *)
       let diags =
         Trace_lint.check_parts ~program:r.Recorder.program ~table:r.Recorder.table
           ~instances:r.Recorder.instances ~arrivals:r.Recorder.arrivals
       in
       Alcotest.(check bool) (bname ^ ": trace T2xx-error-clean") true
         (List.for_all (fun d -> d.Diag.severity <> Diag.Error) diags))
    (Lazy.force recordings);
  Alcotest.(check bool) "suite-wide: static predicts somewhere" true
    (!total_predictions > 0)

let test_static_delay_inert_and_deterministic () =
  let r = List.assoc "compress" (Lazy.force recordings) in
  let run delay = Replay.run (module Static) ~delay r in
  let a = run 1 and b = run 100 and a' = run 1 in
  Alcotest.(check bool) "deterministic" true
    (a.Replay.predictions = a'.Replay.predictions);
  Alcotest.(check bool) "delay-inert" true
    (a.Replay.predictions = b.Replay.predictions);
  Alcotest.(check (array int)) "captured flow identical across delays"
    a.Replay.captured b.Replay.captured

(* ------------------------------------------------------------------ *)
(* Kselect                                                             *)
(* ------------------------------------------------------------------ *)

let test_kselect_bounds_suite () =
  List.iter
    (fun (bname, (r : Recorder.t)) ->
       let ks = Kselect.cached r.Recorder.program in
       let budget = Bounds.Exact Kselect.default_budget in
       List.iter
         (fun (c : Kselect.choice) ->
            let label = Printf.sprintf "%s head %d" bname c.Kselect.head in
            Alcotest.(check bool) (label ^ ": k in range") true
              (c.Kselect.k >= 1 && c.Kselect.k <= Kselect.default_max_k);
            Alcotest.(check int) (label ^ ": k_for agrees") c.Kselect.k
              (Kselect.k_for ks c.Kselect.head);
            if c.Kselect.k > 1 then begin
              Alcotest.(check bool)
                (label ^ ": enough iterations to fill the window")
                true
                (c.Kselect.iterations >= 2.0 *. float_of_int c.Kselect.k);
              (* paths^k within the window budget, in saturating space. *)
              let power =
                let rec go acc i =
                  if i = 0 then acc
                  else
                    go
                      (Bounds.count_mul ~cap:max_int acc c.Kselect.body_paths)
                      (i - 1)
                in
                go (Bounds.Exact 1) c.Kselect.k
              in
              Alcotest.(check bool) (label ^ ": window count within budget") true
                (Bounds.count_le power budget)
            end)
         (Kselect.choices ks))
    (Lazy.force recordings)

let test_kselect_hand_programs () =
  let diamond = diamond_loop () in
  let ks = Kselect.analyze (Freq.estimate diamond) in
  (* One hot, simple loop: ~30 expected iterations and 4 body paths let
     the deepest window through. *)
  Alcotest.(check int) "diamond head takes max k" Kselect.default_max_k
    (Kselect.k_for ks 0);
  Alcotest.(check int) "non-head stays at 1" 1 (Kselect.k_for ks 1);
  let lf = Kselect.analyze (Freq.estimate (loop_free ())) in
  Alcotest.(check int) "loop-free: no choices" 0
    (List.length (Kselect.choices lf));
  Alcotest.(check int) "loop-free: max k is 1" 1 (Kselect.max_selected lf);
  (* A one-window budget forces k = 1 even on the friendly loop. *)
  let tight = Kselect.analyze ~budget:1 (Freq.estimate diamond) in
  Alcotest.(check int) "budget 1 forces k = 1" 1 (Kselect.max_selected tight);
  let capped = Kselect.analyze ~max_k:1 (Freq.estimate diamond) in
  Alcotest.(check int) "max_k 1 forces k = 1" 1 (Kselect.max_selected capped)

(* ------------------------------------------------------------------ *)
(* kauto reduction at k = 1                                            *)
(* ------------------------------------------------------------------ *)

(* Drive two schemes over the same synthetic observation stream and
   compare every output.  On a loop-free program Kselect pins k = 1
   everywhere, so the kauto schemes must shadow their fixed bases
   decision-for-decision. *)
let drive (module S : Scheme.S) ~delay ~program stream =
  let t = S.create ~delay ~program in
  let outputs =
    List.map
      (fun (head, arrival, path_id) ->
         S.observe t ~head ~arrival ~path_id ~n_branches:2 ~n_blocks:3)
      stream
  in
  (outputs, S.counter_space t, S.collection_ops t)

let synthetic_stream =
  (* Entries, re-arrivals at two heads, and a continuation: enough to
     trip a delay-3 counter several times over. *)
  let at h pid = (h, Path.Loop_head, pid) in
  [
    (0, Path.Entry, 0); at 1 1; at 1 1; at 1 1; at 1 2; at 3 4; at 3 4;
    (0, Path.Continuation, 5); at 1 1; at 1 1; at 1 2; at 1 2; at 3 4;
    at 3 4; at 3 4; (0, Path.Entry, 0); at 1 1; at 1 2; at 1 1; at 3 4;
  ]

let test_kauto_reduces_on_k1 () =
  let program = loop_free () in
  List.iter
    (fun delay ->
       List.iter
         (fun (kname, kauto, base_name, base) ->
            let got = drive kauto ~delay ~program synthetic_stream in
            let expected = drive base ~delay ~program synthetic_stream in
            let go, gc, gcol = got and eo, ec, ecol = expected in
            Alcotest.(check (list (option int)))
              (Printf.sprintf "%s == %s decisions, delay %d" kname base_name delay)
              eo go;
            Alcotest.(check int)
              (Printf.sprintf "%s == %s counters, delay %d" kname base_name delay)
              ec gc;
            Alcotest.(check int)
              (Printf.sprintf "%s == %s collection, delay %d" kname base_name delay)
              ecol gcol)
         [
           ( "net-kauto",
             (module Net_kauto : Scheme.S),
             "net",
             (module Net : Scheme.S) );
           ( "path-profile-kauto",
             (module Path_profile_kauto : Scheme.S),
             "path-profile",
             (module Path_profile : Scheme.S) );
         ])
    [ 1; 2; 3 ]

let test_kauto_replays_deterministically () =
  let r = List.assoc "compress" (Lazy.force recordings) in
  List.iter
    (fun (name, scheme) ->
       let a = Replay.run scheme ~delay:7 r in
       let b = Replay.run scheme ~delay:7 r in
       Alcotest.(check bool) (name ^ ": deterministic") true
         (a.Replay.predictions = b.Replay.predictions
          && a.Replay.counter_space = b.Replay.counter_space
          && a.Replay.profiling_ops = b.Replay.profiling_ops);
       Alcotest.(check bool) (name ^ ": predicts something") true
         (Array.length a.Replay.predictions > 0))
    [
      ("net-kauto", (module Net_kauto : Scheme.S));
      ("path-profile-kauto", (module Path_profile_kauto : Scheme.S));
    ]

(* ------------------------------------------------------------------ *)
(* Grammar and rank statistics                                         *)
(* ------------------------------------------------------------------ *)

let test_new_scheme_names () =
  List.iter
    (fun name ->
       match Schemes.of_name name with
       | Ok packed ->
         Alcotest.(check string) ("round-trips " ^ name) name (Scheme.name packed)
       | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [ "static"; "net-kauto"; "path-profile-kauto" ];
  match Schemes.of_name "static-k2" with
  | Ok _ -> Alcotest.fail "\"static-k2\" accepted"
  | Error _ -> ()

let test_spearman () =
  let s = Stats.spearman in
  check_feq "identical ranking" 1.0 (s [| 1.; 2.; 3.; 4. |] [| 10.; 20.; 30.; 40. |]);
  check_feq "reversed ranking" (-1.0) (s [| 1.; 2.; 3. |] [| 9.; 5.; 1. |]);
  check_feq "constant side" 0.0 (s [| 1.; 1.; 1. |] [| 1.; 2.; 3. |]);
  check_feq "short input" 0.0 (s [| 1. |] [| 2. |]);
  (* Ties share fractional ranks: monotone-with-ties still correlates
     perfectly against itself. *)
  check_feq "ties against self" 1.0 (s [| 1.; 2.; 2.; 3. |] [| 1.; 2.; 2.; 3. |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.spearman: length mismatch") (fun () ->
      ignore (s [| 1. |] [| 1.; 2. |]))

let suites =
  [
    ( "static.heuristics",
      [
        Alcotest.test_case "Dempster-Shafer combination" `Quick test_combine;
        Alcotest.test_case "diamond branch evidence" `Quick
          test_diamond_heuristics;
        Alcotest.test_case "distributions: hand programs" `Quick
          test_distributions_hand_programs;
        Alcotest.test_case "distributions: benchmark suite" `Quick
          test_distributions_suite;
      ] );
    ( "static.freq",
      [
        Alcotest.test_case "diamond closed form" `Quick test_diamond_freq;
        Alcotest.test_case "double latch hits the cp cap" `Quick
          test_double_latch_capped;
        Alcotest.test_case "irreducible degrades, stays finite" `Quick
          test_irreducible_degraded;
        Alcotest.test_case "flow conservation: hand programs" `Quick
          test_conservation_hand_programs;
        Alcotest.test_case "flow conservation: benchmark suite" `Quick
          test_conservation_suite;
        Alcotest.test_case "invocations and head ranking" `Quick
          test_invocations_and_ranking;
      ] );
    ( "static.lint",
      [
        Alcotest.test_case "P113 on irreducible" `Quick test_p113_irreducible;
        Alcotest.test_case "P113 on over-deep nesting" `Quick
          test_p113_deep_nest;
        Alcotest.test_case "clean programs stay clean" `Quick
          test_p113_clean_programs;
      ] );
    ( "static.scheme",
      [
        Alcotest.test_case "zero profiling, armed heads only" `Quick
          test_static_zero_profiling;
        Alcotest.test_case "delay-inert and deterministic" `Quick
          test_static_delay_inert_and_deterministic;
      ] );
    ( "static.kselect",
      [
        Alcotest.test_case "choices within bounds across suite" `Quick
          test_kselect_bounds_suite;
        Alcotest.test_case "hand programs and budget clamps" `Quick
          test_kselect_hand_programs;
      ] );
    ( "static.kauto",
      [
        Alcotest.test_case "k=1 shadows the fixed bases" `Quick
          test_kauto_reduces_on_k1;
        Alcotest.test_case "replay deterministic on the suite" `Quick
          test_kauto_replays_deterministically;
      ] );
    ( "static.grammar",
      [
        Alcotest.test_case "new names round-trip" `Quick test_new_scheme_names;
        Alcotest.test_case "spearman rank correlation" `Quick test_spearman;
      ] );
  ]
