(* The serve daemon under fire: protocol round trips, fault injection
   (torn frames, CRC corruption, mid-frame disconnects, handshake
   garbage), tenant isolation under interleaving, and a multi-domain
   soak.  The invariants: a failure is confined to its own connection
   and surfaces as exactly one typed [serve.error]; every healthy tenant
   gets results bit-identical to a local replay; the daemon never
   crashes and always shuts down cleanly. *)

module Recorder = Hotpath_trace.Recorder
module Stream = Hotpath_trace.Serialize.Stream
module Replay = Hotpath_prediction.Replay
module Net = Hotpath_prediction.Net
module Serve = Hotpath_serve.Serve
module Server = Hotpath_serve.Serve.Server
module Client = Hotpath_serve.Serve.Client
module Events = Hotpath_util.Events
module Pool = Hotpath_util.Pool

let fixture () = Test_serialize.record_fixture ()

let fixture_stream ?(chunk_instances = 256) () =
  let r = fixture () in
  (r, Stream.to_string ~chunk_instances r)

(* Start a daemon, run [f] against it, stop, join, and return
   [(f's result, lifetime stats, daemon event lines)]. *)
let with_server ?(queue_capacity = 4) ?(drain_burst = 2) f =
  let socket_path = Filename.temp_file "hotpath_serve_test" ".sock" in
  let ev_buf = Buffer.create 4096 in
  match
    Server.create
      ~events:(Events.of_buffer ev_buf)
      ~queue_capacity ~drain_burst ~socket_path ()
  with
  | Error e -> Alcotest.failf "Server.create: %s" e
  | Ok server ->
    let d = Domain.spawn (fun () -> Server.run server) in
    let result =
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Domain.join d)
        (fun () ->
          Alcotest.(check bool) "server ready" true
            (Client.wait_ready socket_path);
          f socket_path)
    in
    Alcotest.(check bool) "socket file removed on shutdown" false
      (Sys.file_exists socket_path);
    let lines =
      String.split_on_char '\n' (Buffer.contents ev_buf)
      |> List.filter (fun l -> l <> "")
      |> List.map (fun l ->
             match Events.parse_line l with
             | Ok fields -> fields
             | Error e -> Alcotest.failf "unparseable daemon event %S: %s" l e)
    in
    (result, Server.stats server, lines)

let reply_kinds reply = List.filter_map Events.kind reply

let reply_ok reply = List.exists (( = ) "serve.ok") (reply_kinds reply)

let reply_error_code reply =
  List.find_map
    (fun fields ->
      if Events.kind fields = Some "serve.error" then
        Events.find_str fields "code"
      else None)
    reply

let send_exn ~socket_path ~tenant ?(scheme = "net") ?(delays = [ 1; 7; 50 ])
    ?chunk_bytes trace =
  match Client.send ~socket_path ~tenant ~scheme ~delays ?chunk_bytes trace with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "Client.send (%s): %s" tenant e

(* The serve.result lines a local replay predicts, keyed by delay. *)
let expected_results packed ~delays r =
  Replay.run_many packed ~delays r
  |> List.map (fun (o : Replay.outcome) ->
         ( o.Replay.delay,
           ( o.Replay.total_instances,
             Array.length o.Replay.predictions,
             o.Replay.profiled_instances,
             o.Replay.counter_space,
             Serve.outcome_hash o ) ))

let check_results label reply expected =
  let results =
    List.filter (fun f -> Events.kind f = Some "serve.result") reply
  in
  Alcotest.(check int) (label ^ ": result lines") (List.length expected)
    (List.length results);
  List.iter2
    (fun fields (delay, (instances, predictions, profiled, counters, hash)) ->
      let get k =
        match Events.find_int fields k with
        | Some v -> v
        | None -> Alcotest.failf "%s: reply missing %s" label k
      in
      Alcotest.(check int) (label ^ ": delay") delay (get "delay");
      Alcotest.(check int) (label ^ ": instances") instances (get "instances");
      Alcotest.(check int)
        (label ^ ": predictions")
        predictions (get "predictions");
      Alcotest.(check int) (label ^ ": profiled") profiled (get "profiled");
      Alcotest.(check int)
        (label ^ ": counter_space")
        counters (get "counter_space");
      Alcotest.(check int) (label ^ ": pred_hash") hash (get "pred_hash"))
    results expected

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let r, trace = fixture_stream () in
  let delays = [ 1; 7; 50 ] in
  let expected = expected_results (module Net) ~delays r in
  let (), stats, events =
    with_server (fun socket_path ->
        let reply = send_exn ~socket_path ~tenant:"t0" ~delays trace in
        Alcotest.(check bool) "serve.ok" true (reply_ok reply);
        check_results "roundtrip" reply expected)
  in
  Alcotest.(check int) "completed" 1 stats.Server.completed;
  Alcotest.(check int) "errored" 0 stats.Server.errored;
  Alcotest.(check int) "instances" (Array.length r.Recorder.instances)
    stats.Server.instances;
  let kinds = List.filter_map Events.kind events in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("daemon emitted " ^ k) true (List.mem k kinds))
    [ "serve.accept"; "serve.attach"; "serve.done"; "serve.stats" ]

let test_roundtrip_write_granularities () =
  (* Byte-level torn frames: the handshake and every HOTPATH3 frame
     split across arbitrary socket writes must reassemble. *)
  let r, trace = fixture_stream ~chunk_instances:64 () in
  let delays = [ 7 ] in
  let expected = expected_results (module Net) ~delays r in
  let (), stats, _ =
    with_server (fun socket_path ->
        List.iteri
          (fun i chunk_bytes ->
            let tenant = Printf.sprintf "granularity-%d" i in
            let reply =
              send_exn ~socket_path ~tenant ~delays ~chunk_bytes trace
            in
            Alcotest.(check bool)
              (Printf.sprintf "serve.ok at %d-byte writes" chunk_bytes)
              true (reply_ok reply);
            check_results
              (Printf.sprintf "writes=%d" chunk_bytes)
              reply expected)
          [ 1; 7; 4096 ])
  in
  Alcotest.(check int) "completed" 3 stats.Server.completed;
  Alcotest.(check int) "errored" 0 stats.Server.errored

let test_all_schemes_served () =
  let r, trace = fixture_stream () in
  let (), stats, _ =
    with_server (fun socket_path ->
        List.iter
          (fun (scheme, packed) ->
            let reply =
              send_exn ~socket_path ~tenant:("s-" ^ scheme) ~scheme
                ~delays:[ 7 ] trace
            in
            Alcotest.(check bool) (scheme ^ " ok") true (reply_ok reply);
            check_results scheme reply
              (expected_results packed ~delays:[ 7 ] r))
          [
            ("net", (module Net : Hotpath_prediction.Scheme.S));
            ("net-once", (module Net.Net_once));
            ("let", (module Net.Last_executed_tail));
            ("path-profile", (module Hotpath_prediction.Path_profile));
            (* k-iteration families: the served roundtrip must equal the
               local replay, k = 1 reductions included. *)
            ("net-k1", Hotpath_prediction.Net_k.make 1);
            ("net-k2", Hotpath_prediction.Net_k.make 2);
            ("path-profile-k1", Hotpath_prediction.Path_profile_k.make 1);
            ("path-profile-k2", Hotpath_prediction.Path_profile_k.make 2);
          ])
  in
  Alcotest.(check int) "errored" 0 stats.Server.errored

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Raw exchange: write [payload] verbatim, half-close, read the reply
   to EOF and parse its lines. *)
let raw_exchange ~socket_path payload =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let off = ref 0 in
      let n = String.length payload in
      while !off < n do
        off := !off + Unix.write_substring fd payload !off (n - !off)
      done;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 256 in
      let b = Bytes.create 1024 in
      let rec go () =
        match Unix.read fd b 0 1024 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf b 0 n;
          go ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
      in
      go ();
      String.split_on_char '\n' (Buffer.contents buf)
      |> List.filter (fun l -> l <> "")
      |> List.map (fun l ->
             match Events.parse_line l with
             | Ok fields -> fields
             | Error e -> Alcotest.failf "unparseable reply %S: %s" l e))

let test_handshake_errors () =
  let _, trace = fixture_stream () in
  let (), stats, _ =
    with_server (fun socket_path ->
        let expect_code label code reply =
          Alcotest.(check bool) (label ^ " refused") false (reply_ok reply);
          Alcotest.(check (option string)) (label ^ " code") (Some code)
            (reply_error_code reply)
        in
        expect_code "unknown scheme" "handshake"
          (send_exn ~socket_path ~tenant:"hs1" ~scheme:"nope" trace);
        expect_code "zero delay" "handshake"
          (send_exn ~socket_path ~tenant:"hs2" ~delays:[ 0 ] trace);
        expect_code "garbage line" "handshake"
          (raw_exchange ~socket_path "GET / HTTP/1.0\n\n");
        expect_code "handshake cut by EOF" "handshake"
          (raw_exchange ~socket_path "HPSERVE1 partial");
        (* Malformed k-scheme spellings are typed handshake errors, not
           crashes and not silent fallbacks to the base scheme. *)
        expect_code "k = 0" "handshake"
          (send_exn ~socket_path ~tenant:"hs3" ~scheme:"path-profile-k0" trace);
        expect_code "non-decimal k" "handshake"
          (send_exn ~socket_path ~tenant:"hs4" ~scheme:"net-kfoo" trace);
        expect_code "missing k" "handshake"
          (send_exn ~socket_path ~tenant:"hs5" ~scheme:"path-profile-k" trace))
  in
  Alcotest.(check int) "seven typed errors" 7 stats.Server.errored;
  Alcotest.(check int) "no completions" 0 stats.Server.completed

let test_fault_isolation () =
  (* One bad client per failure mode, interleaved with a good tenant —
     the good tenant's results must be unaffected every time. *)
  let r, trace = fixture_stream ~chunk_instances:128 () in
  let delays = [ 7; 50 ] in
  let expected = expected_results (module Net) ~delays r in
  let n = String.length trace in
  let corrupt =
    let b = Bytes.of_string trace in
    Bytes.set b (n / 2) (Char.chr (Char.code (Bytes.get b (n / 2)) lxor 0x40));
    Bytes.to_string b
  in
  let torn = String.sub trace 0 (n - 7) in
  let lint_bad =
    (* Valid framing and CRCs, malformed trace semantics: a fresh
       recording with one arrival rewritten to "entry" mid-trace, then
       serialized. *)
    let r' = Test_serialize.record_fixture () in
    let arr = r'.Recorder.arrivals in
    let idx = ref (Bytes.length arr / 2) in
    while Bytes.get arr !idx = '\001' do
      incr idx
    done;
    Bytes.set arr !idx '\001';
    let diags =
      Hotpath_trace.Lint.check_parts ~program:r'.Recorder.program
        ~table:r'.Recorder.table ~instances:r'.Recorder.instances
        ~arrivals:arr
    in
    Alcotest.(check bool) "lint fixture is genuinely bad" true
      (Hotpath_analysis.Diag.has_errors diags);
    Stream.to_string ~chunk_instances:128 r'
  in
  let faults =
    [
      ("crc-corrupt", corrupt, "decode");
      ("torn-stream", torn, "disconnect");
      ("lint-bad", lint_bad, "lint");
    ]
  in
  let (), stats, _ =
    with_server (fun socket_path ->
        List.iter
          (fun (name, bad_trace, code) ->
            let results =
              Pool.map ~cap:false ~jobs:2
                (fun role ->
                  if role = 0 then
                    send_exn ~socket_path ~tenant:("bad-" ^ name) ~delays
                      bad_trace
                  else
                    send_exn ~socket_path ~tenant:("good-" ^ name) ~delays
                      trace)
                [ 0; 1 ]
            in
            (match results with
            | [ bad; good ] ->
              Alcotest.(check bool) (name ^ ": bad refused") false
                (reply_ok bad);
              Alcotest.(check (option string))
                (name ^ ": typed code") (Some code) (reply_error_code bad);
              Alcotest.(check bool) (name ^ ": good unaffected") true
                (reply_ok good);
              check_results (name ^ ": good tenant") good expected
            | _ -> Alcotest.fail "pool arity");
            (* The failed tenant is released: it can reconnect clean. *)
            let retry =
              send_exn ~socket_path ~tenant:("bad-" ^ name) ~delays trace
            in
            Alcotest.(check bool) (name ^ ": tenant recovers") true
              (reply_ok retry))
          faults)
  in
  Alcotest.(check int) "errors counted" (List.length faults)
    stats.Server.errored;
  Alcotest.(check int) "completions counted"
    (2 * List.length faults)
    stats.Server.completed

let test_duplicate_tenant_busy () =
  let _, trace = fixture_stream () in
  let (), stats, _ =
    with_server (fun socket_path ->
        (* Hold a connection open mid-handshake-plus-prefix so the
           tenant stays registered while a second one arrives. *)
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX socket_path);
            let line = "HPSERVE1 dup net 7\n" in
            ignore
              (Unix.write_substring fd line 0 (String.length line) : int);
            (* Give the select loop time to register the tenant. *)
            Unix.sleepf 0.1;
            let reply = send_exn ~socket_path ~tenant:"dup" trace in
            Alcotest.(check bool) "second stream refused" false
              (reply_ok reply);
            Alcotest.(check (option string)) "busy code" (Some "busy")
              (reply_error_code reply));
        (* First connection now disconnects mid-stream (error two), and
           the tenant becomes available again. *)
        Unix.sleepf 0.1;
        let reply = send_exn ~socket_path ~tenant:"dup" trace in
        Alcotest.(check bool) "tenant free after disconnect" true
          (reply_ok reply))
  in
  Alcotest.(check int) "busy + disconnect errors" 2 stats.Server.errored;
  Alcotest.(check int) "one completion" 1 stats.Server.completed

let test_mid_frame_disconnect_cuts () =
  (* Cut the stream at many offsets, including mid-header and
     mid-payload; every cut must produce a typed error ("disconnect",
     or "lint"/"decode" when the cut lands on a frame boundary whose
     absence the linter sees first), never a crash or a hang. *)
  let _, trace = fixture_stream ~chunk_instances:64 () in
  let n = String.length trace in
  let cuts = [ 9; 13; n / 4; n / 2; n - 1 ] in
  let (), stats, _ =
    with_server (fun socket_path ->
        List.iteri
          (fun i cut ->
            let reply =
              send_exn ~socket_path
                ~tenant:(Printf.sprintf "cut-%d" i)
                (String.sub trace 0 cut)
            in
            Alcotest.(check bool)
              (Printf.sprintf "cut at %d refused" cut)
              false (reply_ok reply);
            match reply_error_code reply with
            | Some ("disconnect" | "decode" | "lint") -> ()
            | other ->
              Alcotest.failf "cut at %d: unexpected code %s" cut
                (Option.value ~default:"<none>" other))
          cuts)
  in
  Alcotest.(check int) "every cut errored" (List.length cuts)
    stats.Server.errored

(* ------------------------------------------------------------------ *)
(* Concurrency soak                                                    *)
(* ------------------------------------------------------------------ *)

let test_concurrent_soak () =
  (* N writer domains x M tenants each against one daemon, under an
     explicit domain budget.  Every tenant's reply must match the
     single-client local baseline bit-for-bit, and the bounded queues
     must never overflow their capacity. *)
  let r, trace = fixture_stream ~chunk_instances:128 () in
  let delays = [ 1; 50 ] in
  let expected = expected_results (module Net) ~delays r in
  let writers = 4 and tenants_each = 3 in
  let queue_capacity = 4 in
  let (), stats, _ =
    with_server ~queue_capacity (fun socket_path ->
        let replies =
          Pool.with_domain_limit (writers + 1) (fun () ->
              Pool.map ~cap:false ~jobs:writers
                (fun w ->
                  List.init tenants_each (fun k ->
                      let tenant = Printf.sprintf "soak-%d-%d" w k in
                      (* Vary write sizes so frame tearing differs per
                         client. *)
                      let chunk_bytes = 512 + (997 * ((w + k) mod 3)) in
                      send_exn ~socket_path ~tenant ~delays ~chunk_bytes trace))
                (List.init writers Fun.id))
        in
        List.iteri
          (fun i reply ->
            let label = Printf.sprintf "soak reply %d" i in
            Alcotest.(check bool) (label ^ " ok") true (reply_ok reply);
            check_results label reply expected)
          (List.concat replies))
  in
  Alcotest.(check int) "all completed" (writers * tenants_each)
    stats.Server.completed;
  Alcotest.(check int) "no errors" 0 stats.Server.errored;
  Alcotest.(check bool) "queue bound respected" true
    (stats.Server.queue_high_water <= queue_capacity);
  Alcotest.(check int) "instances accounted"
    (writers * tenants_each * Array.length r.Recorder.instances)
    stats.Server.instances

let suites =
  [
    ( "serve.roundtrip",
      [
        Alcotest.test_case "single tenant ≡ local replay" `Quick
          test_roundtrip;
        Alcotest.test_case "torn writes reassemble" `Quick
          test_roundtrip_write_granularities;
        Alcotest.test_case "every scheme served" `Quick test_all_schemes_served;
      ] );
    ( "serve.faults",
      [
        Alcotest.test_case "handshake errors typed" `Quick
          test_handshake_errors;
        Alcotest.test_case "faults isolated per tenant" `Quick
          test_fault_isolation;
        Alcotest.test_case "duplicate tenant busy" `Quick
          test_duplicate_tenant_busy;
        Alcotest.test_case "mid-frame disconnects" `Quick
          test_mid_frame_disconnect_cuts;
      ] );
    ( "serve.soak",
      [ Alcotest.test_case "N writers x M tenants" `Quick test_concurrent_soak ] );
  ]
