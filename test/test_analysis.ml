(* Tests for the static-analysis subsystem: dominators, natural loops,
   reducibility, static path-head sets and Ball–Larus bounds, and both
   linters (program well-formedness, trace-vs-program consistency).
   Every diagnostic code has at least one injection test that provokes
   exactly that defect. *)

module Cfg = Hotpath_cfg.Cfg
module Diag = Hotpath_analysis.Diag
module Procgraph = Hotpath_analysis.Procgraph
module Dominators = Hotpath_analysis.Dominators
module Loops = Hotpath_analysis.Loops
module Bounds = Hotpath_analysis.Bounds
module Lint = Hotpath_analysis.Lint
module Trace_lint = Hotpath_trace.Lint
module Check = Hotpath_trace.Check
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Signature = Hotpath_trace.Signature
module Ball_larus = Hotpath_profiling.Ball_larus
module Replay = Hotpath_prediction.Replay
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Generator = Hotpath_workloads.Generator
module Suite = Hotpath_workloads.Suite
module Prng = Hotpath_util.Prng

let has_code code diags = List.exists (fun d -> d.Diag.code = code) diags

let codes diags =
  String.concat "," (List.map (fun d -> d.Diag.code) diags)

let check_has_code name code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s yields %s (got [%s])" name code (codes diags))
    true (has_code code diags)

(* ------------------------------------------------------------------ *)
(* Hand-built programs                                                 *)
(* ------------------------------------------------------------------ *)

(* 0: if, 1/2: arms, 3: loop branch back to 0, 4: exit. *)
let diamond_loop () =
  let b = Cfg.Builder.create ~name:"diamond" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Branch { taken = b2; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b3);
  Cfg.Builder.set_term b b2 (Cfg.Jump b3);
  Cfg.Builder.set_term b b3 (Cfg.Branch { taken = b0; fallthrough = b4 });
  Cfg.Builder.set_term b b4 Cfg.Exit;
  Cfg.Builder.finish b

(* 0: outer head, 1: inner head, 2: inner latch, 3: outer latch, 4: exit. *)
let nested_loops () =
  let b = Cfg.Builder.create ~name:"nested" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Branch { taken = b3; fallthrough = b2 });
  Cfg.Builder.set_term b b2 (Cfg.Jump b1);
  Cfg.Builder.set_term b b3 (Cfg.Branch { taken = b0; fallthrough = b4 });
  Cfg.Builder.set_term b b4 Cfg.Exit;
  Cfg.Builder.finish b

(* The cycle {1,2} is entered both at 1 (from 0's fallthrough) and at 2
   (from 0's taken edge): no unique header, so irreducible. *)
let irreducible () =
  let b = Cfg.Builder.create ~name:"irreducible" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Branch { taken = b2; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b1; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Exit;
  Cfg.Builder.finish b

let with_unreachable () =
  let b = Cfg.Builder.create ~name:"unreachable" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b2);
  Cfg.Builder.set_term b b1 Cfg.Exit;
  Cfg.Builder.set_term b b2 Cfg.Exit;
  Cfg.Builder.finish b

let dom_of program = Dominators.compute (Procgraph.build program ~proc:0)

(* ------------------------------------------------------------------ *)
(* Dominators and loops                                                *)
(* ------------------------------------------------------------------ *)

let test_dominators_diamond () =
  let program = diamond_loop () in
  let dom = dom_of program in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun b -> Dominators.dominates dom 0 b) [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check bool) "arm does not dominate join" false
    (Dominators.dominates dom 1 3);
  Alcotest.(check (option int)) "idom of join" (Some 0) (Dominators.idom dom 3);
  Alcotest.(check (option int)) "idom of exit" (Some 3) (Dominators.idom dom 4);
  Alcotest.(check (option int)) "entry has no idom" None (Dominators.idom dom 0)

let test_dominators_unreachable () =
  let program = with_unreachable () in
  let dom = dom_of program in
  Alcotest.(check (option int)) "unreachable idom" None (Dominators.idom dom 1);
  Alcotest.(check bool) "unreachable dominates nothing" false
    (Dominators.dominates dom 1 1);
  Alcotest.(check (list int)) "unreachable listed" [ 1 ]
    (Procgraph.unreachable_blocks (Dominators.graph dom))

let test_loops_diamond () =
  let program = diamond_loop () in
  let l = Loops.analyze (dom_of program) in
  Alcotest.(check int) "one loop" 1 (Loops.loop_count l);
  let loop = List.hd (Loops.loops l) in
  Alcotest.(check int) "head" 0 loop.Loops.head;
  Alcotest.(check (list (pair int int))) "back edges" [ (3, 0) ]
    loop.Loops.back_edges;
  Alcotest.(check (list int)) "body" [ 0; 1; 2; 3 ] loop.Loops.blocks;
  Alcotest.(check int) "exit outside" 0 (Loops.depth_of l 4);
  Alcotest.(check bool) "reducible" true (Loops.reducible l)

let test_loops_nested () =
  let program = nested_loops () in
  let l = Loops.analyze (dom_of program) in
  Alcotest.(check int) "two loops" 2 (Loops.loop_count l);
  Alcotest.(check int) "max depth" 2 (Loops.max_depth l);
  let outer = List.find (fun lo -> lo.Loops.head = 0) (Loops.loops l) in
  let inner = List.find (fun lo -> lo.Loops.head = 1) (Loops.loops l) in
  Alcotest.(check int) "outer depth" 1 outer.Loops.depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
  Alcotest.(check (option int)) "inner parent" (Some 0) inner.Loops.parent;
  Alcotest.(check (option int)) "outer has no parent" None outer.Loops.parent;
  Alcotest.(check (list int)) "inner body" [ 1; 2 ] inner.Loops.blocks;
  Alcotest.(check int) "latch depth" 2 (Loops.depth_of l 2)

let test_irreducible () =
  let program = irreducible () in
  let l = Loops.analyze (dom_of program) in
  Alcotest.(check bool) "irreducible" false (Loops.reducible l);
  Alcotest.(check bool) "witness edge" true (Loops.irreducible_edges l <> []);
  check_has_code "irreducible program" "P110" (Lint.check_program program)

(* ------------------------------------------------------------------ *)
(* Static bounds                                                       *)
(* ------------------------------------------------------------------ *)

let test_heads_diamond () =
  let program = diamond_loop () in
  let hs = Bounds.static_heads program in
  Alcotest.(check int) "paper heads" 1 (Bounds.paper_head_count hs);
  Alcotest.(check int) "full heads" 1 (Bounds.full_head_count hs);
  Alcotest.(check (list int)) "the loop head" [ 0 ] (Bounds.full_heads hs);
  Alcotest.(check int) "matches Cfg count"
    (Cfg.backward_branch_target_count program)
    (Bounds.paper_head_count hs)

(* A branch whose fallthrough goes backward: the arrival is a potential
   loop head at runtime but not a paper head (the paper counts backward
   {e taken} targets only).  The non-adjacent fallthrough also draws
   P108. *)
let test_full_vs_paper_heads () =
  let b = Cfg.Builder.create ~name:"backfall" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b3; fallthrough = b1 });
  Cfg.Builder.set_term b b3 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let hs = Bounds.static_heads program in
  Alcotest.(check int) "no paper heads" 0 (Bounds.paper_head_count hs);
  Alcotest.(check (list int)) "backward fallthrough in full set" [ 1 ]
    (Bounds.full_heads hs);
  check_has_code "non-adjacent fallthrough" "P108" (Lint.check_program program)

let test_bl_paths_diamond () =
  let program = diamond_loop () in
  (* Pseudo edges split the loop: ENTRY->0, ENTRY->head 0 (deduped),
     3->EXIT, 4->EXIT; 4 acyclic paths 0..3, exactly Ball-Larus. *)
  (match Bounds.bl_paths program ~proc:0 with
   | Bounds.Exact n ->
     Alcotest.(check int) "static count" n
       (Ball_larus.num_paths (Ball_larus.analyze program ~proc:0))
   | Bounds.Overflow -> Alcotest.fail "unexpected overflow");
  Alcotest.(check bool) "total is exact" true
    (match Bounds.bl_total program with Bounds.Exact _ -> true | _ -> false)

let test_count_arithmetic () =
  let cap = 100 in
  Alcotest.(check bool) "add saturates" true
    (Bounds.count_add ~cap (Bounds.Exact 60) (Bounds.Exact 60) = Bounds.Overflow);
  Alcotest.(check bool) "add exact" true
    (Bounds.count_add ~cap (Bounds.Exact 60) (Bounds.Exact 30) = Bounds.Exact 90);
  Alcotest.(check bool) "overflow absorbs" true
    (Bounds.count_add ~cap Bounds.Overflow (Bounds.Exact 1) = Bounds.Overflow);
  Alcotest.(check bool) "le exact" true (Bounds.count_le (Bounds.Exact 3) (Bounds.Exact 4));
  Alcotest.(check bool) "le overflow top" true
    (Bounds.count_le (Bounds.Exact max_int) Bounds.Overflow);
  Alcotest.(check bool) "overflow above exact" false
    (Bounds.count_le Bounds.Overflow (Bounds.Exact max_int));
  Alcotest.(check string) "to_string overflow" ">2^50"
    (Bounds.count_to_string Bounds.Overflow)

let test_forward_walks_bound () =
  let program = diamond_loop () in
  match (Bounds.forward_walks program, Bounds.bl_total program) with
  | Bounds.Exact w, Bounds.Exact _ ->
    (* Every Ball-Larus path of main is a forward walk from some start. *)
    Alcotest.(check bool) "walks positive" true (w > 0)
  | _ -> Alcotest.fail "diamond should be exact"

(* The compress generator is deterministic, so its static counter-space
   numbers are stable; these are the figures quoted in EXPERIMENTS.md. *)
let test_compress_report_pinned () =
  let program = Suite.program (Suite.find_exn "compress") in
  let r = Bounds.counter_space_report program in
  Alcotest.(check int) "full heads" 408 r.Bounds.r_full_heads;
  Alcotest.(check int) "paper heads" 407 r.Bounds.r_paper_heads;
  Alcotest.(check bool) "bl total" true
    (r.Bounds.r_bl_total = Bounds.Exact 877_282_904_542);
  Alcotest.(check bool) "ratio tiny" true
    (match r.Bounds.r_net_to_bl_pct with Some p -> p < 0.1 | None -> false)

let test_suite_bl_differential () =
  List.iter
    (fun b ->
       let program = Suite.program b in
       Array.iter
         (fun proc ->
            let pid = proc.Cfg.pid in
            match Bounds.bl_paths program ~proc:pid with
            | Bounds.Exact n ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s" b.Suite.b_name proc.Cfg.name)
                n
                (Ball_larus.num_paths (Ball_larus.analyze program ~proc:pid))
            | Bounds.Overflow -> (
                (* The static count saturates exactly where the
                   instrumentation refuses the procedure. *)
                match Ball_larus.analyze program ~proc:pid with
                | _ ->
                  Alcotest.fail
                    (Printf.sprintf "%s/%s should overflow" b.Suite.b_name
                       proc.Cfg.name)
                | exception Invalid_argument _ -> ()))
         program.Cfg.procs)
    Suite.all

let test_suite_lints_clean () =
  List.iter
    (fun b ->
       let diags = Lint.check_program (Suite.program b) in
       Alcotest.(check bool)
         (Printf.sprintf "%s has no lint errors (got [%s])" b.Suite.b_name
            (codes (List.filter (fun d -> d.Diag.severity = Diag.Error) diags)))
         false (Diag.has_errors diags))
    Suite.all

(* ------------------------------------------------------------------ *)
(* Program-defect injection (P1xx)                                     *)
(* ------------------------------------------------------------------ *)

let blk id proc weight term = { Cfg.id; proc; weight; term }

let prc pid name entry blocks = { Cfg.pid; name; entry; blocks }

let one_proc_prog blocks =
  {
    Cfg.pname = "bad";
    blocks;
    procs = [| prc 0 "main" 0 (Array.map (fun b -> b.Cfg.id) blocks) |];
    main = 0;
  }

let structural_must_flag name code program =
  let diags = Lint.structural program in
  check_has_code name code diags;
  Alcotest.(check bool) (name ^ " is error severity") true (Diag.has_errors diags);
  Alcotest.(check bool) (name ^ " also fails validate") true
    (match Cfg.validate program with Error _ -> true | Ok () -> false)

let test_p100_empty_proc () =
  structural_must_flag "empty procedure" "P100"
    { Cfg.pname = "bad"; blocks = [||]; procs = [| prc 0 "main" 0 [||] |]; main = 0 }

let test_p101_non_dense_ids () =
  structural_must_flag "non-dense ids" "P101"
    (one_proc_prog [| blk 1 0 1 Cfg.Exit |])

let test_p102_entry_not_first () =
  structural_must_flag "entry not first" "P102"
    {
      Cfg.pname = "bad";
      blocks = [| blk 0 0 1 Cfg.Exit; blk 1 0 1 Cfg.Exit |];
      procs = [| prc 0 "main" 1 [| 0; 1 |] |];
      main = 0;
    }

let test_p103_target_out_of_range () =
  structural_must_flag "target out of range" "P103"
    (one_proc_prog
       [| blk 0 0 1 (Cfg.Branch { taken = 99; fallthrough = 1 }); blk 1 0 1 Cfg.Exit |])

let test_p104_cross_proc_jump () =
  structural_must_flag "cross-procedure jump" "P104"
    {
      Cfg.pname = "bad";
      blocks = [| blk 0 0 1 (Cfg.Jump 1); blk 1 1 1 Cfg.Exit |];
      procs = [| prc 0 "main" 0 [| 0 |]; prc 1 "f" 1 [| 1 |] |];
      main = 0;
    }

let test_p105_zero_weight () =
  structural_must_flag "zero weight" "P105" (one_proc_prog [| blk 0 0 0 Cfg.Exit |])

let test_p106_empty_indirect () =
  structural_must_flag "empty indirect" "P106"
    (one_proc_prog [| blk 0 0 1 (Cfg.Indirect [||]) |])

let test_p107_bad_callee () =
  structural_must_flag "call to missing procedure" "P107"
    (one_proc_prog
       [| blk 0 0 1 (Cfg.Call { callee = 5; return_to = 1 }); blk 1 0 1 Cfg.Exit |])

let test_p109_unreachable () =
  let diags = Lint.check_program (with_unreachable ()) in
  check_has_code "unreachable block" "P109" diags;
  Alcotest.(check bool) "only a warning" false (Diag.has_errors diags)

let test_p111_no_return () =
  let b = Cfg.Builder.create ~name:"noreturn" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let f = Cfg.Builder.add_proc b ~name:"f" in
  let b0 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:f ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Call { callee = f; return_to = b1 });
  Cfg.Builder.set_term b b1 Cfg.Exit;
  Cfg.Builder.set_term b b2 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  check_has_code "called proc never returns" "P111" (Lint.check_program program)

let test_p112_explosion () =
  (* A ladder of n independent diamonds has 2^n acyclic paths; 25 of them
     clear the 2^20 explosion threshold while staying cheap to build. *)
  let b = Cfg.Builder.create ~name:"explode" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let n = 25 in
  let blocks = Array.init ((2 * n) + 1) (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:1) in
  for i = 0 to n - 1 do
    let cond = blocks.(2 * i)
    and arm = blocks.((2 * i) + 1)
    and next = blocks.((2 * i) + 2) in
    Cfg.Builder.set_term b cond (Cfg.Branch { taken = next; fallthrough = arm });
    Cfg.Builder.set_term b arm (Cfg.Jump next)
  done;
  Cfg.Builder.set_term b blocks.(2 * n) Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let diags = Lint.check_program program in
  check_has_code "path-count explosion" "P112" diags;
  Alcotest.(check bool) "only a warning" false (Diag.has_errors diags);
  match Bounds.bl_paths program ~proc:0 with
  | Bounds.Exact c -> Alcotest.(check int) "2^25 paths" (1 lsl n) c
  | Bounds.Overflow -> Alcotest.fail "2^25 is below the cap"

(* ------------------------------------------------------------------ *)
(* Trace-defect injection (T2xx)                                       *)
(* ------------------------------------------------------------------ *)

let signature_of ~head bits =
  let sb = Signature.Builder.create ~head in
  List.iter (fun taken -> Signature.Builder.add_branch sb ~taken) bits;
  Signature.Builder.freeze sb

let intern table ~head ~bits ~blocks ~end_kind =
  let n_branches = List.length bits in
  let n_instrs = Array.length blocks in
  Path_table.intern table (signature_of ~head bits) ~blocks ~n_instrs ~n_branches
    ~end_kind

(* One legal trace over [diamond_loop]: entry path takes the loop branch
   back to the head, the second iteration leaves through the exit. *)
let legal_parts () =
  let program = diamond_loop () in
  let table = Path_table.create () in
  let p0 =
    intern table ~head:0 ~bits:[ false; true ] ~blocks:[| 0; 1; 3 |]
      ~end_kind:Path.Backward_transfer
  in
  let p1 =
    intern table ~head:0 ~bits:[ true; false ] ~blocks:[| 0; 2; 3; 4 |]
      ~end_kind:Path.Program_end
  in
  (program, table, [| p0; p1 |], Bytes.of_string "\001\000")

let lint_parts (program, table, instances, arrivals) =
  Trace_lint.check_parts ~program ~table ~instances ~arrivals

let test_legal_trace_clean () =
  let diags = lint_parts (legal_parts ()) in
  Alcotest.(check bool)
    (Printf.sprintf "legal trace lints clean (got [%s])" (codes diags))
    false (Diag.has_errors diags)

let test_t201_unknown_path_id () =
  let program, table, _, _ = legal_parts () in
  check_has_code "unknown path id" "T201"
    (lint_parts (program, table, [| 7 |], Bytes.of_string "\001"))

let test_t202_container_mismatch () =
  let program, table, instances, _ = legal_parts () in
  check_has_code "arrival/instance length mismatch" "T202"
    (lint_parts (program, table, instances, Bytes.of_string "\001"));
  check_has_code "invalid arrival byte" "T202"
    (lint_parts (program, table, instances, Bytes.of_string "\001\003"))

let test_t203_signature_head_mismatch () =
  let program, table, _, _ = legal_parts () in
  let p =
    intern table ~head:0 ~bits:[] ~blocks:[| 1; 3 |] ~end_kind:Path.Program_end
  in
  check_has_code "signature head differs from first block" "T203"
    (lint_parts (program, table, [| p |], Bytes.of_string "\001"))

let test_t204_backward_intra_transfer () =
  let program, table, _, _ = legal_parts () in
  (* 0 -taken-> 2 is fine, but 2's jump goes to 3, never backward to 1. *)
  let p =
    intern table ~head:0 ~bits:[ true ] ~blocks:[| 0; 2; 1 |]
      ~end_kind:Path.Program_end
  in
  check_has_code "illegal intra-path transfer" "T204"
    (lint_parts (program, table, [| p |], Bytes.of_string "\001"))

let test_t205_implausible_end_kind () =
  let program, table, _, _ = legal_parts () in
  (* Block 4 is Exit: it cannot end a path with a backward transfer. *)
  let p =
    intern table ~head:4 ~bits:[] ~blocks:[| 4 |] ~end_kind:Path.Backward_transfer
  in
  check_has_code "end kind impossible for last block" "T205"
    (lint_parts (program, table, [| p |], Bytes.of_string "\001"))

let test_t206_entry_mid_trace () =
  let program, table, instances, _ = legal_parts () in
  check_has_code "entry arrival mid-trace" "T206"
    (lint_parts (program, table, instances, Bytes.of_string "\001\001"))

let test_t207_impossible_hand_off () =
  let program, table, instances, _ = legal_parts () in
  let p0 = instances.(0) and p1 = instances.(1) in
  (* p1 ends at the program exit; nothing can arrive after it. *)
  check_has_code "hand-off after program end" "T207"
    (lint_parts (program, table, [| p1; p0 |], Bytes.of_string "\001\000"))

let test_t208_head_outside_static_set () =
  let program, table, instances, _ = legal_parts () in
  let p0 = instances.(0) in
  (* Block 1 is no backward-transfer target: a loop-head arrival there is
     impossible however the previous path ended. *)
  let stray =
    intern table ~head:1 ~bits:[ false ] ~blocks:[| 1; 3; 4 |]
      ~end_kind:Path.Program_end
  in
  check_has_code "loop head outside the static head set" "T208"
    (lint_parts (program, table, [| p0; stray |], Bytes.of_string "\001\000"))

let test_t209_illegal_continuation () =
  let program, table, instances, _ = legal_parts () in
  let p0 = instances.(0) in
  let cont =
    intern table ~head:4 ~bits:[] ~blocks:[| 4 |] ~end_kind:Path.Program_end
  in
  (* p0 ended with a backward transfer, not a matched return or a capped
     branch: no continuation may follow. *)
  check_has_code "continuation after a backward transfer" "T209"
    (lint_parts (program, table, [| p0; cont |], Bytes.of_string "\001\002"))

let test_of_parts_rejects_errors () =
  let program, table, _, _ = legal_parts () in
  (* All blocks exist and the id is in range, so only the lint hook can
     notice that 2 -> 1 is not a transfer block 2's jump can make. *)
  let p =
    intern table ~head:0 ~bits:[ true ] ~blocks:[| 0; 2; 1 |]
      ~end_kind:Path.Program_end
  in
  let vm_stats =
    {
      Hotpath_vm.Vm.reason = `Exited; blocks = 7; branches = 3; calls = 0;
      returns = 0; indirects = 0; backward_transfers = 1; max_stack = 0;
    }
  in
  match
    Recorder.of_parts ~program ~table ~instances:[| p |]
      ~arrivals:(Bytes.of_string "\001") ~vm_stats
  with
  | Ok _ -> Alcotest.fail "of_parts accepted a corrupt instance stream"
  | Error e ->
    let contains sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message carries the code (got %S)" e)
      true (contains "T204" e)

(* ------------------------------------------------------------------ *)
(* Fixture corpus sweep                                                *)
(* ------------------------------------------------------------------ *)

let test_fixture_corpus () =
  let names =
    Array.to_list (Sys.readdir "fixtures")
    |> List.filter (fun n -> Filename.check_suffix n ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length names >= 5);
  List.iter
    (fun name ->
       let diags = Check.file (Filename.concat "fixtures" name) in
       if String.length name >= 6 && String.sub name 0 6 = "valid_" then
         Alcotest.(check bool)
           (Printf.sprintf "%s lints without errors (got [%s])" name (codes diags))
           false (Diag.has_errors diags)
       else
         Alcotest.(check bool)
           (Printf.sprintf "%s yields an error diagnostic" name)
           true (Diag.has_errors diags))
    names

let test_check_file_missing () =
  check_has_code "missing file" "T200" (Check.file "fixtures/no_such_file.trace")

(* ------------------------------------------------------------------ *)
(* Properties over random workloads                                    *)
(* ------------------------------------------------------------------ *)

let gen_loop_kind =
  QCheck.Gen.(
    let* branches = 0 -- 5 in
    let* bias = float_range 0.5 0.95 in
    let* iterations = 2 -- 50 in
    let* calls = bool in
    let* indirect = oneofl [ 0; 0; 0; 2; 3; 4 ] in
    return (Generator.loop ~branches ~bias ~iterations ~calls ~indirect ()))

let gen_spec =
  QCheck.Gen.(
    let* n_groups = 1 -- 3 in
    let* groups =
      list_repeat n_groups
        (let* count = 1 -- 3 in
         let* kind = gen_loop_kind in
         return (count, kind))
    in
    let* procs = 1 -- 3 in
    return
      { Generator.g_name = "prop"; g_loops = groups; g_procs = procs;
        g_phase_steps = None })

let arb_workload =
  QCheck.make
    ~print:(fun (spec, seed) ->
      Printf.sprintf "{loops=%d procs=%d} seed=%d" (Generator.total_loops spec)
        spec.Generator.g_procs seed)
    QCheck.Gen.(pair gen_spec (0 -- 1_000_000))

let record_spec (spec, seed) =
  let program, behavior = Generator.build spec ~seed in
  let recorded =
    Recorder.record ~max_steps:12_000 program behavior
      ~rng:(Prng.create ~seed:(seed + 1))
  in
  (program, recorded)

let prop_dynamic_heads_in_static_set =
  QCheck.Test.make ~name:"dynamic loop-head set is inside the static head set"
    ~count:40 arb_workload
    (fun w ->
       let program, recorded = record_spec w in
       let hs = Bounds.static_heads program in
       let ok = ref true in
       Array.iteri
         (fun i pid ->
            match Recorder.arrival recorded i with
            | Path.Loop_head ->
              let head = Path.head (Path_table.path recorded.Recorder.table pid) in
              if not hs.Bounds.full.(head) then ok := false
            | Path.Entry | Path.Continuation -> ())
         recorded.Recorder.instances;
       !ok)

let prop_static_bl_matches_instrumentation =
  QCheck.Test.make ~name:"static Ball-Larus count equals the instrumented count"
    ~count:30 arb_workload
    (fun (spec, seed) ->
       let program, _ = Generator.build spec ~seed in
       Array.for_all
         (fun proc ->
            match Bounds.bl_paths program ~proc:proc.Cfg.pid with
            | Bounds.Exact n ->
              n = Ball_larus.num_paths (Ball_larus.analyze program ~proc:proc.Cfg.pid)
            | Bounds.Overflow -> (
                match Ball_larus.analyze program ~proc:proc.Cfg.pid with
                | _ -> false
                | exception Invalid_argument _ -> true))
         program.Cfg.procs)

let prop_counter_space_within_static_bounds =
  QCheck.Test.make ~name:"replay counter space stays within the static bounds"
    ~count:30 arb_workload
    (fun w ->
       let program, recorded = record_spec w in
       Recorder.num_instances recorded = 0
       ||
       let hs = Bounds.static_heads program in
       let net = Replay.run (module Net) ~delay:5 recorded in
       let pp = Replay.run (module Path_profile) ~delay:5 recorded in
       net.Replay.counter_space <= Bounds.full_head_count hs
       && pp.Replay.counter_space <= Recorder.num_paths recorded
       && Bounds.count_le (Bounds.Exact (Recorder.num_paths recorded))
            (Bounds.forward_walks program))

let prop_structural_lint_iff_validate =
  QCheck.Test.make ~name:"structural lint is empty exactly when validate passes"
    ~count:40 arb_workload
    (fun (spec, seed) ->
       let program, _ = Generator.build spec ~seed in
       (Lint.structural program = [] && Cfg.validate program = Ok ())
       &&
       (* Break it and both must flag. *)
       let broken =
         { program with
           Cfg.blocks =
             Array.map
               (fun b ->
                  if b.Cfg.id = Cfg.entry_block program then
                    { b with Cfg.term = Cfg.Jump 999_999 }
                  else b)
               program.Cfg.blocks }
       in
       Lint.structural broken <> [] && Cfg.validate broken <> Ok ())

let prop_recordings_lint_without_errors =
  QCheck.Test.make ~name:"real recordings carry no error-severity findings"
    ~count:30 arb_workload
    (fun w ->
       let _, recorded = record_spec w in
       not (Diag.has_errors (Recorder.lint recorded)))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "dominators: diamond" `Quick test_dominators_diamond;
        Alcotest.test_case "dominators: unreachable" `Quick test_dominators_unreachable;
        Alcotest.test_case "loops: diamond" `Quick test_loops_diamond;
        Alcotest.test_case "loops: nested" `Quick test_loops_nested;
        Alcotest.test_case "loops: irreducible" `Quick test_irreducible;
        Alcotest.test_case "heads: diamond" `Quick test_heads_diamond;
        Alcotest.test_case "heads: full vs paper" `Quick test_full_vs_paper_heads;
        Alcotest.test_case "bl: diamond differential" `Quick test_bl_paths_diamond;
        Alcotest.test_case "bl: count arithmetic" `Quick test_count_arithmetic;
        Alcotest.test_case "bl: forward walks" `Quick test_forward_walks_bound;
        Alcotest.test_case "report: compress pinned" `Quick test_compress_report_pinned;
        Alcotest.test_case "bl: suite differential" `Slow test_suite_bl_differential;
        Alcotest.test_case "suite lints clean" `Slow test_suite_lints_clean;
      ] );
    ( "analysis:inject",
      [
        Alcotest.test_case "P100 empty proc" `Quick test_p100_empty_proc;
        Alcotest.test_case "P101 non-dense ids" `Quick test_p101_non_dense_ids;
        Alcotest.test_case "P102 entry not first" `Quick test_p102_entry_not_first;
        Alcotest.test_case "P103 target range" `Quick test_p103_target_out_of_range;
        Alcotest.test_case "P104 cross-proc" `Quick test_p104_cross_proc_jump;
        Alcotest.test_case "P105 zero weight" `Quick test_p105_zero_weight;
        Alcotest.test_case "P106 empty indirect" `Quick test_p106_empty_indirect;
        Alcotest.test_case "P107 bad callee" `Quick test_p107_bad_callee;
        Alcotest.test_case "P109 unreachable" `Quick test_p109_unreachable;
        Alcotest.test_case "P111 no return" `Quick test_p111_no_return;
        Alcotest.test_case "P112 explosion" `Quick test_p112_explosion;
        Alcotest.test_case "legal trace clean" `Quick test_legal_trace_clean;
        Alcotest.test_case "T201 unknown path id" `Quick test_t201_unknown_path_id;
        Alcotest.test_case "T202 containers" `Quick test_t202_container_mismatch;
        Alcotest.test_case "T203 head mismatch" `Quick test_t203_signature_head_mismatch;
        Alcotest.test_case "T204 backward transfer" `Quick test_t204_backward_intra_transfer;
        Alcotest.test_case "T205 end kind" `Quick test_t205_implausible_end_kind;
        Alcotest.test_case "T206 entry mid-trace" `Quick test_t206_entry_mid_trace;
        Alcotest.test_case "T207 hand-off" `Quick test_t207_impossible_hand_off;
        Alcotest.test_case "T208 head set" `Quick test_t208_head_outside_static_set;
        Alcotest.test_case "T209 continuation" `Quick test_t209_illegal_continuation;
        Alcotest.test_case "of_parts gate" `Quick test_of_parts_rejects_errors;
        Alcotest.test_case "fixture corpus" `Quick test_fixture_corpus;
        Alcotest.test_case "missing file" `Quick test_check_file_missing;
      ] );
    ( "analysis:properties",
      [
        QCheck_alcotest.to_alcotest prop_dynamic_heads_in_static_set;
        QCheck_alcotest.to_alcotest prop_static_bl_matches_instrumentation;
        QCheck_alcotest.to_alcotest prop_counter_space_within_static_bounds;
        QCheck_alcotest.to_alcotest prop_structural_lint_iff_validate;
        QCheck_alcotest.to_alcotest prop_recordings_lint_without_errors;
      ] );
  ]
