(* Tests for the versioned binary trace format. *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Serialize = Hotpath_trace.Serialize
module Path_table = Hotpath_trace.Path_table
module Path = Hotpath_trace.Path
module Signature = Hotpath_trace.Signature
module Vm = Hotpath_vm.Vm
module Replay = Hotpath_prediction.Replay
module Net = Hotpath_prediction.Net
module Prng = Hotpath_util.Prng

let record_fixture ?(seed = 7) () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.02 () in
  Recorder.record ~max_steps:20_000 program behavior ~rng:(Prng.create ~seed)

let record_calls () =
  let program, behavior, _ = Fixtures.call_loop ~iterations:20 () in
  Recorder.record program behavior ~rng:(Prng.create ~seed:3)

let check_same_recording a b =
  Alcotest.(check (array int)) "instances" a.Recorder.instances b.Recorder.instances;
  Alcotest.(check bytes) "arrivals" a.Recorder.arrivals b.Recorder.arrivals;
  Alcotest.(check int) "paths" (Recorder.num_paths a) (Recorder.num_paths b);
  Path_table.iter
    (fun p ->
       let q = Path_table.path b.Recorder.table p.Path.id in
       Alcotest.(check bool) "same signature" true
         (Signature.equal p.Path.signature q.Path.signature);
       Alcotest.(check (array int)) "same blocks" p.Path.blocks q.Path.blocks;
       Alcotest.(check int) "same instrs" p.Path.n_instrs q.Path.n_instrs;
       Alcotest.(check bool) "same end kind" true (p.Path.end_kind = q.Path.end_kind))
    a.Recorder.table;
  Alcotest.(check int) "stats blocks" a.Recorder.vm_stats.Vm.blocks
    b.Recorder.vm_stats.Vm.blocks;
  Alcotest.(check bool) "stats reason" true
    (a.Recorder.vm_stats.Vm.reason = b.Recorder.vm_stats.Vm.reason)

let roundtrip r =
  match Serialize.of_string (Serialize.to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_roundtrip_indirect () =
  let r = record_fixture () in
  check_same_recording r (roundtrip r)

let test_roundtrip_calls () =
  let r = record_calls () in
  check_same_recording r (roundtrip r)

let test_roundtrip_preserves_replay () =
  (* The real invariant: analyses over the reloaded trace are identical. *)
  let r = record_fixture () in
  let r' = roundtrip r in
  let o = Replay.run (module Net) ~delay:7 r in
  let o' = Replay.run (module Net) ~delay:7 r' in
  Alcotest.(check (array int)) "same predictions" o.Replay.predicted_at
    o'.Replay.predicted_at;
  Alcotest.(check int) "same counters" o.Replay.counter_space o'.Replay.counter_space

let test_roundtrip_suite_benchmark () =
  let bench = Hotpath_workloads.Suite.find_exn "deltablue" in
  let r = Hotpath_workloads.Suite.record ~scale:0.01 bench in
  check_same_recording r (roundtrip r)

let test_file_roundtrip () =
  let r = record_fixture () in
  let path = Filename.temp_file "hotpath" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Serialize.save r ~path;
       match Serialize.load ~path with
       | Ok r' -> check_same_recording r r'
       | Error e -> Alcotest.failf "load failed: %s" e)

let test_load_missing_file () =
  match Serialize.load ~path:"/nonexistent/hotpath.trace" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file"

let expect_error name s =
  match Serialize.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: corrupt input accepted" name

let test_rejects_bad_magic () =
  let r = record_fixture () in
  let s = Bytes.of_string (Serialize.to_string r) in
  Bytes.set s 0 'X';
  expect_error "bad magic" (Bytes.to_string s)

let test_rejects_truncation () =
  let r = record_fixture () in
  let s = Serialize.to_string r in
  List.iter
    (fun keep -> expect_error "truncated" (String.sub s 0 keep))
    [ 4; String.length s / 3; String.length s - 1 ]

let test_rejects_trailing_garbage () =
  let r = record_fixture () in
  expect_error "trailing" (Serialize.to_string r ^ "junk")

let test_rejects_bitflips () =
  (* Flip bytes across the payload; every corruption must yield Error or a
     recording that still satisfies the structural invariants (it must
     never crash). *)
  let r = record_fixture () in
  let s = Serialize.to_string r in
  let n = String.length s in
  for i = 0 to 19 do
    let pos = 8 + (i * (n - 9) / 19) in
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
    match Serialize.of_string (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
  done

let test_read_at_offset () =
  let r = record_fixture () in
  let payload = Serialize.to_string r in
  let s = "prefix__" ^ payload in
  (match Serialize.read s ~pos:8 with
   | Ok (r', finish) ->
     Alcotest.(check int) "consumed to end" (String.length s) finish;
     check_same_recording r r'
   | Error e -> Alcotest.failf "offset read failed: %s" e)

let test_large_counts_roundtrip () =
  (* HOTPATH2 widened the unbounded counts (block weights, per-path
     instruction counts) to 64 bits: values past 2^31 must survive a round
     trip instead of being silently truncated. *)
  let r = record_fixture () in
  let big = (1 lsl 31) + 7 in
  let program =
    {
      r.Recorder.program with
      Cfg.blocks =
        Array.map
          (fun b -> { b with Cfg.weight = b.Cfg.weight + big })
          r.Recorder.program.Cfg.blocks;
    }
  in
  let table = Path_table.create () in
  Path_table.iter
    (fun p ->
       ignore
         (Path_table.intern table p.Path.signature ~blocks:p.Path.blocks
            ~n_instrs:(p.Path.n_instrs + big) ~n_branches:p.Path.n_branches
            ~end_kind:p.Path.end_kind))
    r.Recorder.table;
  match
    Recorder.of_parts ~program ~table ~instances:r.Recorder.instances
      ~arrivals:r.Recorder.arrivals ~vm_stats:r.Recorder.vm_stats
  with
  | Error e -> Alcotest.failf "fixture rebuild failed: %s" e
  | Ok big_r ->
    let r' = roundtrip big_r in
    Array.iteri
      (fun i (b : Cfg.block) ->
         Alcotest.(check int) "weight past 2^31" b.Cfg.weight
           r'.Recorder.program.Cfg.blocks.(i).Cfg.weight)
      program.Cfg.blocks;
    Path_table.iter
      (fun p ->
         Alcotest.(check int) "n_instrs past 2^31" p.Path.n_instrs
           (Path_table.path r'.Recorder.table p.Path.id).Path.n_instrs)
      big_r.Recorder.table

let test_oversized_i32_raises () =
  (* A 32-bit field that cannot represent its value must raise on write,
     never truncate. *)
  let b = Cfg.Builder.create ~name:"overflow" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let table = Path_table.create () in
  let sigb = Signature.Builder.create ~head:0 in
  (* Indirect targets are interned verbatim in the signature and stored as
     32-bit ids on disk. *)
  Signature.Builder.add_indirect sigb ~target:(1 lsl 32);
  ignore
    (Path_table.intern table
       (Signature.Builder.freeze sigb)
       ~blocks:[| 0 |] ~n_instrs:1 ~n_branches:0 ~end_kind:Path.Program_end);
  match
    Recorder.of_parts ~program ~table ~instances:[| 0 |]
      ~arrivals:(Bytes.make 1 '\000')
      ~vm_stats:(record_fixture ()).Recorder.vm_stats
  with
  | Error e -> Alcotest.failf "fixture rebuild failed: %s" e
  | Ok r -> (
      match Serialize.to_string r with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "oversized 32-bit field silently accepted")

let test_of_parts_validation () =
  let r = record_fixture () in
  let bad_instances = Array.make (Recorder.num_instances r) 999_999 in
  (match
     Recorder.of_parts ~program:r.Recorder.program ~table:r.Recorder.table
       ~instances:bad_instances ~arrivals:r.Recorder.arrivals
       ~vm_stats:r.Recorder.vm_stats
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "out-of-range instance accepted");
  match
    Recorder.of_parts ~program:r.Recorder.program ~table:r.Recorder.table
      ~instances:r.Recorder.instances ~arrivals:(Bytes.create 1)
      ~vm_stats:r.Recorder.vm_stats
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arrival-length mismatch accepted"

let suites =
  [
    ( "trace.serialize",
      [
        Alcotest.test_case "roundtrip indirect loop" `Quick test_roundtrip_indirect;
        Alcotest.test_case "roundtrip call loop" `Quick test_roundtrip_calls;
        Alcotest.test_case "roundtrip preserves replay" `Quick
          test_roundtrip_preserves_replay;
        Alcotest.test_case "roundtrip suite benchmark" `Quick
          test_roundtrip_suite_benchmark;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "missing file" `Quick test_load_missing_file;
        Alcotest.test_case "bad magic" `Quick test_rejects_bad_magic;
        Alcotest.test_case "truncation" `Quick test_rejects_truncation;
        Alcotest.test_case "trailing garbage" `Quick test_rejects_trailing_garbage;
        Alcotest.test_case "bitflips never crash" `Quick test_rejects_bitflips;
        Alcotest.test_case "read at offset" `Quick test_read_at_offset;
        Alcotest.test_case "counts past 2^31 roundtrip" `Quick
          test_large_counts_roundtrip;
        Alcotest.test_case "oversized 32-bit field raises" `Quick
          test_oversized_i32_raises;
        Alcotest.test_case "of_parts validation" `Quick test_of_parts_validation;
      ] );
  ]
