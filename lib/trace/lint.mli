(** Trace-vs-program consistency linter.

    Validates that a recording's path table and instance stream could
    have been produced by the {!Segmenter} running over the given
    program: every intra-path transfer is legal for its source block's
    terminator and goes forward, every inter-instance hand-off matches
    the previous path's ending transfer, every loop-head arrival is a
    backward transfer into the static head set
    ({!Hotpath_analysis.Bounds.static_heads}), and the recorded path
    metadata agrees with the program.

    Codes ([T2xx]; severities as noted):
    - [T201] instance references a path id outside the table
    - [T202] arrivals/instances length mismatch or invalid arrival byte
    - [T203] path structure: empty block list, block out of range, or
      signature head differing from the first block
    - [T204] illegal intra-path transfer (backward, target not reachable
      from the source terminator, continues past a matched return or
      exit)
    - [T205] recorded end kind impossible for the path's last block
    - [T206] entry arrival in the middle of the trace (error); trace not
      beginning with an entry arrival at the program entry (warning —
      partial traces and hand-built fixtures do this deliberately)
    - [T207] inter-instance hand-off impossible: the previous path's
      ending transfer cannot reach the next head
    - [T208] loop-head arrival that is not backward or whose head is
      outside the static potential-head set
    - [T209] continuation arrival that is not forward or does not follow
      a matched return / capped branch
    - [T210] (warning) stored [n_instrs]/[n_branches] disagree with the
      program (rescaled-program fixtures trip this legitimately)

    This module deliberately takes the recording as raw parts so that
    {!Recorder.of_parts} can run it as its validation gate. *)

open Hotpath_cfg
module Diag = Hotpath_analysis.Diag

val check_parts :
  program:Cfg.program ->
  table:Path_table.t ->
  instances:int array ->
  arrivals:Bytes.t ->
  Diag.t list
(** All diagnostics, path-table findings first, then instance-stream
    findings in stream order.  If the program itself is structurally
    broken the program diagnostics are returned alone ([P1xx]); if the
    containers are inconsistent ([T201]/[T202]) the per-instance walk is
    skipped. *)

(** Chunk-wise linting for online sessions.

    Applies the same [T2xx] checks as {!check_parts}, but one instance
    chunk at a time against a path table that grows between chunks (the
    streaming decode protocol extends the table, then delivers the
    instances that reference the new paths).  The only inter-chunk state
    is the previous instance's path facts, so chunk boundaries are
    invisible: on a clean trace, the concatenation of every
    {!Incremental.check_chunk} result plus {!Incremental.flush_paths} equals
    the {!check_parts} diagnostics for the whole trace (program
    diagnostics aside, which {!Incremental.create} reports once).

    A chunk that produces any error is {e not committed}: the linter's
    seam state is left untouched, so a caller can reject the chunk
    before mutating its own prediction state and remain consistent.
    (Path-structure findings are committed regardless — they belong to
    the table, which has already grown.) *)
module Incremental : sig
  type t

  val create :
    program:Cfg.program -> table:Path_table.t -> (t, Diag.t list) result
  (** [Error diags] iff the program itself fails the structural gate
      ([P1xx] errors); the trace checks would be meaningless. *)

  val program_diags : t -> Diag.t list
  (** Program-level warnings from the structural gate (empty or
      warnings only — errors surface through [create]). *)

  val check_chunk : t -> ids:int array -> arrivals:Bytes.t -> Diag.t list
  (** Lint newly declared paths, the chunk's containers, and every
      inter-instance hand-off including the seam from the previous
      chunk.  Commits the seam state only when no error was found. *)

  val check_batch : t -> Batch.t -> Diag.t list
  (** {!check_chunk} over a decoded {!Batch.t} — same checks, same
      diagnostics, same commit protocol, reading the widened int arrival
      codes instead of packed bytes.  A batch and the chunk it decodes
      produce identical results. *)

  val flush_paths : t -> Diag.t list
  (** Lint paths declared since the last call without consuming any
      instances — for end-of-stream table extensions. *)

  val instances : t -> int
  (** Instances accepted (committed) so far. *)
end
