(** Sliding-window interner for k-iteration paths (D'Elia & Demetrescu,
    arXiv:1304.5197).

    A k-iteration path is a window of up to [k] consecutive acyclic path
    instances chained by {!Path.Loop_head} arrivals; an {!Path.Entry} or
    {!Path.Continuation} arrival restarts the chain, and once the chain
    is [k] deep the window slides.  The interner assigns each distinct
    window a dense id in first-materialization order — the counter index
    a k-iteration path profiler accumulates into.

    At [k = 1] every window is a single path instance, the window id
    order is the first-observation order of path ids, and the structure
    degenerates to a per-path-id counter table — which is how the
    [path-profile-k1] scheme reduces bit-identically to [path-profile]. *)

type t

val create : k:int -> t
(** @raise Invalid_argument when [k < 1]. *)

val k : t -> int

val root : int
(** The empty window (node 0) — the initial cursor of every lane. *)

val advance : t -> cur:int -> arrival:Path.head_kind -> pid:int -> int
(** The window after observing instance [pid] with [arrival], given the
    current window [cur]: a chain restart on [Entry]/[Continuation], an
    extension (sliding once [k] deep) on [Loop_head].  Interns the
    window on first sight. *)

val num_nodes : t -> int
(** Windows materialized so far, the root included — [num_nodes - 1] is
    the allocated counter space of a profiler keyed on this trie
    (windows created while linking suffixes included, as in a k-slab
    forest). *)

val depth : t -> int -> int
(** Window length of a node ([0] for {!root}, at most [k]). *)

(** Flattened interner for the replay kernels: the same automaton with
    the top trie level (children of the root) in a dense pid-indexed
    array and deeper children in an open-addressed int table — no
    hashtable buckets or boxing on the hot walk.  Node ids are
    bit-identical to the reference interner above for any advance
    sequence (allocation order is preserved exactly), so
    [num_nodes - 1] reports the same counter space. *)
module Flat : sig
  type t

  val create : k:int -> t
  (** @raise Invalid_argument when [k < 1]. *)

  val k : t -> int

  val advance : t -> cur:int -> arrival:Path.head_kind -> pid:int -> int

  val num_nodes : t -> int

  val depth : t -> int -> int
end
