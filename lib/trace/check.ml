module Diag = Hotpath_analysis.Diag

let recording (r : Recorder.t) =
  let prog = Hotpath_analysis.Lint.check_program r.Recorder.program in
  let trace =
    Lint.check_parts ~program:r.Recorder.program ~table:r.Recorder.table
      ~instances:r.Recorder.instances ~arrivals:r.Recorder.arrivals
  in
  (* check_parts re-runs the structural pass; keep only its trace codes
     so program findings are not reported twice. *)
  prog @ List.filter (fun d -> d.Diag.code.[0] = 'T') trace

let file path =
  match Serialize.load ~path with
  | Ok r -> recording r
  | Error e -> [ Diag.error ~code:"T200" ~loc:Diag.Program "%s" e ]
  | exception Sys_error e -> [ Diag.error ~code:"T200" ~loc:Diag.Program "%s" e ]

let program ?cap p = Hotpath_analysis.Lint.check_program ?cap p
