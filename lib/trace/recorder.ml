module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Behavior = Hotpath_vm.Behavior
module Vec = Hotpath_util.Vec

type descriptors = {
  d_heads : int array;
  d_branches : int array;
  d_blocks : int array;
}

type loop_index = {
  li_idx : int array;
  li_occ : int array;
  li_run_pid : int array;
  li_run_off : int array;
  li_run_len : int array;
  li_freq : int array;
}

type t = {
  program : Cfg.program;
  table : Path_table.t;
  instances : int array;
  arrivals : Bytes.t;
  vm_stats : Vm.run_stats;
  cache_descriptors : descriptors option Atomic.t;
  cache_arrival_view : Path.head_kind array option Atomic.t;
  cache_loop_index : loop_index option Atomic.t;
}

let arrival_code = function
  | Path.Loop_head -> '\000'
  | Path.Entry -> '\001'
  | Path.Continuation -> '\002'

let arrival_of_code = function
  | '\000' -> Path.Loop_head
  | '\001' -> Path.Entry
  | '\002' -> Path.Continuation
  | c -> invalid_arg (Printf.sprintf "Recorder: bad arrival code %d" (Char.code c))

type chunked_summary = {
  cs_instances : int;
  cs_paths : int;
  cs_vm_stats : Vm.run_stats;
}

let default_chunk_instances = 65_536

let record_chunked ?(max_steps = max_int) ?(max_paths = max_int) ?max_stack
    ?(chunk_instances = default_chunk_instances) program behavior ~rng ~flush
    ~finish =
  if chunk_instances < 1 then
    invalid_arg "Recorder.record_chunked: chunk_instances must be >= 1";
  let vm = Vm.create ?max_stack program behavior ~rng in
  let seg = Segmenter.create program in
  let table = Path_table.create () in
  let chunk_ids = Vec.create ~capacity:(min chunk_instances 65_536) () in
  let chunk_arrivals = Buffer.create (min chunk_instances 65_536) in
  let total = ref 0 in
  let flush_chunk () =
    if not (Vec.is_empty chunk_ids) then begin
      flush ~table ~ids:(Vec.to_array chunk_ids)
        ~arrivals:(Buffer.to_bytes chunk_arrivals);
      Vec.clear chunk_ids;
      Buffer.clear chunk_arrivals
    end
  in
  let branches = ref 0
  and calls = ref 0
  and returns = ref 0
  and indirects = ref 0
  and backward = ref 0
  and max_stack_seen = ref 0 in
  let rec loop () =
    if !total >= max_paths then `Max_paths
    else if Vm.blocks_executed vm >= max_steps then `Fuel
    else
      match Vm.step vm with
      | None -> `Exited
      | Some tr ->
        (match tr.Vm.kind with
         | Vm.T_branch _ -> incr branches
         | Vm.T_call -> incr calls
         | Vm.T_return -> incr returns
         | Vm.T_indirect -> incr indirects
         | Vm.T_jump | Vm.T_exit -> ());
        if tr.Vm.backward then incr backward;
        max_stack_seen := max !max_stack_seen (Vm.stack_depth vm);
        (match Segmenter.feed seg tr with
         | Some c ->
           let id =
             Path_table.intern table c.Segmenter.c_signature
               ~blocks:c.Segmenter.c_blocks ~n_instrs:c.Segmenter.c_n_instrs
               ~n_branches:c.Segmenter.c_n_branches ~end_kind:c.Segmenter.c_end_kind
           in
           Vec.push chunk_ids id;
           Buffer.add_char chunk_arrivals (arrival_code c.Segmenter.c_arrival);
           incr total;
           if Vec.length chunk_ids >= chunk_instances then flush_chunk ()
         | None -> ());
        if tr.Vm.kind = Vm.T_exit then `Exited else loop ()
  in
  let reason = loop () in
  (* A path cut off by fuel (or by [max_paths]) is discarded: a truncated
     prefix is not a completed path, and because non-branch transfers add
     no signature bits it could collide with a genuine path that continues
     through a jump chain.  Paths ended by program exit were yielded by the
     segmenter inside the loop. *)
  let vm_stats =
    {
      Vm.reason = (match reason with `Exited -> `Exited | `Fuel | `Max_paths -> `Fuel);
      blocks = Vm.blocks_executed vm;
      branches = !branches;
      calls = !calls;
      returns = !returns;
      indirects = !indirects;
      backward_transfers = !backward;
      max_stack = !max_stack_seen;
    }
  in
  flush_chunk ();
  finish ~table ~vm_stats;
  { cs_instances = !total; cs_paths = Path_table.size table; cs_vm_stats = vm_stats }

let record ?max_steps ?max_paths ?max_stack program behavior ~rng =
  let instances = Vec.create () in
  let arrivals = Buffer.create 4096 in
  let result = ref None in
  ignore
    (record_chunked ?max_steps ?max_paths ?max_stack program behavior ~rng
       ~flush:(fun ~table:_ ~ids ~arrivals:arr ->
           Array.iter (Vec.push instances) ids;
           Buffer.add_bytes arrivals arr)
       ~finish:(fun ~table ~vm_stats -> result := Some (table, vm_stats)));
  match !result with
  | None -> assert false
  | Some (table, vm_stats) ->
    {
      program;
      table;
      instances = Vec.to_array instances;
      arrivals = Buffer.to_bytes arrivals;
      vm_stats;
      cache_descriptors = Atomic.make None;
      cache_arrival_view = Atomic.make None;
      cache_loop_index = Atomic.make None;
    }

let of_parts ~program ~table ~instances ~arrivals ~vm_stats =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match Cfg.validate program with
  | Error e -> err "invalid program: %s" e
  | Ok () ->
    let n_paths = Path_table.size table in
    let n_blocks = Array.length program.Cfg.blocks in
    if Bytes.length arrivals <> Array.length instances then
      err "arrivals length %d <> instances length %d" (Bytes.length arrivals)
        (Array.length instances)
    else if Array.exists (fun id -> id < 0 || id >= n_paths) instances then
      err "instance path id out of range"
    else if
      Bytes.exists (fun c -> Char.code c > 2) arrivals
    then err "invalid arrival code"
    else begin
      let bad_path = ref None in
      Path_table.iter
        (fun p ->
           if
             !bad_path = None
             && Array.exists (fun b -> b < 0 || b >= n_blocks) p.Path.blocks
           then bad_path := Some p.Path.id)
        table;
      match !bad_path with
      | Some id -> err "path %d references blocks outside the program" id
      | None -> (
          match
            List.find_opt
              (fun d -> d.Hotpath_analysis.Diag.severity = Hotpath_analysis.Diag.Error)
              (Lint.check_parts ~program ~table ~instances ~arrivals)
          with
          | Some d -> err "%s" (Hotpath_analysis.Diag.to_string d)
          | None ->
            Ok
              {
                program;
                table;
                instances;
                arrivals;
                vm_stats;
                cache_descriptors = Atomic.make None;
                cache_arrival_view = Atomic.make None;
                cache_loop_index = Atomic.make None;
              })
    end

let lint t =
  Lint.check_parts ~program:t.program ~table:t.table ~instances:t.instances
    ~arrivals:t.arrivals

let num_instances t = Array.length t.instances

let num_paths t = Path_table.size t.table

(* Lazily computed, atomically published caches.  Replay is fanned out
   over domains by the experiment layer, so two domains may race to fill
   a cache; compare-and-set keeps one winner and the loser adopts it —
   the computed value is a pure function of the (immutable) recording, so
   either copy is correct. *)
let cached cell compute =
  match Atomic.get cell with
  | Some v -> v
  | None ->
    let v = compute () in
    if Atomic.compare_and_set cell None (Some v) then v
    else Option.get (Atomic.get cell)

let descriptors t =
  cached t.cache_descriptors (fun () ->
      let n_paths = Path_table.size t.table in
      let d_heads = Array.make n_paths 0
      and d_branches = Array.make n_paths 0
      and d_blocks = Array.make n_paths 0 in
      Path_table.iter
        (fun p ->
           d_heads.(p.Path.id) <- Path.head p;
           d_branches.(p.Path.id) <- p.Path.n_branches;
           d_blocks.(p.Path.id) <- Array.length p.Path.blocks)
        t.table;
      { d_heads; d_branches; d_blocks })

let arrival_view t =
  cached t.cache_arrival_view (fun () ->
      Array.init (Bytes.length t.arrivals) (fun i ->
          arrival_of_code (Bytes.get t.arrivals i)))

(* The NET replay kernels consume the trace only through its loop-head
   events (index + running occurrence count of the event's own path)
   grouped into maximal same-path runs per head — everything else is
   closed form over the final frequencies.  That compression is a pure
   function of the recording, so compute it once here and let every
   replay of the recording skip the raw-instance walk entirely.  A run
   is maximal over *consecutive loop-head events*; the chunk-sharded
   engine may split it anywhere, since a split run is just two shorter
   runs advancing the same carried counter. *)
let loop_index t =
  cached t.cache_loop_index (fun () ->
      let d = descriptors t in
      let heads = d.d_heads in
      let instances = t.instances in
      let arrivals = t.arrivals in
      let n = Array.length instances in
      let n_blocks = Array.length t.program.Cfg.blocks in
      let freq = Array.make (Path_table.size t.table) 0 in
      let open_run = Array.make n_blocks (-1) in
      let idx = Vec.create () and occ = Vec.create () in
      let run_pid = Vec.create ()
      and run_off = Vec.create ()
      and run_len = Vec.create () in
      for i = 0 to n - 1 do
        let pid = Array.unsafe_get instances i in
        let f = Array.unsafe_get freq pid + 1 in
        Array.unsafe_set freq pid f;
        if Bytes.unsafe_get arrivals i = '\000' (* loop head *) then begin
          let j = Vec.length idx in
          Vec.push idx i;
          Vec.push occ f;
          let h = Array.unsafe_get heads pid in
          let ri = Array.unsafe_get open_run h in
          if
            ri >= 0
            && Vec.get run_pid ri = pid
            && Vec.get run_off ri + Vec.get run_len ri = j
          then Vec.set run_len ri (Vec.get run_len ri + 1)
          else begin
            let ri = Vec.length run_pid in
            Vec.push run_pid pid;
            Vec.push run_off j;
            Vec.push run_len 1;
            Array.unsafe_set open_run h ri
          end
        end
      done;
      {
        li_idx = Vec.to_array idx;
        li_occ = Vec.to_array occ;
        li_run_pid = Vec.to_array run_pid;
        li_run_off = Vec.to_array run_off;
        li_run_len = Vec.to_array run_len;
        li_freq = freq;
      })

let instance_path t i = Path_table.path t.table t.instances.(i)

let arrival t i = arrival_of_code (Bytes.get t.arrivals i)

let frequencies t =
  let freq = Array.make (Path_table.size t.table) 0 in
  Array.iter (fun id -> freq.(id) <- freq.(id) + 1) t.instances;
  freq

let head_arrival_counts t =
  let counts = Hashtbl.create 64 in
  Array.iteri
    (fun i id ->
       if arrival t i = Path.Loop_head then begin
         let head = Path.head (Path_table.path t.table id) in
         let prev = Option.value ~default:0 (Hashtbl.find_opt counts head) in
         Hashtbl.replace counts head (prev + 1)
       end)
    t.instances;
  counts

let unique_loop_heads t = Hashtbl.length (head_arrival_counts t)

let block_trace t =
  List.concat_map
    (fun id -> Array.to_list (Path_table.path t.table id).Path.blocks)
    (Array.to_list t.instances)
