(** Trace recording: run the VM once, segment the transfer stream into
    interprocedural forward paths, and keep the whole execution as a dense
    sequence of path-instance ids.

    Everything the paper measures — path frequencies, hot sets, hit and
    noise rates for any scheme at any prediction delay, Dynamo cycle
    accounting — is then an O(trace) replay over the recorded arrays, with
    no re-interpretation.  This is what makes the full Figure 2/3 delay
    sweeps tractable (DESIGN.md §5). *)

module Cfg = Hotpath_cfg.Cfg

type descriptors = private {
  d_heads : int array;  (** Per path id: head block. *)
  d_branches : int array;  (** Per path id: branches on the path. *)
  d_blocks : int array;  (** Per path id: blocks on the path. *)
}
(** Per-path descriptors in dense arrays, the form the replay hot loop
    reads them in. *)

type loop_index = private {
  li_idx : int array;  (** Per loop-head event: instance index. *)
  li_occ : int array;
      (** Per loop-head event: occurrence count of the event's own path,
          that event included (running, trace-global). *)
  li_run_pid : int array;  (** Per run: the repeated path id. *)
  li_run_off : int array;  (** Per run: first event (index into [li_idx]). *)
  li_run_len : int array;  (** Per run: events in the run (>= 1). *)
  li_freq : int array;  (** Final execution count per path id. *)
}
(** The trace compressed to what the NET replay kernels consume: the
    loop-head event stream, grouped into maximal runs of consecutive
    events repeating one path, plus final frequencies.  A run split at
    any point is two shorter runs advancing the same counter, so
    chunk-sharded consumers may window it freely. *)

type t = private {
  program : Cfg.program;
  table : Path_table.t;
  instances : int array;  (** Path id per executed path instance, in order. *)
  arrivals : Bytes.t;
      (** Head kind per instance, encoded: 0 = loop head, 1 = entry,
          2 = continuation. *)
  vm_stats : Hotpath_vm.Vm.run_stats;
  cache_descriptors : descriptors option Atomic.t;
      (** Internal {!descriptors} cache — do not touch. *)
  cache_arrival_view : Path.head_kind array option Atomic.t;
      (** Internal {!arrival_view} cache — do not touch. *)
  cache_loop_index : loop_index option Atomic.t;
      (** Internal {!loop_index} cache — do not touch. *)
}

val record :
  ?max_steps:int ->
  ?max_paths:int ->
  ?max_stack:int ->
  Cfg.program ->
  Hotpath_vm.Behavior.t ->
  rng:Hotpath_util.Prng.t ->
  t
(** Interpret the program and record its paths.  [max_steps] bounds
    executed blocks; [max_paths] stops after that many completed path
    instances.  Only {e completed} paths are recorded: a partial path cut
    off by fuel or the instance budget is discarded (a truncated prefix
    could collide with a genuine path that continues through bit-less
    transfers), while a path terminated by program exit is completed with
    end kind [Program_end].  For naturally exiting programs, concatenating
    the recorded paths' blocks reproduces the executed block sequence
    exactly. *)

type chunked_summary = {
  cs_instances : int;  (** Completed path instances recorded. *)
  cs_paths : int;  (** Distinct paths interned. *)
  cs_vm_stats : Hotpath_vm.Vm.run_stats;
}

val default_chunk_instances : int
(** Instances per flushed chunk when none is given (65,536). *)

val record_chunked :
  ?max_steps:int ->
  ?max_paths:int ->
  ?max_stack:int ->
  ?chunk_instances:int ->
  Cfg.program ->
  Hotpath_vm.Behavior.t ->
  rng:Hotpath_util.Prng.t ->
  flush:(table:Path_table.t -> ids:int array -> arrivals:Bytes.t -> unit) ->
  finish:(table:Path_table.t -> vm_stats:Hotpath_vm.Vm.run_stats -> unit) ->
  chunked_summary
(** Incremental-flush recording: interpret the program exactly as
    {!record} does, but hand completed instances to [flush] in chunks of
    [chunk_instances] instead of materializing the whole stream.  [flush]
    receives the (shared, still-growing) path table plus the chunk's
    instance ids and arrival codes — each id references a path already in
    the table at flush time.  [flush] is called only with non-empty
    chunks, in trace order; [finish] is called exactly once, after the
    final flush, with the complete table and the VM statistics (also for
    an empty trace).  Peak memory is O(paths + chunk), not O(trace):
    together with {!Serialize.Stream} this is what lets paper-scale runs
    be recorded and replayed without ever holding the instance stream.
    The interning order, ids, and statistics are identical to {!record}'s
    at every chunk size.
    @raise Invalid_argument when [chunk_instances < 1]. *)

val arrival_of_code : char -> Path.head_kind
(** Decode an arrival byte (the encoding of the [arrivals] field and of
    streamed chunks): 0 = loop head, 1 = entry, 2 = continuation.
    @raise Invalid_argument on any other byte. *)

val of_parts :
  program:Cfg.program ->
  table:Path_table.t ->
  instances:int array ->
  arrivals:Bytes.t ->
  vm_stats:Hotpath_vm.Vm.run_stats ->
  (t, string) result
(** Reassemble a recording (deserialization support).  Validates that the
    program is well-formed, every instance id is a table path, arrival
    codes are in range and as numerous as the instances, and every path's
    blocks exist in the program — then runs the full trace linter
    ([Hotpath_trace.Lint.check_parts]): transfer legality, arrival
    consistency, head-set membership, end-kind plausibility.  Any
    error-severity finding rejects the parts (first finding as the
    message); warnings (e.g. metadata that disagrees with a rescaled
    program) are tolerated — retrieve them with {!lint}. *)

val lint : t -> Hotpath_analysis.Diag.t list
(** Re-run the trace linter on an assembled recording.  Recordings made
    by {!record} and loads accepted by {!of_parts} report no
    error-severity findings; warnings may remain. *)

val num_instances : t -> int
(** Total flow: the number of path executions (the paper's [Flow]). *)

val num_paths : t -> int
(** Distinct paths (the paper's #Paths). *)

val instance_path : t -> int -> Path.t
(** Path executed by instance [i]. *)

val arrival : t -> int -> Path.head_kind

val descriptors : t -> descriptors
(** Per-path head/branch-count/block-count arrays.  Computed on first
    use and cached in the recording (atomically — replay is fanned out
    over domains), so the per-traversal cost replay used to pay is paid
    once per recording. *)

val arrival_view : t -> Path.head_kind array
(** The [arrivals] bytes decoded (via {!arrival_of_code}) into one
    [head_kind] per instance, cached like {!descriptors}.  Hoists the
    per-instance decode out of replay loops; costs one word per instance
    on first use. *)

val loop_index : t -> loop_index
(** The loop-head event/run compression of the trace, computed on first
    use and cached like {!descriptors}.  Replaying a recording many
    times (delay sweeps, repeated [?jobs] runs) then never re-walks the
    raw instance stream for NET — the kernels read the runs directly.
    Costs a few words per loop-head event, held for the recording's
    lifetime. *)

val frequencies : t -> int array
(** Execution count per path id — the paper's [freq(p)]. *)

val head_arrival_counts : t -> (Cfg.block_id, int) Hashtbl.t
(** Per head block: how many instances arrived at it via a backward taken
    transfer — the counter values a NET profiler with an infinite delay
    would accumulate. *)

val unique_loop_heads : t -> int
(** Distinct blocks ever arrived at as loop heads — NET's dynamic counter
    space. *)

val block_trace : t -> Cfg.block_id list
(** The executed block sequence, reconstructed by concatenating path
    blocks.  Intended for tests (linear in trace length but builds a
    list — do not call on large traces). *)
