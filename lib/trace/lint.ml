module Cfg = Hotpath_cfg.Cfg
module Diag = Hotpath_analysis.Diag
module Bounds = Hotpath_analysis.Bounds

(* Per-path facts the instance-stream walk needs about the *previous*
   instance's path: its last block, whether a call on the path is still
   unreturned at the end (the next return is matched), the return_to of
   the most recent such call, and — for branch-ended paths — which arm
   the final signature bit selects. *)
type path_facts = {
  mutable f_ok : bool;  (* structure sound; instance checks may use it *)
  mutable f_head : int;
  mutable f_last : int;
  mutable f_matched : bool;  (* unreturned on-path call at path end *)
  mutable f_last_push : int;  (* return_to of the most recent on-path call *)
  mutable f_arm : int;  (* final-bit branch arm when the last block is a Branch *)
  mutable f_capped : bool;  (* path carries max_branches signature bits *)
}

let fresh_facts () =
  { f_ok = false; f_head = -1; f_last = -1; f_matched = false;
    f_last_push = -1; f_arm = -1; f_capped = false }

let ret_targets_of program =
  Array.init (Cfg.num_procs program) (fun q ->
      Array.of_list (Cfg.return_targets program q))

(* Per-path structural and transfer-legality checks; fills [f] and emits
   diagnostics through [add].  Shared by the whole-trace linter and the
   chunk-wise {!Incremental} one, so a path is judged identically however
   it reaches the linter. *)
let lint_path program ret_targets ~n_blocks add (p : Path.t) f =
  let id = p.Path.id in
  let loc = Diag.Path id in
  let blocks = p.Path.blocks in
  let n = Array.length blocks in
  if n = 0 then add (Diag.error ~code:"T203" ~loc "empty block sequence")
  else if Array.exists (fun b -> b < 0 || b >= n_blocks) blocks then
    add (Diag.error ~code:"T203" ~loc "block outside the program")
  else begin
    f.f_ok <- true;
    f.f_head <- blocks.(0);
    f.f_last <- blocks.(n - 1);
    if Signature.head p.Path.signature <> blocks.(0) then begin
      f.f_ok <- false;
      add
        (Diag.error ~code:"T203" ~loc
           "signature head %d differs from first block %d"
           (Signature.head p.Path.signature) blocks.(0))
    end;
    let calls = ref 0 and last_push = ref (-1) in
    let nb = ref 0 and instrs = ref 0 in
    for i = 0 to n - 1 do
      let u = blocks.(i) in
      let bu = Cfg.block program u in
      instrs := !instrs + bu.Cfg.weight;
      (match bu.Cfg.term with Cfg.Branch _ -> incr nb | _ -> ());
      (match bu.Cfg.term with
       | Cfg.Call { return_to; _ } ->
         incr calls;
         last_push := return_to
       | _ -> ());
      if i < n - 1 then begin
        let v = blocks.(i + 1) in
        let bad fmt =
          Printf.ksprintf
            (fun s ->
               f.f_ok <- false;
               add (Diag.error ~code:"T204" ~loc "%s" s))
            fmt
        in
        if v <= u then bad "backward transfer %d -> %d inside a path" u v
        else begin
          match bu.Cfg.term with
          | Cfg.Branch { taken; fallthrough } ->
            if v <> taken && v <> fallthrough then
              bad "%d -> %d matches neither branch arm" u v
          | Cfg.Jump t -> if v <> t then bad "%d -> %d is not the jump target" u v
          | Cfg.Indirect ts ->
            if not (Array.exists (fun t -> t = v) ts) then
              bad "%d -> %d is not an indirect target" u v
          | Cfg.Call { callee; _ } ->
            if v <> (Cfg.proc program callee).Cfg.entry then
              bad "%d -> %d is not the entry of callee %d" u v callee
            (* the push above models this call *)
          | Cfg.Return ->
            (* A return matching an on-path call ends the path, so a
               continuing return must be unmatched (crossing), and
               forward into some caller's return_to. *)
            if !calls > 0 then bad "continues past a matched return at %d" u
            else if
              not (Array.exists (fun t -> t = v) ret_targets.(bu.Cfg.proc))
            then bad "%d -> %d is not a caller's return_to" u v
          | Cfg.Exit -> bad "continues past exit at %d" u
        end
      end
    done;
    f.f_matched <- !calls > 0;
    f.f_last_push <- !last_push;
    f.f_capped <- !nb = Signature.max_branches;
    if !nb <> p.Path.n_branches then
      add
        (Diag.warning ~code:"T210" ~loc
           "stored n_branches %d, program implies %d" p.Path.n_branches !nb);
    if !instrs <> p.Path.n_instrs then
      add
        (Diag.warning ~code:"T210" ~loc "stored n_instrs %d, program implies %d"
           p.Path.n_instrs !instrs);
    (* The final signature bit selects the ending arm of a
       branch-terminated path (the segmenter records the bit before
       deciding whether the transfer ends the path). *)
    let last_term = (Cfg.block program f.f_last).Cfg.term in
    (match last_term with
     | Cfg.Branch { taken; fallthrough } ->
       let bits = Signature.length p.Path.signature in
       if bits > 0 then
         f.f_arm <-
           (if Signature.bit p.Path.signature (bits - 1) then taken
            else fallthrough)
     | _ -> ());
    if f.f_ok then begin
      let last = f.f_last in
      let plausible =
        match p.Path.end_kind with
        | Path.Matched_return ->
          (match last_term with Cfg.Return -> f.f_matched | _ -> false)
        | Path.Cap ->
          (match last_term with
           | Cfg.Branch _ ->
             !nb = Signature.max_branches && f.f_arm > last
           | _ -> false)
        | Path.Program_end ->
          (match last_term with
           | Cfg.Exit -> true
           | Cfg.Return -> not f.f_matched
           | _ -> false)
        | Path.Backward_transfer -> (
            match last_term with
            | Cfg.Branch _ -> f.f_arm <> -1 && f.f_arm <= last
            | Cfg.Jump t -> t <= last
            | Cfg.Indirect ts -> Array.exists (fun t -> t <= last) ts
            | Cfg.Call { callee; _ } ->
              (Cfg.proc program callee).Cfg.entry <= last
            | Cfg.Return ->
              if f.f_matched then f.f_last_push <= last
              else
                Array.exists
                  (fun t -> t <= last)
                  ret_targets.((Cfg.block program last).Cfg.proc)
            | Cfg.Exit -> false)
      in
      if not plausible then
        add
          (Diag.error ~code:"T205" ~loc
             "end kind %s impossible for last block %d"
             (Path.end_kind_to_string p.Path.end_kind)
             last)
    end
  end

(* The very first instance of a trace: expected to be an entry arrival at
   the program's entry block (warning only — partial traces and
   hand-built fixtures legitimately start elsewhere). *)
let lint_first program add f0 a0 =
  if
    f0.f_ok
    && not (a0 = '\001' && f0.f_head = Cfg.entry_block program)
  then
    add
      (Diag.warning ~code:"T206" ~loc:(Diag.Instance 0)
         "trace does not begin with an entry arrival at block %d"
         (Cfg.entry_block program))

(* One inter-instance hand-off: the previous instance's path ends, the
   current one begins with arrival byte [a] at global instance index
   [i].  Shared between the whole-trace walk and the chunk-wise one —
   chunk boundaries are invisible because the only carried state is the
   previous path's facts. *)
let lint_step program heads ret_targets add ~prev ~cur ~a ~i =
  if prev.f_ok && cur.f_ok then begin
    let h = cur.f_head and pl = prev.f_last in
    let loc = Diag.Instance i in
    (* Can the previous path's ending transfer reach [h]? *)
    let hand_off_possible () =
      match (Cfg.block program pl).Cfg.term with
      | Cfg.Branch _ -> h = prev.f_arm
      | Cfg.Jump t -> h = t
      | Cfg.Indirect ts -> Array.exists (fun t -> t = h) ts
      | Cfg.Call { callee; _ } -> h = (Cfg.proc program callee).Cfg.entry
      | Cfg.Return ->
        if prev.f_matched then h = prev.f_last_push
        else Array.exists (fun t -> t = h) ret_targets.((Cfg.block program pl).Cfg.proc)
      | Cfg.Exit -> false
    in
    match a with
    | '\001' ->
      add
        (Diag.error ~code:"T206" ~loc "entry arrival in the middle of the trace")
    | '\000' ->
      (* Loop head: the hand-off transfer must be backward and the
         head must be a static potential path head. *)
      if h > pl then
        add
          (Diag.error ~code:"T208" ~loc
             "loop-head arrival %d -> %d is a forward transfer" pl h)
      else begin
        if not heads.Bounds.full.(h) then
          add
            (Diag.error ~code:"T208" ~loc
               "head %d is outside the static potential-head set" h);
        if not (hand_off_possible ()) then
          add
            (Diag.error ~code:"T207" ~loc
               "no transfer from %d can reach head %d" pl h)
      end
    | _ ->
      (* Continuation: forward, and only after a matched return or a
         capped branch. *)
      if h <= pl then
        add
          (Diag.error ~code:"T209" ~loc
             "continuation arrival %d -> %d is not forward" pl h)
      else begin
        let legal =
          match (Cfg.block program pl).Cfg.term with
          | Cfg.Return -> prev.f_matched && h = prev.f_last_push
          | Cfg.Branch _ -> prev.f_capped && h = prev.f_arm
          | _ -> false
        in
        if not legal then
          add
            (Diag.error ~code:"T209" ~loc
               "continuation %d -> %d follows neither a matched return nor a \
                capped branch"
               pl h)
      end
  end

let check_parts ~program ~table ~instances ~arrivals =
  let prog_diags = Hotpath_analysis.Lint.structural program in
  if Diag.has_errors prog_diags then prog_diags
  else begin
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let n_paths = Path_table.size table in
    let n_blocks = Cfg.num_blocks program in
    (* Container checks: if these fail, the instance walk is meaningless. *)
    let containers_ok = ref true in
    if Bytes.length arrivals <> Array.length instances then begin
      containers_ok := false;
      add
        (Diag.error ~code:"T202" ~loc:Diag.Program
           "arrivals length %d differs from instance count %d" (Bytes.length arrivals)
           (Array.length instances))
    end;
    Array.iteri
      (fun i id ->
         if id < 0 || id >= n_paths then begin
           containers_ok := false;
           add
             (Diag.error ~code:"T201" ~loc:(Diag.Instance i)
                "path id %d outside table of %d paths" id n_paths)
         end)
      instances;
    Bytes.iteri
      (fun i c ->
         if Char.code c > 2 then begin
           containers_ok := false;
           add
             (Diag.error ~code:"T202" ~loc:(Diag.Instance i) "invalid arrival code %d"
                (Char.code c))
         end)
      arrivals;
    let ret_targets = ret_targets_of program in
    let heads = Bounds.static_heads program in
    let facts = Array.init n_paths (fun _ -> fresh_facts ()) in
    (* Per-path structural and transfer-legality checks. *)
    Path_table.iter
      (fun p -> lint_path program ret_targets ~n_blocks add p facts.(p.Path.id))
      table;
    (* Instance-stream checks. *)
    if !containers_ok then begin
      let n = Array.length instances in
      if n > 0 then
        lint_first program add facts.(instances.(0)) (Bytes.get arrivals 0);
      for i = 1 to n - 1 do
        lint_step program heads ret_targets add ~prev:facts.(instances.(i - 1))
          ~cur:facts.(instances.(i))
          ~a:(Bytes.get arrivals i) ~i
      done
    end;
    prog_diags @ List.rev !diags
  end

(* ------------------------------------------------------------------ *)
(* Chunk-wise linting                                                  *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  type linter = {
    i_program : Cfg.program;
    i_table : Path_table.t;
    i_ret_targets : int array array;
    i_heads : Bounds.head_sets;
    i_n_blocks : int;
    mutable i_facts : path_facts array;  (* capacity; [i_synced] live *)
    mutable i_synced : int;
    mutable i_prev : int;  (* path id of the last accepted instance, -1 *)
    mutable i_seen : int;  (* accepted instances so far *)
    i_program_diags : Diag.t list;
  }

  type t = linter

  let create ~program ~table =
    let prog_diags = Hotpath_analysis.Lint.structural program in
    if Diag.has_errors prog_diags then Error prog_diags
    else
      Ok
        {
          i_program = program;
          i_table = table;
          i_ret_targets = ret_targets_of program;
          i_heads = Bounds.static_heads program;
          i_n_blocks = Cfg.num_blocks program;
          i_facts = [||];
          i_synced = 0;
          i_prev = -1;
          i_seen = 0;
          i_program_diags = prog_diags;
        }

  let program_diags t = t.i_program_diags

  let instances t = t.i_seen

  (* Lint every path declared since the last sync, exactly as
     [check_parts] would, attributing the findings to the chunk that
     first made the path reachable. *)
  let sync_paths t add =
    let np = Path_table.size t.i_table in
    if np > t.i_synced then begin
      if np > Array.length t.i_facts then begin
        let cap = max np (max 64 (2 * Array.length t.i_facts)) in
        let facts = Array.init cap (fun _ -> fresh_facts ()) in
        Array.blit t.i_facts 0 facts 0 t.i_synced;
        t.i_facts <- facts
      end;
      for id = t.i_synced to np - 1 do
        lint_path t.i_program t.i_ret_targets ~n_blocks:t.i_n_blocks add
          (Path_table.path t.i_table id)
          t.i_facts.(id)
      done;
      t.i_synced <- np
    end

  let flush_paths t =
    let diags = ref [] in
    sync_paths t (fun d -> diags := d :: !diags);
    List.rev !diags

  (* The shared chunk walk, generic over how instance [j]'s path id and
     arrival code are fetched — the packed-bytes chunk and the widened
     int-array batch feed the same checks and seam protocol, so the two
     ingest surfaces accept exactly the same streams.  [n_codes] may
     exceed [n] only for the bytes form, where a mislengthed arrivals
     container is still scanned for invalid codes in full. *)
  let check_gen t ~n ~n_codes ~id_at ~code_at ~len_diag =
    let diags = ref [] in
    let add d = diags := d :: !diags in
    sync_paths t add;
    let containers_ok = ref true in
    (match len_diag with
     | Some d ->
       containers_ok := false;
       add d
     | None -> ());
    for j = 0 to n - 1 do
      let id = id_at j in
      if id < 0 || id >= t.i_synced then begin
        containers_ok := false;
        add
          (Diag.error ~code:"T201" ~loc:(Diag.Instance (t.i_seen + j))
             "path id %d outside table of %d paths" id t.i_synced)
      end
    done;
    for j = 0 to n_codes - 1 do
      let c = code_at j in
      if c < 0 || c > 2 then begin
        containers_ok := false;
        add
          (Diag.error ~code:"T202" ~loc:(Diag.Instance (t.i_seen + j))
             "invalid arrival code %d" c)
      end
    done;
    if !containers_ok then begin
      let prev = ref t.i_prev in
      for j = 0 to n - 1 do
        let i = t.i_seen + j in
        let cur = id_at j in
        if i = 0 then lint_first t.i_program add t.i_facts.(cur) (Char.chr (code_at 0))
        else
          lint_step t.i_program t.i_heads t.i_ret_targets add
            ~prev:t.i_facts.(!prev) ~cur:t.i_facts.(cur)
            ~a:(Char.chr (code_at j)) ~i;
        prev := cur
      done;
      let out = List.rev !diags in
      (* Commit the seam state only when the chunk is clean: a rejected
         chunk leaves the linter (and therefore the caller's session)
         exactly where it was. *)
      if not (Diag.has_errors out) then begin
        t.i_prev <- !prev;
        t.i_seen <- t.i_seen + n
      end;
      out
    end
    else List.rev !diags

  let check_chunk t ~ids ~arrivals =
    let n = Array.length ids in
    let len_diag =
      if Bytes.length arrivals <> n then
        Some
          (Diag.error ~code:"T202" ~loc:Diag.Program
             "arrivals length %d differs from instance count %d"
             (Bytes.length arrivals) n)
      else None
    in
    check_gen t ~n ~n_codes:(Bytes.length arrivals)
      ~id_at:(fun j -> Array.get ids j)
      ~code_at:(fun j -> Char.code (Bytes.get arrivals j))
      ~len_diag

  let check_batch t (b : Batch.t) =
    let n = Batch.length b in
    let ids = b.Batch.ids and arrs = b.Batch.arrs in
    check_gen t ~n ~n_codes:n
      ~id_at:(fun j -> Array.get ids j)
      ~code_at:(fun j -> Array.get arrs j)
      ~len_diag:None
end
