(* Sliding-window interner for k-iteration paths.

   A k-iteration path is a window of up to [k] consecutive acyclic path
   instances chained by [Loop_head] arrivals: an [Entry] or
   [Continuation] arrival restarts the chain at the arriving instance,
   and once the chain is [k] deep the window slides (the oldest
   component drops off).  Nodes of the trie are exactly the windows
   materialized so far; node 0 is the root (the empty window).

   Each node carries a suffix link — the node for its window minus the
   oldest component — so advancing a full-depth window is one child
   lookup from the suffix, never a re-walk of the window.  Suffix
   targets are created on demand (recursion bounded by [k]); such nodes
   are windows a real k-iteration profiler materializes while
   navigating, so they count toward the allocated tracking space even
   when never themselves counted. *)

type t = {
  k : int;
  children : (int, int) Hashtbl.t;  (* (node, pid) packed -> node *)
  depth : int Hotpath_util.Vec.t;
  suffix : int Hotpath_util.Vec.t;
}

module Vec = Hotpath_util.Vec

let root = 0

(* Child keys pack (node, pid) into one immediate: node ids and path ids
   are both dense table indices, far below 2^31 in any recordable
   trace. *)
let key node pid = (node lsl 31) lor pid

let create ~k =
  if k < 1 then invalid_arg "Kpath.create: k must be >= 1";
  let depth = Vec.create () and suffix = Vec.create () in
  Vec.push depth 0;
  Vec.push suffix 0;
  { k; children = Hashtbl.create 256; depth; suffix }

let k t = t.k

let num_nodes t = Vec.length t.depth

let depth t node = Vec.get t.depth node

(* [child t base pid]: the node for [base]'s window extended by [pid],
   created (with its suffix chain) on first use. *)
let rec child t base pid =
  match Hashtbl.find_opt t.children (key base pid) with
  | Some n -> n
  | None ->
    let n = Vec.length t.depth in
    Hashtbl.add t.children (key base pid) n;
    Vec.push t.depth (Vec.get t.depth base + 1);
    (* Reserve the slot before recursing: the suffix chain may allocate
       further nodes, but never this window again (its key is bound). *)
    Vec.push t.suffix root;
    if base <> root then Vec.set t.suffix n (child t (Vec.get t.suffix base) pid);
    n

let advance t ~cur ~arrival ~pid =
  match (arrival : Path.head_kind) with
  | Path.Entry | Path.Continuation ->
    (* Chain restart: the window is the arriving instance alone. *)
    child t root pid
  | Path.Loop_head ->
    let base = if Vec.get t.depth cur < t.k then cur else Vec.get t.suffix cur in
    child t base pid
