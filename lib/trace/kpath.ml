(* Sliding-window interner for k-iteration paths.

   A k-iteration path is a window of up to [k] consecutive acyclic path
   instances chained by [Loop_head] arrivals: an [Entry] or
   [Continuation] arrival restarts the chain at the arriving instance,
   and once the chain is [k] deep the window slides (the oldest
   component drops off).  Nodes of the trie are exactly the windows
   materialized so far; node 0 is the root (the empty window).

   Each node carries a suffix link — the node for its window minus the
   oldest component — so advancing a full-depth window is one child
   lookup from the suffix, never a re-walk of the window.  Suffix
   targets are created on demand (recursion bounded by [k]); such nodes
   are windows a real k-iteration profiler materializes while
   navigating, so they count toward the allocated tracking space even
   when never themselves counted. *)

type t = {
  k : int;
  children : (int, int) Hashtbl.t;  (* (node, pid) packed -> node *)
  depth : int Hotpath_util.Vec.t;
  suffix : int Hotpath_util.Vec.t;
}

module Vec = Hotpath_util.Vec

let root = 0

(* Child keys pack (node, pid) into one immediate: node ids and path ids
   are both dense table indices, far below 2^31 in any recordable
   trace. *)
let key node pid = (node lsl 31) lor pid

let create ~k =
  if k < 1 then invalid_arg "Kpath.create: k must be >= 1";
  let depth = Vec.create () and suffix = Vec.create () in
  Vec.push depth 0;
  Vec.push suffix 0;
  { k; children = Hashtbl.create 256; depth; suffix }

let k t = t.k

let num_nodes t = Vec.length t.depth

let depth t node = Vec.get t.depth node

(* [child t base pid]: the node for [base]'s window extended by [pid],
   created (with its suffix chain) on first use. *)
let rec child t base pid =
  match Hashtbl.find_opt t.children (key base pid) with
  | Some n -> n
  | None ->
    let n = Vec.length t.depth in
    Hashtbl.add t.children (key base pid) n;
    Vec.push t.depth (Vec.get t.depth base + 1);
    (* Reserve the slot before recursing: the suffix chain may allocate
       further nodes, but never this window again (its key is bound). *)
    Vec.push t.suffix root;
    if base <> root then Vec.set t.suffix n (child t (Vec.get t.suffix base) pid);
    n

let advance t ~cur ~arrival ~pid =
  match (arrival : Path.head_kind) with
  | Path.Entry | Path.Continuation ->
    (* Chain restart: the window is the arriving instance alone. *)
    child t root pid
  | Path.Loop_head ->
    let base = if Vec.get t.depth cur < t.k then cur else Vec.get t.suffix cur in
    child t base pid

(* Flattened variant for the replay kernels.

   Same automaton, hot-structure layout: the top trie level (children
   of the root — where every chain restart and every suffix chain
   bottoms out) is a dense pid-indexed array, deeper children live in
   an open-addressed int->int table (no boxing, no bucket chains), and
   depth/suffix are plain int arrays.  Node ids are bit-identical to
   the Hashtbl interner on any advance sequence because allocation
   order is preserved exactly: reserve the node and bind its key
   {e before} recursing the suffix chain, as [child] above does. *)
module Flat = struct
  type flat = {
    fk : int;
    mutable level1 : int array;  (* pid -> node, -1 when absent *)
    mutable h_key : int array;  (* open addressing; -1 marks empty *)
    mutable h_val : int array;
    mutable h_mask : int;  (* capacity - 1, capacity a power of two *)
    mutable h_count : int;
    mutable f_depth : int array;
    mutable f_suffix : int array;
    mutable f_nodes : int;
  }

  type t = flat

  let create ~k =
    if k < 1 then invalid_arg "Kpath.Flat.create: k must be >= 1";
    {
      fk = k;
      level1 = Array.make 64 (-1);
      h_key = Array.make 1024 (-1);
      h_val = Array.make 1024 0;
      h_mask = 1023;
      h_count = 0;
      f_depth = Array.make 1024 0;
      f_suffix = Array.make 1024 0;
      f_nodes = 1 (* the root *);
    }

  let k t = t.fk

  let num_nodes t = t.f_nodes

  let depth t node = t.f_depth.(node)

  (* Deep keys are always >= 2^31 (base >= 1), so they never collide
     with the -1 empty sentinel.  Fibonacci-style multiplicative hash;
     the high bits carry the mix, so index with them. *)
  let slot key mask = (key * 0x9E3779B97F4A7C1) lsr 30 land mask

  let new_node t ~depth =
    let n = t.f_nodes in
    if n >= Array.length t.f_depth then begin
      let cap = 2 * Array.length t.f_depth in
      let d = Array.make cap 0 and s = Array.make cap 0 in
      Array.blit t.f_depth 0 d 0 n;
      Array.blit t.f_suffix 0 s 0 n;
      t.f_depth <- d;
      t.f_suffix <- s
    end;
    t.f_depth.(n) <- depth;
    t.f_suffix.(n) <- root;
    t.f_nodes <- n + 1;
    n

  let rehash t =
    let cap = 2 * (t.h_mask + 1) in
    let mask = cap - 1 in
    let nk = Array.make cap (-1) and nv = Array.make cap 0 in
    let ok = t.h_key and ov = t.h_val in
    for i = 0 to Array.length ok - 1 do
      let key = Array.unsafe_get ok i in
      if key >= 0 then begin
        let j = ref (slot key mask) in
        while Array.unsafe_get nk !j >= 0 do
          j := (!j + 1) land mask
        done;
        nk.(!j) <- key;
        nv.(!j) <- ov.(i)
      end
    done;
    t.h_key <- nk;
    t.h_val <- nv;
    t.h_mask <- mask

  let ensure_level1 t pid =
    if pid >= Array.length t.level1 then begin
      let cap = ref (2 * Array.length t.level1) in
      while pid >= !cap do
        cap := 2 * !cap
      done;
      let a = Array.make !cap (-1) in
      Array.blit t.level1 0 a 0 (Array.length t.level1);
      t.level1 <- a
    end

  (* Mirrors [child] above, including allocation order. *)
  let rec child t base pid =
    if base = root then begin
      ensure_level1 t pid;
      let n = Array.unsafe_get t.level1 pid in
      if n >= 0 then n
      else begin
        let n = new_node t ~depth:1 in
        t.level1.(pid) <- n;
        (* Depth-1 suffix is the root: nothing to recurse. *)
        n
      end
    end
    else begin
      let key = (base lsl 31) lor pid in
      let mask = t.h_mask in
      let j = ref (slot key mask) in
      let k = ref (Array.unsafe_get t.h_key !j) in
      while !k >= 0 && !k <> key do
        j := (!j + 1) land mask;
        k := Array.unsafe_get t.h_key !j
      done;
      if !k = key then Array.unsafe_get t.h_val !j
      else begin
        let n = new_node t ~depth:(t.f_depth.(base) + 1) in
        t.h_key.(!j) <- key;
        t.h_val.(!j) <- n;
        t.h_count <- t.h_count + 1;
        (* Key bound, node reserved — now the suffix chain may allocate
           (and even rehash) without revisiting this window. *)
        let suffix = child t t.f_suffix.(base) pid in
        t.f_suffix.(n) <- suffix;
        if 2 * t.h_count >= t.h_mask + 1 then rehash t;
        n
      end
    end

  let advance t ~cur ~arrival ~pid =
    match (arrival : Path.head_kind) with
    | Path.Entry | Path.Continuation -> child t root pid
    | Path.Loop_head ->
      let base =
        if Array.unsafe_get t.f_depth cur < t.fk then cur
        else Array.unsafe_get t.f_suffix cur
      in
      child t base pid
end
