module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Vec = Hotpath_util.Vec
module Crc32 = Hotpath_util.Crc32

(* HOTPATH2: the unbounded count fields (block weights, per-path
   instruction counts) moved from 32 to 64 bits, and 32-bit writes became
   range-checked instead of silently truncating.  HOTPATH3 (the [Stream]
   module below) is the framed, CRC-protected chunk format. *)
let magic = "HOTPATH2"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_uint8 buf v

let add_i32 buf v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg
      (Printf.sprintf "Serialize.add_i32: %d does not fit in 32 bits" v);
  Buffer.add_int32_le buf (Int32.of_int v)

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_raw_i64 buf v = Buffer.add_int64_le buf v

let add_str buf s =
  add_i32 buf (String.length s);
  Buffer.add_string buf s

let add_int_array buf arr =
  add_i32 buf (Array.length arr);
  Array.iter (add_i32 buf) arr

let add_terminator buf = function
  | Cfg.Branch { taken; fallthrough } ->
    add_u8 buf 0;
    add_i32 buf taken;
    add_i32 buf fallthrough
  | Cfg.Jump t ->
    add_u8 buf 1;
    add_i32 buf t
  | Cfg.Indirect targets ->
    add_u8 buf 2;
    add_int_array buf targets
  | Cfg.Call { callee; return_to } ->
    add_u8 buf 3;
    add_i32 buf callee;
    add_i32 buf return_to
  | Cfg.Return -> add_u8 buf 4
  | Cfg.Exit -> add_u8 buf 5

let add_program buf (p : Cfg.program) =
  add_str buf p.Cfg.pname;
  add_i32 buf p.Cfg.main;
  add_i32 buf (Array.length p.Cfg.procs);
  Array.iter
    (fun (pr : Cfg.proc) ->
       add_str buf pr.Cfg.name;
       add_int_array buf pr.Cfg.blocks)
    p.Cfg.procs;
  add_i32 buf (Array.length p.Cfg.blocks);
  Array.iter
    (fun (b : Cfg.block) ->
       add_i32 buf b.Cfg.proc;
       add_i64 buf b.Cfg.weight;
       add_terminator buf b.Cfg.term)
    p.Cfg.blocks

let end_kind_code = function
  | Path.Backward_transfer -> 0
  | Path.Matched_return -> 1
  | Path.Cap -> 2
  | Path.Program_end -> 3

let add_path buf (p : Path.t) =
  let s = p.Path.signature in
  add_i32 buf (Signature.head s);
  add_u8 buf (Signature.length s);
  add_raw_i64 buf (Signature.history s);
  add_int_array buf (Array.of_list (Signature.indirect_targets s));
  add_int_array buf p.Path.blocks;
  add_i64 buf p.Path.n_instrs;
  add_u8 buf (end_kind_code p.Path.end_kind)

let add_stats buf (s : Vm.run_stats) =
  add_u8 buf (match s.Vm.reason with `Exited -> 0 | `Fuel -> 1);
  List.iter (add_i64 buf)
    [ s.Vm.blocks; s.Vm.branches; s.Vm.calls; s.Vm.returns; s.Vm.indirects;
      s.Vm.backward_transfers; s.Vm.max_stack ]

let write (r : Recorder.t) buf =
  Buffer.add_string buf magic;
  add_program buf r.Recorder.program;
  add_i32 buf (Path_table.size r.Recorder.table);
  Path_table.iter (add_path buf) r.Recorder.table;
  add_i64 buf (Array.length r.Recorder.instances);
  Array.iter (add_i32 buf) r.Recorder.instances;
  Buffer.add_bytes buf r.Recorder.arrivals;
  add_stats buf r.Recorder.vm_stats

let to_string r =
  let buf = Buffer.create (1 lsl 16) in
  write r buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse of string

type cursor = { s : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

(* Overflow-safe: [n] may be any 64-bit count from a corrupt input, so the
   bound is checked by subtraction, never by [pos + n]. *)
let need c n =
  if n < 0 || c.pos > String.length c.s - n then
    fail "truncated input at offset %d (need %d bytes)" c.pos n

let remaining c = String.length c.s - c.pos

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  v

let get_raw_i64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let get_i64 c =
  let v = get_raw_i64 c in
  match Int64.unsigned_to_int v with
  | Some n -> n
  | None -> fail "64-bit value out of range at offset %d" (c.pos - 8)

let get_str c =
  let n = get_i32 c in
  if n < 0 then fail "negative string length";
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_int_array c =
  let n = get_i32 c in
  if n < 0 then fail "negative array length";
  need c (n * 4);
  Array.init n (fun _ -> get_i32 c)

let get_terminator c =
  match get_u8 c with
  | 0 ->
    let taken = get_i32 c in
    let fallthrough = get_i32 c in
    Cfg.Branch { taken; fallthrough }
  | 1 -> Cfg.Jump (get_i32 c)
  | 2 -> Cfg.Indirect (get_int_array c)
  | 3 ->
    let callee = get_i32 c in
    let return_to = get_i32 c in
    Cfg.Call { callee; return_to }
  | 4 -> Cfg.Return
  | 5 -> Cfg.Exit
  | tag -> fail "unknown terminator tag %d" tag

(* Count plausibility is bounded against the bytes actually present: every
   procedure record is at least 8 bytes, every block at least 13, every
   path at least 30.  This rejects corrupt counts before [Array.init]
   would allocate gigabytes (or raise an uncaught [Invalid_argument]). *)
let get_program c =
  let pname = get_str c in
  let main = get_i32 c in
  let n_procs = get_i32 c in
  if n_procs < 0 || n_procs > 1_000_000 || n_procs > remaining c / 8 then
    fail "implausible proc count %d" n_procs;
  let procs =
    Array.init n_procs (fun pid ->
        let name = get_str c in
        let blocks = get_int_array c in
        if Array.length blocks = 0 then fail "procedure %s has no blocks" name;
        { Cfg.pid; name; entry = blocks.(0); blocks })
  in
  let n_blocks = get_i32 c in
  if n_blocks < 0 || n_blocks > 100_000_000 || n_blocks > remaining c / 13 then
    fail "implausible block count %d" n_blocks;
  let blocks =
    Array.init n_blocks (fun id ->
        let proc = get_i32 c in
        let weight = get_i64 c in
        let term = get_terminator c in
        { Cfg.id; proc; weight; term })
  in
  { Cfg.pname; blocks; procs; main }

let end_kind_of_code = function
  | 0 -> Path.Backward_transfer
  | 1 -> Path.Matched_return
  | 2 -> Path.Cap
  | 3 -> Path.Program_end
  | tag -> fail "unknown end-kind tag %d" tag

let get_path c table expected_id ~n_blocks =
  let head = get_i32 c in
  let len = get_u8 c in
  if len > Signature.max_branches then fail "signature length %d over cap" len;
  let bits = get_raw_i64 c in
  let indirects = get_int_array c in
  let sigb = Signature.Builder.create ~head in
  for i = 0 to len - 1 do
    Signature.Builder.add_branch sigb
      ~taken:(Int64.(logand (shift_right_logical bits i) 1L) = 1L)
  done;
  Array.iter (fun target -> Signature.Builder.add_indirect sigb ~target) indirects;
  let signature = Signature.Builder.freeze sigb in
  let blocks = get_int_array c in
  if Array.length blocks = 0 then fail "path %d has no blocks" expected_id;
  Array.iter
    (fun b ->
       if b < 0 || b >= n_blocks then
         fail "path %d references block %d outside the program" expected_id b)
    blocks;
  let n_instrs = get_i64 c in
  let end_kind = end_kind_of_code (get_u8 c) in
  if Path_table.find table signature <> None then
    fail "duplicate path signature at id %d" expected_id;
  let id =
    Path_table.intern table signature ~blocks ~n_instrs ~n_branches:len ~end_kind
  in
  if id <> expected_id then fail "out-of-order path %d" expected_id

let get_stats c =
  let reason = match get_u8 c with 0 -> `Exited | 1 -> `Fuel | t -> fail "reason %d" t in
  let blocks = get_i64 c in
  let branches = get_i64 c in
  let calls = get_i64 c in
  let returns = get_i64 c in
  let indirects = get_i64 c in
  let backward_transfers = get_i64 c in
  let max_stack = get_i64 c in
  { Vm.reason; blocks; branches; calls; returns; indirects; backward_transfers;
    max_stack }

let read s ~pos =
  let c = { s; pos } in
  try
    need c (String.length magic);
    let m = String.sub c.s c.pos (String.length magic) in
    if m <> magic then raise (Parse (Printf.sprintf "bad magic %S" m));
    c.pos <- c.pos + String.length magic;
    let program = get_program c in
    let n_blocks = Array.length program.Cfg.blocks in
    let n_paths = get_i32 c in
    if n_paths < 0 || n_paths > 100_000_000 || n_paths > remaining c / 30 then
      fail "implausible path count %d" n_paths;
    let table = Path_table.create () in
    for id = 0 to n_paths - 1 do
      get_path c table id ~n_blocks
    done;
    let n_instances = get_i64 c in
    (* Each instance is 4 id bytes plus 1 arrival byte. *)
    if n_instances < 0 || n_instances > remaining c / 5 then
      fail "implausible instance count %d" n_instances;
    let instances = Array.init n_instances (fun _ -> get_i32 c) in
    need c n_instances;
    let arrivals = Bytes.of_string (String.sub c.s c.pos n_instances) in
    c.pos <- c.pos + n_instances;
    let vm_stats = get_stats c in
    (match Recorder.of_parts ~program ~table ~instances ~arrivals ~vm_stats with
     | Ok r -> Ok (r, c.pos)
     | Error e -> Error ("invalid recording: " ^ e))
  with Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* HOTPATH3: framed, CRC-protected streaming format                    *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  let legacy_magic = magic

  let magic = "HOTPATH3"

  let default_chunk_instances = Recorder.default_chunk_instances

  (* A frame is [kind:u8 | payload_len:i32le | payload | crc32:u32le],
     with the CRC covering the 5 header bytes and the payload, so a
     corrupted kind, length field, or payload byte is always detected. *)
  let max_frame_payload = 1 lsl 26

  let k_program = 0

  let k_paths = 1

  let k_instances = 2

  let k_end = 3

  (* Frame-splitting granularities, both comfortably under
     [max_frame_payload]: paths are ~30-200 bytes each, instances 5. *)
  let paths_per_frame = 16_384

  let instances_per_frame = 8_000_000

  (* ---------------- Writer ---------------- *)

  type writer = {
    w_sink : string -> unit;
    mutable w_paths_written : int;
    mutable w_instances_written : int;
    mutable w_finished : bool;
    w_payload : Buffer.t;
  }

  let write_frame w ~kind =
    let payload = Buffer.contents w.w_payload in
    Buffer.clear w.w_payload;
    let len = String.length payload in
    if len > max_frame_payload then
      invalid_arg
        (Printf.sprintf "Serialize.Stream: frame payload %d exceeds %d bytes"
           len max_frame_payload);
    let hdr = Bytes.create 5 in
    Bytes.set_uint8 hdr 0 kind;
    Bytes.set_int32_le hdr 1 (Int32.of_int len);
    let crc = Crc32.update_bytes Crc32.empty hdr ~pos:0 ~len:5 in
    let crc = Crc32.update_string crc payload ~pos:0 ~len in
    let tl = Bytes.create 4 in
    Bytes.set_int32_le tl 0 crc;
    w.w_sink (Bytes.to_string hdr);
    w.w_sink payload;
    w.w_sink (Bytes.to_string tl)

  let writer sink ~program =
    (match Cfg.validate program with
     | Ok () -> ()
     | Error e -> invalid_arg ("Serialize.Stream.writer: invalid program: " ^ e));
    let w =
      { w_sink = sink; w_paths_written = 0; w_instances_written = 0;
        w_finished = false; w_payload = Buffer.create (1 lsl 16) }
    in
    sink magic;
    add_program w.w_payload program;
    write_frame w ~kind:k_program;
    w

  let sync_paths w ~table =
    let np = Path_table.size table in
    while w.w_paths_written < np do
      let stop = min np (w.w_paths_written + paths_per_frame) in
      add_i32 w.w_payload (stop - w.w_paths_written);
      for id = w.w_paths_written to stop - 1 do
        add_path w.w_payload (Path_table.path table id)
      done;
      write_frame w ~kind:k_paths;
      w.w_paths_written <- stop
    done

  let write_chunk w ~table ~ids ~arrivals =
    if w.w_finished then
      invalid_arg "Serialize.Stream.write_chunk: writer already finished";
    let n = Array.length ids in
    if Bytes.length arrivals <> n then
      invalid_arg
        (Printf.sprintf
           "Serialize.Stream.write_chunk: %d arrivals for %d instances"
           (Bytes.length arrivals) n);
    sync_paths w ~table;
    let off = ref 0 in
    while !off < n do
      let len = min instances_per_frame (n - !off) in
      add_i32 w.w_payload len;
      for j = !off to !off + len - 1 do
        add_i32 w.w_payload ids.(j)
      done;
      Buffer.add_subbytes w.w_payload arrivals !off len;
      write_frame w ~kind:k_instances;
      w.w_instances_written <- w.w_instances_written + len;
      off := !off + len
    done

  let finish w ~table ~vm_stats =
    if w.w_finished then
      invalid_arg "Serialize.Stream.finish: writer already finished";
    sync_paths w ~table;
    add_stats w.w_payload vm_stats;
    add_i64 w.w_payload w.w_instances_written;
    add_i32 w.w_payload w.w_paths_written;
    write_frame w ~kind:k_end;
    w.w_finished <- true

  let write ?(chunk_instances = default_chunk_instances) (r : Recorder.t) sink =
    if chunk_instances < 1 then
      invalid_arg "Serialize.Stream.write: chunk_instances must be >= 1";
    let w = writer sink ~program:r.Recorder.program in
    let n = Array.length r.Recorder.instances in
    let off = ref 0 in
    while !off < n do
      let len = min chunk_instances (n - !off) in
      write_chunk w ~table:r.Recorder.table
        ~ids:(Array.sub r.Recorder.instances !off len)
        ~arrivals:(Bytes.sub r.Recorder.arrivals !off len);
      off := !off + len
    done;
    finish w ~table:r.Recorder.table ~vm_stats:r.Recorder.vm_stats

  let to_string ?chunk_instances r =
    let buf = Buffer.create (1 lsl 16) in
    write ?chunk_instances r (Buffer.add_string buf);
    Buffer.contents buf

  let save ?chunk_instances r ~path =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> write ?chunk_instances r (output_string oc))

  let record ?max_steps ?max_paths ?max_stack ?chunk_instances
      ?(events = Hotpath_util.Events.null) program behavior ~rng ~sink =
    (* Event emission observes the byte stream through a counting wrapper;
       the bytes written are identical with events on and off. *)
    let module Ev = Hotpath_util.Events in
    let bytes_out = ref 0 in
    let sink =
      if Ev.is_null events then sink
      else fun s ->
        bytes_out := !bytes_out + String.length s;
        sink s
    in
    let w = writer sink ~program in
    let instances = ref 0 and seq = ref 0 in
    Recorder.record_chunked ?max_steps ?max_paths ?max_stack ?chunk_instances
      program behavior ~rng
      ~flush:(fun ~table ~ids ~arrivals ->
        write_chunk w ~table ~ids ~arrivals;
        if not (Ev.is_null events) then begin
          instances := !instances + Array.length ids;
          Ev.record_chunk events ~seq:!seq ~instances:!instances
            ~paths:(Path_table.size table) ~bytes_out:!bytes_out;
          incr seq
        end)
      ~finish:(fun ~table ~vm_stats ->
        finish w ~table ~vm_stats;
        if not (Ev.is_null events) then
          Ev.record_done events ~instances:!instances
            ~paths:(Path_table.size table) ~bytes_out:!bytes_out)

  (* ---------------- Reader ---------------- *)

  type chunk = { ids : int array; arrivals : Bytes.t }

  type input = {
    in_read : Bytes.t -> int -> int -> int;
    in_close : unit -> unit;
  }

  type reader = {
    r_input : input;
    r_program : Cfg.program;
    r_table : Path_table.t;
    mutable r_instances : int;
    mutable r_vm_stats : Vm.run_stats option;
    mutable r_error : string option;
    mutable r_closed : bool;
  }

  let input_of_string s =
    let pos = ref 0 in
    {
      in_read =
        (fun b off len ->
           let n = min len (String.length s - !pos) in
           Bytes.blit_string s !pos b off n;
           pos := !pos + n;
           n);
      in_close = (fun () -> ());
    }

  let input_of_channel ic =
    {
      in_read =
        (fun b off len ->
           try Stdlib.input ic b off len
           with Sys_error e -> raise (Parse ("I/O error: " ^ e)));
      in_close = (fun () -> close_in_noerr ic);
    }

  let read_exactly inp buf ~len ~what =
    let off = ref 0 in
    while !off < len do
      let n = inp.in_read buf !off (len - !off) in
      if n = 0 then fail "truncated stream: EOF while reading %s" what;
      off := !off + n
    done

  let expect_eof inp =
    let b = Bytes.create 1 in
    if inp.in_read b 0 1 <> 0 then fail "trailing garbage after end frame"

  let read_frame inp =
    let hdr = Bytes.create 5 in
    read_exactly inp hdr ~len:5 ~what:"frame header";
    let kind = Bytes.get_uint8 hdr 0 in
    let len = Int32.to_int (Bytes.get_int32_le hdr 1) in
    if len < 0 || len > max_frame_payload then
      fail "implausible frame payload length %d" len;
    let payload = Bytes.create len in
    read_exactly inp payload ~len ~what:"frame payload";
    let tl = Bytes.create 4 in
    read_exactly inp tl ~len:4 ~what:"frame checksum";
    let expect = Bytes.get_int32_le tl 0 in
    let crc = Crc32.update_bytes Crc32.empty hdr ~pos:0 ~len:5 in
    let crc = Crc32.update_bytes crc payload ~pos:0 ~len in
    if crc <> expect then fail "frame checksum mismatch (kind %d)" kind;
    (kind, Bytes.unsafe_to_string payload)

  let check_consumed c =
    if c.pos <> String.length c.s then
      fail "frame has %d trailing bytes" (String.length c.s - c.pos)

  (* Frame-payload parsers, shared verbatim between the pull-based
     [reader] and the push-based [Decoder] so the two accept exactly the
     same streams and reject with exactly the same messages. *)

  let parse_program_payload payload =
    let c = { s = payload; pos = 0 } in
    let program = get_program c in
    check_consumed c;
    (match Cfg.validate program with
     | Ok () -> ()
     | Error e -> fail "invalid program: %s" e);
    program

  let parse_paths_payload c ~table ~n_blocks =
    let count = get_i32 c in
    if count < 0 || count > remaining c / 30 then
      fail "implausible path count %d" count;
    for _ = 1 to count do
      get_path c table (Path_table.size table) ~n_blocks
    done;
    check_consumed c

  let parse_instances_payload c ~table =
    let n = get_i32 c in
    if n < 0 || n > remaining c / 5 then fail "implausible instance count %d" n;
    let np = Path_table.size table in
    let ids =
      Array.init n (fun _ ->
          let id = get_i32 c in
          if id < 0 || id >= np then
            fail "instance path id %d out of range (%d paths)" id np;
          id)
    in
    need c n;
    let arrivals = Bytes.create n in
    Bytes.blit_string c.s c.pos arrivals 0 n;
    c.pos <- c.pos + n;
    Bytes.iter
      (fun ch ->
         if Char.code ch > 2 then fail "invalid arrival code %d" (Char.code ch))
      arrivals;
    check_consumed c;
    (ids, arrivals)

  let parse_end_payload c ~instances ~paths =
    let stats = get_stats c in
    let total_instances = get_i64 c in
    let total_paths = get_i32 c in
    check_consumed c;
    if total_instances <> instances then
      fail "end frame declares %d instances, stream carried %d" total_instances
        instances;
    if total_paths <> paths then
      fail "end frame declares %d paths, stream carried %d" total_paths paths;
    stats

  let open_input inp =
    try
      let m = Bytes.create (String.length magic) in
      read_exactly inp m ~len:(String.length magic) ~what:"magic";
      let ms = Bytes.to_string m in
      if ms <> magic then
        if ms = legacy_magic then
          fail "HOTPATH2 blob, not a stream (use Serialize.of_string/load)"
        else fail "bad magic %S" ms;
      let kind, payload = read_frame inp in
      if kind <> k_program then fail "expected program frame, got kind %d" kind;
      let program = parse_program_payload payload in
      Ok
        { r_input = inp; r_program = program; r_table = Path_table.create ();
          r_instances = 0; r_vm_stats = None; r_error = None; r_closed = false }
    with Parse msg ->
      inp.in_close ();
      Error msg

  let open_string s = open_input (input_of_string s)

  let open_file ~path =
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic -> open_input (input_of_channel ic)

  let program rd = rd.r_program

  let table rd = rd.r_table

  let instances_read rd = rd.r_instances

  let vm_stats rd = rd.r_vm_stats

  let close rd =
    if not rd.r_closed then begin
      rd.r_closed <- true;
      rd.r_input.in_close ()
    end

  (* The frame loop is a local [let rec] whose recursive call sits
     {e outside} any [try]: skipping a paths frame must be a tail call, or
     a stream padded with millions of (valid, empty) paths frames would
     overflow the stack — an uncaught [Stack_overflow] from a parser whose
     contract is "Error, never crash".  The single [try] wraps only the
     initial entry into the loop. *)
  let next rd =
    match rd.r_error with
    | Some e -> Error e
    | None ->
      if rd.r_vm_stats <> None then Ok None
      else begin
        let rec loop () =
          let kind, payload = read_frame rd.r_input in
          let c = { s = payload; pos = 0 } in
          if kind = k_paths then begin
            parse_paths_payload c ~table:rd.r_table
              ~n_blocks:(Array.length rd.r_program.Cfg.blocks);
            loop ()
          end
          else if kind = k_instances then begin
            let ids, arrivals = parse_instances_payload c ~table:rd.r_table in
            rd.r_instances <- rd.r_instances + Array.length ids;
            Ok (Some { ids; arrivals })
          end
          else if kind = k_end then begin
            let stats =
              parse_end_payload c ~instances:rd.r_instances
                ~paths:(Path_table.size rd.r_table)
            in
            expect_eof rd.r_input;
            rd.r_vm_stats <- Some stats;
            Ok None
          end
          else fail "unknown frame kind %d" kind
        in
        try loop ()
        with Parse msg ->
          rd.r_error <- Some msg;
          Error msg
      end

  let of_recorder ?chunk_instances r =
    match open_string (to_string ?chunk_instances r) with
    | Ok rd -> rd
    | Error e -> invalid_arg ("Serialize.Stream.of_recorder: " ^ e)

  let to_recorder rd =
    let ids = Vec.create () in
    let arrivals = Buffer.create 4096 in
    let rec drain () =
      match next rd with
      | Error e -> Error e
      | Ok (Some c) ->
        Array.iter (Vec.push ids) c.ids;
        Buffer.add_bytes arrivals c.arrivals;
        drain ()
      | Ok None -> (
          match rd.r_vm_stats with
          | None -> Error "stream ended without statistics"
          | Some vm_stats -> (
              match
                Recorder.of_parts ~program:rd.r_program ~table:rd.r_table
                  ~instances:(Vec.to_array ids)
                  ~arrivals:(Buffer.to_bytes arrivals) ~vm_stats
              with
              | Ok r -> Ok r
              | Error e -> Error ("invalid recording: " ^ e)))
    in
    let result = drain () in
    close rd;
    result

  (* ---------------- Push-based incremental decoder ---------------- *)

  module Decoder = struct
    type step =
      | Need_more
      | Program of Cfg.program
      | Chunk of chunk
      | End of Vm.run_stats

    type t = {
      mutable d_buf : Bytes.t;  (* live bytes are [d_head, d_tail) *)
      mutable d_head : int;
      mutable d_tail : int;
      mutable d_magic : bool;
      mutable d_program : Cfg.program option;
      d_table : Path_table.t;
      mutable d_instances : int;
      mutable d_stats : Vm.run_stats option;
      mutable d_error : string option;
    }

    let create () =
      { d_buf = Bytes.create 4096; d_head = 0; d_tail = 0; d_magic = false;
        d_program = None; d_table = Path_table.create (); d_instances = 0;
        d_stats = None; d_error = None }

    let buffered d = d.d_tail - d.d_head

    let program d = d.d_program

    let table d = d.d_table

    let instances_read d = d.d_instances

    let finished d = d.d_stats <> None

    let error d = d.d_error

    (* Amortized O(1) append: compact the live region to the front when
       the dead prefix dominates, double the buffer when it is full.
       [next] never copies payload bytes except to cut the one payload
       string a complete frame needs. *)
    let feed d s ~pos ~len =
      if pos < 0 || len < 0 || pos > String.length s - len then
        invalid_arg "Serialize.Stream.Decoder.feed: bad substring";
      if d.d_error = None then begin
        let live = buffered d in
        if d.d_tail + len > Bytes.length d.d_buf then begin
          let cap = ref (max 4096 (Bytes.length d.d_buf)) in
          while live + len > !cap do
            cap := !cap * 2
          done;
          let nb = if !cap = Bytes.length d.d_buf then d.d_buf else Bytes.create !cap in
          Bytes.blit d.d_buf d.d_head nb 0 live;
          d.d_buf <- nb;
          d.d_head <- 0;
          d.d_tail <- live
        end;
        Bytes.blit_string s pos d.d_buf d.d_tail len;
        d.d_tail <- d.d_tail + len
      end

    (* A complete, CRC-valid frame at the head of the buffer
       ([Some (kind, payload offset, payload length)]), or [None].
       Raises [Parse] on an implausible declared length or a checksum
       mismatch — both detectable before the payload is complete or
       copied.  Does not consume: {!drop_frame} advances past it. *)
    let peek_frame d =
      let avail = buffered d in
      if avail < 5 then None
      else begin
        let kind = Bytes.get_uint8 d.d_buf d.d_head in
        let len = Int32.to_int (Bytes.get_int32_le d.d_buf (d.d_head + 1)) in
        if len < 0 || len > max_frame_payload then
          fail "implausible frame payload length %d" len;
        if avail < 5 + len + 4 then None
        else begin
          let crc = Crc32.update_bytes Crc32.empty d.d_buf ~pos:d.d_head ~len:5 in
          let crc = Crc32.update_bytes crc d.d_buf ~pos:(d.d_head + 5) ~len in
          let expect = Bytes.get_int32_le d.d_buf (d.d_head + 5 + len) in
          if crc <> expect then fail "frame checksum mismatch (kind %d)" kind;
          Some (kind, d.d_head + 5, len)
        end
      end

    let drop_frame d ~off ~len =
      d.d_head <- off + len + 4;
      if d.d_head = d.d_tail then begin
        d.d_head <- 0;
        d.d_tail <- 0
      end

    let take_frame d =
      match peek_frame d with
      | None -> None
      | Some (kind, off, len) ->
        let payload = Bytes.sub_string d.d_buf off len in
        drop_frame d ~off ~len;
        Some (kind, payload)

    (* Tail-recursive for the same reason [reader.next]'s loop is: a
       stream padded with empty paths frames must not grow the stack. *)
    let rec step d =
      match d.d_stats with
      | Some stats ->
        if buffered d > 0 then fail "trailing garbage after end frame";
        End stats
      | None ->
        if not d.d_magic then begin
          if buffered d < String.length magic then Need_more
          else begin
            let m = Bytes.sub_string d.d_buf d.d_head (String.length magic) in
            if m <> magic then
              if m = legacy_magic then
                fail "HOTPATH2 blob, not a stream (use Serialize.of_string/load)"
              else fail "bad magic %S" m;
            d.d_head <- d.d_head + String.length magic;
            d.d_magic <- true;
            step d
          end
        end
        else
          match take_frame d with
          | None -> Need_more
          | Some (kind, payload) -> (
              let c = { s = payload; pos = 0 } in
              match d.d_program with
              | None ->
                if kind <> k_program then
                  fail "expected program frame, got kind %d" kind;
                let program = parse_program_payload payload in
                d.d_program <- Some program;
                Program program
              | Some program ->
                if kind = k_paths then begin
                  parse_paths_payload c ~table:d.d_table
                    ~n_blocks:(Array.length program.Cfg.blocks);
                  step d
                end
                else if kind = k_instances then begin
                  let ids, arrivals = parse_instances_payload c ~table:d.d_table in
                  d.d_instances <- d.d_instances + Array.length ids;
                  Chunk { ids; arrivals }
                end
                else if kind = k_end then begin
                  let stats =
                    parse_end_payload c ~instances:d.d_instances
                      ~paths:(Path_table.size d.d_table)
                  in
                  if buffered d > 0 then
                    fail "trailing garbage after end frame";
                  d.d_stats <- Some stats;
                  End stats
                end
                else fail "unknown frame kind %d" kind)

    let next d =
      match d.d_error with
      | Some e -> Error e
      | None -> (
          try Ok (step d)
          with Parse msg ->
            d.d_error <- Some msg;
            Error msg)

    (* ---- Batched decoding ---- *)

    type batch_step =
      | B_need_more
      | B_program of Cfg.program
      | B_batch
      | B_end of Vm.run_stats

    (* An instance frame validated and decoded straight out of a buffer
       region into [batch]: ids range-checked against the table, arrival
       bytes widened to int codes — no payload string, no per-chunk
       ids/arrivals allocation.  Checks mirror [parse_instances_payload]
       (same messages, same order) so batch and chunk decoding accept
       exactly the same frames. *)
    let decode_instances_bytes buf ~off ~len ~table (batch : Batch.t) =
      if len < 4 then fail "truncated input at offset 0 (need 4 bytes)";
      let n = Int32.to_int (Bytes.get_int32_le buf off) in
      if n < 0 || n > (len - 4) / 5 then fail "implausible instance count %d" n;
      let np = Path_table.size table in
      Batch.ensure batch n;
      let ids = batch.Batch.ids and arrs = batch.Batch.arrs in
      let idoff = off + 4 in
      for j = 0 to n - 1 do
        let id = Int32.to_int (Bytes.get_int32_le buf (idoff + (4 * j))) in
        if id < 0 || id >= np then
          fail "instance path id %d out of range (%d paths)" id np;
        Array.unsafe_set ids j id
      done;
      let aoff = idoff + (4 * n) in
      for j = 0 to n - 1 do
        let a = Char.code (Bytes.unsafe_get buf (aoff + j)) in
        if a > 2 then fail "invalid arrival code %d" a;
        Array.unsafe_set arrs j a
      done;
      if len <> 4 + (5 * n) then
        fail "frame has %d trailing bytes" (len - (4 + (5 * n)));
      Batch.set_length batch n

    (* [step], with instance frames decoded from the ring buffer into the
       caller's batch.  Cold frames (program/paths/end) still go through
       the shared payload parsers.  Tail-recursive over paths frames like
       [step]. *)
    let rec step_batch d (batch : Batch.t) =
      match d.d_stats with
      | Some stats ->
        if buffered d > 0 then fail "trailing garbage after end frame";
        B_end stats
      | None ->
        if not d.d_magic then begin
          if buffered d < String.length magic then B_need_more
          else begin
            let m = Bytes.sub_string d.d_buf d.d_head (String.length magic) in
            if m <> magic then
              if m = legacy_magic then
                fail "HOTPATH2 blob, not a stream (use Serialize.of_string/load)"
              else fail "bad magic %S" m;
            d.d_head <- d.d_head + String.length magic;
            d.d_magic <- true;
            step_batch d batch
          end
        end
        else
          match peek_frame d with
          | None -> B_need_more
          | Some (kind, off, len) -> (
              match d.d_program with
              | None ->
                if kind <> k_program then
                  fail "expected program frame, got kind %d" kind;
                let payload = Bytes.sub_string d.d_buf off len in
                drop_frame d ~off ~len;
                let program = parse_program_payload payload in
                d.d_program <- Some program;
                B_program program
              | Some program ->
                if kind = k_paths then begin
                  let payload = Bytes.sub_string d.d_buf off len in
                  drop_frame d ~off ~len;
                  let c = { s = payload; pos = 0 } in
                  parse_paths_payload c ~table:d.d_table
                    ~n_blocks:(Array.length program.Cfg.blocks);
                  step_batch d batch
                end
                else if kind = k_instances then begin
                  decode_instances_bytes d.d_buf ~off ~len ~table:d.d_table
                    batch;
                  drop_frame d ~off ~len;
                  d.d_instances <- d.d_instances + Batch.length batch;
                  B_batch
                end
                else if kind = k_end then begin
                  let payload = Bytes.sub_string d.d_buf off len in
                  drop_frame d ~off ~len;
                  let c = { s = payload; pos = 0 } in
                  let stats =
                    parse_end_payload c ~instances:d.d_instances
                      ~paths:(Path_table.size d.d_table)
                  in
                  if buffered d > 0 then
                    fail "trailing garbage after end frame";
                  d.d_stats <- Some stats;
                  B_end stats
                end
                else fail "unknown frame kind %d" kind)

    let next_batch d batch =
      match d.d_error with
      | Some e -> Error e
      | None -> (
          try Ok (step_batch d batch)
          with Parse msg ->
            d.d_error <- Some msg;
            Error msg)
  end

  (* ---------------- Mapped (zero-copy) reader ---------------- *)

  module Mapped = struct
    type bigstring = Crc32.bigstring

    let ba_u8 (b : bigstring) i = Char.code (Bigarray.Array1.unsafe_get b i)

    (* Little-endian i32 straight off the map.  Sign extension is by the
       xor/subtract identity — [(v lsl 32) asr 32] would overflow the
       63-bit native int. *)
    let ba_i32 (b : bigstring) i =
      let v =
        ba_u8 b i
        lor (ba_u8 b (i + 1) lsl 8)
        lor (ba_u8 b (i + 2) lsl 16)
        lor (ba_u8 b (i + 3) lsl 24)
      in
      (v lxor 0x8000_0000) - 0x8000_0000

    let ba_sub_string (b : bigstring) ~pos ~len =
      String.init len (fun i -> Bigarray.Array1.unsafe_get b (pos + i))

    type t = {
      m_buf : bigstring;
      mutable m_pos : int;
      m_program : Cfg.program;
      m_table : Path_table.t;
      mutable m_instances : int;
      mutable m_vm_stats : Vm.run_stats option;
      mutable m_error : string option;
    }

    let program m = m.m_program

    let table m = m.m_table

    let instances_read m = m.m_instances

    let vm_stats m = m.m_vm_stats

    let error m = m.m_error

    (* Validate the frame at [p] against the mapped region — header and
       payload bounds, CRC-32 over the raw mapped bytes — and return
       [(kind, payload offset, payload length, next frame offset)]
       without copying anything. *)
    let frame_at (buf : bigstring) p =
      let dim = Bigarray.Array1.dim buf in
      if dim - p < 5 then
        fail "truncated stream: EOF while reading frame header";
      let kind = ba_u8 buf p in
      let len = ba_i32 buf (p + 1) in
      if len < 0 || len > max_frame_payload then
        fail "implausible frame payload length %d" len;
      if dim - (p + 5) < len then
        fail "truncated stream: EOF while reading frame payload";
      if dim - (p + 5 + len) < 4 then
        fail "truncated stream: EOF while reading frame checksum";
      let crc = Crc32.update_bigstring Crc32.empty buf ~pos:p ~len:(5 + len) in
      let expect = Int32.of_int (ba_i32 buf (p + 5 + len)) in
      if crc <> expect then fail "frame checksum mismatch (kind %d)" kind;
      (kind, p + 5, len, p + 5 + len + 4)

    let of_bigstring buf =
      try
        let mlen = String.length magic in
        if Bigarray.Array1.dim buf < mlen then
          fail "truncated stream: EOF while reading magic";
        let ms = ba_sub_string buf ~pos:0 ~len:mlen in
        if ms <> magic then
          if ms = legacy_magic then
            fail "HOTPATH2 blob, not a stream (use Serialize.of_string/load)"
          else fail "bad magic %S" ms;
        let kind, off, len, next = frame_at buf mlen in
        if kind <> k_program then
          fail "expected program frame, got kind %d" kind;
        let program = parse_program_payload (ba_sub_string buf ~pos:off ~len) in
        Ok
          { m_buf = buf; m_pos = next; m_program = program;
            m_table = Path_table.create (); m_instances = 0;
            m_vm_stats = None; m_error = None }
      with Parse msg -> Error msg

    let of_string s =
      let n = String.length s in
      let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set b i (String.unsafe_get s i)
      done;
      of_bigstring b

    let map_file ~path =
      match Unix.openfile path [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error (e, _, _) ->
        Error (path ^ ": " ^ Unix.error_message e)
      | fd -> (
          let close () = try Unix.close fd with Unix.Unix_error _ -> () in
          match (Unix.fstat fd).Unix.st_kind with
          | exception Unix.Unix_error (e, _, _) ->
            close ();
            Error (path ^ ": " ^ Unix.error_message e)
          | Unix.S_REG -> (
              (* mmap(2) rejects empty regions; an empty file is just a
                 truncated stream. *)
              if (Unix.fstat fd).Unix.st_size = 0 then begin
                close ();
                of_bigstring
                  (Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0)
              end
              else
                match
                  Unix.map_file fd Bigarray.char Bigarray.c_layout false
                    [| -1 |]
                with
                | exception Unix.Unix_error (e, _, _) ->
                  close ();
                  Error (path ^ ": mmap failed: " ^ Unix.error_message e)
                | exception Sys_error e ->
                  close ();
                  Error (path ^ ": mmap failed: " ^ e)
                | ga ->
                  (* The mapping outlives the descriptor; the bigarray
                     finalizer unmaps at GC. *)
                  close ();
                  of_bigstring (Bigarray.array1_of_genarray ga))
          | _ ->
            close ();
            Error
              (path
             ^ ": not a regular file — mmap ingest needs one (use open_file)"))

    (* The zero-copy hot path: an instance frame's count, ids, and
       arrival bytes are validated and widened directly from the mapped
       region into the caller's batch.  Checks mirror
       [parse_instances_payload]. *)
    let decode_instances m ~off ~len (batch : Batch.t) =
      let buf = m.m_buf in
      if len < 4 then fail "truncated input at offset 0 (need 4 bytes)";
      let n = ba_i32 buf off in
      if n < 0 || n > (len - 4) / 5 then fail "implausible instance count %d" n;
      let np = Path_table.size m.m_table in
      Batch.ensure batch n;
      let ids = batch.Batch.ids and arrs = batch.Batch.arrs in
      let idoff = off + 4 in
      for j = 0 to n - 1 do
        let id = ba_i32 buf (idoff + (4 * j)) in
        if id < 0 || id >= np then
          fail "instance path id %d out of range (%d paths)" id np;
        Array.unsafe_set ids j id
      done;
      let aoff = idoff + (4 * n) in
      for j = 0 to n - 1 do
        let a = ba_u8 buf (aoff + j) in
        if a > 2 then fail "invalid arrival code %d" a;
        Array.unsafe_set arrs j a
      done;
      if len <> 4 + (5 * n) then
        fail "frame has %d trailing bytes" (len - (4 + (5 * n)));
      Batch.set_length batch n

    (* Tail-recursive over paths frames, like [reader.next]. *)
    let next_batch m batch =
      match m.m_error with
      | Some e -> Error e
      | None ->
        if m.m_vm_stats <> None then Ok false
        else begin
          let rec loop () =
            let kind, off, len, next = frame_at m.m_buf m.m_pos in
            m.m_pos <- next;
            if kind = k_paths then begin
              let c = { s = ba_sub_string m.m_buf ~pos:off ~len; pos = 0 } in
              parse_paths_payload c ~table:m.m_table
                ~n_blocks:(Array.length m.m_program.Cfg.blocks);
              loop ()
            end
            else if kind = k_instances then begin
              decode_instances m ~off ~len batch;
              m.m_instances <- m.m_instances + Batch.length batch;
              Ok true
            end
            else if kind = k_end then begin
              let c = { s = ba_sub_string m.m_buf ~pos:off ~len; pos = 0 } in
              let stats =
                parse_end_payload c ~instances:m.m_instances
                  ~paths:(Path_table.size m.m_table)
              in
              if m.m_pos <> Bigarray.Array1.dim m.m_buf then
                fail "trailing garbage after end frame";
              m.m_vm_stats <- Some stats;
              Ok false
            end
            else fail "unknown frame kind %d" kind
          in
          try loop ()
          with Parse msg ->
            m.m_error <- Some msg;
            Error msg
        end
  end
end

(* ------------------------------------------------------------------ *)
(* Whole-recording entry points (both formats)                         *)
(* ------------------------------------------------------------------ *)

let of_string s =
  if String.length s >= String.length Stream.magic
     && String.sub s 0 (String.length Stream.magic) = Stream.magic
  then
    match Stream.open_string s with
    | Error _ as e -> e
    | Ok rd -> Stream.to_recorder rd
  else
    match read s ~pos:0 with
    | Error _ as e -> e
    | Ok (r, finish) ->
      if finish <> String.length s then
        Error (Printf.sprintf "trailing garbage after offset %d" finish)
      else Ok r

let save r ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       let buf = Buffer.create (1 lsl 16) in
       write r buf;
       Buffer.output_buffer oc buf)

(* HOTPATH3 files are read frame-by-frame (peak memory O(frame), plus the
   materialized result); HOTPATH2 blobs fall back to the whole-file
   parser. *)
let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let sniff =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
           let n = in_channel_length ic in
           if n >= String.length Stream.magic then begin
             let m = really_input_string ic (String.length Stream.magic) in
             if m = Stream.magic then `Stream
             else begin
               seek_in ic 0;
               `Legacy (really_input_string ic n)
             end
           end
           else `Legacy (really_input_string ic n))
    in
    (match sniff with
     | `Stream -> (
         match Stream.open_file ~path with
         | Error _ as e -> e
         | Ok rd -> Stream.to_recorder rd)
     | `Legacy s -> of_string s)
