module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm

(* HOTPATH2: the unbounded count fields (block weights, per-path
   instruction counts) moved from 32 to 64 bits, and 32-bit writes became
   range-checked instead of silently truncating. *)
let magic = "HOTPATH2"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_uint8 buf v

let add_i32 buf v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg
      (Printf.sprintf "Serialize.add_i32: %d does not fit in 32 bits" v);
  Buffer.add_int32_le buf (Int32.of_int v)

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_raw_i64 buf v = Buffer.add_int64_le buf v

let add_str buf s =
  add_i32 buf (String.length s);
  Buffer.add_string buf s

let add_int_array buf arr =
  add_i32 buf (Array.length arr);
  Array.iter (add_i32 buf) arr

let add_terminator buf = function
  | Cfg.Branch { taken; fallthrough } ->
    add_u8 buf 0;
    add_i32 buf taken;
    add_i32 buf fallthrough
  | Cfg.Jump t ->
    add_u8 buf 1;
    add_i32 buf t
  | Cfg.Indirect targets ->
    add_u8 buf 2;
    add_int_array buf targets
  | Cfg.Call { callee; return_to } ->
    add_u8 buf 3;
    add_i32 buf callee;
    add_i32 buf return_to
  | Cfg.Return -> add_u8 buf 4
  | Cfg.Exit -> add_u8 buf 5

let add_program buf (p : Cfg.program) =
  add_str buf p.Cfg.pname;
  add_i32 buf p.Cfg.main;
  add_i32 buf (Array.length p.Cfg.procs);
  Array.iter
    (fun (pr : Cfg.proc) ->
       add_str buf pr.Cfg.name;
       add_int_array buf pr.Cfg.blocks)
    p.Cfg.procs;
  add_i32 buf (Array.length p.Cfg.blocks);
  Array.iter
    (fun (b : Cfg.block) ->
       add_i32 buf b.Cfg.proc;
       add_i64 buf b.Cfg.weight;
       add_terminator buf b.Cfg.term)
    p.Cfg.blocks

let end_kind_code = function
  | Path.Backward_transfer -> 0
  | Path.Matched_return -> 1
  | Path.Cap -> 2
  | Path.Program_end -> 3

let add_path buf (p : Path.t) =
  let s = p.Path.signature in
  add_i32 buf (Signature.head s);
  add_u8 buf (Signature.length s);
  add_raw_i64 buf (Signature.history s);
  add_int_array buf (Array.of_list (Signature.indirect_targets s));
  add_int_array buf p.Path.blocks;
  add_i64 buf p.Path.n_instrs;
  add_u8 buf (end_kind_code p.Path.end_kind)

let add_stats buf (s : Vm.run_stats) =
  add_u8 buf (match s.Vm.reason with `Exited -> 0 | `Fuel -> 1);
  List.iter (add_i64 buf)
    [ s.Vm.blocks; s.Vm.branches; s.Vm.calls; s.Vm.returns; s.Vm.indirects;
      s.Vm.backward_transfers; s.Vm.max_stack ]

let write (r : Recorder.t) buf =
  Buffer.add_string buf magic;
  add_program buf r.Recorder.program;
  add_i32 buf (Path_table.size r.Recorder.table);
  Path_table.iter (add_path buf) r.Recorder.table;
  add_i64 buf (Array.length r.Recorder.instances);
  Array.iter (add_i32 buf) r.Recorder.instances;
  Buffer.add_bytes buf r.Recorder.arrivals;
  add_stats buf r.Recorder.vm_stats

let to_string r =
  let buf = Buffer.create (1 lsl 16) in
  write r buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse of string

type cursor = { s : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let need c n =
  if c.pos + n > String.length c.s then
    fail "truncated input at offset %d (need %d bytes)" c.pos n

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  v

let get_raw_i64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let get_i64 c =
  let v = get_raw_i64 c in
  match Int64.unsigned_to_int v with
  | Some n -> n
  | None -> fail "64-bit value out of range at offset %d" (c.pos - 8)

let get_str c =
  let n = get_i32 c in
  if n < 0 then fail "negative string length";
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_int_array c =
  let n = get_i32 c in
  if n < 0 then fail "negative array length";
  need c (n * 4);
  Array.init n (fun _ -> get_i32 c)

let get_terminator c =
  match get_u8 c with
  | 0 ->
    let taken = get_i32 c in
    let fallthrough = get_i32 c in
    Cfg.Branch { taken; fallthrough }
  | 1 -> Cfg.Jump (get_i32 c)
  | 2 -> Cfg.Indirect (get_int_array c)
  | 3 ->
    let callee = get_i32 c in
    let return_to = get_i32 c in
    Cfg.Call { callee; return_to }
  | 4 -> Cfg.Return
  | 5 -> Cfg.Exit
  | tag -> fail "unknown terminator tag %d" tag

let get_program c =
  let pname = get_str c in
  let main = get_i32 c in
  let n_procs = get_i32 c in
  if n_procs < 0 || n_procs > 1_000_000 then fail "implausible proc count %d" n_procs;
  let procs =
    Array.init n_procs (fun pid ->
        let name = get_str c in
        let blocks = get_int_array c in
        if Array.length blocks = 0 then fail "procedure %s has no blocks" name;
        { Cfg.pid; name; entry = blocks.(0); blocks })
  in
  let n_blocks = get_i32 c in
  if n_blocks < 0 || n_blocks > 100_000_000 then
    fail "implausible block count %d" n_blocks;
  let blocks =
    Array.init n_blocks (fun id ->
        let proc = get_i32 c in
        let weight = get_i64 c in
        let term = get_terminator c in
        { Cfg.id; proc; weight; term })
  in
  { Cfg.pname; blocks; procs; main }

let end_kind_of_code = function
  | 0 -> Path.Backward_transfer
  | 1 -> Path.Matched_return
  | 2 -> Path.Cap
  | 3 -> Path.Program_end
  | tag -> fail "unknown end-kind tag %d" tag

let get_path c table expected_id =
  let head = get_i32 c in
  let len = get_u8 c in
  if len > Signature.max_branches then fail "signature length %d over cap" len;
  let bits = get_raw_i64 c in
  let indirects = get_int_array c in
  let sigb = Signature.Builder.create ~head in
  for i = 0 to len - 1 do
    Signature.Builder.add_branch sigb
      ~taken:(Int64.(logand (shift_right_logical bits i) 1L) = 1L)
  done;
  Array.iter (fun target -> Signature.Builder.add_indirect sigb ~target) indirects;
  let signature = Signature.Builder.freeze sigb in
  let blocks = get_int_array c in
  if Array.length blocks = 0 then fail "path %d has no blocks" expected_id;
  let n_instrs = get_i64 c in
  let end_kind = end_kind_of_code (get_u8 c) in
  if Path_table.find table signature <> None then
    fail "duplicate path signature at id %d" expected_id;
  let id =
    Path_table.intern table signature ~blocks ~n_instrs ~n_branches:len ~end_kind
  in
  if id <> expected_id then fail "out-of-order path %d" expected_id

let get_stats c =
  let reason = match get_u8 c with 0 -> `Exited | 1 -> `Fuel | t -> fail "reason %d" t in
  let blocks = get_i64 c in
  let branches = get_i64 c in
  let calls = get_i64 c in
  let returns = get_i64 c in
  let indirects = get_i64 c in
  let backward_transfers = get_i64 c in
  let max_stack = get_i64 c in
  { Vm.reason; blocks; branches; calls; returns; indirects; backward_transfers;
    max_stack }

let read s ~pos =
  let c = { s; pos } in
  try
    need c (String.length magic);
    let m = String.sub c.s c.pos (String.length magic) in
    if m <> magic then raise (Parse (Printf.sprintf "bad magic %S" m));
    c.pos <- c.pos + String.length magic;
    let program = get_program c in
    let n_paths = get_i32 c in
    if n_paths < 0 || n_paths > 100_000_000 then fail "implausible path count %d" n_paths;
    let table = Path_table.create () in
    for id = 0 to n_paths - 1 do
      get_path c table id
    done;
    let n_instances = get_i64 c in
    if n_instances < 0 then fail "negative instance count";
    need c (n_instances * 4);
    let instances = Array.init n_instances (fun _ -> get_i32 c) in
    need c n_instances;
    let arrivals = Bytes.of_string (String.sub c.s c.pos n_instances) in
    c.pos <- c.pos + n_instances;
    let vm_stats = get_stats c in
    (match Recorder.of_parts ~program ~table ~instances ~arrivals ~vm_stats with
     | Ok r -> Ok (r, c.pos)
     | Error e -> Error ("invalid recording: " ^ e))
  with Parse msg -> Error msg

let of_string s =
  match read s ~pos:0 with
  | Error _ as e -> e
  | Ok (r, finish) ->
    if finish <> String.length s then
      Error (Printf.sprintf "trailing garbage after offset %d" finish)
    else Ok r

let save r ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       let buf = Buffer.create (1 lsl 16) in
       write r buf;
       Buffer.output_buffer oc buf)

let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         of_string s)
