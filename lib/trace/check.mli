(** High-level lint entry points: run the program linter
    ([Hotpath_analysis.Lint]) and the trace linter ({!Lint}) together
    over a recording or a trace file — what [hotpath check] and the test
    suite call. *)

module Diag = Hotpath_analysis.Diag

val recording : Recorder.t -> Diag.t list
(** Program diagnostics ([P1xx]) followed by trace diagnostics
    ([T2xx]).  A recording accepted by {!Recorder.of_parts} can still
    carry warnings. *)

val file : string -> Diag.t list
(** Load a trace file and lint it.  A file that cannot be read or
    parsed yields a single [T200] error diagnostic (the loader's
    message) instead of raising. *)

val program : ?cap:int -> Hotpath_cfg.Cfg.program -> Diag.t list
(** Just the program linter — re-exported so CLI callers need only this
    module. *)
