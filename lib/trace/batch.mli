(** A reusable dense view of a slice of the instance stream — the
    batched-decode contract between ingest and replay.

    Frames and chunks are decoded {e once} into preallocated int
    arrays; the monomorphized kernels, session walkers, and the
    chunk-sharded [?jobs] engine consume those arrays directly instead
    of re-reading wire bytes (or chasing per-path descriptor
    indirections) per instance per lane.

    {b Lifetime rules.}  A batch is a scratch buffer owned by its
    filler.  Readers may access indices [0, length t) of {!ids} and
    {!arrs} (plus {!heads}/{!branches}/{!blocks} when the filler
    populated them), concurrently from several domains; they must not
    retain the arrays past the call that handed them the batch — the
    next fill writes over the same storage, and growth swaps the arrays
    out entirely. *)

type t = {
  mutable n : int;
  mutable ids : int array;  (** Path ids, valid in [\[0, n)]. *)
  mutable arrs : int array;
      (** Arrival codes ([0] loop-head, [1] entry, [2] continuation —
          {!Recorder.arrival_code} widened to int), valid in [\[0, n)]. *)
  mutable heads : int array;
      (** Per-instance head block of the path — filled only by gathers
          that request descriptors (see {!ensure_descriptors}). *)
  mutable branches : int array;  (** Per-instance branch count. *)
  mutable blocks : int array;  (** Per-instance block count. *)
}

val create : ?capacity:int -> unit -> t
(** Fresh empty batch.  [capacity] (default 1024) presizes {!ids} and
    {!arrs}; all fills grow amortized-doubling beyond it. *)

val length : t -> int

val clear : t -> unit

val ensure : t -> int -> unit
(** Grow {!ids}/{!arrs} to hold at least [n] instances. *)

val ensure_descriptors : t -> int -> unit
(** Grow {!heads}/{!branches}/{!blocks} to hold at least [n] instances
    (they stay empty unless a filler asks — wire decoders never do). *)

val set_length : t -> int -> unit
(** Declare [n] instances valid after a direct array fill (grows the
    wire arrays first).  @raise Invalid_argument when [n < 0]. *)

val fill_of_chunk : t -> ids:int array -> arrivals:Bytes.t -> unit
(** Decode a pull-reader chunk into the batch: blit [ids], widen the
    packed arrival bytes to int codes.  Performs no validation — gate
    the contents exactly as you would the chunk. *)

val kind_of_code : int -> Path.head_kind
(** The {!Recorder.arrival_of_code} mapping on the widened int code
    (any code [>= 2] reads as [Continuation], as on the wire). *)
