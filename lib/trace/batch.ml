(* A reusable dense view of a slice of the instance stream.

   Everything the replay hot loops touch per instance lives here as a
   plain int array: path ids, arrival codes, and (optionally) the
   per-instance descriptor gather (loop-head block, branch count, block
   count).  Frames and chunks are decoded into a batch exactly once;
   every lane group then walks cache-resident arrays instead of
   re-reading bytes or chasing per-path descriptor indirections.

   A batch is a scratch buffer owned by whoever fills it.  Consumers
   (session walkers, replay lane groups) may read [ids]/[arrs] (and the
   descriptor arrays when the filler populated them) for indices
   [0, n), concurrently from several domains, but must never retain the
   arrays past the call that handed them the batch: the next fill
   reuses the same storage. *)

type t = {
  mutable n : int;  (* valid prefix length of every array below *)
  mutable ids : int array;  (* path ids *)
  mutable arrs : int array;  (* arrival codes, as in {!Recorder.arrival_code} *)
  mutable heads : int array;  (* loop-head head block per instance *)
  mutable branches : int array;  (* branch count per instance *)
  mutable blocks : int array;  (* block count per instance *)
}

let create ?(capacity = 1024) () =
  let capacity = max 1 capacity in
  {
    n = 0;
    ids = Array.make capacity 0;
    arrs = Array.make capacity 0;
    heads = [||];
    branches = [||];
    blocks = [||];
  }

let length t = t.n

let clear t = t.n <- 0

let grown old n =
  let a = Array.make (max n (2 * Array.length old)) 0 in
  Array.blit old 0 a 0 (Array.length old);
  a

(* Capacity for [n] instances in the wire arrays ([ids]/[arrs]);
   amortized doubling so refills never reallocate at steady state. *)
let ensure t n =
  if n > Array.length t.ids then begin
    t.ids <- grown t.ids n;
    t.arrs <- grown t.arrs n
  end

(* The descriptor gather is optional — the wire decoders never touch
   it — so its arrays grow separately and stay empty for sessions. *)
let ensure_descriptors t n =
  if n > Array.length t.heads then begin
    t.heads <- grown t.heads n;
    t.branches <- grown t.branches n;
    t.blocks <- grown t.blocks n
  end

let set_length t n =
  if n < 0 then invalid_arg "Batch.set_length: negative length";
  ensure t n;
  t.n <- n

(* Decode a pull-reader chunk (ids + packed arrival bytes) once.  No
   validation: callers gate ids/arrivals exactly as they would for the
   chunk itself. *)
let fill_of_chunk t ~ids ~arrivals =
  let n = Array.length ids in
  ensure t n;
  Array.blit ids 0 t.ids 0 n;
  let arrs = t.arrs in
  for i = 0 to n - 1 do
    Array.unsafe_set arrs i (Char.code (Bytes.unsafe_get arrivals i))
  done;
  t.n <- n

(* Same mapping as [Recorder.arrival_of_code], on the int code. *)
let kind_of_code = function
  | 0 -> Path.Loop_head
  | 1 -> Path.Entry
  | _ -> Path.Continuation
