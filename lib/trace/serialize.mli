(** Versioned binary serialization of recorded traces.

    Recording is the expensive step (one full interpretation); persisting
    the result lets a trace be recorded once and replayed by any number of
    analysis processes — `hotpath record`/`--trace` style workflows.

    Two on-disk formats coexist:

    - {b HOTPATH2} — the legacy single-blob format: program (blocks,
      terminators, procedures), interned path table, the instance and
      arrival arrays, and the VM run statistics, parsed from one
      contiguous string.
    - {b HOTPATH3} — the {!Stream} format: the same field encodings, but
      framed into length-prefixed, CRC-32-protected chunks (program
      header, incremental path-table frames, instance/arrival chunks of
      {!Stream.default_chunk_instances} instances, and an end frame with
      the VM statistics and totals).  Both ends are constant-memory: the
      writer flushes as it goes, the reader holds one frame at a time, so
      traces far larger than RAM can be recorded and replayed.

    All integers are little-endian.  Bounded ids and lengths are 32-bit
    and writing raises [Invalid_argument] if a value does not fit (no
    silent truncation); unbounded counts (block weights, per-path
    instruction counts, instance totals, VM statistics) are 64-bit.
    Loading validates structure (via {!Recorder.of_parts} — which since
    the lint hook also runs the full trace linter, [Hotpath_trace.Lint]
    — or the streaming reader's incremental checks) and fails with a
    message rather than crashing on corrupt input — the serializer fuzz
    suite holds both parsers to that.  For diagnostics instead of a
    bare error message, lint a file with [Hotpath_trace.Check.file]. *)

module Cfg = Hotpath_cfg.Cfg

val magic : string
(** The legacy single-blob magic, ["HOTPATH2"]. *)

val write : Recorder.t -> Buffer.t -> unit
(** Append the serialized recording (HOTPATH2).
    @raise Invalid_argument if a 32-bit field (id, length) overflows. *)

val read : string -> pos:int -> (Recorder.t * int, string) result
(** [read s ~pos] parses a HOTPATH2 recording serialized at offset [pos]
    of [s]; returns the recording and the offset just past it. *)

val to_string : Recorder.t -> string
(** HOTPATH2 blob. *)

val of_string : string -> (Recorder.t, string) result
(** Requires the whole string to be exactly one recording, in either
    format (dispatched on the magic). *)

val save : Recorder.t -> path:string -> unit
(** Write an HOTPATH2 file.  @raise Sys_error on I/O failure.  Prefer
    {!Stream.save} for new traces. *)

val load : path:string -> (Recorder.t, string) result
(** Read back from a file in either format; I/O errors are returned as
    [Error].  HOTPATH3 files are read frame-by-frame — peak memory is
    O(frame) beyond the materialized result — while HOTPATH2 falls back
    to the whole-file parser. *)

(** The HOTPATH3 framed stream format.

    Layout: the magic ["HOTPATH3"], then frames of
    [kind:u8 | payload_len:i32le | payload | crc32:u32le], the CRC-32
    (IEEE) covering the five header bytes and the payload.  Frame kinds:

    - {e 0, program} — exactly one, first: the {!Cfg.program}.
    - {e 1, paths} — path-table records in dense id order; may appear
      repeatedly, each frame extending the table.  Written incrementally,
      so a recording being flushed mid-run only ships the paths that are
      new since the previous flush.
    - {e 2, instances} — a chunk: instance count [n], [n] path ids
      (each already declared by a preceding paths frame), [n] arrival
      bytes.
    - {e 3, end} — exactly one, last: VM statistics plus total instance
      and path counts, cross-checked against what the stream carried.

    A reader never holds more than one frame; a writer never buffers more
    than one frame.  Any torn write, bit flip, corrupted length field, or
    truncation surfaces as [Error] at read time — the CRC makes every
    single-byte corruption of a valid stream detectable, which the fuzz
    suite exercises. *)
module Stream : sig
  val magic : string
  (** ["HOTPATH3"]. *)

  val default_chunk_instances : int
  (** Instances per chunk when none is given (65,536 — a few hundred KB
      per frame). *)

  val max_frame_payload : int
  (** Upper bound on a single frame's payload (64 MiB); larger path
      tables and chunks are split across frames by the writer, and a
      corrupt length field past the bound is rejected without
      allocation. *)

  (** {1 Writing} *)

  type writer

  val writer : (string -> unit) -> program:Cfg.program -> writer
  (** [writer sink ~program] emits the magic and the program frame to
      [sink] and returns a writer for incremental flushing.  [sink] is
      called with consecutive byte slices (e.g. [output_string oc].)
      @raise Invalid_argument if the program fails {!Cfg.validate}. *)

  val write_chunk :
    writer -> table:Path_table.t -> ids:int array -> arrivals:Bytes.t -> unit
  (** Flush one chunk: any table paths not yet on the wire are emitted
      first (as paths frames), then the instances.  Matches the contract
      of {!Recorder.record_chunked}'s [flush] callback.  Ids are not
      re-validated here — the reader enforces that every id is declared.
      @raise Invalid_argument on arrival/id length mismatch or after
      [finish]. *)

  val finish :
    writer -> table:Path_table.t -> vm_stats:Hotpath_vm.Vm.run_stats -> unit
  (** Emit any remaining paths and the end frame.  Must be called exactly
      once; the stream is invalid without it (a crash mid-write is
      detected as a truncated stream at read time).
      @raise Invalid_argument if already finished. *)

  val write : ?chunk_instances:int -> Recorder.t -> (string -> unit) -> unit
  (** Serialize a whole materialized recording to a sink in chunks. *)

  val to_string : ?chunk_instances:int -> Recorder.t -> string

  val save : ?chunk_instances:int -> Recorder.t -> path:string -> unit
  (** @raise Sys_error on I/O failure. *)

  val record :
    ?max_steps:int ->
    ?max_paths:int ->
    ?max_stack:int ->
    ?chunk_instances:int ->
    ?events:Hotpath_util.Events.sink ->
    Cfg.program ->
    Hotpath_vm.Behavior.t ->
    rng:Hotpath_util.Prng.t ->
    sink:(string -> unit) ->
    Recorder.chunked_summary
  (** Record straight to a sink: {!Recorder.record_chunked} wired to a
      {!writer}.  The instance stream is never materialized — peak memory
      is O(paths + chunk) however long the run — and the resulting stream
      is byte-identical to [write (Recorder.record ...)] at the same
      chunk size.  A live [events] sink gets one [record_chunk] per
      flushed chunk (cumulative instances/paths/bytes) and a final
      [record_done]; the trace bytes are unaffected. *)

  (** {1 Reading} *)

  type chunk = {
    ids : int array;  (** Path ids, trace order. *)
    arrivals : Bytes.t;  (** One arrival code per id (decode with
        {!Recorder.arrival_of_code}). *)
  }

  type reader

  val open_string : string -> (reader, string) result
  (** Validate the magic and program frame of an in-memory stream. *)

  val open_file : path:string -> (reader, string) result
  (** Same over a file, reading frame-by-frame. *)

  val of_recorder : ?chunk_instances:int -> Recorder.t -> reader
  (** Reader over an in-memory recording (serialized through the full
      format), mainly for differential tests and benchmarks. *)

  val next : reader -> (chunk option, string) result
  (** Pull the next instance chunk.  Paths frames are consumed silently,
      growing {!table}; [Ok None] is returned once the end frame has been
      validated (totals, statistics, no trailing bytes) and on every call
      thereafter.  After an [Error] the reader is poisoned and repeats
      the same error. *)

  val program : reader -> Cfg.program

  val table : reader -> Path_table.t
  (** The path table as declared so far; grows as chunks are pulled.
      Every id in a returned chunk is already present. *)

  val instances_read : reader -> int
  (** Cumulative instances across the chunks returned so far. *)

  val vm_stats : reader -> Hotpath_vm.Vm.run_stats option
  (** [Some] once the end frame has been read (i.e. after {!next}
      returned [Ok None]). *)

  val close : reader -> unit
  (** Release the underlying channel (idempotent; no-op for string
      readers). *)

  val to_recorder : reader -> (Recorder.t, string) result
  (** Drain the stream into a materialized {!Recorder.t} (validated via
      {!Recorder.of_parts}) and close the reader. *)

  (** {1 Push-based incremental decoding}

      The {!reader} above pulls bytes through a blocking [input]; a
      network daemon gets bytes pushed at it in arbitrary slices instead.
      A {!Decoder.t} accepts those slices via {!Decoder.feed} and yields
      decoded steps via {!Decoder.next} — same frame validation, same
      payload parsers, same error messages as the pull reader, so the two
      accept exactly the same byte streams.  Feeding is O(bytes) amortized
      regardless of slice granularity (one byte at a time is fine). *)
  module Decoder : sig
    type step =
      | Need_more  (** A complete next frame has not arrived yet. *)
      | Program of Cfg.program
          (** The stream header and program frame decoded and validated. *)
      | Chunk of chunk  (** One instances frame. *)
      | End of Hotpath_vm.Vm.run_stats
          (** The end frame validated (totals cross-checked); returned
              again by subsequent calls. *)

    type t

    val create : unit -> t

    val feed : t -> string -> pos:int -> len:int -> unit
    (** Append [len] bytes of [s] starting at [pos] to the decode buffer.
        Ignored once the decoder has errored.
        @raise Invalid_argument if [pos]/[len] do not describe a
        substring. *)

    val next : t -> (step, string) result
    (** Decode as far as the buffered bytes allow.  Paths frames are
        consumed silently (growing {!table}); call repeatedly until
        [Ok Need_more] (or terminally [End]/[Error]).  After an [Error]
        the decoder is poisoned and repeats the same error.  Bytes that
        arrive after the end frame surface as a trailing-garbage error on
        the call after they are fed. *)

    val program : t -> Cfg.program option
    (** [Some] once the program frame has decoded. *)

    val table : t -> Path_table.t
    (** Paths declared so far; every id in a returned {!chunk} is already
        present. *)

    val instances_read : t -> int

    val buffered : t -> int
    (** Bytes fed but not yet consumed by a decoded frame. *)

    val finished : t -> bool
    (** The end frame has been validated. *)

    val error : t -> string option

    (** {2 Batched decoding}

        {!next} cuts one payload string and allocates fresh [ids] and
        [arrivals] per instance frame.  {!next_batch} instead validates
        and decodes instance frames straight out of the internal buffer
        into a caller-supplied (reusable) {!Batch.t} — ids range-checked,
        arrival bytes widened to int codes — accepting and rejecting
        exactly the same streams.  Cold frames (program, paths, end) go
        through the shared payload parsers unchanged. *)

    type batch_step =
      | B_need_more  (** A complete next frame has not arrived yet. *)
      | B_program of Cfg.program
      | B_batch  (** One instances frame, decoded into the batch. *)
      | B_end of Hotpath_vm.Vm.run_stats

    val next_batch : t -> Batch.t -> (batch_step, string) result
    (** As {!next}, filling [batch] instead of allocating a {!chunk}.
        The batch contents are valid until the next [next_batch] call
        with the same batch. *)
  end

  (** {1 Zero-copy mapped reading}

      A {!Mapped.t} reads a HOTPATH3 stream from a [Bigarray]-backed
      buffer — a memory-mapped file via {!Mapped.map_file}, or any
      in-memory bigstring — validating each frame's bounds and CRC-32
      against the mapped region directly and decoding instance frames
      straight into a reusable {!Batch.t}.  No [Bytes.blit] per frame,
      no per-chunk allocation: the kernel pages the file in behind the
      sequential scan, and the only per-frame copies are the cold
      program/paths/end payloads handed to the shared parsers.  Frame
      windowing is preserved — a consumer holds one decoded frame of
      state at a time, so replaying through {!Session} keeps peak heap
      at O(paths + frame) even though the file mapping is as large as
      the file. *)
  module Mapped : sig
    type bigstring = Hotpath_util.Crc32.bigstring

    type t

    val map_file : path:string -> (t, string) result
    (** Map a HOTPATH3 file read-only and validate its magic and program
        frame.  Non-regular files (pipes, sockets, directories) return
        [Error] — stream those through {!open_file}/{!Decoder} instead.
        The mapping is released when the reader is garbage-collected. *)

    val of_bigstring : bigstring -> (t, string) result
    (** Wrap an incoming buffer without copying it.  The caller must not
        mutate the buffer while the reader is live. *)

    val of_string : string -> (t, string) result
    (** Copy [s] into a fresh bigstring and wrap it (tests, small
        buffers). *)

    val next_batch : t -> Batch.t -> (bool, string) result
    (** Decode frames up to and including the next instance frame into
        [batch].  [Ok true]: the batch holds the frame's instances.
        [Ok false]: the end frame was validated (totals cross-checked,
        no trailing bytes) — {!vm_stats} is now [Some] — and every later
        call returns [Ok false] again.  After an [Error] the reader is
        poisoned and repeats the same error.  Validation matches the
        pull reader frame for frame: same bounds checks, same CRC, same
        accept/reject decisions on every stream. *)

    val program : t -> Cfg.program

    val table : t -> Path_table.t
    (** Paths declared so far; grows as batches are pulled. *)

    val instances_read : t -> int

    val vm_stats : t -> Hotpath_vm.Vm.run_stats option

    val error : t -> string option
  end
end
