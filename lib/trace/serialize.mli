(** Versioned binary serialization of recorded traces.

    Recording is the expensive step (one full interpretation); persisting
    the result lets a trace be recorded once and replayed by any number of
    analysis processes — `hotpath record`/`--trace` style workflows.

    The format is explicit and versioned (magic ["HOTPATH2"]), independent
    of the OCaml [Marshal] representation: program (blocks, terminators,
    procedures), interned path table (signatures, block sequences, sizes),
    the instance and arrival arrays, and the VM run statistics.  All
    integers are little-endian.  Bounded ids and lengths are 32-bit and
    writing raises [Invalid_argument] if a value does not fit (no silent
    truncation); unbounded counts (block weights, per-path instruction
    counts, instance totals, VM statistics) are 64-bit.  Loading validates
    structure via {!Recorder.of_parts} and fails with a message rather
    than crashing on corrupt input. *)

val magic : string

val write : Recorder.t -> Buffer.t -> unit
(** Append the serialized recording.
    @raise Invalid_argument if a 32-bit field (id, length) overflows. *)

val read : string -> pos:int -> (Recorder.t * int, string) result
(** [read s ~pos] parses a recording serialized at offset [pos] of [s];
    returns the recording and the offset just past it. *)

val to_string : Recorder.t -> string

val of_string : string -> (Recorder.t, string) result
(** Requires the whole string to be exactly one recording. *)

val save : Recorder.t -> path:string -> unit
(** Write to a file.  @raise Sys_error on I/O failure. *)

val load : path:string -> (Recorder.t, string) result
(** Read back from a file; I/O errors are returned as [Error]. *)
