(** Trace-producing interpreter for the virtual CFG ISA.

    One {!step} executes the current basic block and performs its
    terminator, yielding a {!transfer} record — the unit the path builder
    consumes.  Conditional and indirect outcomes come from the
    {!Behavior.Decider}; the call stack lives here. *)

module Cfg = Hotpath_cfg.Cfg

type transfer_kind =
  | T_branch of { taken : bool }  (** Conditional direct branch. *)
  | T_jump
  | T_indirect
  | T_call  (** Destination is the callee entry. *)
  | T_return  (** Destination is the caller's return-to block. *)
  | T_exit  (** Program termination; no destination. *)

type transfer = {
  src : Cfg.block_id;  (** Block just executed. *)
  kind : transfer_kind;
  dst : Cfg.block_id option;  (** [None] only for [T_exit]. *)
  backward : bool;
      (** True when the transfer lands at an address [<=] the source — the
          paper's criterion for a path-terminating transfer and for the
          destination being a potential path head. *)
}

type t

val create : ?max_stack:int -> Cfg.program -> Behavior.t -> rng:Hotpath_util.Prng.t -> t
(** Interpreter positioned at the main procedure's entry.  [max_stack]
    bounds call depth (default 10_000).
    @raise Invalid_argument when the program fails {!Cfg.validate} (the
    builder validates on [finish], but programs can also arrive from
    deserialization or hand construction) or the behaviour fails
    {!Behavior.validate}. *)

val step : t -> transfer option
(** Execute one block and its terminator.  [None] once the program has
    exited.  A [Return] with an empty call stack terminates the program
    (reported as [T_exit]).
    @raise Failure on call-stack overflow. *)

val current_block : t -> Cfg.block_id option
(** Block about to execute; [None] after exit. *)

val blocks_executed : t -> int

val stack_depth : t -> int

type run_stats = {
  reason : [ `Exited | `Fuel ];
  blocks : int;  (** Blocks executed. *)
  branches : int;  (** Conditional branches executed. *)
  calls : int;
  returns : int;
  indirects : int;
  backward_transfers : int;
  max_stack : int;
}

val pp_run_stats : Format.formatter -> run_stats -> unit

val run : ?max_steps:int -> t -> on_transfer:(transfer -> unit) -> run_stats
(** Drive {!step} until exit or until [max_steps] blocks have executed
    (default unbounded), invoking [on_transfer] on every transfer in
    order. *)
