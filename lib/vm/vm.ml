module Cfg = Hotpath_cfg.Cfg
module Vec = Hotpath_util.Vec

type transfer_kind =
  | T_branch of { taken : bool }
  | T_jump
  | T_indirect
  | T_call
  | T_return
  | T_exit

type transfer = {
  src : Cfg.block_id;
  kind : transfer_kind;
  dst : Cfg.block_id option;
  backward : bool;
}

type t = {
  program : Cfg.program;
  decider : Behavior.Decider.t;
  stack : Cfg.block_id Vec.t;  (* return-to blocks *)
  max_stack : int;
  mutable current : Cfg.block_id option;
  mutable executed : int;
}

let create ?(max_stack = 10_000) program behavior ~rng =
  (match Cfg.validate program with
   | Ok () -> ()
   | Error e -> invalid_arg ("Vm.create: invalid program: " ^ e));
  (match Behavior.validate behavior with
   | Ok () -> ()
   | Error e -> invalid_arg ("Vm.create: invalid behavior: " ^ e));
  {
    program;
    decider = Behavior.Decider.create program behavior ~rng;
    stack = Vec.create ();
    max_stack;
    current = Some (Cfg.entry_block program);
    executed = 0;
  }

let current_block t = t.current

let blocks_executed t = t.executed

let stack_depth t = Vec.length t.stack

let step t =
  match t.current with
  | None -> None
  | Some src ->
    t.executed <- t.executed + 1;
    Behavior.Decider.tick t.decider;
    let mk kind dst =
      let backward =
        match dst with
        | Some d -> Cfg.is_backward t.program ~src ~dst:d
        | None -> false
      in
      t.current <- dst;
      Some { src; kind; dst; backward }
    in
    (match (Cfg.block t.program src).term with
     | Cfg.Branch { taken; fallthrough } ->
       let outcome = Behavior.Decider.decide_branch t.decider src in
       mk (T_branch { taken = outcome }) (Some (if outcome then taken else fallthrough))
     | Cfg.Jump dst -> mk T_jump (Some dst)
     | Cfg.Indirect targets ->
       let dst = Behavior.Decider.decide_indirect t.decider src ~targets in
       mk T_indirect (Some dst)
     | Cfg.Call { callee; return_to } ->
       if Vec.length t.stack >= t.max_stack then
         failwith
           (Printf.sprintf "Vm.step: call-stack overflow (depth %d) at block %d"
              t.max_stack src);
       Vec.push t.stack return_to;
       mk T_call (Some (Cfg.proc t.program callee).entry)
     | Cfg.Return ->
       if Vec.is_empty t.stack then mk T_exit None
       else mk T_return (Some (Vec.pop t.stack))
     | Cfg.Exit -> mk T_exit None)

type run_stats = {
  reason : [ `Exited | `Fuel ];
  blocks : int;
  branches : int;
  calls : int;
  returns : int;
  indirects : int;
  backward_transfers : int;
  max_stack : int;
}

let pp_run_stats ppf s =
  Format.fprintf ppf
    "@[<h>%s: blocks=%d branches=%d calls=%d returns=%d indirects=%d backward=%d \
     max_stack=%d@]"
    (match s.reason with `Exited -> "exited" | `Fuel -> "fuel")
    s.blocks s.branches s.calls s.returns s.indirects s.backward_transfers s.max_stack

let run ?(max_steps = max_int) t ~on_transfer =
  let branches = ref 0
  and calls = ref 0
  and returns = ref 0
  and indirects = ref 0
  and backward = ref 0
  and max_stack_seen = ref 0 in
  let rec loop () =
    if t.executed >= max_steps then `Fuel
    else
      match step t with
      | None -> `Exited
      | Some tr ->
        (match tr.kind with
         | T_branch _ -> incr branches
         | T_call -> incr calls
         | T_return -> incr returns
         | T_indirect -> incr indirects
         | T_jump | T_exit -> ());
        if tr.backward then incr backward;
        max_stack_seen := max !max_stack_seen (Vec.length t.stack);
        on_transfer tr;
        loop ()
  in
  let reason = loop () in
  {
    reason;
    blocks = t.executed;
    branches = !branches;
    calls = !calls;
    returns = !returns;
    indirects = !indirects;
    backward_transfers = !backward;
    max_stack = !max_stack_seen;
  }
