(** The Dynamo simulator: replay a recorded trace through the
    interpret / profile / predict / optimize / cache-execute loop and
    account cycles (Section 6 of the paper).

    Per path instance:

    - {e full hit} — a fragment for this exact path exists: the instance
      runs in the code cache at fragment speed (plus a link cost);
    - {e partial hit} — some fragment owns this head but the executed path
      diverges: the shared prefix runs at fragment speed, the remainder in
      the interpreter; the instance is still observed by the prediction
      scheme (Dynamo forms secondary trace heads at fragment exits);
    - {e miss} — fully interpreted and observed.

    Observed instances pay the scheme's recurring profiling cost; each
    prediction pays tail collection (NET) and fragment optimization, and
    installs a fragment.  A prediction-rate spike triggers a cache flush
    (the phase heuristic of Section 6.1); a full cache flushes too.  When
    fragment creation exceeds the bail-out threshold, Dynamo gives up and
    the rest of the run executes natively, as the paper describes for gcc
    and go. *)

module Scheme = Hotpath_prediction.Scheme
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path

type scheme_costs = {
  per_instance : n_branches:int -> arrival:Path.head_kind -> float;
      (** Recurring profiling cycles for one observed instance. *)
  per_prediction : n_blocks:int -> n_instrs:int -> float;
      (** One-time cycles to materialize a prediction (collection +
          optimization). *)
}

val path_profile_costs : Cost_model.t -> scheme_costs
(** Bit-tracing costs: one shift per branch + one table update per
    instance; optimization only at prediction (the profiler already holds
    the path). *)

val net_costs : Cost_model.t -> scheme_costs
(** One counter bump per loop-head arrival; breakpoint-based tail
    collection plus optimization at prediction. *)

val static_costs : Cost_model.t -> scheme_costs
(** Zero recurring profiling cycles (the estimate was paid at compile
    time); materializing a prediction still costs NET's breakpoint
    collection plus optimization. *)

val costs_for : scheme:string -> Cost_model.t -> scheme_costs
(** Cost family by scheme name: [path-profile*] bit-tracing costs,
    ["static"] {!static_costs}, anything else (the NET family and its
    k-window variants) {!net_costs}. *)

type flush_policy = {
  fp_window : int;  (** Window length, in path instances. *)
  fp_factor : float;
      (** A window whose prediction count exceeds [fp_factor] times the
          EWMA baseline of earlier windows signals a phase change. *)
  fp_min : int;  (** Minimum window count for a spike to trigger a flush. *)
}

val default_flush_policy : flush_policy

type bail_policy = {
  bp_overhead_frac : float;
      (** Per-window trace-formation share of execution that counts as
          excessive. *)
  bp_interp_frac : float;
      (** Per-window interpretation share of execution above which the
          working set is judged to never materialize in the cache. *)
  bp_window : int;  (** Window length in path instances. *)
  bp_streak : int;
      (** Consecutive excessive windows before giving up — a warmup burst
          that subsides does not bail. *)
}

val default_bail_policy : bail_policy

type config = {
  scheme : Scheme.packed;
  scheme_costs : scheme_costs;
  delay : int;
  cost : Cost_model.t;
  cache_capacity : int;
  cache_eviction : Fragment_cache.eviction;
  flush_policy : flush_policy option;
  bail_policy : bail_policy option;
  events : Hotpath_util.Events.sink;
      (** Receives [dynamo_install] / [dynamo_flush] / [dynamo_bail]
          events as they happen plus one cumulative [dynamo_window]
          cycle-accounting sample every [events_window] instances (final
          short window included).  {!Hotpath_util.Events.null} — the
          default — disables all of it; emission never changes the
          {!result}. *)
  events_window : int;
}

val config :
  ?cost:Cost_model.t ->
  ?cache_capacity:int ->
  ?cache_eviction:Fragment_cache.eviction ->
  ?flush_policy:flush_policy option ->
  ?bail_policy:bail_policy option ->
  ?events:Hotpath_util.Events.sink ->
  ?events_window:int ->
  scheme:Scheme.packed ->
  scheme_costs:scheme_costs ->
  delay:int ->
  unit ->
  config
(** Defaults: {!Cost_model.default}, capacity 16384 with
    [Reject_when_full] (flush on pressure), {!default_flush_policy},
    {!default_bail_policy}, events disabled ([events_window] 8192).
    @raise Invalid_argument when [delay < 1], [events_window < 1], or the
    cost model fails validation. *)

type result = {
  r_scheme : string;
  r_delay : int;
  r_native_cycles : float;  (** The same trace executed natively. *)
  r_dynamo_cycles : float;
  r_speedup_pct : float;  (** [(native / dynamo - 1) * 100]. *)
  r_bailed : bool;
  r_fragments : int;  (** Fragments ever created. *)
  r_flushes : int;
  r_full_hits : int;
  r_partial_hits : int;
  r_misses : int;
  r_native_tail : int;  (** Instances run natively after bail-out. *)
  r_cycles_fragment : float;
  r_cycles_interp : float;
  r_cycles_profile : float;
  r_cycles_overhead : float;  (** Collection + optimization. *)
  r_cycles_flush : float;
  r_cache_coverage_pct : float;
      (** Instruction-weighted share of the (pre-bail) flow executed at
          fragment speed. *)
}

val run : config -> Recorder.t -> result

(** The per-instance execution logic behind {!run}, exposed so the live
    {!Online} driver shares it exactly: processing the same (path, arrival)
    sequence through a stepper yields bit-identical results whether the
    sequence comes from a recording or straight from the VM. *)
module Stepper : sig
  type t

  val create :
    config -> program:Hotpath_cfg.Cfg.program -> lookup:(int -> Path.t) -> t
  (** [lookup] resolves a predicted path id to its descriptor (an array for
      replays, a growing path table for the online driver). *)

  val step : t -> path:Path.t -> arrival:Path.head_kind -> unit

  val finalize : t -> result
end

val pp_result : Format.formatter -> result -> unit
