module Scheme = Hotpath_prediction.Scheme
module Recorder = Hotpath_trace.Recorder
module Path_table = Hotpath_trace.Path_table
module Path = Hotpath_trace.Path
module Cfg = Hotpath_cfg.Cfg
module Events = Hotpath_util.Events

type scheme_costs = {
  per_instance : n_branches:int -> arrival:Path.head_kind -> float;
  per_prediction : n_blocks:int -> n_instrs:int -> float;
}

let path_profile_costs (c : Cost_model.t) =
  {
    per_instance =
      (fun ~n_branches ~arrival ->
         ignore arrival;
         (float_of_int n_branches *. c.Cost_model.shift_cycles)
         +. c.Cost_model.table_update_cycles);
    per_prediction =
      (fun ~n_blocks ~n_instrs ->
         ignore n_blocks;
         float_of_int n_instrs *. c.Cost_model.optimize_cycles_per_instr);
  }

let net_costs (c : Cost_model.t) =
  {
    per_instance =
      (fun ~n_branches ~arrival ->
         ignore n_branches;
         match arrival with
         | Path.Loop_head -> c.Cost_model.counter_cycles
         | Path.Entry | Path.Continuation -> 0.0);
    per_prediction =
      (fun ~n_blocks ~n_instrs ->
         (float_of_int n_blocks *. c.Cost_model.collection_cycles_per_block)
         +. (float_of_int n_instrs *. c.Cost_model.optimize_cycles_per_instr));
  }

let static_costs (c : Cost_model.t) =
  {
    per_instance = (fun ~n_branches ~arrival ->
        ignore n_branches;
        ignore arrival;
        0.0);
    per_prediction =
      (fun ~n_blocks ~n_instrs ->
         (float_of_int n_blocks *. c.Cost_model.collection_cycles_per_block)
         +. (float_of_int n_instrs *. c.Cost_model.optimize_cycles_per_instr));
  }

let costs_for ~scheme c =
  if String.starts_with ~prefix:"path-profile" scheme then
    path_profile_costs c
  else if scheme = "static" then static_costs c
  else net_costs c

type flush_policy = { fp_window : int; fp_factor : float; fp_min : int }

let default_flush_policy = { fp_window = 4096; fp_factor = 2.5; fp_min = 24 }

type bail_policy = {
  bp_overhead_frac : float;
  bp_interp_frac : float;
  bp_window : int;
  bp_streak : int;
}

let default_bail_policy =
  { bp_overhead_frac = 0.30; bp_interp_frac = 1.5; bp_window = 4096; bp_streak = 8 }

type config = {
  scheme : Scheme.packed;
  scheme_costs : scheme_costs;
  delay : int;
  cost : Cost_model.t;
  cache_capacity : int;
  cache_eviction : Fragment_cache.eviction;
  flush_policy : flush_policy option;
  bail_policy : bail_policy option;
  events : Events.sink;
  events_window : int;
}

let config ?(cost = Cost_model.default) ?(cache_capacity = 16_384)
    ?(cache_eviction = Fragment_cache.Reject_when_full)
    ?(flush_policy = Some default_flush_policy)
    ?(bail_policy = Some default_bail_policy) ?(events = Events.null)
    ?(events_window = 8_192) ~scheme ~scheme_costs ~delay () =
  (match Cost_model.validate cost with
   | Ok () -> ()
   | Error e -> invalid_arg ("Engine.config: " ^ e));
  if delay < 1 then invalid_arg "Engine.config: delay must be >= 1";
  if events_window < 1 then
    invalid_arg "Engine.config: events_window must be >= 1";
  { scheme; scheme_costs; delay; cost; cache_capacity; cache_eviction; flush_policy;
    bail_policy; events; events_window }

type result = {
  r_scheme : string;
  r_delay : int;
  r_native_cycles : float;
  r_dynamo_cycles : float;
  r_speedup_pct : float;
  r_bailed : bool;
  r_fragments : int;
  r_flushes : int;
  r_full_hits : int;
  r_partial_hits : int;
  r_misses : int;
  r_native_tail : int;
  r_cycles_fragment : float;
  r_cycles_interp : float;
  r_cycles_profile : float;
  r_cycles_overhead : float;
  r_cycles_flush : float;
  r_cache_coverage_pct : float;
}

(* Instruction count of the common prefix of a fragment and an executed
   path (the part that runs at fragment speed before the side exit). *)
let prefix_instrs program (fr : Fragment_cache.fragment) (blocks : Cfg.block_id array)
  =
  let n = min (Array.length fr.Fragment_cache.fr_blocks) (Array.length blocks) in
  let rec walk i acc =
    if i >= n || fr.Fragment_cache.fr_blocks.(i) <> blocks.(i) then acc
    else walk (i + 1) (acc + (Cfg.block program blocks.(i)).Cfg.weight)
  in
  walk 0 0

(* Per-instance execution logic, shared by the offline replay (Engine.run)
   and the live driver (Online): given a completed path instance, decide
   where it executes, charge cycles, feed the prediction scheme, install
   fragments, and apply the flush / bail-out policies. *)
module Stepper = struct
  type t = {
    cfg : config;
    program : Cfg.program;
    lookup : int -> Path.t;  (* path id -> descriptor, for prediction targets *)
    scheme_name : string;
    observe :
      head:Cfg.block_id ->
      arrival:Path.head_kind ->
      path_id:int ->
      n_branches:int ->
      n_blocks:int ->
      int option;
    collect : n_blocks:int -> unit;
    cache : Fragment_cache.t;
    predicted : (int, unit) Hashtbl.t;
    mutable instances : int;
    mutable native : float;
    mutable cyc_fragment : float;
    mutable cyc_interp : float;
    mutable cyc_profile : float;
    mutable cyc_overhead : float;
    mutable cyc_flush : float;
    mutable cyc_native_tail : float;
    mutable full_hits : int;
    mutable partial_hits : int;
    mutable misses : int;
    mutable native_tail : int;
    mutable bailed : bool;
    mutable fragment_instrs : float;
    mutable prebail_instrs : float;
    (* Flush heuristic. *)
    mutable window_preds : int;
    mutable baseline : float option;
    mutable windows_seen : int;
    (* Bail-out heuristic. *)
    mutable bail_streak : int;
    mutable bail_prev_ovh : float;
    mutable bail_prev_interp : float;
    mutable bail_prev_native : float;
    (* Event sampling.  [ev_next] is [max_int] when the sink is null, so
       the disabled cost in [step] is one integer comparison. *)
    mutable ev_next : int;
    mutable ev_seq : int;
    mutable ev_last_upto : int;
  }

  let create cfg ~program ~lookup =
    let (module S : Scheme.S) = cfg.scheme in
    let state = S.create ~delay:cfg.delay ~program in
    {
      cfg;
      program;
      lookup;
      scheme_name = S.name;
      observe =
        (fun ~head ~arrival ~path_id ~n_branches ~n_blocks ->
           S.observe state ~head ~arrival ~path_id ~n_branches ~n_blocks);
      collect = (fun ~n_blocks -> S.collect state ~n_blocks);
      cache =
        Fragment_cache.create ~capacity:cfg.cache_capacity
          ~eviction:cfg.cache_eviction ();
      predicted = Hashtbl.create 1024;
      instances = 0;
      native = 0.0;
      cyc_fragment = 0.0;
      cyc_interp = 0.0;
      cyc_profile = 0.0;
      cyc_overhead = 0.0;
      cyc_flush = 0.0;
      cyc_native_tail = 0.0;
      full_hits = 0;
      partial_hits = 0;
      misses = 0;
      native_tail = 0;
      bailed = false;
      fragment_instrs = 0.0;
      prebail_instrs = 0.0;
      window_preds = 0;
      baseline = None;
      windows_seen = 0;
      bail_streak = 0;
      bail_prev_ovh = 0.0;
      bail_prev_interp = 0.0;
      bail_prev_native = 0.0;
      ev_next = (if Events.is_null cfg.events then max_int else cfg.events_window);
      ev_seq = 0;
      ev_last_upto = 0;
    }

  let emit_window st =
    Events.dynamo_window st.cfg.events ~scheme:st.scheme_name
      ~delay:st.cfg.delay ~seq:st.ev_seq ~upto:st.instances
      ~full_hits:st.full_hits ~partial_hits:st.partial_hits ~misses:st.misses
      ~fragments:(Fragment_cache.inserted_total st.cache)
      ~flushes:(Fragment_cache.flush_count st.cache)
      ~cycles_fragment:st.cyc_fragment ~cycles_interp:st.cyc_interp
      ~cycles_profile:st.cyc_profile ~cycles_overhead:st.cyc_overhead
      ~cycles_flush:st.cyc_flush ~cycles_native:st.native;
    st.ev_seq <- st.ev_seq + 1;
    st.ev_last_upto <- st.instances

  let do_flush st ~reason ~window_preds ~baseline =
    Fragment_cache.flush st.cache;
    Hashtbl.reset st.predicted;
    st.cyc_flush <- st.cyc_flush +. st.cfg.cost.Cost_model.flush_cycles;
    Events.dynamo_flush st.cfg.events ~at:st.instances ~reason ~window_preds
      ~baseline ~flushes:(Fragment_cache.flush_count st.cache)
      ~cycles_flush:st.cyc_flush

  let window_boundary st fp =
    let count = st.window_preds in
    st.window_preds <- 0;
    st.windows_seen <- st.windows_seen + 1;
    (* The very first window is the startup burst (everything hot is being
       predicted); it would poison the baseline, so it is skipped. *)
    if st.windows_seen > 1 then
      match st.baseline with
      | None -> st.baseline <- Some (float_of_int count)
      | Some b ->
        if count >= fp.fp_min && float_of_int count > fp.fp_factor *. (b +. 1.0) then
          do_flush st ~reason:"spike" ~window_preds:count ~baseline:b;
        st.baseline <- Some ((0.7 *. b) +. (0.3 *. float_of_int count))

  let bail_boundary st bp =
    let ovh_delta = st.cyc_overhead -. st.bail_prev_ovh
    and interp_delta = st.cyc_interp -. st.bail_prev_interp
    and native_delta = st.native -. st.bail_prev_native in
    st.bail_prev_ovh <- st.cyc_overhead;
    st.bail_prev_interp <- st.cyc_interp;
    st.bail_prev_native <- st.native;
    (* Excessive trace formation, or interpretation that keeps dominating
       (the working set never materializes in the cache). *)
    if
      native_delta > 0.0
      && (ovh_delta > bp.bp_overhead_frac *. native_delta
          || interp_delta > bp.bp_interp_frac *. native_delta)
    then st.bail_streak <- st.bail_streak + 1
    else st.bail_streak <- 0;
    if st.bail_streak >= bp.bp_streak then begin
      st.bailed <- true;
      Events.dynamo_bail st.cfg.events ~at:st.instances ~streak:st.bail_streak
        ~overhead_delta:ovh_delta ~interp_delta ~native_delta
    end

  let install st target_path =
    let p = st.lookup target_path in
    Hashtbl.replace st.predicted target_path ();
    let fr = Fragment_cache.fragment_of_path p in
    (match Fragment_cache.insert st.cache fr with
     | `Inserted | `Duplicate -> ()
     | `Evicted victim ->
       (* LRU made room; the victim's path must be re-predictable. *)
       Hashtbl.remove st.predicted victim.Fragment_cache.fr_path
     | `Full ->
       (* Cache pressure under the reject policy: flush and retry, as
          Dynamo does. *)
       do_flush st ~reason:"pressure" ~window_preds:st.window_preds
         ~baseline:0.0;
       Hashtbl.replace st.predicted target_path ();
       (match Fragment_cache.insert st.cache fr with
        | `Inserted | `Duplicate -> ()
        | `Evicted _ | `Full -> assert false));
    Events.dynamo_install st.cfg.events ~at:st.instances ~path:target_path
      ~blocks:(Array.length p.Path.blocks) ~instrs:p.Path.n_instrs
      ~fragments:(Fragment_cache.inserted_total st.cache)

  let step st ~path:(p : Path.t) ~arrival =
    let c = st.cfg.cost in
    let pid = p.Path.id in
    let instrs = float_of_int p.Path.n_instrs in
    st.instances <- st.instances + 1;
    st.native <- st.native +. (instrs *. c.Cost_model.native_cycles_per_instr);
    if st.bailed then begin
      st.native_tail <- st.native_tail + 1;
      st.cyc_native_tail <-
        st.cyc_native_tail +. (instrs *. c.Cost_model.native_cycles_per_instr)
    end
    else begin
      st.prebail_instrs <- st.prebail_instrs +. instrs;
      if Hashtbl.mem st.predicted pid && Option.is_some (Fragment_cache.find_path st.cache pid)
      then begin
        st.full_hits <- st.full_hits + 1;
        st.fragment_instrs <- st.fragment_instrs +. instrs;
        st.cyc_fragment <-
          st.cyc_fragment
          +. c.Cost_model.fragment_link_cycles
          +. (instrs *. c.Cost_model.fragment_cycles_per_instr)
      end
      else begin
        (* Miss or partial hit: execution enters the cache at the head and
           follows linked fragments while blocks match; the remainder is
           interpreted and the instance is observed by the scheme. *)
        (match Fragment_cache.find_head st.cache (Path.head p) with
         | _ :: _ as candidates ->
           let matched =
             float_of_int
               (List.fold_left
                  (fun best fr -> max best (prefix_instrs st.program fr p.Path.blocks))
                  0 candidates)
           in
           if matched > 0.0 then begin
             st.partial_hits <- st.partial_hits + 1;
             st.fragment_instrs <- st.fragment_instrs +. matched;
             st.cyc_fragment <-
               st.cyc_fragment
               +. c.Cost_model.fragment_link_cycles
               +. (matched *. c.Cost_model.fragment_cycles_per_instr);
             st.cyc_interp <-
               st.cyc_interp
               +. ((instrs -. matched) *. c.Cost_model.interp_cycles_per_instr)
           end
           else begin
             st.misses <- st.misses + 1;
             st.cyc_interp <-
               st.cyc_interp +. (instrs *. c.Cost_model.interp_cycles_per_instr)
           end
         | [] ->
           st.misses <- st.misses + 1;
           st.cyc_interp <-
             st.cyc_interp +. (instrs *. c.Cost_model.interp_cycles_per_instr));
        st.cyc_profile <-
          st.cyc_profile
          +. st.cfg.scheme_costs.per_instance ~n_branches:p.Path.n_branches ~arrival;
        match
          st.observe ~head:(Path.head p) ~arrival ~path_id:pid
            ~n_branches:p.Path.n_branches
            ~n_blocks:(Array.length p.Path.blocks)
        with
        | Some target when not (Hashtbl.mem st.predicted target) ->
          let tp = st.lookup target in
          st.collect ~n_blocks:(Array.length tp.Path.blocks);
          st.cyc_overhead <-
            st.cyc_overhead
            +. st.cfg.scheme_costs.per_prediction
                 ~n_blocks:(Array.length tp.Path.blocks)
                 ~n_instrs:tp.Path.n_instrs;
          install st target;
          st.window_preds <- st.window_preds + 1
        | Some _ | None -> ()
      end
    end;
    if st.instances >= st.ev_next then begin
      emit_window st;
      st.ev_next <- st.ev_next + st.cfg.events_window
    end;
    (match st.cfg.flush_policy with
     | Some fp -> if st.instances mod fp.fp_window = 0 then window_boundary st fp
     | None -> ());
    match st.cfg.bail_policy with
    | Some bp when (not st.bailed) && st.instances mod bp.bp_window = 0 ->
      bail_boundary st bp
    | Some _ | None -> ()

  let finalize st =
    (* The last (possibly short) window always gets a sample, so a
       consumer summing the final event matches the result record. *)
    if
      (not (Events.is_null st.cfg.events))
      && (st.ev_last_upto < st.instances || st.ev_seq = 0)
    then emit_window st;
    let dynamo =
      st.cyc_fragment +. st.cyc_interp +. st.cyc_profile +. st.cyc_overhead
      +. st.cyc_flush +. st.cyc_native_tail
    in
    {
      r_scheme = st.scheme_name;
      r_delay = st.cfg.delay;
      r_native_cycles = st.native;
      r_dynamo_cycles = dynamo;
      r_speedup_pct =
        (if dynamo > 0.0 then ((st.native /. dynamo) -. 1.0) *. 100.0 else 0.0);
      r_bailed = st.bailed;
      r_fragments = Fragment_cache.inserted_total st.cache;
      r_flushes = Fragment_cache.flush_count st.cache;
      r_full_hits = st.full_hits;
      r_partial_hits = st.partial_hits;
      r_misses = st.misses;
      r_native_tail = st.native_tail;
      r_cycles_fragment = st.cyc_fragment;
      r_cycles_interp = st.cyc_interp;
      r_cycles_profile = st.cyc_profile;
      r_cycles_overhead = st.cyc_overhead;
      r_cycles_flush = st.cyc_flush;
      r_cache_coverage_pct =
        Hotpath_util.Stats.pct st.fragment_instrs st.prebail_instrs;
    }
end

let run cfg (r : Recorder.t) =
  let paths = Path_table.paths r.Recorder.table in
  let st = Stepper.create cfg ~program:r.Recorder.program ~lookup:(fun id -> paths.(id)) in
  let instances = r.Recorder.instances in
  for i = 0 to Array.length instances - 1 do
    Stepper.step st ~path:paths.(instances.(i)) ~arrival:(Recorder.arrival r i)
  done;
  Stepper.finalize st

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s delay=%d: speedup=%+.1f%%%s@,\
     cycles: native=%.3e dynamo=%.3e (frag=%.3e interp=%.3e prof=%.3e ovh=%.3e \
     flush=%.3e)@,\
     hits: full=%d partial=%d miss=%d native-tail=%d fragments=%d flushes=%d \
     coverage=%.1f%%@]"
    r.r_scheme r.r_delay r.r_speedup_pct
    (if r.r_bailed then " [BAILED OUT]" else "")
    r.r_native_cycles r.r_dynamo_cycles r.r_cycles_fragment r.r_cycles_interp
    r.r_cycles_profile r.r_cycles_overhead r.r_cycles_flush r.r_full_hits
    r.r_partial_hits r.r_misses r.r_native_tail r.r_fragments r.r_flushes
    r.r_cache_coverage_pct
