type t = int32

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let empty = 0l

(* Standard composable form: invert on entry and exit, so the state
   between updates is the plain (finalized) checksum. *)
let update_gen get crc buf ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (get buf i))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let update_string crc s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.update_string: slice out of bounds";
  update_gen (fun s i -> Char.code (String.unsafe_get s i)) crc s ~pos ~len

let update_bytes crc b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32.update_bytes: slice out of bounds";
  update_gen (fun b i -> Char.code (Bytes.unsafe_get b i)) crc b ~pos ~len

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Slicing-by-4 tables on native ints for the bigstring loop below:
   [t.(0)] is the standard byte table widened to int, and each
   [t.(j+1).(b)] advances [t.(j).(b)] one more zero byte, so four
   lookups absorb four message bytes at once. *)
let tables_nat =
  lazy
    (let t0 =
       Array.map (fun c -> Int32.to_int c land 0xFFFF_FFFF) (Lazy.force table)
     in
     let next t = Array.map (fun c -> t0.(c land 0xFF) lxor (c lsr 8)) t in
     let t1 = next t0 in
     let t2 = next t1 in
     let t3 = next t2 in
     [| t0; t1; t2; t3 |])

(* Specialized loop for the mapped-ingest hot path: zero-copy readers
   checksum every mapped byte, so this replaces [update_gen]'s per-byte
   closure call with a slicing-by-4 state machine on untagged native
   ints (the state fits 32 bits and stays non-negative, so [lsr] is the
   logical shift).  Byte-compatible with [update_gen] by construction —
   both compute reflected CRC-32 — and the shared test suite pins them
   to each other. *)
let update_bigstring crc b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bigarray.Array1.dim b - len then
    invalid_arg "Crc32.update_bigstring: slice out of bounds";
  let t = Lazy.force tables_nat in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let c = ref (Int32.to_int (Int32.lognot crc) land 0xFFFF_FFFF) in
  let i = ref pos in
  let last = pos + len in
  while last - !i >= 4 do
    let p = !i in
    let word =
      Char.code (Bigarray.Array1.unsafe_get b p)
      lor (Char.code (Bigarray.Array1.unsafe_get b (p + 1)) lsl 8)
      lor (Char.code (Bigarray.Array1.unsafe_get b (p + 2)) lsl 16)
      lor (Char.code (Bigarray.Array1.unsafe_get b (p + 3)) lsl 24)
    in
    let x = !c lxor word in
    c :=
      Array.unsafe_get t3 (x land 0xFF)
      lxor Array.unsafe_get t2 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((x lsr 24) land 0xFF);
    i := p + 4
  done;
  while !i < last do
    let byte = Char.code (Bigarray.Array1.unsafe_get b !i) in
    c := Array.unsafe_get t0 ((!c lxor byte) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  Int32.lognot (Int32.of_int !c)

let update_char crc ch = update_gen (fun c _ -> Char.code c) crc ch ~pos:0 ~len:1

let digest_string s = update_string empty s ~pos:0 ~len:(String.length s)
