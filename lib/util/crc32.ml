type t = int32

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let empty = 0l

(* Standard composable form: invert on entry and exit, so the state
   between updates is the plain (finalized) checksum. *)
let update_gen get crc buf ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (get buf i))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let update_string crc s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.update_string: slice out of bounds";
  update_gen (fun s i -> Char.code (String.unsafe_get s i)) crc s ~pos ~len

let update_bytes crc b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32.update_bytes: slice out of bounds";
  update_gen (fun b i -> Char.code (Bytes.unsafe_get b i)) crc b ~pos ~len

let update_char crc ch = update_gen (fun c _ -> Char.code c) crc ch ~pos:0 ~len:1

let digest_string s = update_string empty s ~pos:0 ~len:(String.length s)
