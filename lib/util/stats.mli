(** Small numeric helpers used by the metrics and experiment layers. *)

val mean : float array -> float
(** Arithmetic mean; 0. for an empty array. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values; 0. for an empty array.
    @raise Invalid_argument when a value is not positive. *)

val stddev : float array -> float
(** Population standard deviation; 0. for fewer than two samples. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array or [p]
    outside the range. *)

val minimum : float array -> float
(** @raise Invalid_argument on an empty array. *)

val maximum : float array -> float
(** @raise Invalid_argument on an empty array. *)

val total : float array -> float

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], or 0. when [den = 0.]. *)

val pct : float -> float -> float
(** [pct part whole] is [100 *. part /. whole], or 0. when [whole = 0.]. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds to [digits] decimal places. *)

val ranks : float array -> float array
(** Fractional ranks, 1-based: tied values share the average of the
    positions they span (the tie convention of rank correlation). *)

val spearman : float array -> float array -> float
(** Spearman rank correlation with tie-averaged ranks (Pearson on
    {!ranks}); [0.] for fewer than two samples or a constant side.
    @raise Invalid_argument on a length mismatch. *)
