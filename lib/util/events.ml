type value = Int of int | Float of float | Str of string | Bool of bool

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* Each live sink carries a scratch buffer reused across lines: emission
   sits inside replay windows whose whole budget is tens of microseconds,
   so a per-line Buffer allocation is measurable. *)
type sink =
  | Null
  | Fn of { fn : string -> unit; mutable lines : int; buf : Buffer.t }
  | Chan of {
      oc : out_channel;
      mutable lines : int;
      mutable closed : bool;
      buf : Buffer.t;
    }

let null = Null

let is_null = function Null -> true | Fn _ | Chan _ -> false

let of_fn fn = Fn { fn; lines = 0; buf = Buffer.create 256 }

let of_buffer buf = of_fn (Buffer.add_string buf)

let of_channel oc = of_fn (fun s -> output_string oc s)

let open_file path =
  Chan { oc = open_out path; lines = 0; closed = false; buf = Buffer.create 256 }

let close = function
  | Null | Fn _ -> ()
  | Chan c ->
    if not c.closed then begin
      c.closed <- true;
      close_out_noerr c.oc
    end

let emitted = function Null -> 0 | Fn f -> f.lines | Chan c -> c.lines

(* ------------------------------------------------------------------ *)
(* JSON formatting                                                     *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every float but prints 0.30000000000000004-style
   noise for values that have a shorter exact form; try the shortest
   representation that parses back exactly, as JSON serializers do. *)
let add_float buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else begin
    let s = Printf.sprintf "%.12g" v in
    let s = if float_of_string s = v then s else Printf.sprintf "%.17g" v in
    Buffer.add_string buf s
  end

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let render_into buf ~kind fields =
  Buffer.clear buf;
  Buffer.add_string buf "{\"ev\":";
  add_escaped buf kind;
  List.iter
    (fun (name, v) ->
       Buffer.add_char buf ',';
       Buffer.add_char buf '"';
       Buffer.add_string buf name;
       Buffer.add_string buf "\":";
       add_value buf v)
    fields;
  Buffer.add_string buf "}\n"

let emit sink ~kind fields =
  match sink with
  | Null -> ()
  | Fn f ->
    render_into f.buf ~kind fields;
    f.fn (Buffer.contents f.buf);
    f.lines <- f.lines + 1
  | Chan c ->
    render_into c.buf ~kind fields;
    Buffer.output_buffer c.oc c.buf;
    c.lines <- c.lines + 1

(* Re-emission of an already-serialized line: the deterministic merge of
   per-domain event buffers (parallel replay) forwards lines verbatim so
   the merged stream is byte-identical to the serial one. *)
let raw sink line =
  match sink with
  | Null -> ()
  | Fn f ->
    f.fn line;
    f.lines <- f.lines + 1
  | Chan c ->
    output_string c.oc line;
    c.lines <- c.lines + 1

(* ------------------------------------------------------------------ *)
(* Typed constructors                                                  *)
(* ------------------------------------------------------------------ *)

let replay_window sink ~scheme ~delay ~seq ~upto ~instances ~predictions
    ~profiled ~captured ~profiling_ops ~collection_ops ~counter_space
    ~counter_space_hw ?hits ?noise () =
  if not (is_null sink) then
    emit sink ~kind:"replay.window"
      ([ ("scheme", Str scheme); ("delay", Int delay); ("seq", Int seq);
         ("upto", Int upto); ("instances", Int instances);
         ("predictions", Int predictions); ("profiled", Int profiled);
         ("captured", Int captured); ("profiling_ops", Int profiling_ops);
         ("collection_ops", Int collection_ops);
         ("counter_space", Int counter_space);
         ("counter_space_hw", Int counter_space_hw) ]
       @ (match hits with Some h -> [ ("hits", Int h) ] | None -> [])
       @ match noise with Some n -> [ ("noise", Int n) ] | None -> [])

let sweep_point sink ~scheme ~delay ~idx ~total ~profiled_pct ~hit_rate
    ~noise_rate ~predictions ~counter_space ~profiling_ops ~collection_ops =
  emit sink ~kind:"sweep.point"
    [ ("scheme", Str scheme); ("delay", Int delay); ("idx", Int idx);
      ("total", Int total); ("profiled_pct", Float profiled_pct);
      ("hit_rate", Float hit_rate); ("noise_rate", Float noise_rate);
      ("predictions", Int predictions); ("counter_space", Int counter_space);
      ("profiling_ops", Int profiling_ops);
      ("collection_ops", Int collection_ops) ]

let sweep_done sink ~scheme ~delays ~wall_s ~instances ~instances_per_s =
  emit sink ~kind:"sweep.done"
    [ ("scheme", Str scheme); ("delays", Int delays); ("wall_s", Float wall_s);
      ("instances", Int instances);
      ("instances_per_s", Float instances_per_s) ]

let record_chunk sink ~seq ~instances ~paths ~bytes_out =
  emit sink ~kind:"record.chunk"
    [ ("seq", Int seq); ("instances", Int instances); ("paths", Int paths);
      ("bytes_out", Int bytes_out) ]

let record_done sink ~instances ~paths ~bytes_out =
  emit sink ~kind:"record.done"
    [ ("instances", Int instances); ("paths", Int paths);
      ("bytes_out", Int bytes_out) ]

let check_diag sink ~subject ~code ~severity ~loc ~message =
  emit sink ~kind:"check"
    [ ("subject", Str subject); ("code", Str code); ("severity", Str severity);
      ("loc", Str loc); ("message", Str message) ]

let check_done sink ~subjects ~errors ~warnings ~infos =
  emit sink ~kind:"check.done"
    [ ("subjects", Int subjects); ("errors", Int errors);
      ("warnings", Int warnings); ("infos", Int infos) ]

let serve_accept sink ~conn =
  emit sink ~kind:"serve.accept" [ ("conn", Int conn) ]

let serve_attach sink ~conn ~tenant ~scheme ~delays =
  emit sink ~kind:"serve.attach"
    [ ("conn", Int conn); ("tenant", Str tenant); ("scheme", Str scheme);
      ("delays", Int delays) ]

let serve_done sink ~conn ~tenant ~instances ~chunks ~predictions =
  emit sink ~kind:"serve.done"
    [ ("conn", Int conn); ("tenant", Str tenant); ("instances", Int instances);
      ("chunks", Int chunks); ("predictions", Int predictions) ]

let serve_error sink ~conn ~tenant ~code ~message =
  emit sink ~kind:"serve.error"
    [ ("conn", Int conn); ("tenant", Str tenant); ("code", Str code);
      ("message", Str message) ]

let serve_stats sink ~accepted ~completed ~errored ~active ~instances =
  emit sink ~kind:"serve.stats"
    [ ("accepted", Int accepted); ("completed", Int completed);
      ("errored", Int errored); ("active", Int active);
      ("instances", Int instances) ]

let dynamo_install sink ~at ~path ~blocks ~instrs ~fragments =
  emit sink ~kind:"dynamo.install"
    [ ("at", Int at); ("path", Int path); ("blocks", Int blocks);
      ("instrs", Int instrs); ("fragments", Int fragments) ]

let dynamo_flush sink ~at ~reason ~window_preds ~baseline ~flushes ~cycles_flush
  =
  emit sink ~kind:"dynamo.flush"
    [ ("at", Int at); ("reason", Str reason);
      ("window_preds", Int window_preds); ("baseline", Float baseline);
      ("flushes", Int flushes); ("cycles_flush", Float cycles_flush) ]

let dynamo_bail sink ~at ~streak ~overhead_delta ~interp_delta ~native_delta =
  emit sink ~kind:"dynamo.bail"
    [ ("at", Int at); ("streak", Int streak);
      ("overhead_delta", Float overhead_delta);
      ("interp_delta", Float interp_delta);
      ("native_delta", Float native_delta) ]

let dynamo_window sink ~scheme ~delay ~seq ~upto ~full_hits ~partial_hits
    ~misses ~fragments ~flushes ~cycles_fragment ~cycles_interp ~cycles_profile
    ~cycles_overhead ~cycles_flush ~cycles_native =
  emit sink ~kind:"dynamo.window"
    [ ("scheme", Str scheme); ("delay", Int delay); ("seq", Int seq);
      ("upto", Int upto); ("full_hits", Int full_hits);
      ("partial_hits", Int partial_hits); ("misses", Int misses);
      ("fragments", Int fragments); ("flushes", Int flushes);
      ("cycles_fragment", Float cycles_fragment);
      ("cycles_interp", Float cycles_interp);
      ("cycles_profile", Float cycles_profile);
      ("cycles_overhead", Float cycles_overhead);
      ("cycles_flush", Float cycles_flush);
      ("cycles_native", Float cycles_native) ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type counter = { c_name : string; mutable v : int; mutable hw : int }

  (* Registration order is reporting order, so the table is a list under
     the same mutex that guards counter mutation. *)
  let lock = Mutex.create ()

  let counters : counter list ref = ref []

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let counter name =
    with_lock (fun () ->
        match List.find_opt (fun c -> c.c_name = name) !counters with
        | Some c -> c
        | None ->
          let c = { c_name = name; v = 0; hw = 0 } in
          counters := !counters @ [ c ];
          c)

  let add c n =
    with_lock (fun () ->
        c.v <- c.v + n;
        if c.v > c.hw then c.hw <- c.v)

  let incr c = add c 1

  let set c n =
    with_lock (fun () ->
        c.v <- n;
        if c.v > c.hw then c.hw <- c.v)

  let value c = with_lock (fun () -> c.v)

  let high_water c = with_lock (fun () -> c.hw)

  let name c = c.c_name

  let snapshot () =
    with_lock (fun () -> List.map (fun c -> (c.c_name, (c.v, c.hw))) !counters)

  let reset () = with_lock (fun () -> counters := [])
end

let registry_snapshot sink =
  if not (is_null sink) then
    emit sink ~kind:"registry"
      (List.concat_map
         (fun (name, (v, hw)) -> [ (name, Int v); (name ^ ".hw", Int hw) ])
         (Registry.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do advance () done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | Some c -> fail "expected '%c' at %d, got '%c'" ch !pos c
    | None -> fail "expected '%c' at %d, got end of line" ch !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub line !pos 4)
             with Failure _ -> fail "bad \\u escape"
           in
           if code > 0x7f then fail "non-ASCII \\u escape %04x" code;
           Buffer.add_char buf (Char.chr code);
           pos := !pos + 4
         | Some c -> fail "bad escape '\\%c'" c
         | None -> fail "truncated escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_scalar () =
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4; Bool true
      end
      else fail "bad literal at %d" !pos
    | Some 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5; Bool false
      end
      else fail "bad literal at %d" !pos
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      let is_float = ref false in
      let rec scan () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') -> advance (); scan ()
        | Some ('.' | 'e' | 'E') -> is_float := true; advance (); scan ()
        | Some _ | None -> ()
      in
      scan ();
      let s = String.sub line start (!pos - start) in
      if !is_float then
        (try Float (float_of_string s) with Failure _ -> fail "bad number %S" s)
      else (
        try Int (int_of_string s)
        with Failure _ -> (
            (* Integers beyond OCaml's 63-bit range fall back to float. *)
            try Float (float_of_string s)
            with Failure _ -> fail "bad number %S" s))
    | Some c -> fail "unexpected '%c' at %d" c !pos
    | None -> fail "unexpected end of line"
  in
  try
    skip_ws ();
    expect '{';
    let fields = ref [] in
    skip_ws ();
    (match peek () with
     | Some '}' -> advance ()
     | _ ->
       let rec members () =
         skip_ws ();
         let name = parse_string () in
         skip_ws ();
         expect ':';
         skip_ws ();
         let v = parse_scalar () in
         fields := (name, v) :: !fields;
         skip_ws ();
         match peek () with
         | Some ',' -> advance (); members ()
         | Some '}' -> advance ()
         | Some c -> fail "expected ',' or '}' at %d, got '%c'" !pos c
         | None -> fail "unterminated object"
       in
       members ());
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done;
    if !pos <> n then fail "trailing bytes after object at %d" !pos;
    Ok (List.rev !fields)
  with Bad m -> Error m

let kind fields =
  match List.assoc_opt "ev" fields with Some (Str s) -> Some s | _ -> None

let find_int fields name =
  match List.assoc_opt name fields with Some (Int i) -> Some i | _ -> None

let find_float fields name =
  match List.assoc_opt name fields with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let find_str fields name =
  match List.assoc_opt name fields with Some (Str s) -> Some s | _ -> None
