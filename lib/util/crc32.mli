(** CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320).

    The streaming trace format frames every chunk with a CRC so that a
    torn write, a flipped bit, or a corrupted length field is detected at
    read time instead of producing a silently wrong replay.  The digest is
    incremental: feed slices in any granularity; equal byte sequences give
    equal digests regardless of how they were sliced. *)

type t = int32
(** Running digest state.  Also the final digest value: the state after
    the last update {e is} the checksum (zlib-style pre/post conditioning
    is applied inside every update). *)

val empty : t
(** Digest of the empty byte sequence (0l). *)

val update_string : t -> string -> pos:int -> len:int -> t
(** Extend the digest with [len] bytes of [s] starting at [pos].
    @raise Invalid_argument when the slice is out of bounds. *)

val update_bytes : t -> Bytes.t -> pos:int -> len:int -> t

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A char [Bigarray] — the view type of a memory-mapped trace file. *)

val update_bigstring : t -> bigstring -> pos:int -> len:int -> t
(** Extend the digest straight over a mapped region — no copy into the
    OCaml heap.  Equal bytes give equal digests across all three buffer
    kinds, which is what lets the mapped reader check the same frame
    CRCs the pull reader wrote. *)

val update_char : t -> char -> t

val digest_string : string -> t
(** One-shot digest of a whole string. *)
