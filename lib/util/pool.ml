(* Domain-based work pool (OCaml 5): fan a fixed job list out over a
   bounded set of domains while keeping result order deterministic.

   Design notes:
   - Jobs are indexed up front; workers pull the next index from a
     mutex-protected counter and write into a per-index slot, so the
     result list is always in input order regardless of scheduling.
   - The caller's domain is itself one of the workers: [jobs = 4] means
     at most 4 domains total, not 4 spawned helpers.
   - The pool is created and torn down per call.  Experiment fan-out jobs
     are seconds-long, so domain spawn cost (~10 us) is irrelevant and a
     persistent pool would only add lifecycle hazards.
   - The first exception raised by any job is re-raised in the caller
     once every worker has stopped; remaining queued jobs are abandoned. *)

type 'a queue = {
  mutex : Mutex.t;
  not_done : Condition.t;  (* signalled when a worker finishes its last job *)
  mutable next : int;
  mutable running : int;  (* workers still executing *)
  mutable failure : exn option;
}

(* Test override for the machine's domain budget: 0 means "ask the
   runtime".  [with_domain_limit 1] simulates a 1-core machine (the
   oversubscription clamp becomes observable anywhere), and a limit
   above the real core count forces genuine multi-domain fan-out on
   small CI machines so merge paths are exercised. *)
let domain_limit = Atomic.make 0

let available_domains () =
  match Atomic.get domain_limit with
  | 0 -> max 1 (Domain.recommended_domain_count ())
  | limit -> limit

let with_domain_limit limit f =
  if limit < 1 then invalid_arg "Pool.with_domain_limit: limit must be >= 1";
  let prev = Atomic.get domain_limit in
  Atomic.set domain_limit limit;
  Fun.protect ~finally:(fun () -> Atomic.set domain_limit prev) f

let clamp_jobs jobs =
  if jobs < 1 then invalid_arg "Pool: jobs must be >= 1";
  min jobs (available_domains ())

let effective_workers ~jobs = clamp_jobs jobs

let default_jobs () = available_domains ()

let with_lock q f =
  Mutex.lock q.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mutex) f

(* Pull the next job index, or None when the queue is drained or poisoned. *)
let take q n =
  with_lock q (fun () ->
      if q.failure <> None || q.next >= n then None
      else begin
        let i = q.next in
        q.next <- q.next + 1;
        Some i
      end)

let poison q e =
  with_lock q (fun () -> if q.failure = None then q.failure <- Some e)

let map_array ?(cap = true) ~jobs f items =
  let n = Array.length items in
  let workers =
    if cap then min (clamp_jobs jobs) (max 1 n)
    else begin
      if jobs < 1 then invalid_arg "Pool: jobs must be >= 1";
      min jobs (max 1 n)
    end
  in
  if workers <= 1 || n <= 1 then Array.map f items
  else begin
    let q =
      {
        mutex = Mutex.create ();
        not_done = Condition.create ();
        next = 0;
        running = workers;
        failure = None;
      }
    in
    let results = Array.make n None in
    let rec work () =
      match take q n with
      | None ->
        with_lock q (fun () ->
            q.running <- q.running - 1;
            if q.running = 0 then Condition.broadcast q.not_done)
      | Some i ->
        (match f items.(i) with
         | v -> results.(i) <- Some v
         | exception e -> poison q e);
        work ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn work) in
    work ();
    (* The caller's worker is done; wait for the spawned ones. *)
    with_lock q (fun () ->
        while q.running > 0 do
          Condition.wait q.not_done q.mutex
        done);
    Array.iter Domain.join spawned;
    match q.failure with
    | Some e -> raise e
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* no failure implies every slot was filled *))
        results
  end

let map ?cap ~jobs f xs = Array.to_list (map_array ?cap ~jobs f (Array.of_list xs))

let iter ?cap ~jobs f xs = ignore (map ?cap ~jobs f xs)
