(** Domain-based work pool for experiment fan-out.

    [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] domains concurrently (the calling domain included), and returns
    the results {e in input order} — parallelism never changes what a
    caller observes, only how fast it arrives.  The worker count is capped
    at {!Domain.recommended_domain_count}, so over-asking on a small
    machine degrades gracefully; [jobs = 1] runs inline with no domain
    machinery at all.

    If a job raises, the remaining queued jobs are abandoned, every worker
    is drained, and the first exception is re-raised in the caller.

    [f] runs on other domains: it must not touch domain-unsafe shared
    mutable state.  The experiment layer's shared recording cache
    ({!Hotpath_experiments.Runs}) is mutex-guarded for exactly this
    caller. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — a sensible
    [--jobs] default for CPU-bound sweeps.  Honours
    {!with_domain_limit}. *)

val effective_workers : jobs:int -> int
(** [min jobs (available domains)] — the worker count a capped
    {!map_array} call with [jobs] would actually use.  Callers whose
    fan-out width must match the real domain budget (replay's chunk
    engine shards work by this number, never by the raw [jobs] ask)
    compute it here so a [jobs = 8] request on a 1-core machine runs one
    worker instead of oversubscribing eight domains.
    @raise Invalid_argument when [jobs < 1]. *)

val with_domain_limit : int -> (unit -> 'a) -> 'a
(** [with_domain_limit n f] runs [f] with the machine's domain budget
    overridden to [n] (both directions: [1] simulates a single-core
    machine; a large [n] forces real multi-domain fan-out on small CI
    hosts).  Affects {!default_jobs}, {!effective_workers} and capped
    {!map_array} calls for the dynamic extent of [f]; restored on exit,
    exceptions included.  The override is process-global — intended for
    tests, not for concurrent production use.
    @raise Invalid_argument when [n < 1]. *)

val map : ?cap:bool -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [cap] (default [true]) limits workers to the machine's domain
    budget ({!effective_workers}).  [~cap:false] honours [jobs] exactly
    and can oversubscribe a small machine — an escape hatch for tests
    that need a known concurrent worker count (e.g. barrier tests);
    production fan-out should stay capped and size its shards with
    {!effective_workers} instead.
    @raise Invalid_argument when [jobs < 1]. *)

val map_array : ?cap:bool -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val iter : ?cap:bool -> jobs:int -> ('a -> unit) -> 'a list -> unit
