(** Domain-based work pool for experiment fan-out.

    [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] domains concurrently (the calling domain included), and returns
    the results {e in input order} — parallelism never changes what a
    caller observes, only how fast it arrives.  The worker count is capped
    at {!Domain.recommended_domain_count}, so over-asking on a small
    machine degrades gracefully; [jobs = 1] runs inline with no domain
    machinery at all.

    If a job raises, the remaining queued jobs are abandoned, every worker
    is drained, and the first exception is re-raised in the caller.

    [f] runs on other domains: it must not touch domain-unsafe shared
    mutable state.  The experiment layer's shared recording cache
    ({!Hotpath_experiments.Runs}) is mutex-guarded for exactly this
    caller. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1 — a sensible
    [--jobs] default for CPU-bound sweeps. *)

val map : ?cap:bool -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [cap] (default [true]) limits workers to the machine's recommended
    domain count.  [~cap:false] honours [jobs] exactly — for callers
    that shard work whose worker count is semantically meaningful (lane
    sharding, determinism tests) and must not silently degrade on small
    machines.
    @raise Invalid_argument when [jobs < 1]. *)

val map_array : ?cap:bool -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val iter : ?cap:bool -> jobs:int -> ('a -> unit) -> 'a list -> unit
