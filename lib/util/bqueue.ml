type 'a t = {
  data : 'a option array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable hw : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { data = Array.make capacity None; head = 0; len = 0; hw = 0 }

let capacity q = Array.length q.data

let length q = q.len

let is_empty q = q.len = 0

let is_full q = q.len = Array.length q.data

let push q x =
  if is_full q then false
  else begin
    let cap = Array.length q.data in
    q.data.((q.head + q.len) mod cap) <- Some x;
    q.len <- q.len + 1;
    if q.len > q.hw then q.hw <- q.len;
    true
  end

let pop q =
  if q.len = 0 then None
  else begin
    let x = q.data.(q.head) in
    (* Release the slot so popped elements are collectable. *)
    q.data.(q.head) <- None;
    q.head <- (q.head + 1) mod Array.length q.data;
    q.len <- q.len - 1;
    x
  end

let peek q = if q.len = 0 then None else q.data.(q.head)

let clear q =
  Array.fill q.data 0 (Array.length q.data) None;
  q.head <- 0;
  q.len <- 0

let high_water q = q.hw
