(** Structured observability: a JSON-Lines event stream plus a
    process-wide counter/gauge registry.

    The paper's "less is more" argument is an accounting claim — NET wins
    because its counter space, profiling operations, and flush/bail
    behavior are cheaper {e over time}.  End-of-run aggregates cannot show
    that; this module makes the time series a product surface.  The replay
    engine, the delay sweeps, and the Dynamo simulator all emit typed
    events through a {!sink}, and [hotpath events-summary] renders the
    stream back into per-window tables.

    Emission is strictly an observation: producers are written so that an
    enabled sink never changes a computed outcome, and the differential
    test suite holds them to byte-identical results with events on and
    off.  The default sink is {!null}, and every producer skips its
    sampling work entirely when handed it, so the disabled cost is one
    pointer comparison per call site.

    One event is one line of flat JSON: [{"ev":"<kind>",...}] with
    integer, float, string, and boolean fields only — greppable, [jq]-able,
    and parseable by {!parse_line} without an external JSON dependency. *)

(** {1 Values and sinks} *)

type value = Int of int | Float of float | Str of string | Bool of bool

type sink
(** Where events go.  A sink counts the lines it has emitted. *)

val null : sink
(** The no-op sink: {!emit} on it does nothing.  Producers treat it as
    "events disabled" and skip sampling work entirely. *)

val is_null : sink -> bool

val of_fn : (string -> unit) -> sink
(** [of_fn f] calls [f] with each serialized line (newline included). *)

val of_buffer : Buffer.t -> sink

val of_channel : out_channel -> sink

val open_file : string -> sink
(** Truncating file sink.  @raise Sys_error on I/O failure.  Pair with
    {!close}. *)

val close : sink -> unit
(** Flush and release an {!open_file} sink (idempotent; no-op for the
    other constructors). *)

val emitted : sink -> int
(** Lines emitted through this sink so far (0 for {!null}, always). *)

val emit : sink -> kind:string -> (string * value) list -> unit
(** [emit sink ~kind fields] writes one JSON line with ["ev"] bound to
    [kind] followed by [fields] in the given order.  Field names must be
    distinct from ["ev"]; no escaping is applied to names (use plain
    identifiers). *)

val raw : sink -> string -> unit
(** [raw sink line] forwards an already-serialized event line (newline
    included) verbatim, counting it like {!emit}.  Used by parallel
    replay to merge per-domain event buffers deterministically; not a
    general emission entry point. *)

(** {1 Typed event constructors}

    One function per event kind wired into the pipeline, so producers
    cannot drift from the schema the summary renderer and the tests
    expect.  All are no-ops on {!null}. *)

val replay_window :
  sink ->
  scheme:string ->
  delay:int ->
  seq:int ->
  upto:int ->
  instances:int ->
  predictions:int ->
  profiled:int ->
  captured:int ->
  profiling_ops:int ->
  collection_ops:int ->
  counter_space:int ->
  counter_space_hw:int ->
  ?hits:int ->
  ?noise:int ->
  unit ->
  unit
(** One replay sample window for one delay lane: [seq] is the 0-based
    window index, [upto] the instances processed when the sample was
    taken, [instances] the window's length (the last window may be
    short).  All remaining fields are cumulative for the lane —
    [counter_space_hw] is the high-water mark of [counter_space] across
    samples, and [hits]/[noise] (captured hot/cold flow so far) are
    present only when the caller knows the ground-truth hot set. *)

val sweep_point :
  sink ->
  scheme:string ->
  delay:int ->
  idx:int ->
  total:int ->
  profiled_pct:float ->
  hit_rate:float ->
  noise_rate:float ->
  predictions:int ->
  counter_space:int ->
  profiling_ops:int ->
  collection_ops:int ->
  unit
(** One sweep point ([idx] of [total], in delay order). *)

val sweep_done :
  sink ->
  scheme:string ->
  delays:int ->
  wall_s:float ->
  instances:int ->
  instances_per_s:float ->
  unit

val record_chunk :
  sink -> seq:int -> instances:int -> paths:int -> bytes_out:int -> unit
(** One flushed recording chunk: cumulative instance/path counts and
    bytes emitted to the trace sink so far. *)

val record_done : sink -> instances:int -> paths:int -> bytes_out:int -> unit

val check_diag :
  sink ->
  subject:string ->
  code:string ->
  severity:string ->
  loc:string ->
  message:string ->
  unit
(** One linter diagnostic from [hotpath check]: [subject] names the
    program or trace file, the remaining fields mirror the diagnostic
    record ([severity] is ["error"]/["warning"]/["info"], [loc] the
    rendered location, [code] the stable [Pxxx]/[Txxx] code). *)

val check_done :
  sink -> subjects:int -> errors:int -> warnings:int -> infos:int -> unit
(** End-of-run totals for one [hotpath check] invocation: how many
    subjects were linted and the diagnostic counts by severity. *)

val serve_accept : sink -> conn:int -> unit
(** The daemon accepted connection [conn] (a per-process sequence
    number). *)

val serve_attach :
  sink -> conn:int -> tenant:string -> scheme:string -> delays:int -> unit
(** A tenant session attached: the handshake parsed, the program frame
    decoded, and the attach-time lint gate passed. *)

val serve_done :
  sink ->
  conn:int ->
  tenant:string ->
  instances:int ->
  chunks:int ->
  predictions:int ->
  unit
(** A tenant's stream completed and its outcome was delivered;
    [predictions] sums accepted predictions across the delay lanes. *)

val serve_error :
  sink -> conn:int -> tenant:string -> code:string -> message:string -> unit
(** A tenant failed: [code] is one of ["handshake"], ["busy"],
    ["decode"], ["lint"], ["disconnect"], ["io"].  The failure is
    isolated to its connection — other tenants are unaffected. *)

val serve_stats :
  sink ->
  accepted:int ->
  completed:int ->
  errored:int ->
  active:int ->
  instances:int ->
  unit
(** Daemon lifetime totals, emitted at shutdown. *)

val dynamo_install :
  sink -> at:int -> path:int -> blocks:int -> instrs:int -> fragments:int -> unit
(** A fragment was installed for path [path] at instance [at];
    [fragments] counts installs so far. *)

val dynamo_flush :
  sink ->
  at:int ->
  reason:string ->
  window_preds:int ->
  baseline:float ->
  flushes:int ->
  cycles_flush:float ->
  unit
(** The fragment cache was flushed at instance [at]: [reason] is
    ["spike"] (the Section 6.1 phase heuristic) or ["pressure"] (cache
    full under the reject policy); [baseline] is the prediction-rate EWMA
    the spike was measured against (0 for pressure flushes). *)

val dynamo_bail :
  sink ->
  at:int ->
  streak:int ->
  overhead_delta:float ->
  interp_delta:float ->
  native_delta:float ->
  unit
(** The engine gave up at instance [at] after [streak] consecutive
    excessive windows; the deltas are the final window's cycles. *)

val dynamo_window :
  sink ->
  scheme:string ->
  delay:int ->
  seq:int ->
  upto:int ->
  full_hits:int ->
  partial_hits:int ->
  misses:int ->
  fragments:int ->
  flushes:int ->
  cycles_fragment:float ->
  cycles_interp:float ->
  cycles_profile:float ->
  cycles_overhead:float ->
  cycles_flush:float ->
  cycles_native:float ->
  unit
(** Periodic Dynamo cycle accounting, cumulative at instance [upto]. *)

val registry_snapshot : sink -> unit
(** Emit one ["registry"] event holding every registered counter's value
    and high-water mark (fields [<name>] and [<name>.hw], in registration
    order). *)

(** {1 Parsing}

    The inverse of {!emit}, for the summary renderer and the test suite.
    This is a parser for the flat JSON this module writes, not a general
    JSON parser: one object per line, scalar fields only. *)

val parse_line : string -> ((string * value) list, string) result
(** Parse one event line into its fields, ["ev"] included, in document
    order.  Unicode escapes other than the JSON two-character ones are
    rejected ([\uXXXX] is not needed by {!emit}, which escapes control
    bytes numerically but never emits multi-byte text). *)

val kind : (string * value) list -> string option
(** The ["ev"] field, if present. *)

val find_int : (string * value) list -> string -> int option
val find_float : (string * value) list -> string -> float option
(** [find_float] also accepts an [Int] field, widening it. *)

val find_str : (string * value) list -> string -> string option

(** {1 Counter/gauge registry}

    A process-wide table of named monotone counters and gauges, each
    tracking its high-water mark.  Domain-safe: all mutation goes through
    one mutex — callers are expected to touch it at window granularity,
    not per instance.  {!registry_snapshot} serializes it into the event
    stream. *)

module Registry : sig
  type counter

  val counter : string -> counter
  (** Intern (or find) the counter named [name].  Two calls with the same
      name return the same counter. *)

  val incr : counter -> unit

  val add : counter -> int -> unit
  (** Add [n] (may be negative for gauges); the high-water mark only ever
      rises. *)

  val set : counter -> int -> unit
  (** Gauge-style assignment, still tracked by the high-water mark. *)

  val value : counter -> int

  val high_water : counter -> int

  val name : counter -> string

  val snapshot : unit -> (string * (int * int)) list
  (** All counters as [(name, (value, high_water))], in registration
      order. *)

  val reset : unit -> unit
  (** Drop every registered counter (tests and repeated CLI runs). *)
end
