let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else total xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
         if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
         acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    sqrt (!acc /. float_of_int n)
  end

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty array";
  Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty array";
  Array.fold_left max xs.(0) xs

let ratio num den = if den = 0.0 then 0.0 else num /. den

let pct part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let round_to digits x =
  let f = 10.0 ** float_of_int digits in
  Float.round (x *. f) /. f

(* Fractional (average) ranks, 1-based: tied values share the mean of
   the positions they span. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.spearman: length mismatch";
  if n < 2 then 0.0
  else begin
    let rx = ranks xs and ry = ranks ys in
    let mx = mean rx and my = mean ry in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end
