(** Bounded FIFO queue — the backpressure primitive.

    A fixed-capacity ring buffer: {!push} refuses (returns [false])
    instead of growing when the queue is full, which is what lets a
    producer loop translate "queue full" into flow control (stop reading
    the socket, leave bytes in the kernel buffer) rather than unbounded
    memory growth.  The serve daemon bounds in-flight decoded chunks per
    tenant with one of these.

    Not thread-safe: single-owner, like {!Vec}.  {!high_water} tracks the
    maximum occupancy ever reached, so tests and benchmarks can assert
    the bound actually bit. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push q x] appends [x] and returns [true], or returns [false]
    (leaving the queue unchanged) when the queue is at capacity. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
(** Drop every element (does not reset {!high_water}). *)

val high_water : 'a t -> int
(** Maximum {!length} ever observed. *)
