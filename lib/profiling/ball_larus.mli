(** Ball–Larus efficient path profiling (MICRO 1996).

    The classic offline scheme the paper contrasts with bit tracing: a
    preparatory static analysis assigns each intraprocedural acyclic
    forward path a unique dense number, and a spanning-tree optimization
    places increments on a minimal set of edges (the {e chords}) so that
    summing the traversed increments yields the executing path's number.

    The acyclic CFG of a procedure is its blocks with backward edges
    removed and replaced by pseudo edges [ENTRY -> target] and
    [source -> EXIT]; forward edges strictly increase the address, so the
    result is a DAG and address order is a topological order.

    Numbering ([Val]) follows the original algorithm: in reverse
    topological order, [NumPaths(EXIT) = 1] and
    [NumPaths(v) = sum over successors w of NumPaths(w)], with [Val(e)]
    the running partial sum.  The chord increments come from the
    spanning-tree potential construction: with the zero-valued
    [EXIT -> ENTRY] edge forced into the tree and potentials propagated
    from ENTRY, [Inc(chord u->v) = Val + phi(u) - phi(v)] and tree edges
    need no instrumentation; every ENTRY-to-EXIT path's chord increments
    sum to its path number. *)

module Cfg = Hotpath_cfg.Cfg

type node = Block of Cfg.block_id | Exit
(** DAG nodes: the procedure's blocks plus a virtual exit. *)

type edge_kind =
  | Real  (** An original CFG edge (calls contribute their return-to edge). *)
  | To_exit  (** Real edge into the virtual exit (return / program exit). *)
  | Pseudo_entry  (** [ENTRY -> h] replacing back edges into [h]. *)
  | Pseudo_exit  (** [v -> EXIT] replacing back edges out of [v]. *)

type edge = {
  e_src : node;
  e_dst : node;
  e_kind : edge_kind;
  e_tag : int;  (** Disambiguates parallel edges (1 = branch-taken, else 0). *)
  e_val : int;  (** Ball–Larus [Val]. *)
  e_tree : bool;  (** In the spanning tree (no instrumentation needed). *)
  e_inc : int;  (** Chord increment; 0 for tree edges. *)
}

type t
(** Path numbering for one procedure. *)

val analyze : Cfg.program -> proc:Cfg.proc_id -> t
(** Build the acyclic CFG, number its paths and compute chord increments.
    @raise Invalid_argument if the procedure's path count overflows. *)

val num_paths : t -> int
(** [NumPaths(ENTRY)] — the static number of acyclic forward paths.  The
    paper notes this may be exponential in program size; it is also the
    counter space an array-based Ball–Larus profiler allocates. *)

val edges : t -> edge list

val num_edges : t -> int
(** Real + pseudo edges: the instrumentation points of the naive (no
    spanning tree) scheme. *)

val num_chords : t -> int
(** Edges carrying a non-zero-obligation increment after the spanning-tree
    optimization — what Ball–Larus actually instrument. *)

val path_number : t -> Cfg.block_id list -> int
(** Number of the ENTRY-to-EXIT DAG path visiting exactly these blocks
    (entry first; the virtual exit is implicit).  @raise Invalid_argument
    if the blocks do not form such a path or the first block is not the
    entry. *)

val regenerate : t -> int -> Cfg.block_id list
(** Inverse of {!path_number}: the block sequence of path [n].
    @raise Invalid_argument when [n] is outside [\[0, num_paths)]. *)

val enumerate : ?limit:int -> t -> Cfg.block_id list array
(** All ENTRY-to-EXIT paths in path-number order (index [i] is path [i]).
    @raise Invalid_argument when [num_paths] exceeds [limit] (default
    [65536]). *)

val num_kpaths : Cfg.program -> proc:Cfg.proc_id -> k:int -> int
(** Static count of k-iteration paths (D'Elia & Demetrescu): chains of
    up to [k] acyclic path components linked by the procedure's actual
    back edges — component [i < d] ends at a back-edge source through
    its pseudo exit, component [i + 1] starts at that edge's target.
    [num_kpaths ~k:1] equals {!num_paths}.

    @raise Invalid_argument when [k < 1] or when any intermediate count
    exceeds the same overflow limit {!analyze} enforces
    ([Bounds.bl_kpaths] is the saturating mirror: it reports [Overflow]
    exactly when this raises). *)

(** Online Ball–Larus profiler over the whole program.

    Feeds on VM transfers; maintains one path register per activation
    record (calls push, returns pop) and a count table per procedure.
    At a back edge the current path is counted through its pseudo exit
    edge and the register restarts through the pseudo entry edge, as in
    the original scheme. *)
module Runtime : sig
  type analysis := t

  type t

  val create : Cfg.program -> t
  (** Analyzes every procedure. *)

  val analysis : t -> Cfg.proc_id -> analysis

  val on_transfer : t -> Hotpath_vm.Vm.transfer -> unit
  (** Feed one VM transfer (in execution order). *)

  val counts : t -> Cfg.proc_id -> (int * int) list
  (** [(path_number, count)] pairs for the procedure, descending count. *)

  val total_counted : t -> int
  (** Total completed acyclic paths across all procedures. *)

  val instrumented_ops : t -> int
  (** Chord increments executed so far — the runtime profiling cost of the
      spanning-tree-optimized scheme. *)

  val counter_space : t -> int
  (** Distinct path numbers with a live counter, across procedures. *)
end
