module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Vec = Hotpath_util.Vec

type node = Block of Cfg.block_id | Exit

(* Internal node encoding adds a virtual entry so that a loop head at the
   procedure entry block still gets a well-formed pseudo edge. *)
type inode = N_entry | N_block of Cfg.block_id | N_exit

type edge_kind = Real | To_exit | Pseudo_entry | Pseudo_exit

type edge = {
  e_src : node;
  e_dst : node;
  e_kind : edge_kind;
  e_tag : int;
  e_val : int;
  e_tree : bool;
  e_inc : int;
}

(* Mutable edge under construction. *)
type medge = {
  m_src : inode;
  m_dst : inode;
  m_kind : edge_kind;
  m_tag : int;
  mutable m_val : int;
  mutable m_tree : bool;
  mutable m_inc : int;
}

type t = {
  program : Cfg.program;
  proc : Cfg.proc_id;
  medges : medge array;  (* in construction order *)
  n_paths : int;
}

let overflow_limit = 1 lsl 50

let node_of_inode entry_block = function
  | N_entry -> Block entry_block  (* exposed as the entry block *)
  | N_block b -> Block b
  | N_exit -> Exit

(* Dense index for union-find / potentials: entry = 0, block b = 1 + local
   index, exit = last. *)
let make_indexer (procedure : Cfg.proc) =
  let local = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.add local b (i + 1)) procedure.Cfg.blocks;
  let n = Array.length procedure.Cfg.blocks + 2 in
  let index = function
    | N_entry -> 0
    | N_block b -> Hashtbl.find local b
    | N_exit -> n - 1
  in
  (index, n)

let build_edges program proc =
  let procedure = Cfg.proc program proc in
  let edges = Vec.create () in
  let pseudo_entry_heads = Hashtbl.create 8 in
  let pseudo_exit_tails = Hashtbl.create 8 in
  let add ?(tag = 0) src dst kind =
    Vec.push edges { m_src = src; m_dst = dst; m_kind = kind; m_tag = tag;
                     m_val = 0; m_tree = false; m_inc = 0 }
  in
  let add_pseudo_entry h =
    if not (Hashtbl.mem pseudo_entry_heads h) then begin
      Hashtbl.add pseudo_entry_heads h ();
      add N_entry (N_block h) Pseudo_entry
    end
  in
  let add_pseudo_exit v =
    if not (Hashtbl.mem pseudo_exit_tails v) then begin
      Hashtbl.add pseudo_exit_tails v ();
      add (N_block v) N_exit Pseudo_exit
    end
  in
  (* Every path that starts at the procedure entry goes through this edge. *)
  add_pseudo_entry procedure.Cfg.entry;
  let intra ?(tag = 0) src dst =
    if Cfg.is_backward program ~src ~dst then begin
      add_pseudo_exit src;
      add_pseudo_entry dst
    end
    else add ~tag (N_block src) (N_block dst) Real
  in
  Array.iter
    (fun b ->
       match (Cfg.block program b).Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         intra ~tag:1 b taken;
         intra ~tag:0 b fallthrough
       | Cfg.Jump dst -> intra b dst
       | Cfg.Indirect targets ->
         let seen = Hashtbl.create 4 in
         Array.iter
           (fun dst ->
              if not (Hashtbl.mem seen dst) then begin
                Hashtbl.add seen dst ();
                intra b dst
              end)
           targets
       | Cfg.Call { return_to; _ } -> intra b return_to
       | Cfg.Return | Cfg.Exit -> add (N_block b) N_exit To_exit)
    procedure.Cfg.blocks;
  Vec.to_array edges

let analyze program ~proc =
  let procedure = Cfg.proc program proc in
  let medges = build_edges program proc in
  let index, n_nodes = make_indexer procedure in
  (* Group out-edges per node, preserving construction order. *)
  let out : medge list array = Array.make n_nodes [] in
  Array.iter (fun e -> out.(index e.m_src) <- e :: out.(index e.m_src)) medges;
  Array.iteri (fun i l -> out.(i) <- List.rev l) out;
  (* NumPaths in reverse topological order: exit, blocks by descending
     address, entry.  Forward edges strictly increase the address, so this
     order is topological. *)
  let np = Array.make n_nodes 0 in
  np.(index N_exit) <- 1;
  let visit node =
    let i = index node in
    let total = ref 0 in
    List.iter
      (fun e ->
         e.m_val <- !total;
         total := !total + np.(index e.m_dst);
         if !total > overflow_limit then
           invalid_arg
             (Printf.sprintf "Ball_larus.analyze: path count overflow in proc %d" proc))
      out.(i);
    np.(i) <- !total
  in
  let blocks_desc = Array.copy procedure.Cfg.blocks in
  Array.sort (fun a b -> Int.compare b a) blocks_desc;
  Array.iter (fun b -> visit (N_block b)) blocks_desc;
  visit N_entry;
  (* Spanning tree with the zero-valued EXIT->ENTRY edge forced in, then
     potentials phi from ENTRY; chord increments follow. *)
  let parent = Array.init n_nodes Fun.id in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri = rj then false
    else begin
      parent.(ri) <- rj;
      true
    end
  in
  ignore (union (index N_exit) (index N_entry));
  Array.iter
    (fun e ->
       if union (index e.m_src) (index e.m_dst) then e.m_tree <- true)
    medges;
  (* Potentials over tree edges (plus the forced EXIT->ENTRY edge, val 0,
     which makes phi(EXIT) = phi(ENTRY) = 0). *)
  let adjacency = Array.make n_nodes [] in
  let add_adj i j delta =
    adjacency.(i) <- (j, delta) :: adjacency.(i);
    adjacency.(j) <- (i, -delta) :: adjacency.(j)
  in
  Array.iter
    (fun e -> if e.m_tree then add_adj (index e.m_src) (index e.m_dst) e.m_val)
    medges;
  add_adj (index N_exit) (index N_entry) 0;
  let phi = Array.make n_nodes 0 in
  let visited = Array.make n_nodes false in
  let rec dfs i =
    visited.(i) <- true;
    List.iter
      (fun (j, delta) ->
         if not visited.(j) then begin
           phi.(j) <- phi.(i) + delta;
           dfs j
         end)
      adjacency.(i)
  in
  dfs (index N_entry);
  Array.iter
    (fun e ->
       if not e.m_tree then
         e.m_inc <- e.m_val + phi.(index e.m_src) - phi.(index e.m_dst))
    medges;
  { program; proc; medges; n_paths = np.(index N_entry) }

let num_paths t = t.n_paths

let entry_block t = (Cfg.proc t.program t.proc).Cfg.entry

let freeze_edge t e =
  let conv = node_of_inode (entry_block t) in
  {
    e_src = conv e.m_src;
    e_dst = conv e.m_dst;
    e_kind = e.m_kind;
    e_tag = e.m_tag;
    e_val = e.m_val;
    e_tree = e.m_tree;
    e_inc = e.m_inc;
  }

let edges t = Array.to_list (Array.map (freeze_edge t) t.medges)

let num_edges t = Array.length t.medges

let num_chords t =
  Array.fold_left (fun acc e -> if e.m_tree then acc else acc + 1) 0 t.medges

let out_edges t node =
  List.filter (fun e -> e.m_src = node) (Array.to_list t.medges)

let path_number t blocks =
  match blocks with
  | [] -> invalid_arg "Ball_larus.path_number: empty path"
  | first :: _ ->
    let start =
      match
        List.find_opt
          (fun e -> e.m_kind = Pseudo_entry && e.m_dst = N_block first)
          (out_edges t N_entry)
      with
      | Some e -> e
      | None ->
        invalid_arg
          (Printf.sprintf
             "Ball_larus.path_number: block %d is not a path start" first)
    in
    let rec walk acc src rest =
      match rest with
      | [] ->
        (* Terminal edge to EXIT: prefer the real return edge. *)
        let exits = out_edges t (N_block src) in
        (match
           List.find_opt (fun e -> e.m_kind = To_exit && e.m_dst = N_exit) exits
         with
         | Some e -> acc + e.m_val
         | None ->
           (match
              List.find_opt
                (fun e -> e.m_kind = Pseudo_exit && e.m_dst = N_exit)
                exits
            with
            | Some e -> acc + e.m_val
            | None ->
              invalid_arg
                (Printf.sprintf "Ball_larus.path_number: block %d cannot end a path"
                   src)))
      | next :: rest' ->
        (match
           (* Parallel branch edges (taken and fallthrough to the same
              block): the fallthrough (lowest tag) numbering is used. *)
           List.sort
             (fun a b -> Int.compare a.m_tag b.m_tag)
             (List.filter
                (fun e -> e.m_kind = Real && e.m_dst = N_block next)
                (out_edges t (N_block src)))
         with
         | e :: _ -> walk (acc + e.m_val) next rest'
         | [] ->
           invalid_arg
             (Printf.sprintf "Ball_larus.path_number: no edge %d -> %d" src next))
    in
    (match blocks with
     | first :: rest -> walk start.m_val first rest
     | [] -> assert false)

let regenerate t n =
  if n < 0 || n >= t.n_paths then
    invalid_arg (Printf.sprintf "Ball_larus.regenerate: %d outside [0,%d)" n t.n_paths);
  (* NumPaths per node, recomputed from edge vals: the out-edge with the
     largest val <= remaining is the one the path takes. *)
  let rec walk acc node remaining =
    if node = N_exit then List.rev acc
    else begin
      let candidates =
        List.filter (fun e -> e.m_val <= remaining) (out_edges t node)
      in
      let best =
        List.fold_left
          (fun best e ->
             match best with
             | None -> Some e
             | Some b -> if e.m_val > b.m_val then Some e else best)
          None candidates
      in
      match best with
      | None -> invalid_arg "Ball_larus.regenerate: stuck (corrupt numbering)"
      | Some e ->
        let acc =
          match e.m_dst with N_block b -> b :: acc | N_exit | N_entry -> acc
        in
        walk acc e.m_dst (remaining - e.m_val)
    end
  in
  walk [] N_entry n

let enumerate ?(limit = 65536) t =
  if t.n_paths > limit then
    invalid_arg
      (Printf.sprintf "Ball_larus.enumerate: %d paths exceeds limit %d" t.n_paths
         limit);
  Array.init t.n_paths (regenerate t)

(* k-iteration path numbering (D'Elia & Demetrescu): chains of up to k
   acyclic components, components i < d ending at a back-edge source
   through its pseudo exit edge and component i+1 starting at that back
   edge's target.  The count space for d = 1 is exactly [num_paths]
   (every acyclic path is a 1-chain), and each extra level multiplies by
   the loop structure, so overflow arrives much sooner than at k = 1 —
   which is why the arithmetic below raises at [overflow_limit] exactly
   like [analyze], with [Bounds.bl_kpaths] as its saturating mirror
   (the two must flag the identical procedures; property-tested). *)
let num_kpaths program ~proc ~k =
  if k < 1 then invalid_arg "Ball_larus.num_kpaths: k must be >= 1";
  let overflow () =
    invalid_arg
      (Printf.sprintf "Ball_larus.num_kpaths: path count overflow in proc %d"
         proc)
  in
  let add a b =
    let s = a + b in
    if s > overflow_limit then overflow ();
    s
  in
  let mul a b =
    if a = 0 || b = 0 then 0
    else begin
      if a > overflow_limit / b then overflow ();
      a * b
    end
  in
  let procedure = Cfg.proc program proc in
  let blocks = procedure.Cfg.blocks in
  let pentry = Hashtbl.create 8 and pexit = Hashtbl.create 8 in
  Hashtbl.replace pentry procedure.Cfg.entry ();
  let forward_targets = Hashtbl.create 16 in
  let back_pairs = Hashtbl.create 8 in
  let intra src dst =
    if Cfg.is_backward program ~src ~dst then begin
      Hashtbl.replace pexit src ();
      Hashtbl.replace pentry dst ();
      Hashtbl.replace back_pairs (src, dst) ()
    end
    else begin
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt forward_targets src)
      in
      Hashtbl.replace forward_targets src (dst :: prev)
    end
  in
  Array.iter
    (fun b ->
       match (Cfg.block program b).Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         intra b taken;
         intra b fallthrough
       | Cfg.Jump dst -> intra b dst
       | Cfg.Indirect targets ->
         let seen = Hashtbl.create 4 in
         Array.iter
           (fun dst ->
              if not (Hashtbl.mem seen dst) then begin
                Hashtbl.add seen dst ();
                intra b dst
              end)
           targets
       | Cfg.Call { return_to; _ } -> intra b return_to
       | Cfg.Return | Cfg.Exit -> ())
    blocks;
  let blocks_desc = Array.copy blocks in
  Array.sort (fun a b -> Int.compare b a) blocks_desc;
  let fwd b = Option.value ~default:[] (Hashtbl.find_opt forward_targets b) in
  (* np(b): acyclic paths from b to any end (the NumPaths pass). *)
  let np = Hashtbl.create 16 in
  Array.iter
    (fun b ->
       let total = ref 0 in
       if Hashtbl.mem pexit b then total := add !total 1;
       (match (Cfg.block program b).Cfg.term with
        | Cfg.Return | Cfg.Exit -> total := add !total 1
        | _ -> ());
       List.iter (fun dst -> total := add !total (Hashtbl.find np dst)) (fwd b);
       Hashtbl.replace np b !total)
    blocks_desc;
  (* ws s b: acyclic paths from b ending exactly at back-edge source s
     (through s's pseudo exit edge). *)
  let sources =
    Hashtbl.fold (fun s () acc -> s :: acc) pexit [] |> List.sort Int.compare
  in
  let ws = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let w = Hashtbl.create 16 in
       Array.iter
         (fun b ->
            let total = ref (if b = s then 1 else 0) in
            List.iter
              (fun dst -> total := add !total (Hashtbl.find w dst))
              (fwd b);
            Hashtbl.replace w b !total)
         blocks_desc;
       Hashtbl.replace ws s w)
    sources;
  let heads =
    Hashtbl.fold (fun h () acc -> h :: acc) pentry [] |> List.sort Int.compare
  in
  let pairs =
    Hashtbl.fold (fun p () acc -> p :: acc) back_pairs [] |> List.sort compare
  in
  (* C_d(h): chains of exactly d components starting at head h. *)
  let c = Hashtbl.create 8 in
  List.iter (fun h -> Hashtbl.replace c h (Hashtbl.find np h)) heads;
  let total = ref 0 in
  List.iter (fun h -> total := add !total (Hashtbl.find c h)) heads;
  for _d = 2 to k do
    let c' = Hashtbl.create 8 in
    List.iter
      (fun h ->
         let sum = ref 0 in
         List.iter
           (fun (s, h2) ->
              let reach = Hashtbl.find (Hashtbl.find ws s) h in
              sum := add !sum (mul reach (Hashtbl.find c h2)))
           pairs;
         Hashtbl.replace c' h !sum)
      heads;
    List.iter
      (fun h -> Hashtbl.replace c h (Hashtbl.find c' h))
      heads;
    List.iter (fun h -> total := add !total (Hashtbl.find c h)) heads
  done;
  !total

module Runtime = struct
  type analysis = t

  type frame = {
    f_proc : Cfg.proc_id;
    mutable f_r : int;
    f_caller_src : Cfg.block_id option;  (* call site, for the return edge *)
  }

  type rt = {
    rt_program : Cfg.program;
    rt_analyses : analysis array;
    (* Per proc: (src, dst, tag) -> (inc, is_chord) for real/to-exit edges. *)
    rt_real : (int * int * int, int * bool) Hashtbl.t array;
    rt_pseudo_entry : (int, int * bool) Hashtbl.t array;  (* head -> inc *)
    rt_pseudo_exit : (int, int * bool) Hashtbl.t array;  (* tail -> inc *)
    rt_counts : (int, int) Hashtbl.t array;
    rt_stack : frame Vec.t;
    mutable rt_ops : int;
    mutable rt_completed : int;
  }

  type t = rt

  let exit_key = -1

  let create program =
    let nprocs = Array.length program.Cfg.procs in
    let analyses = Array.init nprocs (fun proc -> analyze program ~proc) in
    let real = Array.init nprocs (fun _ -> Hashtbl.create 64)
    and pentry = Array.init nprocs (fun _ -> Hashtbl.create 8)
    and pexit = Array.init nprocs (fun _ -> Hashtbl.create 8) in
    Array.iteri
      (fun proc a ->
         Array.iter
           (fun e ->
              let chord = not e.m_tree in
              match e.m_kind, e.m_src, e.m_dst with
              | Pseudo_entry, N_entry, N_block h ->
                Hashtbl.replace pentry.(proc) h (e.m_inc, chord)
              | Pseudo_exit, N_block v, N_exit ->
                Hashtbl.replace pexit.(proc) v (e.m_inc, chord)
              | (Real | To_exit), N_block s, N_block d ->
                Hashtbl.replace real.(proc) (s, d, e.m_tag) (e.m_inc, chord)
              | To_exit, N_block s, N_exit ->
                Hashtbl.replace real.(proc) (s, exit_key, e.m_tag) (e.m_inc, chord)
              | _ -> assert false)
           a.medges)
      analyses;
    let rt =
      {
        rt_program = program;
        rt_analyses = analyses;
        rt_real = real;
        rt_pseudo_entry = pentry;
        rt_pseudo_exit = pexit;
        rt_counts = Array.init nprocs (fun _ -> Hashtbl.create 64);
        rt_stack = Vec.create ();
        rt_ops = 0;
        rt_completed = 0;
      }
    in
    rt

  let analysis rt proc = rt.rt_analyses.(proc)

  let charge rt (inc, chord) =
    if chord then rt.rt_ops <- rt.rt_ops + 1;
    inc

  let start_frame rt proc ~caller_src =
    let entry = (Cfg.proc rt.rt_program proc).Cfg.entry in
    let inc = charge rt (Hashtbl.find rt.rt_pseudo_entry.(proc) entry) in
    Vec.push rt.rt_stack { f_proc = proc; f_r = inc; f_caller_src = caller_src }

  let count rt proc r =
    let tbl = rt.rt_counts.(proc) in
    let prev = Option.value ~default:0 (Hashtbl.find_opt tbl r) in
    Hashtbl.replace tbl r (prev + 1);
    rt.rt_completed <- rt.rt_completed + 1

  let top rt =
    if Vec.is_empty rt.rt_stack then None else Some (Vec.last rt.rt_stack)

  let intra_edge rt frame src dst ~tag =
    let proc = frame.f_proc in
    if Cfg.is_backward rt.rt_program ~src ~dst then begin
      (* Back edge: finish the current acyclic path through the pseudo exit
         edge and restart through the pseudo entry edge. *)
      let exit_inc = charge rt (Hashtbl.find rt.rt_pseudo_exit.(proc) src) in
      count rt proc (frame.f_r + exit_inc);
      let entry_inc = charge rt (Hashtbl.find rt.rt_pseudo_entry.(proc) dst) in
      frame.f_r <- entry_inc
    end
    else begin
      let inc = charge rt (Hashtbl.find rt.rt_real.(proc) (src, dst, tag)) in
      frame.f_r <- frame.f_r + inc
    end

  let on_transfer rt (tr : Vm.transfer) =
    (* Lazily start the main frame on the first transfer. *)
    if Vec.is_empty rt.rt_stack then
      start_frame rt rt.rt_program.Cfg.main ~caller_src:None;
    match top rt with
    | None -> ()
    | Some frame -> begin
        match tr.Vm.kind, tr.Vm.dst with
        | Vm.T_branch { taken }, Some dst ->
          intra_edge rt frame tr.Vm.src dst ~tag:(Bool.to_int taken)
        | (Vm.T_jump | Vm.T_indirect), Some dst ->
          intra_edge rt frame tr.Vm.src dst ~tag:0
        | Vm.T_call, Some dst ->
          let callee = (Cfg.block rt.rt_program dst).Cfg.proc in
          start_frame rt callee ~caller_src:(Some tr.Vm.src)
        | Vm.T_return, Some dst ->
          (* End the callee's path at its return edge, pop, then traverse
             the caller's call-site -> return-to edge. *)
          let inc =
            charge rt
              (Hashtbl.find rt.rt_real.(frame.f_proc) (tr.Vm.src, exit_key, 0))
          in
          count rt frame.f_proc (frame.f_r + inc);
          let finished = Vec.pop rt.rt_stack in
          (match top rt, finished.f_caller_src with
           | Some caller, Some call_src -> intra_edge rt caller call_src dst ~tag:0
           | _ -> ())
        | Vm.T_exit, None ->
          let inc =
            charge rt
              (Hashtbl.find rt.rt_real.(frame.f_proc) (tr.Vm.src, exit_key, 0))
          in
          count rt frame.f_proc (frame.f_r + inc);
          ignore (Vec.pop rt.rt_stack)
        | (Vm.T_branch _ | Vm.T_jump | Vm.T_indirect | Vm.T_call | Vm.T_return), None
        | Vm.T_exit, Some _ ->
          assert false
      end

  let counts rt proc =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) rt.rt_counts.(proc) []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

  let total_counted rt = rt.rt_completed

  let instrumented_ops rt = rt.rt_ops

  let counter_space rt =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 rt.rt_counts
end
