(** Virtual control-flow-graph ISA.

    The reproduction substitutes the paper's PA-RISC binaries with programs
    in this abstract ISA: a program is a set of procedures, each a list of
    basic blocks laid out at consecutive addresses.  Every measurement in
    the paper is a function of the dynamic branch trace, so blocks carry
    only a weight (instruction count) and a terminator; instruction
    semantics are irrelevant.

    Addresses are the block layout order.  A control transfer from block
    [src] to block [dst] is {e backward} iff [addr dst <= addr src] —
    exactly the notion the paper uses to define path heads (targets of
    backward {e taken} branches). *)

type block_id = int
(** Dense index into {!program.blocks}; doubles as the block address. *)

type proc_id = int
(** Dense index into {!program.procs}. *)

type terminator =
  | Branch of { taken : block_id; fallthrough : block_id }
      (** Conditional direct branch.  [taken] may be backward (loop back
          edge); [fallthrough] is always the next block in layout. *)
  | Jump of block_id  (** Unconditional direct jump. *)
  | Indirect of block_id array
      (** Indirect jump (switch, function-pointer dispatch within a
          procedure).  The array lists the possible targets. *)
  | Call of { callee : proc_id; return_to : block_id }
      (** Direct procedure call; control continues at the callee's entry and
          the matching [Return] transfers to [return_to]. *)
  | Return  (** Return to the caller's [return_to] block. *)
  | Exit  (** Program termination. *)

type block = {
  id : block_id;
  proc : proc_id;
  weight : int;  (** Number of (abstract) instructions, including the terminator. *)
  term : terminator;
}

type proc = {
  pid : proc_id;
  name : string;
  entry : block_id;
  blocks : block_id array;  (** Layout order; [blocks.(0) = entry]. *)
}

type program = {
  pname : string;
  blocks : block array;  (** [blocks.(i).id = i] for all [i]. *)
  procs : proc array;  (** [procs.(i).pid = i] for all [i]. *)
  main : proc_id;
}

val block : program -> block_id -> block
(** @raise Invalid_argument when out of range. *)

val proc : program -> proc_id -> proc
(** @raise Invalid_argument when out of range. *)

val entry_block : program -> block_id
(** Entry block of the main procedure. *)

val addr : program -> block_id -> int
(** Block address (identical to the id under the dense layout). *)

val is_backward : program -> src:block_id -> dst:block_id -> bool
(** [is_backward p ~src ~dst] — does a transfer [src -> dst] go backward in
    the address space?  Loop back edges are backward; calls, fallthroughs
    and forward jumps are not. *)

val successors : program -> block_id -> block_id list
(** Intra-procedural successors (branch targets, jump target, indirect
    targets).  [Call] contributes its [return_to] block — the
    intra-procedural continuation — and [Return]/[Exit] contribute
    nothing. *)

(** {1 Iteration helpers}

    Non-allocating traversal used by the static-analysis passes in
    [Hotpath_analysis]; all follow the [iter f collection] convention of
    the standard library. *)

val num_blocks : program -> int

val num_procs : program -> int

val iter_blocks : (block -> unit) -> program -> unit
(** Every block, in address (= id) order. *)

val iter_procs : (proc -> unit) -> program -> unit
(** Every procedure, in pid order. *)

val iter_succ : (block_id -> unit) -> program -> block_id -> unit
(** Intra-procedural successors, like {!successors}, without building a
    list.  Order: branch taken then fallthrough; indirect targets in
    array order. *)

val return_blocks : program -> proc_id -> block_id list
(** Blocks of the procedure whose terminator is [Return], ascending. *)

val call_sites : program -> (block_id * proc_id * block_id) list
(** Every [Call] block in the program as [(site, callee, return_to)],
    ascending by site address. *)

val return_targets : program -> proc_id -> block_id list
(** Distinct [return_to] blocks of call sites calling the given
    procedure, ascending — the blocks a [Return] from it can reach
    (context-insensitively). *)

val branch_count : program -> int
(** Number of conditional branches ([Branch] terminators). *)

val backward_branch_target_count : program -> int
(** Number of distinct blocks that are the target of some backward
    conditional-branch edge or backward jump — the static bound on NET
    counter space (Section 4.2 of the paper). *)

val validate : program -> (unit, string) result
(** Structural well-formedness: ids dense and self-consistent, all targets
    in range, branch/jump/indirect targets within the same procedure, entry
    blocks owned by their procedure, positive weights, non-empty indirect
    target lists, [Call.return_to] in the calling procedure. *)

val validate_exn : program -> program
(** [validate_exn p] is [p]; @raise Invalid_argument with the first
    validation error otherwise. *)

val pp_terminator : Format.formatter -> terminator -> unit

val pp_block : Format.formatter -> block -> unit

val pp_program : Format.formatter -> program -> unit
(** Multi-line listing of every procedure and block. *)

val to_dot : program -> string
(** Graphviz rendering: one cluster per procedure, dashed edges for calls
    and returns-to, bold edges for backward transfers. *)

(** Imperative program construction.

    Typical use:
    {[
      let b = Builder.create ~name:"demo" in
      let p = Builder.add_proc b ~name:"main" in
      let head = Builder.add_block b ~proc:p ~weight:4 in
      ...
      Builder.set_term b head (Branch { taken = ...; fallthrough = ... });
      let program = Builder.finish b
    ]}

    Blocks receive consecutive addresses in creation order, so creating a
    loop body after its header and branching back to the header yields a
    backward (loop) edge, as in a natural code layout. *)
module Builder : sig
  type t

  val create : name:string -> t

  val add_proc : t -> name:string -> proc_id
  (** Declare a procedure.  Its first added block becomes the entry. *)

  val add_block : t -> proc:proc_id -> weight:int -> block_id
  (** Append a block to [proc].  The terminator defaults to [Exit] and
      should be set with {!set_term} before {!finish}. *)

  val set_term : t -> block_id -> terminator -> unit

  val finish : t -> program
  (** Freeze and validate.  @raise Invalid_argument if the program is
      ill-formed (see {!validate}). *)
end
