type block_id = int
type proc_id = int

type terminator =
  | Branch of { taken : block_id; fallthrough : block_id }
  | Jump of block_id
  | Indirect of block_id array
  | Call of { callee : proc_id; return_to : block_id }
  | Return
  | Exit

type block = { id : block_id; proc : proc_id; weight : int; term : terminator }

type proc = { pid : proc_id; name : string; entry : block_id; blocks : block_id array }

type program = { pname : string; blocks : block array; procs : proc array; main : proc_id }

let block p i =
  if i < 0 || i >= Array.length p.blocks then
    invalid_arg (Printf.sprintf "Cfg.block: id %d out of range" i);
  p.blocks.(i)

let proc p i =
  if i < 0 || i >= Array.length p.procs then
    invalid_arg (Printf.sprintf "Cfg.proc: id %d out of range" i);
  p.procs.(i)

let entry_block p = (proc p p.main).entry

let addr _p i = i

let is_backward p ~src ~dst = addr p dst <= addr p src

let successors p i =
  match (block p i).term with
  | Branch { taken; fallthrough } -> [ taken; fallthrough ]
  | Jump t -> [ t ]
  | Indirect targets -> Array.to_list targets
  | Call { return_to; _ } -> [ return_to ]
  | Return | Exit -> []

let num_blocks p = Array.length p.blocks

let num_procs p = Array.length p.procs

let iter_blocks f p = Array.iter f p.blocks

let iter_procs f p = Array.iter f p.procs

let iter_succ f p i =
  match (block p i).term with
  | Branch { taken; fallthrough } ->
    f taken;
    f fallthrough
  | Jump t -> f t
  | Indirect targets -> Array.iter f targets
  | Call { return_to; _ } -> f return_to
  | Return | Exit -> ()

let return_blocks p pid =
  let pr = proc p pid in
  Array.to_list pr.blocks
  |> List.filter (fun b -> match p.blocks.(b).term with Return -> true | _ -> false)

let call_sites p =
  Array.fold_left
    (fun acc b ->
       match b.term with
       | Call { callee; return_to } -> (b.id, callee, return_to) :: acc
       | _ -> acc)
    [] p.blocks
  |> List.rev

let return_targets p pid =
  let targets =
    List.filter_map
      (fun (_, callee, return_to) -> if callee = pid then Some return_to else None)
      (call_sites p)
  in
  List.sort_uniq compare targets

let branch_count p =
  Array.fold_left
    (fun acc b -> match b.term with Branch _ -> acc + 1 | _ -> acc)
    0 p.blocks

let backward_branch_target_count p =
  let is_target = Array.make (Array.length p.blocks) false in
  Array.iter
    (fun b ->
       let mark dst = if is_backward p ~src:b.id ~dst then is_target.(dst) <- true in
       match b.term with
       | Branch { taken; _ } -> mark taken
       | Jump t -> mark t
       | Indirect targets -> Array.iter mark targets
       | Call _ | Return | Exit -> ())
    p.blocks;
  Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 is_target

let validate p =
  let nblocks = Array.length p.blocks and nprocs = Array.length p.procs in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok_block i = i >= 0 && i < nblocks in
  let ok_proc i = i >= 0 && i < nprocs in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    if nblocks = 0 then fail "program has no blocks";
    if nprocs = 0 then fail "program has no procedures";
    if not (ok_proc p.main) then fail "main procedure id %d out of range" p.main;
    Array.iteri
      (fun i pr ->
         if pr.pid <> i then fail "procedure %d has pid %d" i pr.pid;
         if Array.length pr.blocks = 0 then fail "procedure %s has no blocks" pr.name;
         if pr.blocks.(0) <> pr.entry then
           fail "procedure %s: entry %d is not its first block" pr.name pr.entry;
         Array.iter
           (fun b ->
              if not (ok_block b) then fail "procedure %s lists block %d out of range" pr.name b;
              if p.blocks.(b).proc <> i then
                fail "procedure %s lists block %d owned by procedure %d" pr.name b
                  p.blocks.(b).proc)
           pr.blocks)
      p.procs;
    Array.iteri
      (fun i b ->
         if b.id <> i then fail "block %d has id %d" i b.id;
         if not (ok_proc b.proc) then fail "block %d: proc %d out of range" i b.proc;
         if b.weight <= 0 then fail "block %d: non-positive weight %d" i b.weight;
         let check_local what t =
           if not (ok_block t) then fail "block %d: %s target %d out of range" i what t;
           if p.blocks.(t).proc <> b.proc then
             fail "block %d: %s target %d crosses into procedure %d" i what t
               p.blocks.(t).proc
         in
         match b.term with
         | Branch { taken; fallthrough } ->
           check_local "taken" taken;
           check_local "fallthrough" fallthrough
         | Jump t -> check_local "jump" t
         | Indirect targets ->
           if Array.length targets = 0 then fail "block %d: indirect with no targets" i;
           Array.iter (check_local "indirect") targets
         | Call { callee; return_to } ->
           if not (ok_proc callee) then fail "block %d: callee %d out of range" i callee;
           check_local "return_to" return_to
         | Return | Exit -> ())
      p.blocks;
    Ok ()
  with Bad msg -> err "%s" msg

let validate_exn p =
  match validate p with
  | Ok () -> p
  | Error msg -> invalid_arg ("Cfg.validate: " ^ msg)

let pp_terminator ppf = function
  | Branch { taken; fallthrough } ->
    Format.fprintf ppf "branch taken->%d fall->%d" taken fallthrough
  | Jump t -> Format.fprintf ppf "jump %d" t
  | Indirect targets ->
    Format.fprintf ppf "indirect [%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int targets)))
  | Call { callee; return_to } -> Format.fprintf ppf "call p%d ret->%d" callee return_to
  | Return -> Format.pp_print_string ppf "return"
  | Exit -> Format.pp_print_string ppf "exit"

let pp_block ppf b =
  Format.fprintf ppf "B%d[p%d w%d] %a" b.id b.proc b.weight pp_terminator b.term

let pp_program ppf p =
  Format.fprintf ppf "program %s (main=p%d)@." p.pname p.main;
  Array.iter
    (fun pr ->
       Format.fprintf ppf "proc p%d %s entry=B%d@." pr.pid pr.name pr.entry;
       Array.iter (fun b -> Format.fprintf ppf "  %a@." pp_block p.blocks.(b)) pr.blocks)
    p.procs

let to_dot p =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %S {\n  node [shape=box,fontname=monospace];\n" p.pname;
  Array.iter
    (fun procedure ->
       pr "  subgraph cluster_p%d {\n    label=%S;\n" procedure.pid procedure.name;
       Array.iter
         (fun b -> pr "    b%d [label=\"B%d (w=%d)\"];\n" b b (p.blocks.(b)).weight)
         procedure.blocks;
       pr "  }\n")
    p.procs;
  Array.iter
    (fun b ->
       let edge ?(attrs = []) dst =
         let attrs =
           if is_backward p ~src:b.id ~dst then "style=bold,color=red" :: attrs
           else attrs
         in
         let attr_str =
           match attrs with [] -> "" | l -> Printf.sprintf " [%s]" (String.concat "," l)
         in
         pr "  b%d -> b%d%s;\n" b.id dst attr_str
       in
       match b.term with
       | Branch { taken; fallthrough } ->
         edge ~attrs:[ "label=T" ] taken;
         edge ~attrs:[ "label=F" ] fallthrough
       | Jump t -> edge t
       | Indirect targets -> Array.iter (fun t -> edge ~attrs:[ "label=I" ] t) targets
       | Call { callee; return_to } ->
         pr "  b%d -> b%d [style=dashed,label=\"call p%d\"];\n" b.id
           (p.procs.(callee)).entry callee;
         edge ~attrs:[ "style=dotted"; "label=ret-to" ] return_to
       | Return | Exit -> ())
    p.blocks;
  pr "}\n";
  Buffer.contents buf

module Builder = struct
  module Vec = Hotpath_util.Vec

  type pending_proc = { bname : string; bblocks : int Vec.t }

  type t = {
    name : string;
    pblocks : block Vec.t;
    pprocs : pending_proc Vec.t;
  }

  let create ~name = { name; pblocks = Vec.create (); pprocs = Vec.create () }

  let add_proc t ~name =
    Vec.push t.pprocs { bname = name; bblocks = Vec.create () };
    Vec.length t.pprocs - 1

  let add_block t ~proc ~weight =
    if proc < 0 || proc >= Vec.length t.pprocs then
      invalid_arg "Cfg.Builder.add_block: unknown procedure";
    let id = Vec.length t.pblocks in
    Vec.push t.pblocks { id; proc; weight; term = Exit };
    Vec.push (Vec.get t.pprocs proc).bblocks id;
    id

  let set_term t b term =
    if b < 0 || b >= Vec.length t.pblocks then
      invalid_arg "Cfg.Builder.set_term: unknown block";
    let old = Vec.get t.pblocks b in
    Vec.set t.pblocks b { old with term }

  let finish t =
    let blocks = Vec.to_array t.pblocks in
    let procs =
      Array.mapi
        (fun pid pending ->
           let blocks = Vec.to_array pending.bblocks in
           if Array.length blocks = 0 then
             invalid_arg
               (Printf.sprintf "Cfg.Builder.finish: procedure %s has no blocks"
                  pending.bname);
           { pid; name = pending.bname; entry = blocks.(0); blocks })
        (Vec.to_array t.pprocs)
    in
    validate_exn { pname = t.name; blocks; procs; main = 0 }
end
