module Suite = Hotpath_workloads.Suite
module Replay = Hotpath_prediction.Replay
module Scheme = Hotpath_prediction.Scheme
module Tablefmt = Hotpath_util.Tablefmt
module Stats = Hotpath_util.Stats
module Pool = Hotpath_util.Pool

type row = {
  name : string;
  net_counters : int;
  path_profile_counters : int;
  ratio : float;
  net_k2_counters : int;
  path_profile_k2_counters : int;
  k2_ratio : float;
  static_bound : int;
      (** Full static head set — the counter ceiling NET can never
          exceed, and the static scheme's (counter-free) universe. *)
  paper_ratio : float;
}

(* One fan-out job per (benchmark × scheme) replay; tasks are run-major
   with the four schemes adjacent, so reassembly is a four-wise walk. *)
let compute ?scale ?(delay = 50) ?(jobs = 1) () =
  let runs = Runs.load_all ?scale ~jobs () in
  let tasks =
    List.concat_map
      (fun (run : Runs.run) ->
         [
           (run, (module Hotpath_prediction.Net : Scheme.S));
           (run, (module Hotpath_prediction.Path_profile : Scheme.S));
           (run, Hotpath_prediction.Net_k.make 2);
           (run, Hotpath_prediction.Path_profile_k.make 2);
         ])
      runs
  in
  let counters =
    Pool.map ~jobs
      (fun ((run : Runs.run), scheme) ->
         (Replay.run scheme ~delay run.Runs.recorded).Replay.counter_space)
      tasks
  in
  let rec pair runs counters =
    match (runs, counters) with
    | [], [] -> []
    | (run : Runs.run) :: runs', net :: pp :: net_k2 :: pp_k2 :: counters' ->
      let paper = run.Runs.bench.Suite.b_paper in
      {
        name = run.Runs.bench.Suite.b_name;
        net_counters = net;
        path_profile_counters = pp;
        ratio = Stats.ratio (float_of_int net) (float_of_int pp);
        net_k2_counters = net_k2;
        path_profile_k2_counters = pp_k2;
        k2_ratio = Stats.ratio (float_of_int net_k2) (float_of_int pp_k2);
        static_bound =
          Hotpath_analysis.Bounds.(
            full_head_count
              (static_heads run.Runs.recorded.Hotpath_trace.Recorder.program));
        paper_ratio =
          Stats.ratio
            (float_of_int paper.Suite.pr_unique_heads)
            (float_of_int paper.Suite.pr_paths);
      }
      :: pair runs' counters'
    | _ -> invalid_arg "Fig4.compute: task/result mismatch"
  in
  pair runs counters

let average_ratio rows =
  Stats.mean (Array.of_list (List.map (fun r -> r.ratio) rows))

let average_k2_ratio rows =
  Stats.mean (Array.of_list (List.map (fun r -> r.k2_ratio) rows))

let to_table rows =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("NET counters", Tablefmt.Right);
          ("Path-profile counters", Tablefmt.Right);
          ("Ratio", Tablefmt.Right);
          ("NET-k2 counters", Tablefmt.Right);
          ("PP-k2 counters", Tablefmt.Right);
          ("k2 ratio", Tablefmt.Right);
          ("static bound", Tablefmt.Right);
          ("paper ratio", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.name;
           Tablefmt.cell_int r.net_counters;
           Tablefmt.cell_int r.path_profile_counters;
           Tablefmt.cell_float ~digits:3 r.ratio;
           Tablefmt.cell_int r.net_k2_counters;
           Tablefmt.cell_int r.path_profile_k2_counters;
           Tablefmt.cell_float ~digits:3 r.k2_ratio;
           Tablefmt.cell_int r.static_bound;
           Tablefmt.cell_float ~digits:3 r.paper_ratio;
         ])
    rows;
  Tablefmt.add_separator t;
  let paper_avg =
    Stats.mean (Array.of_list (List.map (fun r -> r.paper_ratio) rows))
  in
  Tablefmt.add_row t
    [
      "Average"; ""; "";
      Tablefmt.cell_float ~digits:3 (average_ratio rows);
      ""; "";
      Tablefmt.cell_float ~digits:3 (average_k2_ratio rows);
      "";
      Tablefmt.cell_float ~digits:3 paper_avg;
    ];
  t

let render ?scale ?delay ?jobs () =
  Tablefmt.render (to_table (compute ?scale ?delay ?jobs ()))
