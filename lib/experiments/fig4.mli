(** Figure 4 of the paper: NET's counter space normalized to
    path-profile-based prediction's.

    Path-profile-based prediction allocates one counter per distinct
    dynamic path; NET allocates one per loop head.  Both are measured
    dynamically by replaying the trace at the Dynamo operating point
    (τ = 50) and reading each scheme's live counter count.  The paper's
    average bar sits around 0.4–0.6 ("NET uses about 60% [less of] the
    counter space"). *)

type row = {
  name : string;
  net_counters : int;
  path_profile_counters : int;
  ratio : float;  (** net / path-profile. *)
  net_k2_counters : int;
  path_profile_k2_counters : int;
  k2_ratio : float;
      (** net-k2 / path-profile-k2 — the same trade-off on the
          2-iteration path space, where the path-profile side pays for
          every distinct window. *)
  static_bound : int;
      (** Full static head set — the counter ceiling NET can never
          exceed; the static scheme itself allocates zero counters over
          this universe. *)
  paper_ratio : float;  (** Table 2's unique-heads / paths. *)
}

val compute : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> row list
(** Per benchmark, Table 1 order; default delay 50.  [jobs] fans the
    (benchmark × scheme) replays over that many work-pool domains
    (default 1); results are identical at every job count. *)

val average_ratio : row list -> float

val average_k2_ratio : row list -> float

val to_table : row list -> Hotpath_util.Tablefmt.t
(** Includes a final Average row. *)

val render : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> string
