(** Shared benchmark runs for the experiment drivers.

    Recording a benchmark trace is the expensive step (one VM
    interpretation); every table and figure replays the same recording, so
    runs are memoized per (benchmark, scale) within the process.  The
    cache is mutex-guarded, so loads may be issued from the work-pool
    domains ({!Hotpath_util.Pool}). *)

module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set

type run = {
  bench : Suite.benchmark;
  recorded : Recorder.t;
  freq : int array;
  hot : Hot_set.t;  (** The paper's 0.1% hot set. *)
}

val load : ?scale:float -> Suite.benchmark -> run
(** Record (or fetch the memoized recording of) the benchmark at the given
    flow scale (default 1.0). *)

val load_all : ?scale:float -> ?jobs:int -> unit -> run list
(** All nine benchmarks, Table 1 order.  [jobs] records benchmarks on that
    many domains in parallel (default 1); the returned order and contents
    are identical at every job count. *)

val clear_cache : unit -> unit
