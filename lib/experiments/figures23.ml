module Sweep = Hotpath_metrics.Sweep
module Scheme = Hotpath_prediction.Scheme
module Suite = Hotpath_workloads.Suite
module Tablefmt = Hotpath_util.Tablefmt
module Stats = Hotpath_util.Stats
module Pool = Hotpath_util.Pool

(* The paper's two schemes plus the k-iteration families at k = 2 and 3
   (ROADMAP item 4): the same sweep on a strictly richer path space, so
   the summary answers whether "less is more" survives paths that cross
   loop boundaries.  The static series is the zero-profiling floor: no
   counters, no delay sensitivity — predictions come straight from the
   Wu–Larus estimate, so its curve is flat in tau. *)
let schemes : (string * Scheme.packed) list =
  [
    ("path-profile", (module Hotpath_prediction.Path_profile : Scheme.S));
    ("net", (module Hotpath_prediction.Net : Scheme.S));
    ("static", (module Hotpath_prediction.Static : Scheme.S));
    ("path-profile-k2", Hotpath_prediction.Path_profile_k.make 2);
    ("path-profile-k3", Hotpath_prediction.Path_profile_k.make 3);
    ("net-k2", Hotpath_prediction.Net_k.make 2);
    ("net-k3", Hotpath_prediction.Net_k.make 3);
  ]

type series = { s_scheme : string; s_bench : string; s_points : Sweep.point list }

type t = { delays : int list; series : series list }

let average_series ~scheme ~delays per_bench =
  let n = List.length per_bench in
  let points =
    List.mapi
      (fun i delay ->
         let nth s = List.nth s.s_points i in
         let mean f =
           Stats.mean (Array.of_list (List.map (fun s -> f (nth s)) per_bench))
         in
         {
           Sweep.delay;
           profiled_pct = mean (fun p -> p.Sweep.profiled_pct);
           hit_rate = mean (fun p -> p.Sweep.hit_rate);
           noise_rate = mean (fun p -> p.Sweep.noise_rate);
           predictions =
             List.fold_left (fun acc s -> acc + (nth s).Sweep.predictions) 0 per_bench
             / max 1 n;
           counter_space =
             List.fold_left (fun acc s -> acc + (nth s).Sweep.counter_space) 0 per_bench
             / max 1 n;
           profiling_ops =
             List.fold_left (fun acc s -> acc + (nth s).Sweep.profiling_ops) 0 per_bench
             / max 1 n;
           collection_ops =
             List.fold_left
               (fun acc s -> acc + (nth s).Sweep.collection_ops)
               0 per_bench
             / max 1 n;
         })
      delays
  in
  { s_scheme = scheme; s_bench = "average"; s_points = points }

(* One fan-out job per (scheme × benchmark) sweep; each sweep multiplexes
   all its delays through a single trace traversal (Sweep.run).  Results
   come back in task order, so output is identical at every job count. *)
let compute ?scale ?(delays = Sweep.default_delays) ?(jobs = 1) () =
  let runs = Runs.load_all ?scale ~jobs () in
  let tasks =
    List.concat_map
      (fun (scheme_name, scheme) ->
         List.map (fun run -> (scheme_name, scheme, run)) runs)
      schemes
  in
  let flat =
    Pool.map ~jobs
      (fun (scheme_name, scheme, (run : Runs.run)) ->
         {
           s_scheme = scheme_name;
           s_bench = run.Runs.bench.Suite.b_name;
           s_points = Sweep.run scheme run.Runs.recorded ~hot:run.Runs.hot ~delays;
         })
      tasks
  in
  let per_scheme = List.length runs in
  let series =
    List.concat
      (List.mapi
         (fun i (scheme_name, _) ->
            let per_bench =
              List.filteri
                (fun j _ -> j >= i * per_scheme && j < (i + 1) * per_scheme)
                flat
            in
            per_bench @ [ average_series ~scheme:scheme_name ~delays per_bench ])
         schemes)
  in
  { delays; series }

type sweep_stats = {
  st_sweeps : int;  (** (scheme × benchmark) sweeps computed. *)
  st_delays : int;
  st_instances : int;  (** Total instances traversed, one pass per sweep. *)
  st_wall_s : float;
  st_instances_per_s : float;
}

(* compute plus wall-clock accounting: the sweep engine's throughput is a
   headline number, so the drivers print it next to the tables. *)
let compute_timed ?scale ?delays ?jobs () =
  let t0 = Unix.gettimeofday () in
  let t = compute ?scale ?delays ?jobs () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let per_bench = List.filter (fun s -> s.s_bench <> "average") t.series in
  let runs = Runs.load_all ?scale () in
  let instances =
    (* Each sweep reads its benchmark's trace exactly once. *)
    List.fold_left
      (fun acc s ->
         match
           List.find_opt
             (fun (r : Runs.run) -> r.Runs.bench.Suite.b_name = s.s_bench)
             runs
         with
         | Some r ->
           acc + Array.length r.Runs.recorded.Hotpath_trace.Recorder.instances
         | None -> acc)
      0 per_bench
  in
  ( t,
    {
      st_sweeps = List.length per_bench;
      st_delays = List.length t.delays;
      st_instances = instances;
      st_wall_s = wall_s;
      st_instances_per_s =
        (if wall_s > 0.0 then float_of_int instances /. wall_s else 0.0);
    } )

let pp_sweep_stats ppf st =
  Format.fprintf ppf
    "@[<h>%d sweeps x %d delays, single-pass: %d instances in %.3fs (%.2e \
     instances/s)@]"
    st.st_sweeps st.st_delays st.st_instances st.st_wall_s st.st_instances_per_s

let series t ~scheme ~bench =
  List.find_opt (fun s -> s.s_scheme = scheme && s.s_bench = bench) t.series

type summary = {
  su_scheme : string;
  su_hit_at_10pct : float option;
  su_hit_at_10pct_n : int;
  su_noise_at_10pct : float option;
  su_noise_at_10pct_n : int;
  su_hit_at_delay50 : float;
  su_noise_at_delay50 : float;
  su_profiled_for_noise_below_10pct : float option;
}

let noise_below points ~threshold =
  (* First profiled-flow level at which noise dips below [threshold],
     scanning by increasing profiled flow. *)
  let sorted =
    List.sort
      (fun a b -> Float.compare a.Sweep.profiled_pct b.Sweep.profiled_pct)
      points
  in
  List.find_map
    (fun p -> if p.Sweep.noise_rate < threshold then Some p.Sweep.profiled_pct else None)
    sorted

let mean_defined values =
  let defined = List.filter_map Fun.id values in
  match defined with
  | [] -> (None, 0)
  | _ ->
    ( Some (Stats.mean (Array.of_list defined)),
      List.length defined )

let summarize t =
  List.map
    (fun (scheme_name, _) ->
       let bench_series =
         List.filter
           (fun s -> s.s_scheme = scheme_name && s.s_bench <> "average")
           t.series
       in
       let hit_10, hit_n =
         mean_defined
           (List.map
              (fun s -> Sweep.interpolate_hit_at s.s_points ~profiled_pct:10.0)
              bench_series)
       in
       let noise_10, noise_n =
         mean_defined
           (List.map
              (fun s -> Sweep.interpolate_noise_at s.s_points ~profiled_pct:10.0)
              bench_series)
       in
       let avg = series t ~scheme:scheme_name ~bench:"average" in
       let at_delay50 field =
         match avg with
         | None -> 0.0
         | Some a -> (
             match List.find_opt (fun p -> p.Sweep.delay = 50) a.s_points with
             | Some p -> field p
             | None -> 0.0)
       in
       {
         su_scheme = scheme_name;
         su_hit_at_10pct = hit_10;
         su_hit_at_10pct_n = hit_n;
         su_noise_at_10pct = noise_10;
         su_noise_at_10pct_n = noise_n;
         su_hit_at_delay50 = at_delay50 (fun p -> p.Sweep.hit_rate);
         su_noise_at_delay50 = at_delay50 (fun p -> p.Sweep.noise_rate);
         su_profiled_for_noise_below_10pct =
           (match avg with
            | None -> None
            | Some a -> noise_below a.s_points ~threshold:10.0);
       })
    schemes

let to_table t ~hit ~zoom =
  let tbl =
    Tablefmt.create
      ~columns:
        [
          ("Scheme", Tablefmt.Left);
          ("Benchmark", Tablefmt.Left);
          ("Delay", Tablefmt.Right);
          ("Profiled flow", Tablefmt.Right);
          ((if hit then "Hit rate" else "Noise rate"), Tablefmt.Right);
        ]
  in
  List.iter
    (fun s ->
       let any = ref false in
       List.iter
         (fun p ->
            if (not zoom) || p.Sweep.profiled_pct <= 10.0 then begin
              any := true;
              Tablefmt.add_row tbl
                [
                  s.s_scheme;
                  s.s_bench;
                  Tablefmt.cell_int p.Sweep.delay;
                  Tablefmt.cell_pct ~digits:2 p.Sweep.profiled_pct;
                  Tablefmt.cell_pct
                    (if hit then p.Sweep.hit_rate else p.Sweep.noise_rate);
                ]
            end)
         s.s_points;
       if !any then Tablefmt.add_separator tbl)
    t.series;
  tbl

let render ?scale ?delays ?jobs ~hit ~zoom () =
  let t = compute ?scale ?delays ?jobs () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Tablefmt.render (to_table t ~hit ~zoom));
  Buffer.add_string buf "\nSummary (average series):\n";
  List.iter
    (fun su ->
       let show = function Some v -> Printf.sprintf "%.1f%%" v | None -> "n/a" in
       Buffer.add_string buf
         (Printf.sprintf
            "  %-13s hit@10%%flow=%s (%d benchmarks) noise@10%%flow=%s (%d) \
             hit@tau50=%.1f%% noise@tau50=%.1f%% profiled-for-noise<10%%=%s\n"
            su.su_scheme (show su.su_hit_at_10pct) su.su_hit_at_10pct_n
            (show su.su_noise_at_10pct) su.su_noise_at_10pct_n su.su_hit_at_delay50
            su.su_noise_at_delay50
            (show su.su_profiled_for_noise_below_10pct)))
    (summarize t);
  Buffer.contents buf
