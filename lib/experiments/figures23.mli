(** Figures 2 and 3 of the paper: hit rate and noise rate vs profiled flow
    for path-profile-based prediction and NET.

    For every benchmark and both schemes, the prediction delay τ is swept
    over the paper's range (10 … 1,000,000) and each replay yields one
    (profiled-flow %, hit %, noise %) point.  The "average" series averages
    the per-benchmark rates at each delay.  The figures' headline readings
    (hit ≈ 97.5% for both schemes at ≤ 10% profiled flow; NET noisier than
    path-profile only at impractically long delays; NET at or below
    path-profile noise in the practical zoom region) are exposed via
    {!summary}. *)

module Sweep = Hotpath_metrics.Sweep
module Scheme = Hotpath_prediction.Scheme

val schemes : (string * Scheme.packed) list
(** [("path-profile", …); ("net", …)] — the two schemes of the figures. *)

type series = {
  s_scheme : string;
  s_bench : string;  (** Benchmark name or ["average"]. *)
  s_points : Sweep.point list;  (** One per swept delay, ascending delay. *)
}

type t = { delays : int list; series : series list }

val compute : ?scale:float -> ?delays:int list -> ?jobs:int -> unit -> t
(** Sweep every benchmark under both schemes (defaults:
    {!Sweep.default_delays}, scale 1.0).  Each (scheme × benchmark) sweep
    is one fan-out job; [jobs] (default 1) spreads them over that many
    work-pool domains.  The result is identical at every job count. *)

type sweep_stats = {
  st_sweeps : int;  (** (scheme × benchmark) sweeps computed. *)
  st_delays : int;
  st_instances : int;  (** Total instances traversed, one pass per sweep. *)
  st_wall_s : float;
  st_instances_per_s : float;
}

val compute_timed :
  ?scale:float -> ?delays:int list -> ?jobs:int -> unit -> t * sweep_stats
(** {!compute} plus wall-clock accounting for throughput reporting. *)

val pp_sweep_stats : Format.formatter -> sweep_stats -> unit

val series : t -> scheme:string -> bench:string -> series option

type summary = {
  su_scheme : string;
  su_hit_at_10pct : float option;
      (** Hit rate at 10% profiled flow: interpolated per benchmark, then
          averaged over the benchmarks whose curves reach that region.  At
          scaled flow the flat benchmarks (gcc, go, ijpeg) profile more
          than 10% of their flow even at τ=10 — a scale artifact recorded
          in EXPERIMENTS.md — so they drop out of this reading. *)
  su_hit_at_10pct_n : int;  (** Benchmarks contributing to the reading. *)
  su_noise_at_10pct : float option;
  su_noise_at_10pct_n : int;
  su_hit_at_delay50 : float;
      (** Average-series hit rate at τ=50 (Dynamo's operating point). *)
  su_noise_at_delay50 : float;
  su_profiled_for_noise_below_10pct : float option;
      (** Profiled-flow % at which the average noise rate first drops below
          10% (the paper: ≈35% for path-profile, ≈45% for NET). *)
}

val summarize : t -> summary list
(** One summary per scheme. *)

val to_table : t -> hit:bool -> zoom:bool -> Hotpath_util.Tablefmt.t
(** Long-format rendering of one figure: rows are (scheme, benchmark,
    delay) with profiled flow and the hit ([hit:true], Figure 2) or noise
    (Figure 3) rate.  [zoom] restricts to points with ≤ 10% profiled flow
    (the right-hand panels). *)

val render :
  ?scale:float -> ?delays:int list -> ?jobs:int -> hit:bool -> zoom:bool -> unit -> string
