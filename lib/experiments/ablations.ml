module Suite = Hotpath_workloads.Suite
module Correlated = Hotpath_workloads.Correlated
module Recorder = Hotpath_trace.Recorder
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Branch_profile = Hotpath_prediction.Branch_profile
module Replay = Hotpath_prediction.Replay
module Hot_set = Hotpath_metrics.Hot_set
module Rates = Hotpath_metrics.Rates
module Tablefmt = Hotpath_util.Tablefmt
module Prng = Hotpath_util.Prng
module Pool = Hotpath_util.Pool

(* ------------------------------------------------------------------ *)
(* NET variants                                                        *)
(* ------------------------------------------------------------------ *)

type variant_row = {
  v_bench : string;
  v_scheme : string;
  v_hit : float;
  v_noise : float;
  v_predictions : int;
  v_counters : int;
}

let variants : (string * Scheme.packed) list =
  [
    ("net", (module Net : Scheme.S));
    ("net-once", (module Net.Net_once : Scheme.S));
    ("let", (module Net.Last_executed_tail : Scheme.S));
  ]

let net_variants ?scale ?(delay = 50) ?(jobs = 1) () =
  let tasks =
    List.concat_map
      (fun (run : Runs.run) ->
         List.map (fun variant -> (run, variant)) variants)
      (Runs.load_all ?scale ~jobs ())
  in
  Pool.map ~jobs
    (fun ((run : Runs.run), (scheme_name, scheme)) ->
       let o = Replay.run scheme ~delay run.Runs.recorded in
       let rates = Rates.operational o run.Runs.hot in
       {
         v_bench = run.Runs.bench.Suite.b_name;
         v_scheme = scheme_name;
         v_hit = rates.Rates.hit_rate;
         v_noise = rates.Rates.noise_rate;
         v_predictions = Array.length o.Replay.predictions;
         v_counters = o.Replay.counter_space;
       })
    tasks

let render_net_variants ?scale ?delay ?jobs () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("Scheme", Tablefmt.Left);
          ("Hit rate", Tablefmt.Right);
          ("Noise", Tablefmt.Right);
          ("Predictions", Tablefmt.Right);
          ("Counters", Tablefmt.Right);
        ]
  in
  let rows = net_variants ?scale ?delay ?jobs () in
  List.iteri
    (fun i r ->
       if i > 0 && i mod List.length variants = 0 then Tablefmt.add_separator t;
       Tablefmt.add_row t
         [
           r.v_bench;
           r.v_scheme;
           Tablefmt.cell_pct r.v_hit;
           Tablefmt.cell_pct r.v_noise;
           Tablefmt.cell_int r.v_predictions;
           Tablefmt.cell_int r.v_counters;
         ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* Boa comparison                                                      *)
(* ------------------------------------------------------------------ *)

type boa_row = {
  b_bench : string;
  b_net_hit : float;
  b_boa_hit : float;
  b_boa_phantoms : int;
  b_net_ops : int;
  b_boa_ops : int;
}

let boa_row_of ~name ~recorded ~hot ~delay =
  let net = Replay.run (module Net) ~delay recorded in
  let net_rates = Rates.operational net hot in
  let boa = Branch_profile.run ~delay recorded in
  let boa_rates = Rates.operational boa.Branch_profile.base hot in
  {
    b_bench = name;
    b_net_hit = net_rates.Rates.hit_rate;
    b_boa_hit = boa_rates.Rates.hit_rate;
    b_boa_phantoms = List.length boa.Branch_profile.phantoms;
    b_net_ops = net.Replay.profiling_ops;
    b_boa_ops = boa.Branch_profile.base.Replay.profiling_ops;
  }

let correlated_recording () =
  let program, behavior = Correlated.build ~triples:2 ~iterations:5_000 () in
  let recorded =
    Recorder.record ~max_paths:60_000 ~max_steps:3_000_000 program behavior
      ~rng:(Prng.create ~seed:4242)
  in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:Suite.hot_threshold
  in
  (recorded, hot)

let boa ?scale ?(delay = 50) ?(jobs = 1) () =
  let suite_rows =
    Pool.map ~jobs
      (fun (run : Runs.run) ->
         boa_row_of ~name:run.Runs.bench.Suite.b_name ~recorded:run.Runs.recorded
           ~hot:run.Runs.hot ~delay)
      (Runs.load_all ?scale ~jobs ())
  in
  let recorded, hot = correlated_recording () in
  suite_rows @ [ boa_row_of ~name:"correlated" ~recorded ~hot ~delay ]

let render_boa ?scale ?delay ?jobs () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("NET hit", Tablefmt.Right);
          ("Boa hit", Tablefmt.Right);
          ("Boa phantoms", Tablefmt.Right);
          ("NET ops", Tablefmt.Right);
          ("Boa ops", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.b_bench;
           Tablefmt.cell_pct r.b_net_hit;
           Tablefmt.cell_pct r.b_boa_hit;
           Tablefmt.cell_int r.b_boa_phantoms;
           Tablefmt.cell_int r.b_net_ops;
           Tablefmt.cell_int r.b_boa_ops;
         ])
    (boa ?scale ?delay ?jobs ());
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* Hot-threshold sensitivity                                           *)
(* ------------------------------------------------------------------ *)

type threshold_row = {
  t_bench : string;
  t_threshold : float;
  t_net_hit : float;
  t_pp_hit : float;
}

let thresholds ?scale ?(delay = 50) ?(values = [ 0.0001; 0.001; 0.01 ]) ?(jobs = 1)
    () =
  List.concat
    (Pool.map ~jobs
       (fun (run : Runs.run) ->
          let recorded = run.Runs.recorded in
          let freq = run.Runs.freq in
          let net = Replay.run (module Net) ~delay recorded in
          let pp = Replay.run (module Path_profile) ~delay recorded in
          List.map
            (fun threshold ->
               let hot =
                 Hot_set.compute ~freq ~total_flow:(Recorder.num_instances recorded)
                   ~threshold
               in
               {
                 t_bench = run.Runs.bench.Suite.b_name;
                 t_threshold = threshold;
                 t_net_hit = (Rates.operational net hot).Rates.hit_rate;
                 t_pp_hit = (Rates.operational pp hot).Rates.hit_rate;
               })
            values)
       (Runs.load_all ?scale ~jobs ()))

let render_thresholds ?scale ?delay ?jobs () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("Hot threshold", Tablefmt.Right);
          ("NET hit", Tablefmt.Right);
          ("Path-profile hit", Tablefmt.Right);
        ]
  in
  let rows = thresholds ?scale ?delay ?jobs () in
  List.iteri
    (fun i r ->
       if i > 0 && i mod 3 = 0 then Tablefmt.add_separator t;
       Tablefmt.add_row t
         [
           r.t_bench;
           Printf.sprintf "%.2f%%" (100.0 *. r.t_threshold);
           Tablefmt.cell_pct r.t_net_hit;
           Tablefmt.cell_pct r.t_pp_hit;
         ])
    rows;
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* Cost-model sensitivity                                              *)
(* ------------------------------------------------------------------ *)

module Cost_model = Hotpath_dynamo.Cost_model
module Engine = Hotpath_dynamo.Engine

type cost_row = {
  c_interp : float;
  c_fragment : float;
  c_net50 : float;
  c_pp50 : float;
}

let average_speedup ~cost ~scheme ~scheme_costs ~scale =
  let speedups =
    List.map
      (fun bench ->
         let run = Runs.load ~scale bench in
         let config = Engine.config ~cost ~scheme ~scheme_costs ~delay:50 () in
         (Engine.run config run.Runs.recorded).Engine.r_speedup_pct)
      Suite.dynamo_set
  in
  Hotpath_util.Stats.mean (Array.of_list speedups)

let cost_sensitivity ?(scale = 2.0) ?(interp_values = [ 2.0; 3.0; 5.0 ])
    ?(fragment_values = [ 0.60; 0.68; 0.80 ]) () =
  List.concat_map
    (fun interp ->
       List.map
         (fun fragment ->
            let cost =
              {
                Cost_model.default with
                Cost_model.interp_cycles_per_instr = interp;
                fragment_cycles_per_instr = fragment;
              }
            in
            {
              c_interp = interp;
              c_fragment = fragment;
              c_net50 =
                average_speedup ~cost ~scale
                  ~scheme:(module Net : Scheme.S)
                  ~scheme_costs:(Engine.net_costs cost);
              c_pp50 =
                average_speedup ~cost ~scale
                  ~scheme:(module Path_profile : Scheme.S)
                  ~scheme_costs:(Engine.path_profile_costs cost);
            })
         fragment_values)
    interp_values

let render_cost_sensitivity ?scale () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Interp c/i", Tablefmt.Right);
          ("Fragment c/i", Tablefmt.Right);
          ("NET avg @50", Tablefmt.Right);
          ("Path-profile avg @50", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           Tablefmt.cell_float ~digits:2 r.c_interp;
           Tablefmt.cell_float ~digits:2 r.c_fragment;
           Printf.sprintf "%+.1f%%" r.c_net50;
           Printf.sprintf "%+.1f%%" r.c_pp50;
         ])
    (cost_sensitivity ?scale ());
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* Cache-pressure policies                                             *)
(* ------------------------------------------------------------------ *)

module Fragment_cache = Hotpath_dynamo.Fragment_cache

type cache_row = {
  k_capacity : int;
  k_policy : string;
  k_speedup : float;
  k_flushes : int;
  k_fragments : int;  (* fragments ever built (re-predictions included) *)
  k_coverage : float;
}

let cache_policies ?(scale = 2.0) ?(bench = "li") ?(capacities = [ 64; 256; 4096 ]) () =
  let run = Runs.load ~scale (Suite.find_exn bench) in
  let cost = Cost_model.default in
  List.concat_map
    (fun capacity ->
       List.map
         (fun (policy_name, eviction) ->
            let config =
              Engine.config ~cost ~cache_capacity:capacity ~cache_eviction:eviction
                ~scheme:(module Net : Scheme.S)
                ~scheme_costs:(Engine.net_costs cost) ~delay:50 ()
            in
            let result = Engine.run config run.Runs.recorded in
            {
              k_capacity = capacity;
              k_policy = policy_name;
              k_speedup = result.Engine.r_speedup_pct;
              k_flushes = result.Engine.r_flushes;
              k_fragments = result.Engine.r_fragments;
              k_coverage = result.Engine.r_cache_coverage_pct;
            })
         [
           ("flush-on-pressure", Fragment_cache.Reject_when_full);
           ("evict-lru", Fragment_cache.Evict_lru);
         ])
    capacities

let render_cache_policies ?scale () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Capacity", Tablefmt.Right);
          ("Policy", Tablefmt.Left);
          ("Speedup", Tablefmt.Right);
          ("Flushes", Tablefmt.Right);
          ("Fragments built", Tablefmt.Right);
          ("Coverage", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           Tablefmt.cell_int r.k_capacity;
           r.k_policy;
           Printf.sprintf "%+.1f%%" r.k_speedup;
           Tablefmt.cell_int r.k_flushes;
           Tablefmt.cell_int r.k_fragments;
           Tablefmt.cell_pct r.k_coverage;
         ])
    (cache_policies ?scale ());
  Tablefmt.render t

(* ------------------------------------------------------------------ *)
(* Seed robustness                                                     *)
(* ------------------------------------------------------------------ *)

module Generator = Hotpath_workloads.Generator

type seed_row = {
  sr_bench : string;
  sr_net_mean : float;
  sr_net_std : float;
  sr_pp_mean : float;
  sr_pp_std : float;
}

let hit_rate_for ~bench ~seed ~scale scheme =
  let program, behavior = Generator.build bench.Suite.b_spec ~seed in
  let max_paths =
    max 1000 (int_of_float (scale *. float_of_int bench.Suite.b_flow))
  in
  let recorded =
    Recorder.record ~max_paths ~max_steps:(max_paths * 200) program behavior
      ~rng:(Prng.create ~seed:(seed * 7919))
  in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:Suite.hot_threshold
  in
  (Rates.operational (Replay.run scheme ~delay:50 recorded) hot).Rates.hit_rate

(* Each (benchmark × scheme) job records its own per-seed traces, so no
   shared state crosses the fan-out: the benchmark rows pair adjacent
   NET / path-profile results back up afterwards. *)
let seed_robustness ?(scale = 0.2) ?(seeds = [ 11; 22; 33; 44; 55 ]) ?(jobs = 1) () =
  let tasks =
    List.concat_map
      (fun bench ->
         [
           (bench, (module Net : Scheme.S));
           (bench, (module Path_profile : Scheme.S));
         ])
      Suite.all
  in
  let rates =
    Pool.map ~jobs
      (fun (bench, scheme) ->
         Array.of_list
           (List.map (fun seed -> hit_rate_for ~bench ~seed ~scale scheme) seeds))
      tasks
  in
  let rec pair benches rates =
    match (benches, rates) with
    | [], [] -> []
    | bench :: benches', net :: pp :: rates' ->
      {
        sr_bench = bench.Suite.b_name;
        sr_net_mean = Hotpath_util.Stats.mean net;
        sr_net_std = Hotpath_util.Stats.stddev net;
        sr_pp_mean = Hotpath_util.Stats.mean pp;
        sr_pp_std = Hotpath_util.Stats.stddev pp;
      }
      :: pair benches' rates'
    | _ -> invalid_arg "Ablations.seed_robustness: task/result mismatch"
  in
  pair Suite.all rates

let render_seed_robustness ?scale ?jobs () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("NET hit (mean +/- std)", Tablefmt.Right);
          ("Path-profile hit (mean +/- std)", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.sr_bench;
           Printf.sprintf "%.1f%% +/- %.1f" r.sr_net_mean r.sr_net_std;
           Printf.sprintf "%.1f%% +/- %.1f" r.sr_pp_mean r.sr_pp_std;
         ])
    (seed_robustness ?scale ?jobs ());
  Tablefmt.render t
