module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set
module Pool = Hotpath_util.Pool

type run = {
  bench : Suite.benchmark;
  recorded : Recorder.t;
  freq : int array;
  hot : Hot_set.t;
}

(* The cache is shared across the experiment fan-out domains; every access
   goes through [lock].  Two domains racing to load the same key may both
   record (duplicate work, deterministic result) — the fan-out layers
   avoid that by loading distinct benchmarks per job. *)
let cache : (string * float, run) Hashtbl.t = Hashtbl.create 16

let lock = Mutex.create ()

let find_cached key =
  Mutex.lock lock;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock lock;
  r

let load ?(scale = 1.0) bench =
  let key = (bench.Suite.b_name, scale) in
  match find_cached key with
  | Some run -> run
  | None ->
    let recorded = Suite.record ~scale bench in
    let freq = Recorder.frequencies recorded in
    let hot =
      Hot_set.compute ~freq ~total_flow:(Recorder.num_instances recorded)
        ~threshold:Suite.hot_threshold
    in
    let run = { bench; recorded; freq; hot } in
    Mutex.lock lock;
    (* Keep the first binding if another domain won the race. *)
    let run =
      match Hashtbl.find_opt cache key with
      | Some existing -> existing
      | None ->
        Hashtbl.add cache key run;
        run
    in
    Mutex.unlock lock;
    run

let load_all ?(scale = 1.0) ?(jobs = 1) () =
  Pool.map ~jobs (fun b -> load ~scale b) Suite.all

let clear_cache () =
  Mutex.lock lock;
  Hashtbl.reset cache;
  Mutex.unlock lock
