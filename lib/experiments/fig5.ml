module Suite = Hotpath_workloads.Suite
module Scheme = Hotpath_prediction.Scheme
module Engine = Hotpath_dynamo.Engine
module Cost_model = Hotpath_dynamo.Cost_model
module Tablefmt = Hotpath_util.Tablefmt
module Stats = Hotpath_util.Stats
module Pool = Hotpath_util.Pool

type cell = { speedup_pct : float; bailed : bool }

type row = { name : string; cells : (string * int * cell) list }

let delays = [ 10; 50; 100 ]

(* Cost models come from [Engine.costs_for], so each column charges what
   its scheme actually does: net/net-k2 pay per-arrival counter work,
   path-profile pays per-branch, static pays nothing until collection.
   The net-k2 column answers the fig5-k question — does k2's better
   tau-50 hit rate survive Dynamo cost accounting? — and the static
   column prices the zero-profiling floor. *)
let schemes : (string * Scheme.packed * (Cost_model.t -> Engine.scheme_costs)) list =
  [
    ( "net",
      (module Hotpath_prediction.Net : Scheme.S),
      Engine.costs_for ~scheme:"net" );
    ( "path-profile",
      (module Hotpath_prediction.Path_profile : Scheme.S),
      Engine.costs_for ~scheme:"path-profile" );
    ( "net-k2",
      Hotpath_prediction.Net_k.make 2,
      Engine.costs_for ~scheme:"net-k2" );
    ( "static",
      (module Hotpath_prediction.Static : Scheme.S),
      Engine.costs_for ~scheme:"static" );
  ]

let scheme_cells ~cost (run : Runs.run) (scheme_name, scheme, costs_of) =
  List.map
    (fun delay ->
       let config =
         Engine.config ~cost ~scheme ~scheme_costs:(costs_of cost) ~delay ()
       in
       let result = Engine.run config run.Runs.recorded in
       ( scheme_name,
         delay,
         {
           speedup_pct = result.Engine.r_speedup_pct;
           bailed = result.Engine.r_bailed;
         } ))
    delays

(* One fan-out job per (benchmark × scheme); each job simulates the three
   delays for its cell group.  Benchmarks are pre-recorded (also on the
   pool), so the simulation jobs only replay. *)
let run_benches ~scale ~cost ~jobs benches =
  let runs = Pool.map ~jobs (fun b -> Runs.load ~scale b) benches in
  let tasks =
    List.concat_map (fun run -> List.map (fun s -> (run, s)) schemes) runs
  in
  let cell_groups =
    Pool.map ~jobs (fun (run, scheme) -> scheme_cells ~cost run scheme) tasks
  in
  let per_bench = List.length schemes in
  List.mapi
    (fun i (run : Runs.run) ->
       let cells =
         List.concat
           (List.filteri
              (fun j _ -> j >= i * per_bench && j < (i + 1) * per_bench)
              cell_groups)
       in
       { name = run.Runs.bench.Suite.b_name; cells })
    runs

let average rows =
  let cells =
    List.concat_map
      (fun (scheme_name, _, _) ->
         List.map
           (fun delay ->
              let values =
                List.map
                  (fun row ->
                     let _, _, cell =
                       List.find
                         (fun (s, d, _) -> s = scheme_name && d = delay)
                         row.cells
                     in
                     cell.speedup_pct)
                  rows
              in
              ( scheme_name,
                delay,
                { speedup_pct = Stats.mean (Array.of_list values); bailed = false } ))
           delays)
      schemes
  in
  { name = "Average"; cells }

let default_scale = 8.0

let compute ?(scale = default_scale) ?(cost = Cost_model.default) ?(jobs = 1) () =
  let rows = run_benches ~scale ~cost ~jobs Suite.dynamo_set in
  rows @ [ average rows ]

let compute_all ?(scale = default_scale) ?(cost = Cost_model.default) ?(jobs = 1) () =
  run_benches ~scale ~cost ~jobs Suite.all

let to_table rows =
  let headers =
    List.concat_map
      (fun (scheme_name, _, _) ->
         List.map
           (fun d -> (Printf.sprintf "%s %d" scheme_name d, Tablefmt.Right))
           delays)
      schemes
  in
  let t = Tablefmt.create ~columns:(("Benchmark", Tablefmt.Left) :: headers) in
  List.iter
    (fun row ->
       let cells =
         List.map
           (fun (_, _, c) ->
              if c.bailed then "bail-out"
              else Printf.sprintf "%+.1f%%" c.speedup_pct)
           row.cells
       in
       Tablefmt.add_row t (row.name :: cells))
    rows;
  t

let render ?scale ?jobs ?(all = false) () =
  let rows = if all then compute_all ?scale ?jobs () else compute ?scale ?jobs () in
  Tablefmt.render (to_table rows)
