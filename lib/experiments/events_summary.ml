module Events = Hotpath_util.Events
module Tablefmt = Hotpath_util.Tablefmt

type fields = (string * Events.value) list

type t = {
  all : fields list;  (* stream order *)
  kinds : (string * int) list;  (* first-seen order *)
}

let of_string s =
  let exception Fail of string in
  try
    let all = ref [] and kinds = ref [] and lineno = ref 0 in
    String.split_on_char '\n' s
    |> List.iter (fun line ->
      incr lineno;
      let trimmed = String.trim line in
      if trimmed <> "" then
        match Events.parse_line trimmed with
        | Error e -> raise (Fail (Printf.sprintf "line %d: %s" !lineno e))
        | Ok fields ->
          let k = Option.value (Events.kind fields) ~default:"?" in
          (match List.assoc_opt k !kinds with
           | Some n ->
             kinds := List.map (fun (k', n') -> if k' = k then (k', n + 1) else (k', n')) !kinds
           | None -> kinds := !kinds @ [ (k, 1) ]);
          all := fields :: !all);
    Ok { all = List.rev !all; kinds = !kinds }
  with Fail e -> Error e

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

let events t = List.length t.all

let of_kind t k = List.filter (fun f -> Events.kind f = Some k) t.all

let int_exn f name =
  match Events.find_int f name with
  | Some v -> v
  | None -> invalid_arg ("events-summary: missing field " ^ name)

let float_exn f name =
  match Events.find_float f name with
  | Some v -> v
  | None -> invalid_arg ("events-summary: missing field " ^ name)

let str_exn f name =
  match Events.find_str f name with
  | Some v -> v
  | None -> invalid_arg ("events-summary: missing field " ^ name)

(* Windows of one event kind grouped into (scheme, delay) lanes,
   first-seen order, each lane's samples in stream (= seq) order. *)
let lanes t kind =
  let tbl = ref [] in
  List.iter
    (fun f ->
      let key = (str_exn f "scheme", int_exn f "delay") in
      match List.assoc_opt key !tbl with
      | Some r -> r := f :: !r
      | None -> tbl := !tbl @ [ (key, ref [ f ]) ])
    (of_kind t kind);
  List.map (fun (key, r) -> (key, List.rev !r)) !tbl

(* Phase-change detector over a lane's per-window burst counts: the same
   spike-vs-EWMA shape the engine's flush policy uses.  The first window
   is the startup burst and seeds the baseline. *)
let phase_factor = 2.5
let phase_min = 8

let flag_phases bursts =
  let flags = ref [] and baseline = ref None in
  List.iteri
    (fun i burst ->
      (match !baseline with
       | None -> ()
       | Some b ->
         if burst >= phase_min && float_of_int burst > phase_factor *. (b +. 1.0)
         then flags := i :: !flags);
      baseline :=
        Some
          (match !baseline with
           | None -> float_of_int burst
           | Some b -> (0.7 *. b) +. (0.3 *. float_of_int burst)))
    bursts;
  List.rev !flags

(* Per-window burst = delta of a cumulative field between samples. *)
let deltas field samples =
  let prev = ref 0 in
  List.map
    (fun f ->
      let v = int_exn f field in
      let d = v - !prev in
      prev := v;
      d)
    samples

let replay_lane_flags (_, samples) = flag_phases (deltas "predictions" samples)
let dynamo_lane_flags (_, samples) = flag_phases (deltas "fragments" samples)

let phase_flags t =
  let collect kind lane_flags =
    List.concat_map
      (fun ((scheme, delay), samples) ->
        List.map
          (fun i -> (scheme, delay, int_exn (List.nth samples i) "seq"))
          (lane_flags ((scheme, delay), samples)))
      (lanes t kind)
  in
  collect "replay.window" replay_lane_flags
  @ collect "dynamo.window" dynamo_lane_flags

let buf_table b tbl = Buffer.add_string b (Tablefmt.render tbl)

let section b title = Buffer.add_string b (Printf.sprintf "\n%s\n" title)

let render_overview b t =
  Buffer.add_string b (Printf.sprintf "Event stream: %d events\n" (events t));
  let tbl =
    Tablefmt.create ~columns:[ ("kind", Tablefmt.Left); ("count", Tablefmt.Right) ]
  in
  List.iter (fun (k, n) -> Tablefmt.add_row tbl [ k; Tablefmt.cell_int n ]) t.kinds;
  buf_table b tbl

(* One-line lint verdict, only when the stream carries [hotpath check]
   diagnostics; the totals come from the trailing check.done event when
   present and are recounted from the diagnostics otherwise (a stream
   truncated before check.done still gets a verdict). *)
let render_check b t =
  let diags = of_kind t "check" in
  let dones = of_kind t "check.done" in
  if diags <> [] || dones <> [] then begin
    let errors, warnings, subjects =
      match List.rev dones with
      | last :: _ ->
        (int_exn last "errors", int_exn last "warnings", int_exn last "subjects")
      | [] ->
        let count sev =
          List.length
            (List.filter (fun f -> Events.find_str f "severity" = Some sev) diags)
        in
        let subjects =
          List.sort_uniq compare (List.map (fun f -> str_exn f "subject") diags)
        in
        (count "error", count "warning", List.length subjects)
    in
    Buffer.add_string b
      (Printf.sprintf "Lint: %s — %d errors, %d warnings (%d subjects)\n"
         (if errors > 0 then "FAIL" else "PASS")
         errors warnings subjects)
  end

let render_replay_lanes b t =
  List.iter
    (fun (((scheme, delay), samples) as lane) ->
      section b (Printf.sprintf "Replay windows — %s delay=%d" scheme delay);
      let flags = replay_lane_flags lane in
      let with_hits = List.exists (fun f -> Events.find_int f "hits" <> None) samples in
      let columns =
        [ ("win", Tablefmt.Right); ("upto", Tablefmt.Right);
          ("d.inst", Tablefmt.Right); ("d.pred", Tablefmt.Right);
          ("d.prof", Tablefmt.Right); ("d.capt", Tablefmt.Right);
          ("ctr", Tablefmt.Right); ("ctr.hw", Tablefmt.Right) ]
        @ (if with_hits then
             [ ("hits", Tablefmt.Right); ("noise", Tablefmt.Right) ]
           else [])
        @ [ ("phase", Tablefmt.Left) ]
      in
      let tbl = Tablefmt.create ~columns in
      let dp = deltas "predictions" samples
      and dprof = deltas "profiled" samples
      and dcapt = deltas "captured" samples in
      List.iteri
        (fun i f ->
          let cell name = Tablefmt.cell_int (int_exn f name) in
          Tablefmt.add_row tbl
            ([ string_of_int (int_exn f "seq"); cell "upto";
               Tablefmt.cell_int (int_exn f "instances");
               Tablefmt.cell_int (List.nth dp i);
               Tablefmt.cell_int (List.nth dprof i);
               Tablefmt.cell_int (List.nth dcapt i);
               cell "counter_space"; cell "counter_space_hw" ]
             @ (if with_hits then [ cell "hits"; cell "noise" ] else [])
             @ [ (if List.mem i flags then "*" else "") ]))
        samples;
      buf_table b tbl)
    (lanes t "replay.window")

let render_dynamo_lanes b t =
  List.iter
    (fun (((scheme, delay), samples) as lane) ->
      section b (Printf.sprintf "Dynamo windows — %s delay=%d" scheme delay);
      let flags = dynamo_lane_flags lane in
      let tbl =
        Tablefmt.create
          ~columns:
            [ ("win", Tablefmt.Right); ("upto", Tablefmt.Right);
              ("d.full", Tablefmt.Right); ("d.part", Tablefmt.Right);
              ("d.miss", Tablefmt.Right); ("frags", Tablefmt.Right);
              ("flushes", Tablefmt.Right); ("speedup", Tablefmt.Right);
              ("phase", Tablefmt.Left) ]
      in
      let dfull = deltas "full_hits" samples
      and dpart = deltas "partial_hits" samples
      and dmiss = deltas "misses" samples in
      List.iteri
        (fun i f ->
          let dynamo =
            float_exn f "cycles_fragment" +. float_exn f "cycles_interp"
            +. float_exn f "cycles_profile" +. float_exn f "cycles_overhead"
            +. float_exn f "cycles_flush"
          in
          let native = float_exn f "cycles_native" in
          let speedup =
            if dynamo > 0.0 then ((native /. dynamo) -. 1.0) *. 100.0 else 0.0
          in
          Tablefmt.add_row tbl
            [ string_of_int (int_exn f "seq");
              Tablefmt.cell_int (int_exn f "upto");
              Tablefmt.cell_int (List.nth dfull i);
              Tablefmt.cell_int (List.nth dpart i);
              Tablefmt.cell_int (List.nth dmiss i);
              Tablefmt.cell_int (int_exn f "fragments");
              Tablefmt.cell_int (int_exn f "flushes");
              Tablefmt.cell_pct speedup;
              (if List.mem i flags then "*" else "") ])
        samples;
      buf_table b tbl)
    (lanes t "dynamo.window")

let render_incidents b t =
  let flushes = of_kind t "dynamo.flush" and bails = of_kind t "dynamo.bail" in
  if flushes <> [] then begin
    section b "Cache flushes";
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "  at=%s reason=%s window_preds=%d baseline=%.1f\n"
             (Tablefmt.cell_int (int_exn f "at"))
             (str_exn f "reason") (int_exn f "window_preds")
             (float_exn f "baseline")))
      flushes
  end;
  if bails <> [] then begin
    section b "Bail-outs";
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "  at=%s streak=%d\n"
             (Tablefmt.cell_int (int_exn f "at"))
             (int_exn f "streak")))
      bails
  end

let render_sweeps b t =
  let points = of_kind t "sweep.point" in
  if points <> [] then begin
    section b "Sweep points";
    let tbl =
      Tablefmt.create
        ~columns:
          [ ("scheme", Tablefmt.Left); ("delay", Tablefmt.Right);
            ("profiled", Tablefmt.Right); ("hit", Tablefmt.Right);
            ("noise", Tablefmt.Right); ("preds", Tablefmt.Right);
            ("counters", Tablefmt.Right) ]
    in
    List.iter
      (fun f ->
        Tablefmt.add_row tbl
          [ str_exn f "scheme"; Tablefmt.cell_int (int_exn f "delay");
            Tablefmt.cell_pct ~digits:2 (float_exn f "profiled_pct");
            Tablefmt.cell_pct (float_exn f "hit_rate");
            Tablefmt.cell_pct (float_exn f "noise_rate");
            Tablefmt.cell_int (int_exn f "predictions");
            Tablefmt.cell_int (int_exn f "counter_space") ])
      points;
    buf_table b tbl
  end;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "Sweep done: %s, %d delays over %s instances\n"
           (str_exn f "scheme") (int_exn f "delays")
           (Tablefmt.cell_int (int_exn f "instances"))))
    (of_kind t "sweep.done")

let render_recording b t =
  let chunks = of_kind t "record.chunk" in
  List.iter
    (fun f ->
      section b "Recording";
      Buffer.add_string b
        (Printf.sprintf "  %d chunks, %s instances, %s paths, %s bytes\n"
           (List.length chunks)
           (Tablefmt.cell_int (int_exn f "instances"))
           (Tablefmt.cell_int (int_exn f "paths"))
           (Tablefmt.cell_int (int_exn f "bytes_out"))))
    (of_kind t "record.done")

let render_registry b t =
  match List.rev (of_kind t "registry") with
  | [] -> ()
  | last :: _ ->
    section b "Registry";
    List.iter
      (fun (name, v) ->
        match v with
        | Events.Int n when name <> "ev" && not (String.length name > 3 && String.sub name (String.length name - 3) 3 = ".hw") ->
          let hw = Option.value (Events.find_int last (name ^ ".hw")) ~default:n in
          Buffer.add_string b
            (Printf.sprintf "  %s = %s (high water %s)\n" name
               (Tablefmt.cell_int n) (Tablefmt.cell_int hw))
        | _ -> ())
      last

let render t =
  let b = Buffer.create 4096 in
  render_overview b t;
  render_check b t;
  render_replay_lanes b t;
  render_dynamo_lanes b t;
  render_incidents b t;
  render_sweeps b t;
  render_recording b t;
  render_registry b t;
  Buffer.contents b
