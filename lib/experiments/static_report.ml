module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Tablefmt = Hotpath_util.Tablefmt
module Stats = Hotpath_util.Stats
module Freq = Hotpath_analysis.Freq
module Kselect = Hotpath_analysis.Kselect

(* Estimated-vs-measured hot-head comparison: how well does the
   Wu–Larus estimate rank the heads a real trace actually visits?  The
   universe is the static [full] head set — every dynamic loop head is
   in it by construction — with estimated flow on one side and the
   trace's backward-arrival counts (zero when never visited) on the
   other. *)

type row = {
  sr_bench : string;
  sr_heads : int;  (** Static full head set size. *)
  sr_observed : int;  (** Heads the trace actually arrived at. *)
  sr_armed : int;  (** Statically-hot heads (0.1% estimated share). *)
  sr_spearman : float;
  sr_top10_pct : float;  (** Top-10 overlap, percent. *)
  sr_top50_pct : float;  (** Top-50 overlap, percent. *)
  sr_degraded : int;  (** Procedures flagged P113-degraded. *)
}

(* Deterministic hot-first order: value descending, block ascending. *)
let rank_heads values =
  let a = Array.of_list values in
  Array.sort (fun (ha, fa) (hb, fb) -> compare (fb, ha) (fa, hb)) a;
  Array.map fst a

let top_overlap_pct ~n est meas =
  let n = min n (Array.length est) in
  if n = 0 then 0.0
  else begin
    let take a =
      let t = Hashtbl.create n in
      Array.iteri (fun i h -> if i < n then Hashtbl.replace t h ()) a;
      t
    in
    let e = take est in
    let inter = ref 0 in
    Array.iteri
      (fun i h -> if i < n && Hashtbl.mem e h then incr inter)
      meas;
    100.0 *. float_of_int !inter /. float_of_int n
  end

let compute_row ?scale (b : Suite.benchmark) =
  let run = Runs.load ?scale b in
  let freq = Freq.cached run.Runs.recorded.Recorder.program in
  let est = Freq.ranked_heads freq in
  let measured = Recorder.head_arrival_counts run.Runs.recorded in
  let meas_of h =
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt measured h))
  in
  (* Correlate over the heads the trace visited: with the full set the
     statistic is dominated by the (many) never-visited heads tying at
     zero.  Top-N overlap below still uses the full set. *)
  let observed = List.filter (fun (h, _) -> meas_of h > 0.0) est in
  let est_v = Array.of_list (List.map snd observed) in
  let meas_v = Array.of_list (List.map (fun (h, _) -> meas_of h) observed) in
  let est_rank = rank_heads est in
  let meas_rank =
    rank_heads (List.map (fun (h, _) -> (h, meas_of h)) est)
  in
  let total_est = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 est in
  let armed =
    List.length
      (List.filter
         (fun (_, f) -> total_est > 0.0 && f >= Suite.hot_threshold *. total_est)
         est)
  in
  {
    sr_bench = b.Suite.b_name;
    sr_heads = List.length est;
    sr_observed = Hashtbl.length measured;
    sr_armed = armed;
    sr_spearman = Stats.spearman est_v meas_v;
    sr_top10_pct = top_overlap_pct ~n:10 est_rank meas_rank;
    sr_top50_pct = top_overlap_pct ~n:50 est_rank meas_rank;
    sr_degraded = List.length (Freq.degraded_procs freq);
  }

let compute ?scale ?(jobs = 1) () =
  let runs = Runs.load_all ?scale ~jobs () in
  List.map (fun (run : Runs.run) -> compute_row ?scale run.Runs.bench) runs

let to_table rows =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("bench", Tablefmt.Left);
          ("heads", Tablefmt.Right);
          ("observed", Tablefmt.Right);
          ("armed", Tablefmt.Right);
          ("spearman", Tablefmt.Right);
          ("top-10", Tablefmt.Right);
          ("top-50", Tablefmt.Right);
          ("degraded", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.sr_bench;
           Tablefmt.cell_int r.sr_heads;
           Tablefmt.cell_int r.sr_observed;
           Tablefmt.cell_int r.sr_armed;
           Tablefmt.cell_float ~digits:3 r.sr_spearman;
           Tablefmt.cell_pct ~digits:0 r.sr_top10_pct;
           Tablefmt.cell_pct ~digits:0 r.sr_top50_pct;
           Tablefmt.cell_int r.sr_degraded;
         ])
    rows;
  t

let render ?scale ?jobs () =
  let rows = compute ?scale ?jobs () in
  let mean f = Stats.mean (Array.of_list (List.map f rows)) in
  Tablefmt.render (to_table rows)
  ^ Printf.sprintf
      "\nmean rank correlation %.3f, top-10 overlap %.0f%%, top-50 overlap \
       %.0f%% (zero trace observation)\n"
      (mean (fun r -> r.sr_spearman))
      (mean (fun r -> r.sr_top10_pct))
      (mean (fun r -> r.sr_top50_pct))

let render_csv ?scale ?jobs () = Tablefmt.render_csv (to_table (compute ?scale ?jobs ()))

(* Per-benchmark drill-down: the head-level table behind the summary
   row, plus the k-selection the kauto schemes will use. *)
let render_bench ?scale ?(top = 12) (b : Suite.benchmark) =
  let run = Runs.load ?scale b in
  let program = run.Runs.recorded.Recorder.program in
  let freq = Freq.cached program in
  let est = Freq.ranked_heads freq in
  let measured = Recorder.head_arrival_counts run.Runs.recorded in
  let meas_of h =
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt measured h))
  in
  let est_rank = rank_heads est in
  let meas_rank = rank_heads (List.map (fun (h, _) -> (h, meas_of h)) est) in
  let rank_of a h =
    let r = ref 0 in
    Array.iteri (fun i x -> if x = h then r := i + 1) a;
    !r
  in
  let t =
    Tablefmt.create
      ~columns:
        [
          ("head", Tablefmt.Right);
          ("estimated", Tablefmt.Right);
          ("est-rank", Tablefmt.Right);
          ("measured", Tablefmt.Right);
          ("meas-rank", Tablefmt.Right);
          ("kauto", Tablefmt.Right);
        ]
  in
  let ks = Kselect.cached program in
  Array.iteri
    (fun i h ->
       if i < top then
         Tablefmt.add_row t
           [
             Tablefmt.cell_int h;
             Tablefmt.cell_float ~digits:1 (Freq.global_freq freq h);
             Tablefmt.cell_int (rank_of est_rank h);
             Tablefmt.cell_int (int_of_float (meas_of h));
             Tablefmt.cell_int (i + 1);
             Tablefmt.cell_int (Kselect.k_for ks h);
           ])
    meas_rank;
  let row = compute_row ?scale b in
  let kdist =
    let counts = Hashtbl.create 4 in
    List.iter
      (fun (c : Kselect.choice) ->
         Hashtbl.replace counts c.Kselect.k
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts c.Kselect.k)))
      (Kselect.choices ks);
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])
  in
  Printf.sprintf "%s: top %d measured heads vs static estimate\n" b.Suite.b_name
    top
  ^ Tablefmt.render t
  ^ Printf.sprintf
      "\nheads %d (observed %d, statically hot %d), rank correlation %.3f, \
       top-10 overlap %.0f%%, top-50 overlap %.0f%%\n"
      row.sr_heads row.sr_observed row.sr_armed row.sr_spearman row.sr_top10_pct
      row.sr_top50_pct
  ^ Printf.sprintf "kauto loop heads: %s%s%s\n"
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "k=%d x%d" k n) kdist))
      (if Freq.recursion_capped freq then "; recursion-capped invocations"
       else "")
      (match Freq.degraded_procs freq with
       | [] -> ""
       | ps -> Printf.sprintf "; degraded procs %d" (List.length ps))
