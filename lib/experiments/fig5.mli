(** Figure 5 of the paper: Dynamo speedup over native execution, NET vs
    path-profile-based prediction at delays 10, 50, 100.

    Runs the Dynamo cycle simulator over each recorded trace.  The
    reported set is the paper's no-bail-out subset (compress, m88ksim,
    perl, li, deltablue); {!compute_all} additionally runs the bailing
    benchmarks to show gcc/go giving up, as Section 6 describes.

    Expected shape (measured values in EXPERIMENTS.md): NET positive on
    average and peaking at delay 50 (the paper reports ≈ +15%; at scaled
    flow this reproduction measures ≈ +8%); path-profile-based prediction
    negative on average at every delay, profitable only on the most
    dominant program.

    Two extra columns beyond the paper: net-k2 (does the k-iteration
    scheme's better tau-50 hit rate survive Dynamo cost accounting?) and
    static (the zero-profiling floor — no counter or profiling charges,
    but predictions come from the Wu–Larus estimate alone). *)

type cell = { speedup_pct : float; bailed : bool }

type row = {
  name : string;
  cells : (string * int * cell) list;  (** (scheme, delay, result). *)
}

val delays : int list
(** The paper's 10, 50, 100. *)

val default_scale : float
(** Figure 5 records more flow than the abstract experiments (8x) so that
    lukewarm paths cross the Dynamo-relevant delays the way they do in the
    paper's full-length runs; see EXPERIMENTS.md. *)

val compute :
  ?scale:float -> ?cost:Hotpath_dynamo.Cost_model.t -> ?jobs:int -> unit -> row list
(** No-bail-out subset, plus a final Average row.  [scale] defaults to
    {!default_scale}.  [jobs] fans the (benchmark × scheme) simulations
    over that many work-pool domains (default 1); results are identical
    at every job count. *)

val compute_all :
  ?scale:float -> ?cost:Hotpath_dynamo.Cost_model.t -> ?jobs:int -> unit -> row list
(** Every benchmark (no Average row); gcc/go-class entries are expected to
    bail out. *)

val average : row list -> row
(** Arithmetic-mean cell per (scheme, delay) over the given rows. *)

val to_table : row list -> Hotpath_util.Tablefmt.t

val render : ?scale:float -> ?jobs:int -> ?all:bool -> unit -> string
