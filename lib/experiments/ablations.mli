(** Ablations and extensions beyond the paper's headline figures.

    Three studies, each isolating a design decision the paper (or this
    reproduction's DESIGN.md) calls out:

    - {b NET variants} — re-arming NET (default) vs [Net_once] (one
      prediction per head; shows why modelling Dynamo's secondary trace
      heads matters) vs [Last_executed_tail] (predict the {e previous}
      tail; shows the staleness cost relative to the next executing tail).
    - {b Boa comparison} — NET vs branch-profile-based construction
      (Section 7 of the paper) across the suite plus the {!Hotpath_workloads}
      [Correlated] loop, where the constructed path provably never
      executes ({e phantoms}).
    - {b Hot-threshold sensitivity} — the paper fixes the hot threshold at
      0.1% of flow; sweeping it an order of magnitude both ways shows the
      NET-matches-path-profile result is not an artifact of that choice. *)

module Scheme = Hotpath_prediction.Scheme

type variant_row = {
  v_bench : string;
  v_scheme : string;
  v_hit : float;
  v_noise : float;
  v_predictions : int;
  v_counters : int;
}

val net_variants :
  ?scale:float -> ?delay:int -> ?jobs:int -> unit -> variant_row list
(** net / net-once / let on every benchmark (default τ=50).  [jobs] fans
    the (benchmark × variant) replays over that many work-pool domains
    (default 1); results are identical at every job count, here and in
    the other [?jobs]-taking studies. *)

val render_net_variants : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> string

type boa_row = {
  b_bench : string;
  b_net_hit : float;
  b_boa_hit : float;
  b_boa_phantoms : int;
  b_net_ops : int;
  b_boa_ops : int;
}

val boa : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> boa_row list
(** NET vs Boa per benchmark, plus a final ["correlated"] row on the
    synthetic correlation workload. *)

val render_boa : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> string

type threshold_row = {
  t_bench : string;
  t_threshold : float;
  t_net_hit : float;
  t_pp_hit : float;
}

val thresholds :
  ?scale:float ->
  ?delay:int ->
  ?values:float list ->
  ?jobs:int ->
  unit ->
  threshold_row list
(** Hit rates under hot thresholds 0.01%, 0.1% (the paper's), and 1% by
    default. *)

val render_thresholds : ?scale:float -> ?delay:int -> ?jobs:int -> unit -> string

type cost_row = {
  c_interp : float;  (** Interpreter cycles per instruction. *)
  c_fragment : float;  (** Fragment cycles per instruction. *)
  c_net50 : float;  (** Average NET speedup at τ=50 over the Dynamo set. *)
  c_pp50 : float;  (** Same for path-profile-based prediction. *)
}

val cost_sensitivity :
  ?scale:float ->
  ?interp_values:float list ->
  ?fragment_values:float list ->
  unit ->
  cost_row list
(** Figure 5's qualitative claim under perturbed cost constants: rerun the
    Dynamo set at τ=50 for each (interpreter, fragment) cost combination
    (defaults: interp 2/3/5, fragment 0.60/0.68/0.80; recording scale 2).
    The NET-above-path-profile ordering should hold at every point. *)

val render_cost_sensitivity : ?scale:float -> unit -> string

type cache_row = {
  k_capacity : int;
  k_policy : string;
  k_speedup : float;
  k_flushes : int;
  k_fragments : int;  (** Fragments ever built (re-predictions included). *)
  k_coverage : float;
}

val cache_policies :
  ?scale:float -> ?bench:string -> ?capacities:int list -> unit -> cache_row list
(** Cache-pressure ablation: NET at τ=50 on one benchmark (default li) with
    tight fragment caches, under Dynamo's flush-on-pressure policy vs LRU
    eviction.  LRU degrades gracefully; whole-cache flushes cost coverage
    cliffs. *)

val render_cache_policies : ?scale:float -> unit -> string

type seed_row = {
  sr_bench : string;
  sr_net_mean : float;  (** Mean NET hit rate at τ=50 over the seeds. *)
  sr_net_std : float;
  sr_pp_mean : float;
  sr_pp_std : float;
}

val seed_robustness :
  ?scale:float -> ?seeds:int list -> ?jobs:int -> unit -> seed_row list
(** Re-generate and re-record each benchmark under several seeds (default
    5) and report the spread of the τ=50 hit rates: the headline numbers
    are properties of the workload shapes, not of one random stream. *)

val render_seed_robustness : ?scale:float -> ?jobs:int -> unit -> string
