(** Estimated-vs-measured hot-head comparison — the "how much do you
    keep with zero profiling?" table behind [hotpath static].

    For each benchmark, the static {!Hotpath_analysis.Freq} estimate
    ranks the full head set; the recorded trace's backward-arrival
    counts rank the same set dynamically (unvisited heads count zero).
    The row reports Spearman rank correlation (tie-averaged) over the
    heads the trace actually visited — the full set would drown the
    statistic in never-visited zero ties — and top-10/top-50 overlap
    between the two full-set rankings. *)

module Suite = Hotpath_workloads.Suite

type row = {
  sr_bench : string;
  sr_heads : int;  (** Static full head set size. *)
  sr_observed : int;  (** Heads the trace actually arrived at. *)
  sr_armed : int;  (** Statically-hot heads (0.1% estimated share). *)
  sr_spearman : float;
  sr_top10_pct : float;  (** Top-10 overlap, percent. *)
  sr_top50_pct : float;  (** Top-50 overlap, percent. *)
  sr_degraded : int;  (** Procedures flagged P113-degraded. *)
}

val compute_row : ?scale:float -> Suite.benchmark -> row

val compute : ?scale:float -> ?jobs:int -> unit -> row list
(** All nine benchmarks, Table 1 order; recordings come from the shared
    {!Runs} cache. *)

val to_table : row list -> Hotpath_util.Tablefmt.t

val render : ?scale:float -> ?jobs:int -> unit -> string
(** Summary table plus the mean correlation/overlap line. *)

val render_csv : ?scale:float -> ?jobs:int -> unit -> string

val render_bench : ?scale:float -> ?top:int -> Suite.benchmark -> string
(** Per-benchmark drill-down: the [top] (default 12) measured heads
    with estimated frequency and both ranks, the per-head kauto window
    selection, and the benchmark's summary line. *)
