(** Render a structured event stream ([--events] output) back into
    per-window tables — the consumer side of {!Hotpath_util.Events}.

    The summary groups [replay_window] and [dynamo_window] samples into
    one table per (scheme, delay) lane showing per-window deltas, lists
    flush/bail incidents, and flags {e phase changes}: windows whose
    prediction burst spikes against an EWMA baseline of earlier windows,
    the same shape of heuristic the Dynamo engine uses to trigger cache
    flushes (Section 6.1 of the paper). *)

type t
(** A parsed event stream, ready to render. *)

val of_string : string -> (t, string) result
(** Parse a whole JSON-Lines stream.  Blank lines are skipped; a
    malformed line fails the parse with its 1-based line number. *)

val of_file : string -> (t, string) result
(** {!of_string} over a file's contents; I/O errors surface as [Error]. *)

val events : t -> int
(** Total events parsed. *)

val phase_flags : t -> (string * int * int) list
(** Flagged phase-change windows as [(scheme, delay, window_seq)], in
    stream order — the windows {!render} marks with [*]. *)

val render : t -> string
(** The full plain-text report: stream overview, per-lane replay and
    Dynamo window tables (with [*] phase flags), flush/bail incident
    lists, sweep points, and recording progress — sections present only
    when the stream holds their events. *)
