module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior
module Prng = Hotpath_util.Prng

type loop_kind = {
  lk_branches : int;
  lk_bias : float;
  lk_iterations : int;
  lk_loopback : float option;
  lk_fire_period : int option;
  lk_calls : bool;
  lk_indirect : int;
  lk_phase_flip : bool;
}

let loop ?(bias = 0.9) ?(iterations = 50) ?loopback ?fire_period ?(calls = false)
    ?(indirect = 0) ?(phase_flip = false) ~branches () =
  {
    lk_branches = branches;
    lk_bias = bias;
    lk_iterations = iterations;
    lk_loopback = loopback;
    lk_fire_period = fire_period;
    lk_calls = calls;
    lk_indirect = indirect;
    lk_phase_flip = phase_flip;
  }

let micro_loop ?(fire_period = 12) () = loop ~branches:0 ~iterations:1 ~fire_period ()

type t = {
  g_name : string;
  g_loops : (int * loop_kind) list;
  g_procs : int;
  g_phase_steps : int option;
}

let total_loops t = List.fold_left (fun acc (n, _) -> acc + n) 0 t.g_loops

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.g_loops = [] then err "%s: no loops" t.g_name
  else if t.g_procs < 1 then err "%s: procs must be >= 1" t.g_name
  else
    let bad =
      List.find_opt
        (fun (count, lk) ->
           count < 1 || lk.lk_branches < 0 || lk.lk_branches > 16
           || lk.lk_bias < 0.0 || lk.lk_bias > 1.0
           || lk.lk_iterations < 1
           || (match lk.lk_loopback with
               | Some p -> p <= 0.0 || p >= 1.0
               | None -> false)
           || (match lk.lk_fire_period with Some k -> k < 2 | None -> false)
           || (lk.lk_indirect <> 0 && lk.lk_indirect < 2))
        t.g_loops
    in
    match bad with
    | Some _ -> err "%s: malformed loop kind" t.g_name
    | None -> (
        match t.g_phase_steps with
        | Some n when n < 1 -> err "%s: phase steps must be >= 1" t.g_name
        | Some _ | None -> Ok ())

(* Deferred branch-model assignments, applied once the program is frozen. *)
type pending_models = {
  mutable branch_models : (Cfg.block_id * Behavior.branch_model) list;
  mutable indirect_models : (Cfg.block_id * Behavior.indirect_model) list;
}

(* Alternating-phase bias: dominant direction flips each [steps]-block
   phase; twelve boundaries, the last model persisting. *)
let phased_bias ~steps ~p =
  let entries =
    Array.init 12 (fun k ->
        let prob = if k mod 2 = 0 then p else 1.0 -. p in
        ((k + 1) * steps, Behavior.Bias prob))
  in
  Behavior.Phased entries

let build t ~seed =
  (match validate t with
   | Ok () -> ()
   | Error e -> invalid_arg ("Generator.build: " ^ e));
  let rng = Prng.create ~seed in
  let b = Cfg.Builder.create ~name:t.g_name in
  let models = { branch_models = []; indirect_models = [] } in
  let set_branch blk m = models.branch_models <- (blk, m) :: models.branch_models in
  let set_indirect blk m =
    models.indirect_models <- (blk, m) :: models.indirect_models
  in
  let weight () = 1 + Prng.int rng ~bound:8 in
  (* Flatten the loop groups and deal them round-robin over the workers so
     every worker gets a mix of kinds. *)
  let all_loops =
    List.concat_map (fun (count, lk) -> List.init count (fun _ -> lk)) t.g_loops
  in
  let workers = Array.make t.g_procs [] in
  List.iteri
    (fun i lk -> workers.(i mod t.g_procs) <- lk :: workers.(i mod t.g_procs))
    all_loops;
  let workers = Array.map List.rev workers in
  (* Driver procedure: an endless loop calling each worker in turn.  The
     worker procs do not exist yet, so call terminators are patched at the
     end via this queue. *)
  let driver = Cfg.Builder.add_proc b ~name:"driver" in
  let d_entry = Cfg.Builder.add_block b ~proc:driver ~weight:(weight ()) in
  let d_head = Cfg.Builder.add_block b ~proc:driver ~weight:(weight ()) in
  let call_blocks =
    Array.init t.g_procs (fun _ -> Cfg.Builder.add_block b ~proc:driver ~weight:1)
  in
  let d_latch = Cfg.Builder.add_block b ~proc:driver ~weight:1 in
  let d_exit = Cfg.Builder.add_block b ~proc:driver ~weight:1 in
  Cfg.Builder.set_term b d_entry (Cfg.Jump d_head);
  Cfg.Builder.set_term b d_head
    (Cfg.Jump (if t.g_procs > 0 then call_blocks.(0) else d_latch));
  Cfg.Builder.set_term b d_latch (Cfg.Branch { taken = d_head; fallthrough = d_exit });
  set_branch d_latch (Behavior.Always true);
  Cfg.Builder.set_term b d_exit Cfg.Exit;
  (* One small shared helper, built after the workers so calls to it are
     forward and its returns backward (extra loop heads, as in real
     layouts).  Worker call sites are patched once it exists. *)
  let pending_helper_calls = ref [] in
  let pending_worker_calls = ref [] in
  let build_loop ~proc lk ~latch_patches =
    let head = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
    let cursor = ref head in
    let link src dst = Cfg.Builder.set_term b src (Cfg.Jump dst) in
    (* Diamond chain. *)
    for _ = 1 to lk.lk_branches do
      let branch = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
      let arm_f = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
      let arm_t = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
      let join = Cfg.Builder.add_block b ~proc ~weight:1 in
      link !cursor branch;
      Cfg.Builder.set_term b branch (Cfg.Branch { taken = arm_t; fallthrough = arm_f });
      link arm_f join;
      link arm_t join;
      (* Which arm dominates is chosen per diamond. *)
      let p_taken = if Prng.bool rng ~p:0.5 then lk.lk_bias else 1.0 -. lk.lk_bias in
      let model =
        match t.g_phase_steps with
        | Some steps when lk.lk_phase_flip -> phased_bias ~steps ~p:p_taken
        | Some _ | None -> Behavior.Bias p_taken
      in
      set_branch branch model;
      cursor := join
    done;
    (* Optional indirect dispatch (switch / bytecode-handler shape). *)
    if lk.lk_indirect >= 2 then begin
      let dispatch = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
      link !cursor dispatch;
      let targets =
        Array.init lk.lk_indirect (fun _ ->
            Cfg.Builder.add_block b ~proc ~weight:(weight ()))
      in
      let join = Cfg.Builder.add_block b ~proc ~weight:1 in
      Array.iter (fun target -> link target join) targets;
      Cfg.Builder.set_term b dispatch (Cfg.Indirect targets);
      (* Skewed dispatch when the loop is biased, uniform when flat. *)
      let model =
        if lk.lk_bias > 0.55 then begin
          let ratio = 1.0 -. lk.lk_bias in
          Behavior.Weighted_target
            (Array.init lk.lk_indirect (fun i -> ratio ** float_of_int i))
        end
        else Behavior.Uniform_target
      in
      set_indirect dispatch model;
      cursor := join
    end;
    (* Optional helper call. *)
    if lk.lk_calls then begin
      let call = Cfg.Builder.add_block b ~proc ~weight:1 in
      let post = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
      link !cursor call;
      pending_helper_calls := (call, post) :: !pending_helper_calls;
      cursor := post
    end;
    (* Latch: back edge to the head with mean trip count lk_iterations. *)
    let latch = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
    link !cursor latch;
    (match lk.lk_fire_period, lk.lk_loopback with
     | Some k, _ ->
       (* Deterministic micro loop: the back edge fires on every k-th
          execution, so the glue paths through micro chains repeat exactly
          instead of minting fresh signatures. *)
       set_branch latch
         (Behavior.Periodic (Array.init k (fun i -> i = k - 1)))
     | None, Some p -> set_branch latch (Behavior.Bias p)
     | None, None ->
       let p_continue = 1.0 -. (1.0 /. float_of_int lk.lk_iterations) in
       set_branch latch (Behavior.Bias p_continue));
    latch_patches := (latch, head) :: !latch_patches;
    latch
  in
  Array.iteri
    (fun i loops ->
       let proc = Cfg.Builder.add_proc b ~name:(Printf.sprintf "worker%d" i) in
       let entry = Cfg.Builder.add_block b ~proc ~weight:(weight ()) in
       pending_worker_calls := (call_blocks.(i), proc) :: !pending_worker_calls;
       let latch_patches = ref [] in
       let latches =
         List.map (fun lk -> build_loop ~proc lk ~latch_patches) loops
       in
       let ret = Cfg.Builder.add_block b ~proc ~weight:1 in
       Cfg.Builder.set_term b ret Cfg.Return;
       (* Wire entry -> first head; latch fallthroughs -> next head / ret. *)
       let heads = List.rev_map snd !latch_patches in
       (match heads with
        | first :: _ -> Cfg.Builder.set_term b entry (Cfg.Jump first)
        | [] -> Cfg.Builder.set_term b entry (Cfg.Jump ret));
       let rec wire = function
         | [] -> ()
         | [ last ] ->
           let head = List.assoc last !latch_patches in
           Cfg.Builder.set_term b last (Cfg.Branch { taken = head; fallthrough = ret })
         | l :: (next :: _ as rest) ->
           let head = List.assoc l !latch_patches in
           let next_head = List.assoc next !latch_patches in
           Cfg.Builder.set_term b l
             (Cfg.Branch { taken = head; fallthrough = next_head });
           wire rest
       in
       wire latches)
    workers;
  (* The shared helper: entry -> small diamond -> return. *)
  let helper = Cfg.Builder.add_proc b ~name:"helper" in
  let h_entry = Cfg.Builder.add_block b ~proc:helper ~weight:(weight ()) in
  let h_branch = Cfg.Builder.add_block b ~proc:helper ~weight:(weight ()) in
  (* Fallthrough arm laid out right after the branch (the convention the
     whole ISA follows and [hotpath check] enforces); the weight draws
     keep their original arm assignment so traces are unchanged. *)
  let w_taken = weight () in
  let w_fall = weight () in
  let h_b = Cfg.Builder.add_block b ~proc:helper ~weight:w_fall in
  let h_a = Cfg.Builder.add_block b ~proc:helper ~weight:w_taken in
  let h_ret = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  Cfg.Builder.set_term b h_entry (Cfg.Jump h_branch);
  Cfg.Builder.set_term b h_branch (Cfg.Branch { taken = h_a; fallthrough = h_b });
  set_branch h_branch (Behavior.Bias 0.8);
  Cfg.Builder.set_term b h_a (Cfg.Jump h_ret);
  Cfg.Builder.set_term b h_b (Cfg.Jump h_ret);
  Cfg.Builder.set_term b h_ret Cfg.Return;
  List.iter
    (fun (call, post) ->
       Cfg.Builder.set_term b call (Cfg.Call { callee = helper; return_to = post }))
    !pending_helper_calls;
  List.iter
    (fun (call, proc) ->
       (* Driver call blocks are consecutive; the block after the last one
          is the driver latch, so [call + 1] is always the continuation. *)
       Cfg.Builder.set_term b call (Cfg.Call { callee = proc; return_to = call + 1 }))
    !pending_worker_calls;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  List.iter (fun (blk, m) -> Behavior.set_branch behavior blk m) models.branch_models;
  List.iter
    (fun (blk, m) -> Behavior.set_indirect behavior blk m)
    models.indirect_models;
  (program, behavior)
