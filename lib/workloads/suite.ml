module Recorder = Hotpath_trace.Recorder
module Prng = Hotpath_util.Prng

type paper_row = {
  pr_paths : int;
  pr_flow_m : int;
  pr_hot_paths : int;
  pr_hot_flow_pct : float;
  pr_unique_heads : int;
  pr_in_dynamo : bool;
}

type benchmark = {
  b_name : string;
  b_description : string;
  b_spec : Generator.t;
  b_seed : int;
  b_flow : int;
  b_paper : paper_row;
}

let hot_threshold = 0.001

let mk name ~description ~loops ~procs ?phase_steps ~seed ~paper () =
  {
    b_name = name;
    b_description = description;
    b_spec =
      { Generator.g_name = name; g_loops = loops; g_procs = procs;
        g_phase_steps = phase_steps };
    b_seed = seed;
    b_flow = paper.pr_flow_m * 100;
    b_paper = paper;
  }

let lp = Generator.loop

let micro ?period n = (n, Generator.micro_loop ?fire_period:period ())

(* Paper rows: Tables 1 and 2; pr_in_dynamo per Figure 5. *)

let compress =
  mk "compress"
    ~description:"tight compression kernel: few loops, extreme path dominance"
    ~loops:[ (6, lp ~branches:5 ~bias:0.965 ~iterations:500 ()); micro ~period:24 400 ]
    ~procs:1 ~seed:1001
    ~paper:
      { pr_paths = 230; pr_flow_m = 3061; pr_hot_paths = 45;
        pr_hot_flow_pct = 99.6; pr_unique_heads = 143; pr_in_dynamo = true }
    ()

let gcc =
  mk "gcc"
    ~description:
      "compiler: huge flat path population, under half the flow in hot paths"
    ~loops:
      [
        (24, lp ~branches:10 ~bias:0.5 ~iterations:12 ~calls:true ());
        (100, lp ~branches:8 ~bias:0.58 ~iterations:6 ~calls:true ());
        (16, lp ~branches:6 ~bias:0.62 ~iterations:10 ~indirect:6 ());
        (9, lp ~branches:6 ~bias:0.9 ~iterations:55 ());
        micro ~period:24 3000;
      ]
    ~procs:14 ~seed:1002
    ~paper:
      { pr_paths = 36_738; pr_flow_m = 2191; pr_hot_paths = 137;
        pr_hot_flow_pct = 47.5; pr_unique_heads = 8_873; pr_in_dynamo = false }
    ()

let go =
  mk "go"
    ~description:"game search: many lukewarm paths, weak dominance"
    ~loops:
      [
        (30, lp ~branches:9 ~bias:0.55 ~iterations:9 ());
        (40, lp ~branches:7 ~bias:0.65 ~iterations:7 ~calls:true ());
        (8, lp ~branches:5 ~bias:0.9 ~iterations:75 ());
        micro ~period:16 1500;
      ]
    ~procs:8 ~seed:1003
    ~paper:
      { pr_paths = 29_629; pr_flow_m = 1214; pr_hot_paths = 172;
        pr_hot_flow_pct = 55.5; pr_unique_heads = 1_813; pr_in_dynamo = false }
    ()

let ijpeg =
  mk "ijpeg"
    ~description:
      "image codec: very wide bodies (huge static path space) but dominant \
       inner loops"
    ~loops:
      [
        (8, lp ~branches:12 ~bias:0.97 ~iterations:500 ());
        (60, lp ~branches:14 ~bias:0.55 ~iterations:3 ());
        micro ~period:4 60;
      ]
    ~procs:4 ~seed:1004
    ~paper:
      { pr_paths = 62_125; pr_flow_m = 635; pr_hot_paths = 74;
        pr_hot_flow_pct = 93.3; pr_unique_heads = 669; pr_in_dynamo = false }
    ()

let li =
  mk "li"
    ~description:"lisp interpreter: dispatch loops with skewed opcode mix"
    ~loops:
      [
        (10, lp ~branches:6 ~bias:0.92 ~iterations:100 ~indirect:8 ~calls:true ());
        (4, lp ~branches:5 ~bias:0.93 ~iterations:150 ());
        micro ~period:48 1600;
      ]
    ~procs:4 ~seed:1005
    ~paper:
      { pr_paths = 1_391; pr_flow_m = 3985; pr_hot_paths = 111;
        pr_hot_flow_pct = 93.8; pr_unique_heads = 710; pr_in_dynamo = true }
    ()

let m88ksim =
  mk "m88ksim"
    ~description:"CPU simulator: steady decode/execute loops"
    ~loops:
      [
        (10, lp ~branches:6 ~bias:0.92 ~iterations:100 ~calls:true ());
        (6, lp ~branches:5 ~bias:0.9 ~iterations:60 ());
        micro ~period:32 900;
      ]
    ~procs:4 ~seed:1006
    ~paper:
      { pr_paths = 1_426; pr_flow_m = 2014; pr_hot_paths = 107;
        pr_hot_flow_pct = 92.5; pr_unique_heads = 651; pr_in_dynamo = true }
    ()

let perl =
  mk "perl"
    ~description:"perl interpreter: opcode dispatch plus regex inner loops"
    ~loops:
      [
        (12, lp ~branches:7 ~bias:0.93 ~iterations:110 ~indirect:6 ~calls:true ());
        (6, lp ~branches:6 ~bias:0.75 ~iterations:12 ());
        micro ~period:32 1400;
      ]
    ~procs:6 ~seed:1007
    ~paper:
      { pr_paths = 2_776; pr_flow_m = 1514; pr_hot_paths = 146;
        pr_hot_flow_pct = 88.5; pr_unique_heads = 1_053; pr_in_dynamo = true }
    ()

let vortex =
  mk "vortex"
    ~description:"object database: call-heavy transaction loops"
    ~loops:
      [
        (30, lp ~branches:7 ~bias:0.95 ~iterations:140 ~calls:true ());
        (12, lp ~branches:6 ~bias:0.88 ~iterations:60 ~calls:true ());
        micro ~period:24 3200;
      ]
    ~procs:10 ~seed:1008
    ~paper:
      { pr_paths = 5_825; pr_flow_m = 3016; pr_hot_paths = 95;
        pr_hot_flow_pct = 85.8; pr_unique_heads = 3_414; pr_in_dynamo = false }
    ()

let deltablue =
  mk "deltablue"
    ~description:"incremental constraint solver: small hot core"
    ~loops:
      [
        (4, lp ~branches:5 ~bias:0.9 ~iterations:130 ~calls:true ());
        (2, lp ~branches:4 ~bias:0.92 ~iterations:200 ());
        (3, lp ~branches:6 ~bias:0.72 ~iterations:8 ());
        micro ~period:24 700;
      ]
    ~procs:2 ~seed:1009
    ~paper:
      { pr_paths = 505; pr_flow_m = 1799; pr_hot_paths = 28;
        pr_hot_flow_pct = 93.9; pr_unique_heads = 268; pr_in_dynamo = true }
    ()

let all = [ compress; gcc; go; ijpeg; li; m88ksim; perl; vortex; deltablue ]

let names = List.map (fun b -> b.b_name) all

let find name = List.find_opt (fun b -> b.b_name = name) all

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Suite.find_exn: unknown benchmark %s" name)

let dynamo_set = List.filter (fun b -> b.b_paper.pr_in_dynamo) all

let phased_demo =
  {
    Generator.g_name = "phased-demo";
    g_loops =
      [ (6, Generator.loop ~branches:6 ~bias:0.97 ~iterations:200 ~phase_flip:true ()) ];
    g_procs = 1;
    g_phase_steps = Some 300_000;
  }

let record_phased ?(max_paths = 120_000) ?(seed = 23) () =
  let program, behavior = Generator.build phased_demo ~seed in
  Recorder.record ~max_paths ~max_steps:(max_paths * 200) program behavior
    ~rng:(Prng.create ~seed:(seed + 6))

let program b = fst (Generator.build b.b_spec ~seed:b.b_seed)

let record ?(scale = 1.0) b =
  let program, behavior = Generator.build b.b_spec ~seed:b.b_seed in
  let max_paths = max 1000 (int_of_float (scale *. float_of_int b.b_flow)) in
  Recorder.record ~max_paths
    ~max_steps:(max_paths * 200)
    program behavior
    ~rng:(Prng.create ~seed:(b.b_seed * 7919))

(* Same budgets and seed derivation as [record], so the emitted stream
   serializes exactly the recording [record] would materialize. *)
let record_stream ?(scale = 1.0) ?chunk_instances ?events b ~sink =
  let program, behavior = Generator.build b.b_spec ~seed:b.b_seed in
  let max_paths = max 1000 (int_of_float (scale *. float_of_int b.b_flow)) in
  Hotpath_trace.Serialize.Stream.record ~max_paths
    ~max_steps:(max_paths * 200) ?chunk_instances ?events program behavior
    ~rng:(Prng.create ~seed:(b.b_seed * 7919))
    ~sink
