(** The benchmark suite: nine synthetic workloads standing in for the
    paper's SpecInt95 programs plus deltablue.

    Each benchmark couples a generator spec (calibrated so the recorded
    trace reproduces the *shape* of the paper's Tables 1 and 2 — relative
    path counts, hot-set sizes, hot-flow coverage, head density) with the
    paper's published numbers for paper-vs-measured reporting.

    Flow is scaled: the paper's runs execute billions of paths on a 1999
    PA-RISC testbed; [record ~scale:1.0] records [100 * Flow(M)] path
    instances (≈ 0.3–4.0 x 10^5 per benchmark), enough for every rate in
    the evaluation to stabilize while keeping the full Figure 2/3 sweep
    tractable. *)

module Recorder = Hotpath_trace.Recorder

type paper_row = {
  pr_paths : int;  (** Table 1 #Paths. *)
  pr_flow_m : int;  (** Table 1 Flow (millions). *)
  pr_hot_paths : int;  (** Table 1: #Paths of the 0.1% hot set. *)
  pr_hot_flow_pct : float;  (** Table 1 %Flow. *)
  pr_unique_heads : int;  (** Table 2 #Unique path heads. *)
  pr_in_dynamo : bool;
      (** Included in Figure 5 (Dynamo runs without bail-out). *)
}

type benchmark = {
  b_name : string;
  b_description : string;
  b_spec : Generator.t;
  b_seed : int;
  b_flow : int;  (** Path instances to record at [scale = 1.0]. *)
  b_paper : paper_row;
}

val all : benchmark list
(** In the paper's Table 1 order: compress, gcc, go, ijpeg, li, m88ksim,
    perl, vortex, deltablue. *)

val names : string list

val find : string -> benchmark option

val find_exn : string -> benchmark
(** @raise Invalid_argument for an unknown name. *)

val dynamo_set : benchmark list
(** The Figure 5 subset (no bail-out): compress, m88ksim, perl, li,
    deltablue. *)

val program : benchmark -> Hotpath_cfg.Cfg.program
(** Just the generated program (no recording) — what [hotpath check]
    and the static analyses consume.  Deterministic in [b_seed], and
    identical to the program {!record} runs. *)

val record : ?scale:float -> benchmark -> Recorder.t
(** Generate the program and record [scale * b_flow] path instances
    (default scale 1.0, minimum 1000 instances).  Deterministic in
    [b_seed]. *)

val record_stream :
  ?scale:float ->
  ?chunk_instances:int ->
  ?events:Hotpath_util.Events.sink ->
  benchmark ->
  sink:(string -> unit) ->
  Recorder.chunked_summary
(** {!record} straight to an HOTPATH3 sink
    ({!Hotpath_trace.Serialize.Stream.record}): the instance stream is
    flushed as it is produced and never materialized.  Same budgets and
    seeds as {!record}, so the emitted bytes are exactly
    [Serialize.Stream.to_string (record ~scale b)] at the same chunk
    size. *)

val hot_threshold : float
(** The paper's hot threshold: 0.001 (0.1% of total flow). *)

val phased_demo : Generator.t
(** The phase-change workload of Section 6.1's discussion: six strongly
    dominant loops whose dominant directions flip every 300k blocks.  Used
    by the phase-metrics experiment, the flush tests, and
    [examples/phase_changes.ml]. *)

val record_phased : ?max_paths:int -> ?seed:int -> unit -> Recorder.t
(** Record {!phased_demo} (defaults: 120k instances, the example's seed). *)
