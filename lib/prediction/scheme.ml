module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

module type S = sig
  type t

  val name : string

  val create : delay:int -> program:Cfg.program -> t

  val observe :
    t ->
    head:Cfg.block_id ->
    arrival:Path.head_kind ->
    path_id:int ->
    n_branches:int ->
    n_blocks:int ->
    int option

  val collect : t -> n_blocks:int -> unit

  val counter_space : t -> int

  val profiling_ops : t -> int

  val collection_ops : t -> int
end

type packed = (module S)

let name (module M : S) = M.name
