module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Freq = Hotpath_analysis.Freq

(* Zero-profiling prediction: the hot-head set is fixed at program load
   from the static frequency estimate — every head whose estimated flow
   share clears the paper's 0.1% hot threshold — and the scheme simply
   materializes the first tail that executes at each of those heads.
   Trace path ids are interning artifacts with no static meaning, so
   "rank k-paths at load time" operationally means committing, per
   statically-hot head, to whichever path first arrives there: a NET
   trip at delay 1 restricted to the statically-chosen heads, with no
   counters and no profiling operations at all.

   The prediction delay is accepted (and validated) for interface
   parity but is deliberately inert — the scheme's fig2/3 series is
   flat in tau, which is the point: it is the zero-profiling-cost
   baseline every profiled scheme must beat. *)

type t = {
  armed : (Cfg.block_id, unit) Hashtbl.t;
  mutable collection : int;
}

let name = "static"

(* Mirrors [Suite.hot_threshold]; [lib/workloads] sits above this
   library, so the constant is restated rather than imported. *)
let hot_share = 0.001

let create ~delay ~program =
  if delay < 1 then invalid_arg "Static.create: delay must be >= 1";
  let heads = Freq.ranked_heads (Freq.cached program) in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 heads in
  let armed = Hashtbl.create 256 in
  if total > 0.0 then
    List.iter
      (fun (h, f) -> if f >= hot_share *. total then Hashtbl.replace armed h ())
      heads;
  { armed; collection = 0 }

let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
  ignore n_branches;
  ignore n_blocks;
  match arrival with
  | Path.Entry | Path.Continuation -> None
  | Path.Loop_head ->
    if Hashtbl.mem t.armed head then begin
      Hashtbl.remove t.armed head;
      Some path_id
    end
    else None

(* Materializing a fragment still costs real instrumentation work, the
   same per-block breakpoint charge as NET's collector. *)
let collect t ~n_blocks = t.collection <- t.collection + n_blocks

let counter_space _ = 0

let profiling_ops _ = 0

let collection_ops t = t.collection
