module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Kselect = Hotpath_analysis.Kselect

(* net-kauto: NET's counters and trip point, with the post-trip
   collection window sized per head by the static {!Kselect} analysis
   instead of a global k.  A trip at a head whose loop statically
   supports depth k offers the tripping tail plus the next [k - 1]
   back-edge-chained tails (exactly [Net_k]'s window mechanics); heads
   whose loops are too branchy or too short-lived stay at k = 1 and
   behave as plain NET. *)

type t = {
  delay : int;
  ksel : Kselect.t;
  counters : (Cfg.block_id, int) Hashtbl.t;
  mutable remaining : int;
  mutable ops : int;
  mutable collection : int;
}

let name = "net-kauto"

let create ~delay ~program =
  if delay < 1 then invalid_arg "Net_kauto.create: delay must be >= 1";
  {
    delay;
    ksel = Kselect.cached program;
    counters = Hashtbl.create 256;
    remaining = 0;
    ops = 0;
    collection = 0;
  }

let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
  ignore n_branches;
  ignore n_blocks;
  match arrival with
  | Path.Entry | Path.Continuation ->
    t.remaining <- 0;
    None
  | Path.Loop_head ->
    t.ops <- t.ops + 1;
    let count =
      1 + Option.value ~default:0 (Hashtbl.find_opt t.counters head)
    in
    if count >= t.delay then begin
      Hashtbl.replace t.counters head 0;
      t.remaining <- Kselect.k_for t.ksel head - 1;
      Some path_id
    end
    else begin
      Hashtbl.replace t.counters head count;
      if t.remaining > 0 then begin
        t.remaining <- t.remaining - 1;
        Some path_id
      end
      else None
    end

let collect t ~n_blocks = t.collection <- t.collection + n_blocks

let counter_space t = Hashtbl.length t.counters

let profiling_ops t = t.ops

let collection_ops t = t.collection
