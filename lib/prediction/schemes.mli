(** Scheme name registry — the single parser behind every surface that
    accepts a scheme by name (CLI, serve handshake, sweeps, benches).

    Grammar: the four base names plus two k-iteration families,
    [net-k<k>] and [path-profile-k<k>], where [<k>] is a canonical
    decimal in [\[1, max_k\]] ("net-k2"; "net-k02", "net-k0x2" and
    "net-k" are rejected with a descriptive error).  Family schemes are
    memoized per [k] (see {!Net_k.make}), so equal names parse to the
    physically same module. *)

val max_k : int

val base : (string * Scheme.packed) list
(** The non-parameterized schemes, in canonical order:
    net, net-once, let, path-profile. *)

val base_names : string list

val help : string
(** One-line grammar summary for error messages and [--help] text. *)

val of_name : string -> (Scheme.packed, string) result

val of_name_exn : string -> Scheme.packed
(** @raise Failure with the same message [of_name] returns in [Error]. *)
