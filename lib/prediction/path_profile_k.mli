(** k-iteration path-profile prediction ([path-profile-k<k>]).

    Like {!Path_profile} but the counter key is the k-iteration window —
    up to [k] consecutive path instances chained by loop back-edges
    (interned by {!Hotpath_trace.Kpath}) — so a path only trips when the
    *sequence* it arrives in recurs.  The offered target is still the
    acyclic tail id.  [make 1] reduces bit-identically to
    {!Path_profile} (modulo the scheme name). *)

val make : int -> Scheme.packed
(** The scheme for a given [k], memoized: repeated calls return the
    physically same module, so kernel dispatch and registry snapshots
    stay stable.
    @raise Invalid_argument when [k < 1]. *)

val recognize : Scheme.packed -> int option
(** [Some k] iff the module is one produced by {!make}, identified by
    the physical identity of its per-[k] [create] closure (stable under
    module coercion, which copies module blocks but not value fields) —
    how {!Replay} routes to the monomorphized kernel. *)
