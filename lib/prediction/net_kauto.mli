(** [net-kauto] — NET with the k-iteration collection window sized per
    loop head by the static {!Hotpath_analysis.Kselect} analysis.

    Identical to [net-k<k>] mechanics, but each trip reads its window
    length from the tripping head's statically-selected k: deep
    low-branching loops collect multi-iteration regions, branchy or
    short-lived loops stay at k = 1.  On a program whose every head
    selects k = 1 the scheme is observation-for-observation identical
    to {!Net} (property-tested). *)

include Scheme.S
