module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

(* Shared machinery: a counter per loop head; variants differ in what they
   predict at the trip point and whether the counter re-arms. *)

type state = {
  delay : int;
  counters : (Cfg.block_id, int) Hashtbl.t;
  retired : (Cfg.block_id, unit) Hashtbl.t;  (* heads that fired (once-mode) *)
  last_tail : (Cfg.block_id, int) Hashtbl.t;  (* head -> previous path id *)
  mutable ops : int;
  mutable collection : int;
}

type variant = Next_tail | Next_tail_once | Previous_tail

let observe_variant variant t ~head ~arrival ~path_id ~n_branches ~n_blocks =
  ignore n_branches;
  ignore n_blocks;
  match arrival with
  | Path.Entry | Path.Continuation ->
    (* NET profiles only targets of backward taken transfers. *)
    None
  | Path.Loop_head ->
    if variant = Next_tail_once && Hashtbl.mem t.retired head then None
    else begin
      t.ops <- t.ops + 1;
      let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counters head) in
      if count < t.delay then begin
        Hashtbl.replace t.counters head count;
        (if variant = Previous_tail then Hashtbl.replace t.last_tail head path_id);
        None
      end
      else begin
        (* Counter trips: re-arm and predict. *)
        Hashtbl.replace t.counters head 0;
        if variant = Next_tail_once then Hashtbl.replace t.retired head ();
        (* Collection is NOT charged here: offering a tail is free, and
           the driver may drop the offer (target already predicted).  The
           breakpoint cost lands via [collect] on accepted predictions
           only. *)
        match variant with
        | Next_tail | Next_tail_once -> Some path_id
        | Previous_tail ->
          let prev = Hashtbl.find_opt t.last_tail head in
          Hashtbl.replace t.last_tail head path_id;
          (* Fall back to the current tail when the head has no history
             (its earlier tails were all predicted already). *)
          (match prev with Some p -> Some p | None -> Some path_id)
      end
    end

module Make (V : sig
    val variant : variant

    val name : string
  end) =
struct
  type t = state

  let name = V.name

  let create ~delay ~program =
    ignore program;
    if delay < 1 then invalid_arg (V.name ^ ".create: delay must be >= 1");
    {
      delay;
      counters = Hashtbl.create 256;
      retired = Hashtbl.create 64;
      last_tail = Hashtbl.create 256;
      ops = 0;
      collection = 0;
    }

  let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
    observe_variant V.variant t ~head ~arrival ~path_id ~n_branches ~n_blocks

  (* Incremental instrumentation: one breakpoint per block of the
     collected tail, charged only when the driver accepts the
     prediction. *)
  let collect t ~n_blocks = t.collection <- t.collection + n_blocks

  (* Every observed loop head keeps an entry in [counters] (tripping resets
     it to zero), so the table size is the allocated counter space. *)
  let counter_space t = Hashtbl.length t.counters

  let profiling_ops t = t.ops

  let collection_ops t = t.collection
end

include Make (struct
    let variant = Next_tail

    let name = "net"
  end)

module Net_once = Make (struct
    let variant = Next_tail_once

    let name = "net-once"
  end)

module Last_executed_tail = Make (struct
    let variant = Previous_tail

    let name = "let"
  end)
