(** k-iteration NET prediction ([net-k<k>]).

    NET's per-head trip counter, but a trip opens a window: the tripping
    tail plus the next [k - 1] back-edge-chained tails are all offered
    (an [Entry]/[Continuation] arrival closes the window early), so one
    trip selects a k-iteration hot region.  [make 1] reduces
    bit-identically to {!Net} (modulo the scheme name). *)

val make : int -> Scheme.packed
(** The scheme for a given [k], memoized: repeated calls return the
    physically same module.
    @raise Invalid_argument when [k < 1]. *)

val recognize : Scheme.packed -> int option
(** [Some k] iff the module is one produced by {!make}, identified by
    the physical identity of its per-[k] [create] closure (see
    {!Path_profile_k.recognize}). *)
