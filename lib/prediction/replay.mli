(** Replay a recorded trace through an online prediction scheme.

    The engine models a dynamic compilation system: instances of a path
    that has already been predicted execute inside the code cache and are
    {e not} observed by the scheme (no profiling cost); every other
    instance is profiled.  A prediction made at instance [i] takes effect
    for instances after [i] — the triggering instance itself is still
    profiled flow, giving the paper's [captured = freq - τ] accounting for
    path-profile-based prediction. *)

type prediction = Session.prediction = {
  target : int;  (** Predicted path id. *)
  at_instance : int;  (** Trace position where the prediction fired. *)
}
(** Shared with {!Session} — the online push API over the same walker —
    so batch and session results compare directly. *)

type outcome = Session.outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;  (** In firing order. *)
  predicted_at : int array;
      (** Per path id: the instance index at which it was predicted, or
          [max_int] if never. *)
  freq : int array;  (** Per path id: total executions (freq(p)). *)
  captured : int array;
      (** Per path id: executions strictly after its prediction — the flow
          a real system would run from the code cache. *)
  profiled_instances : int;  (** Instances observed by the scheme. *)
  captured_instances : int;  (** Sum of [captured]. *)
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

(** {1 Observability}

    Replay optionally emits one {!Hotpath_util.Events.replay_window}
    sample per [window] instances per delay lane, plus a final sample so
    the last window's cumulative fields always equal the outcome's
    totals.  Sampling is observation only: outcomes are byte-identical
    with events on and off (property-tested), the per-instance cost of a
    disabled sampler is one integer comparison, and an enabled one does
    all its work at window boundaries. *)

type events

val default_events_window : int
(** 32,768 instances — large enough that per-window emission stays well
    under 1% of replay throughput. *)

val events :
  ?window:int -> ?is_hot:(int -> bool) -> Hotpath_util.Events.sink -> events
(** [events sink] configures window sampling into [sink].  Passing the
    {!Hotpath_util.Events.null} sink is the same as passing no events at
    all — sampling is skipped entirely.  [is_hot]
    (ground-truth hot-set membership by path id) enables the cumulative
    [hits]/[noise] fields; without it they are omitted — a streamed
    replay cannot know the hot set mid-pass.
    @raise Invalid_argument when [window < 1]. *)

val run :
  ?events:events ->
  Scheme.packed ->
  delay:int ->
  Hotpath_trace.Recorder.t ->
  outcome
(** @raise Invalid_argument when [delay < 1]. *)

val default_chunk : int
(** 65,536 instances — the default chunk size for sharded replay,
    measured fastest on the net kernel (big enough to amortize seam
    bookkeeping, small enough to keep chunk-local side arrays in
    cache). *)

val run_many :
  ?events:events ->
  ?jobs:int ->
  ?chunk:int ->
  Scheme.packed ->
  delays:int list ->
  Hotpath_trace.Recorder.t ->
  outcome list
(** Multiplexed replay: one scheme state per delay, all driven through a
    {e single} traversal of the instance stream.  Returns one outcome per
    delay, in the given order, each bit-identical to the corresponding
    [run ~delay] — the scheme states are independent, so multiplexing is
    purely an amortization of the trace walk (delay sweeps drop from
    O(delays × trace) to O(trace) instance reads).

    [jobs] (default 1) parallelizes along the {e instance stream}: the
    trace is segmented into contiguous chunks of [chunk] instances
    (default {!default_chunk}), each chunk is replayed with scheme state
    carried across the seam, and per-chunk counters merge into the
    serial totals.  For the built-in NET and path-profile kernels the
    chunked engine replays from compressed per-chunk summaries (loop-head
    event positions and same-head runs) rather than re-walking raw
    instances, which is why [jobs = 4] beats [jobs = 1] even though the
    work still fans out over at most [min jobs (available domains)]
    workers ({!Hotpath_util.Pool.effective_workers} — the raw [jobs] ask
    never oversubscribes a small machine).  Results are byte-identical
    to [jobs = 1] for every job count and chunk size — the seam-carry
    protocol is property-tested [merged ≡ serial] per scheme, including
    the event stream: windows are buffered per worker and merged back
    into the exact serial emission order.  {!instance_reads} counts the
    logical traversal once ([+ length trace]) regardless of [jobs].
    When [jobs > 1] and events carry an [is_hot] closure, that closure
    is called from worker domains and must be domain-safe (the hot-set
    predicates in {!Hotpath_metrics} are pure array lookups).
    @raise Invalid_argument when any delay is [< 1], [jobs < 1] or
    [chunk < 1]. *)

(** {1 Monomorphized kernels}

    [run]/[run_many] on a packed module call the scheme through a
    first-class-module indirection per profiled instance.  {!Make}
    compiles the same multiplexed loop against a statically known scheme
    module.  For the built-in schemes ({!Net}, {!Net.Net_once},
    {!Net.Last_executed_tail}, {!Path_profile}) the packed entry points
    additionally dispatch to hand-specialized kernels that flatten the
    scheme's hashtable state into dense arrays — recognized by the
    physical identity of the packed [observe], so wrapping or re-deriving
    a scheme safely falls back to the generic loop.  The k-iteration
    families ({!Net_k}, {!Path_profile_k}) get the same treatment keyed
    on the identity of [create] instead ([observe] captures nothing
    instantiation-specific, so it is one shared closure across every k).
    All the loops are property-tested byte-identical; [bench kernel]
    measures the spread. *)

module Make (S : Scheme.S) : sig
  val run :
    ?events:events -> delay:int -> Hotpath_trace.Recorder.t -> outcome

  val run_many :
    ?events:events ->
    ?jobs:int ->
    ?chunk:int ->
    delays:int list ->
    Hotpath_trace.Recorder.t ->
    outcome list
end

val run_stream :
  ?events:events ->
  Scheme.packed ->
  delay:int ->
  Hotpath_trace.Serialize.Stream.reader ->
  (outcome, string) result
(** Streamed replay: drive the scheme from an HOTPATH3 chunk iterator
    instead of a materialized recording.  Field-by-field identical to
    [run ~delay] on the recording the stream serializes, but peak memory
    is O(paths + chunk) — the instance stream is never held.  Decode
    errors from the stream surface as [Error]; the reader is left
    positioned at the failure (poisoned).
    @raise Invalid_argument when [delay < 1]. *)

val run_many_stream :
  ?events:events ->
  ?jobs:int ->
  Scheme.packed ->
  delays:int list ->
  Hotpath_trace.Serialize.Stream.reader ->
  (outcome list, string) result
(** Multiplexed streamed replay; single traversal of the chunk stream,
    one outcome per delay, each identical to the materialized
    [run ~delay].  An empty [delays] returns [Ok []] without touching
    the reader.

    [jobs] (default 1) fans each decoded HOTPATH3 frame chunk out over
    contiguous lane groups (clamped to the domain budget, like
    {!run_many}); lane state carries across chunk seams inside its
    owning group, so results and the merged event stream are
    byte-identical at every job count, and {!instance_reads} still
    counts the stream once.
    @raise Invalid_argument when any delay is [< 1] or [jobs < 1]. *)

val run_mapped :
  ?events:events ->
  Scheme.packed ->
  delay:int ->
  Hotpath_trace.Serialize.Stream.Mapped.t ->
  (outcome, string) result
(** {!run_stream} over the zero-copy mapped reader
    ({!Hotpath_trace.Serialize.Stream.Mapped}): frames are validated and
    decoded in place out of the mapping, one instance frame at a time
    into a reused dense batch — no [Bytes] copy per frame, no per-chunk
    array allocation.  Outcomes, counter registries, and event streams
    are byte-identical to {!run_stream} on the same bytes.
    @raise Invalid_argument when [delay < 1]. *)

val run_many_mapped :
  ?events:events ->
  ?jobs:int ->
  Scheme.packed ->
  delays:int list ->
  Hotpath_trace.Serialize.Stream.Mapped.t ->
  (outcome list, string) result
(** Multiplexed {!run_mapped}; the mapped counterpart of
    {!run_many_stream}, with the same lane-group fan-out and the same
    byte-identity guarantees at every job count.  All lane groups replay
    the same shared batch concurrently (sessions only read it during a
    push), so jobs > 1 adds no decode work and no extra copies.
    @raise Invalid_argument when any delay is [< 1] or [jobs < 1]. *)

val instance_reads : unit -> int
(** Total logical instance-stream reads performed by {!run}/{!run_many}
    since the last {!reset_instance_reads} — the observable backing the
    one-pass guarantee of {!run_many} ([run_many ~delays] adds
    [length trace], not [length delays * length trace], and [?jobs]
    does not change that: sharding parallelizes the one logical
    traversal, it never multiplies it). *)

val reset_instance_reads : unit -> unit

val predicted_paths : outcome -> int list
(** Path ids predicted, ascending. *)

val pp_summary : Format.formatter -> outcome -> unit
