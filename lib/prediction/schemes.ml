(* The scheme name registry: one parser for every surface that accepts a
   scheme by name (CLI, serve handshake, sweeps, benches), so the base
   schemes and the k-iteration families stay in sync everywhere. *)

let max_k = 32

let base : (string * Scheme.packed) list =
  [
    ("net", (module Net : Scheme.S));
    ("net-once", (module Net.Net_once));
    ("let", (module Net.Last_executed_tail));
    ("path-profile", (module Path_profile));
    ("static", (module Static));
    (* The kauto names live in [base], which [of_name] consults before
       the "-k<k>" family parse — and the family's canonical-decimal
       rule would reject "auto" anyway. *)
    ("net-kauto", (module Net_kauto));
    ("path-profile-kauto", (module Path_profile_kauto));
  ]

let base_names = List.map fst base

let help =
  "net|net-once|let|path-profile|static|net-k<k>|net-kauto|path-profile-k<k>|path-profile-kauto"

(* Canonical decimal only: [int_of_string_opt] alone would admit
   "0x2", "007", "+2" — names must round-trip. *)
let parse_k ~scheme rest =
  match int_of_string_opt rest with
  | Some k when string_of_int k = rest ->
    if k >= 1 && k <= max_k then Ok k
    else
      Error
        (Printf.sprintf "scheme %s: k must be within [1, %d]" scheme max_k)
  | _ ->
    Error
      (Printf.sprintf
         "scheme %s: expected a decimal iteration count after \"-k\"" scheme)

let family ~prefix ~make name =
  let np = String.length prefix in
  if String.length name >= np && String.sub name 0 np = prefix then
    Some
      (Result.map make
         (parse_k ~scheme:name (String.sub name np (String.length name - np))))
  else None

let of_name name =
  match List.assoc_opt name base with
  | Some m -> Ok m
  | None ->
    (match family ~prefix:"net-k" ~make:Net_k.make name with
     | Some r -> r
     | None ->
       (match family ~prefix:"path-profile-k" ~make:Path_profile_k.make name with
        | Some r -> r
        | None ->
          Error (Printf.sprintf "unknown scheme %s (try %s)" name help)))

let of_name_exn name =
  match of_name name with Ok m -> m | Error msg -> failwith msg
