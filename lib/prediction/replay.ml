module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Cfg = Hotpath_cfg.Cfg
module Vec = Hotpath_util.Vec
module Events = Hotpath_util.Events
module Pool = Hotpath_util.Pool

type prediction = { target : int; at_instance : int }

type outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type events = {
  ev_sink : Events.sink;
  ev_window : int;
  ev_is_hot : (int -> bool) option;
}

(* The replay loop runs at a handful of ns per instance, so a sample
   window must amortize a ~µs JSON line over enough instances to keep
   the enabled overhead under the bench's 3% budget. *)
let default_events_window = 32_768

let events ?(window = default_events_window) ?is_hot sink =
  if window < 1 then invalid_arg "Replay.events: window must be >= 1";
  { ev_sink = sink; ev_window = window; ev_is_hot = is_hot }

(* Per-lane window sampling.  All sampling work happens at window
   boundaries — the only per-instance cost events add is one integer
   comparison against [next_sample], which is [max_int] when disabled —
   and nothing here feeds back into the replay state, so outcomes are
   byte-identical with events on and off (property-tested). *)
module Sampler = struct
  type lane = { mutable hw : int; mutable seq : int; mutable last_upto : int }

  type t = {
    ev : events;
    scheme : string;
    delays : int array;
    lanes : lane array;
    c_windows : Events.Registry.counter;
    c_instances : Events.Registry.counter;
  }

  let create ev ~scheme ~delays =
    {
      ev;
      scheme;
      delays;
      lanes = Array.map (fun _ -> { hw = 0; seq = 0; last_upto = 0 }) delays;
      c_windows = Events.Registry.counter "replay.windows";
      c_instances = Events.Registry.counter "replay.instances";
    }

  (* Cumulative hits/noise so far are read off the captured array — the
     operational definition restricted to the instances seen so far —
     rather than tracked per instance, keeping the hot loop untouched. *)
  let sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if counter_space > lane.hw then lane.hw <- counter_space;
    let hits, noise =
      match t.ev.ev_is_hot with
      | None -> (None, None)
      | Some is_hot ->
        let h = ref 0 and nz = ref 0 in
        for pid = 0 to n_paths - 1 do
          let c = captured_arr.(pid) in
          if c > 0 then if is_hot pid then h := !h + c else nz := !nz + c
        done;
        (Some !h, Some !nz)
    in
    Events.replay_window t.ev.ev_sink ~scheme:t.scheme ~delay:t.delays.(l)
      ~seq:lane.seq ~upto
      ~instances:(upto - lane.last_upto)
      ~predictions ~profiled ~captured:captured_total ~profiling_ops
      ~collection_ops ~counter_space ~counter_space_hw:lane.hw ?hits ?noise ();
    Events.Registry.incr t.c_windows;
    Events.Registry.add t.c_instances (upto - lane.last_upto);
    lane.seq <- lane.seq + 1;
    lane.last_upto <- upto

  (* The final (possibly short) window: every lane always gets at least
     one sample, and the last sample's cumulative fields equal the
     outcome's totals — the invariant the differential suite checks. *)
  let final t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if lane.last_upto < upto || lane.seq = 0 then
      sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
        ~captured_total ~counter_space ~profiling_ops ~collection_ops
end

(* Instance reads performed by [run]/[run_many], for the one-pass
   guarantee: multiplexing k delays must read the trace once, not k
   times.  Atomic because experiment fan-out replays from several
   domains.  Lane sharding trades this back deliberately: at [~jobs:j]
   each of the [min j k] shard domains walks the trace once. *)
let reads = Atomic.make 0

let instance_reads () = Atomic.get reads

let reset_instance_reads () = Atomic.set reads 0

(* A null-sink events value is "disabled": callers may thread a sink
   unconditionally and still pay nothing when it is the null one. *)
let live = function
  | Some e when Events.is_null e.ev_sink -> None
  | ev -> ev

(* ------------------------------------------------------------------ *)
(* Lane plumbing                                                       *)
(* ------------------------------------------------------------------ *)

(* A lane runner walks the trace once for a subset of the delay lanes,
   accumulating path frequencies into [freq] along the way and sampling
   through [ev]'s sink.  Both the generic functor below and the
   monomorphized kernels produce one; the sharding driver [drive] is the
   single owner of slicing, domain fan-out, event reconciliation, and
   outcome assembly. *)
type lane_result = {
  lr_predictions : prediction array;
  lr_predicted_at : int array;
  lr_captured : int array;
  lr_profiled : int;
  lr_captured_total : int;
  lr_counter_space : int;
  lr_profiling_ops : int;
  lr_collection_ops : int;
}

type lane_runner = {
  lr_scheme : string;
  lr_run :
    ev:events option ->
    lanes:int array ->
    freq:int array ->
    Recorder.t ->
    lane_result array;
}

(* Contiguous lane slices, sizes differing by at most one. *)
let shard_slices lanes shards =
  let k = Array.length lanes in
  let base = k / shards and extra = k mod shards in
  let off = ref 0 in
  Array.init shards (fun s ->
      let len = base + if s < extra then 1 else 0 in
      let slice = Array.sub lanes !off len in
      off := !off + len;
      slice)

(* Every shard's sampler emits, per window round, one line per lane in
   lane order, and all lanes across all shards hit the same window
   boundaries (same trace length, same window).  Shards hold contiguous
   lane slices, so the serial stream — round-major, lane-minor over the
   global lane order — is recovered by concatenating each round's
   per-shard groups in shard order. *)
let merge_event_lines sink slices bufs =
  let rounds =
    let k0 = Array.length slices.(0) in
    if k0 = 0 then 0 else Vec.length bufs.(0) / k0
  in
  Array.iteri
    (fun s buf ->
       if Vec.length buf <> rounds * Array.length slices.(s) then
         invalid_arg "Replay: parallel event streams out of step")
    bufs;
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun s buf ->
         let k = Array.length slices.(s) in
         for j = 0 to k - 1 do
           Events.raw sink (Vec.get buf ((round * k) + j))
         done)
      bufs
  done

let drive ?events:ev ?(jobs = 1) (runner : lane_runner) ~delays (r : Recorder.t) =
  if jobs < 1 then invalid_arg "Replay.run_many: jobs must be >= 1";
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> []
  | lanes ->
    let k = Array.length lanes in
    let n = Array.length r.Recorder.instances in
    let n_paths = Recorder.num_paths r in
    let assemble lrs freq =
      List.init k (fun l ->
          let lr = lrs.(l) in
          {
            scheme_name = runner.lr_scheme;
            delay = lanes.(l);
            total_instances = n;
            predictions = lr.lr_predictions;
            predicted_at = lr.lr_predicted_at;
            freq = (if l = 0 then freq else Array.copy freq);
            captured = lr.lr_captured;
            profiled_instances = lr.lr_profiled;
            captured_instances = lr.lr_captured_total;
            counter_space = lr.lr_counter_space;
            profiling_ops = lr.lr_profiling_ops;
            collection_ops = lr.lr_collection_ops;
          })
    in
    let shards = min jobs k in
    if shards <= 1 then begin
      let freq = Array.make n_paths 0 in
      assemble (runner.lr_run ~ev ~lanes ~freq r) freq
    end
    else begin
      let slices = shard_slices lanes shards in
      let bufs = Array.map (fun _ -> Vec.create ()) slices in
      let shard s =
        (* Sampling goes to a per-domain line buffer, merged after the
           join; each shard accumulates its own (identical) freq. *)
        let ev_s =
          Option.map
            (fun e -> { e with ev_sink = Events.of_fn (Vec.push bufs.(s)) })
            ev
        in
        let freq = Array.make n_paths 0 in
        (runner.lr_run ~ev:ev_s ~lanes:slices.(s) ~freq r, freq)
      in
      (* Lane states are independent, so sharding them over domains is a
         pure wall-time play.  [~cap:false]: the shard count is the
         caller's explicit jobs choice, and determinism across job counts
         must be exercisable even on single-core machines. *)
      let results =
        Pool.map_array ~cap:false ~jobs:shards shard (Array.init shards Fun.id)
      in
      Option.iter (fun e -> merge_event_lines e.ev_sink slices bufs) ev;
      let lrs = Array.concat (Array.to_list (Array.map fst results)) in
      assemble lrs (snd results.(0))
    end

(* ------------------------------------------------------------------ *)
(* Generic kernel: one compilation of the multiplexed loop per scheme   *)
(* ------------------------------------------------------------------ *)

module Make (S : Scheme.S) = struct
  let run_lanes ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads
    and branches = d.Recorder.d_branches
    and blocks = d.Recorder.d_blocks in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map (fun delay -> S.create ~delay ~program:r.Recorder.program) lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    ignore (Atomic.fetch_and_add reads n);
    for i = 0 to n - 1 do
      let pid = instances.(i) in
      freq.(pid) <- freq.(pid) + 1;
      let head = heads.(pid)
      and n_branches = branches.(pid)
      and n_blocks = blocks.(pid)
      and arrival = arrivals.(i) in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if pa.(pid) < i then begin
          let cap = captured.(l) in
          cap.(pid) <- cap.(pid) + 1;
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          match
            S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
              ~n_blocks
          with
          | Some target when pa.(target) = max_int ->
            pa.(target) <- i;
            S.collect states.(l) ~n_blocks:blocks.(target);
            Vec.push predictions.(l) { target; at_instance = i }
          | Some _ | None -> ()
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
    done;
    sample_lanes Sampler.final n;
    Array.init k (fun l ->
        {
          lr_predictions = Vec.to_array predictions.(l);
          lr_predicted_at = predicted_at.(l);
          lr_captured = captured.(l);
          lr_profiled = profiled.(l);
          lr_captured_total = captured_total.(l);
          lr_counter_space = S.counter_space states.(l);
          lr_profiling_ops = S.profiling_ops states.(l);
          lr_collection_ops = S.collection_ops states.(l);
        })

  let runner = { lr_scheme = S.name; lr_run = run_lanes }

  let run_many ?events ?jobs ~delays r = drive ?events ?jobs runner ~delays r

  let run ?events ~delay r =
    match run_many ?events ~delays:[ delay ] r with
    | [ o ] -> o
    | _ -> assert false
end

(* ------------------------------------------------------------------ *)
(* Monomorphized kernels for the built-in schemes                      *)
(* ------------------------------------------------------------------ *)

(* The generic loop pays one module-indirected call per profiled
   instance per lane, and the built-in schemes keep their state in
   hashtables keyed by dense integer ids (block ids for NET, path ids
   for path-profile).  The kernels inline the scheme logic into the loop
   and flatten each hashtable into a plain array over those ids —
   behaviourally identical (property-tested byte-identical against the
   generic loop), with no call, no hashing, and no option allocation on
   the per-instance path.  Without flambda this data-structure
   specialization, not functor inlining, is where the kernel speedup
   comes from.

   The [Array.unsafe_*] accesses rely on recording-time validation:
   every instance id is a table path and every path head a program
   block, so [pid < n_paths] and [head < n_blocks] always hold. *)

module Net_kernel = struct
  type variant = Rearm | Once | Prev

  (* Net.state with the head-keyed hashtables flattened: counts.(h) < 0
     means "no counter yet" (hashtable absence), last_tail.(h) < 0 "no
     previous tail".  [seen] tracks counters ever allocated — NET's
     counter space. *)
  type lane = {
    delay : int;
    counts : int array;
    mutable seen : int;
    retired : bool array;
    last_tail : int array;
    mutable ops : int;
    mutable collection : int;
  }

  let make_lane variant ~n_blocks ~delay =
    {
      delay;
      counts = Array.make n_blocks (-1);
      seen = 0;
      retired = (if variant = Once then Array.make n_blocks false else [||]);
      last_tail = (if variant = Prev then Array.make n_blocks (-1) else [||]);
      ops = 0;
      collection = 0;
    }

  let run_lanes variant scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let n_blocks = Array.length r.Recorder.program.Cfg.blocks in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads and blocks = d.Recorder.d_blocks in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map (fun delay -> make_lane variant ~n_blocks ~delay) lanes
    in
    let v_once = variant = Once and v_prev = variant = Prev in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:st.seen ~profiling_ops:st.ops
            ~collection_ops:st.collection
        done
    in
    ignore (Atomic.fetch_and_add reads n);
    for i = 0 to n - 1 do
      let pid = Array.unsafe_get instances i in
      Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
      let is_loop_head =
        match Array.unsafe_get arrivals i with
        | Path.Loop_head -> true
        | Path.Entry | Path.Continuation -> false
      in
      let head = Array.unsafe_get heads pid in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if Array.unsafe_get pa pid < i then begin
          let cap = captured.(l) in
          Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          (* NET profiles only targets of backward taken transfers. *)
          if is_loop_head then begin
            let st = states.(l) in
            if not (v_once && Array.unsafe_get st.retired head) then begin
              st.ops <- st.ops + 1;
              let c0 = Array.unsafe_get st.counts head in
              let count =
                if c0 < 0 then begin
                  st.seen <- st.seen + 1;
                  1
                end
                else c0 + 1
              in
              if count < st.delay then begin
                Array.unsafe_set st.counts head count;
                if v_prev then Array.unsafe_set st.last_tail head pid
              end
              else begin
                (* Counter trips: re-arm and predict. *)
                Array.unsafe_set st.counts head 0;
                if v_once then Array.unsafe_set st.retired head true;
                let target =
                  if v_prev then begin
                    let prev = Array.unsafe_get st.last_tail head in
                    Array.unsafe_set st.last_tail head pid;
                    (* Fall back to the current tail when the head has no
                       history. *)
                    if prev >= 0 then prev else pid
                  end
                  else pid
                in
                if Array.unsafe_get pa target = max_int then begin
                  Array.unsafe_set pa target i;
                  (* Incremental instrumentation: one breakpoint per
                     block, charged on accepted predictions only. *)
                  st.collection <-
                    st.collection + Array.unsafe_get blocks target;
                  Vec.push predictions.(l) { target; at_instance = i }
                end
              end
            end
          end
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
    done;
    sample_lanes Sampler.final n;
    Array.init k (fun l ->
        let st = states.(l) in
        {
          lr_predictions = Vec.to_array predictions.(l);
          lr_predicted_at = predicted_at.(l);
          lr_captured = captured.(l);
          lr_profiled = profiled.(l);
          lr_captured_total = captured_total.(l);
          lr_counter_space = st.seen;
          lr_profiling_ops = st.ops;
          lr_collection_ops = st.collection;
        })

  let runner variant scheme =
    { lr_scheme = scheme; lr_run = run_lanes variant scheme }
end

module Path_profile_kernel = struct
  (* Path_profile.t with the path-id-keyed counter table flattened;
     absence and a zero count coincide, so [seen] (counter space) ticks
     on the 0 -> 1 transition. *)
  type lane = {
    delay : int;
    counts : int array;
    mutable seen : int;
    mutable ops : int;
  }

  let run_lanes scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let branches = d.Recorder.d_branches in
    let states =
      Array.map
        (fun delay ->
           { delay; counts = Array.make n_paths 0; seen = 0; ops = 0 })
        lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:st.seen ~profiling_ops:st.ops ~collection_ops:0
        done
    in
    ignore (Atomic.fetch_and_add reads n);
    for i = 0 to n - 1 do
      let pid = Array.unsafe_get instances i in
      Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
      let n_branches = Array.unsafe_get branches pid in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if Array.unsafe_get pa pid < i then begin
          let cap = captured.(l) in
          Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          let st = states.(l) in
          (* Bit tracing: one shift per branch on the path, one table
             update. *)
          st.ops <- st.ops + n_branches + 1;
          let count = Array.unsafe_get st.counts pid + 1 in
          Array.unsafe_set st.counts pid count;
          if count = 1 then st.seen <- st.seen + 1;
          (* [>=] rather than [=]: a counter already past the threshold
             (code-cache flush scenarios) must re-predict immediately.
             Collection is free — path-profile already holds the path. *)
          if count >= st.delay && Array.unsafe_get pa pid = max_int then begin
            Array.unsafe_set pa pid i;
            Vec.push predictions.(l) { target = pid; at_instance = i }
          end
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
    done;
    sample_lanes Sampler.final n;
    Array.init k (fun l ->
        let st = states.(l) in
        {
          lr_predictions = Vec.to_array predictions.(l);
          lr_predicted_at = predicted_at.(l);
          lr_captured = captured.(l);
          lr_profiled = profiled.(l);
          lr_captured_total = captured_total.(l);
          lr_counter_space = st.seen;
          lr_profiling_ops = st.ops;
          lr_collection_ops = 0;
        })

  let runner scheme = { lr_scheme = scheme; lr_run = run_lanes scheme }
end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* A packed module is recognized as a built-in by the physical identity
   of its [observe] closure — allocated once at scheme-module init and
   preserved by signature coercions, which copy module blocks but never
   wrap regular value fields.  [Obj.repr] only erases the state-type
   difference for the pointer comparison; nothing is read through it.
   Unrecognized schemes (including look-alikes that merely reuse a
   built-in's name) fall back to the generic kernel. *)
let same_fn f g = Obj.repr f == Obj.repr g

let builtin_runner (module S : Scheme.S) =
  if same_fn S.observe Net.observe then
    Some (Net_kernel.runner Net_kernel.Rearm S.name)
  else if same_fn S.observe Net.Net_once.observe then
    Some (Net_kernel.runner Net_kernel.Once S.name)
  else if same_fn S.observe Net.Last_executed_tail.observe then
    Some (Net_kernel.runner Net_kernel.Prev S.name)
  else if same_fn S.observe Path_profile.observe then
    Some (Path_profile_kernel.runner S.name)
  else None

let run_many ?events ?jobs (module S : Scheme.S) ~delays (r : Recorder.t) =
  match builtin_runner (module S) with
  | Some runner ->
    (* The kernels do not re-validate delays; keep each scheme's own
       validation (and exception message) for the invalid ones. *)
    List.iter
      (fun d ->
         if d < 1 then ignore (S.create ~delay:d ~program:r.Recorder.program))
      delays;
    drive ?events ?jobs runner ~delays r
  | None ->
    let module M = Make (S) in
    M.run_many ?events ?jobs ~delays r

let run ?events scheme ~delay r =
  match run_many ?events scheme ~delays:[ delay ] r with
  | [ o ] -> o
  | _ -> assert false

(* Streamed replay: the same per-instance body as [run_many], driven by a
   chunk iterator instead of the materialized arrays.  Per-path state
   (descriptors, freq, predicted_at, captured) grows with the path table
   as the stream declares paths; nothing is ever O(trace).  Schemes only
   predict path ids they have observed, so every target is already
   declared by the time it is predicted. *)
module Stream = Hotpath_trace.Serialize.Stream

let run_many_stream ?events:ev (module S : Scheme.S) ~delays rd =
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> Ok []
  | lanes ->
    let k = Array.length lanes in
    let program = Stream.program rd in
    let table = Stream.table rd in
    let states = Array.map (fun delay -> S.create ~delay ~program) lanes in
    let capacity = ref 0 in
    let heads = ref [||]
    and branches = ref [||]
    and blocks = ref [||]
    and freq = ref [||] in
    let predicted_at = Array.init k (fun _ -> ref [||]) in
    let captured = Array.init k (fun _ -> ref [||]) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let synced = ref 0 in
    let grow arr n default =
      let old = !arr in
      let a = Array.make n default in
      Array.blit old 0 a 0 (Array.length old);
      arr := a
    in
    (* Extend per-path state to cover every path declared so far. *)
    let sync () =
      let np = Path_table.size table in
      if np > !synced then begin
        if np > !capacity then begin
          let n = max np (max 64 (2 * !capacity)) in
          grow heads n 0;
          grow branches n 0;
          grow blocks n 0;
          grow freq n 0;
          Array.iter (fun r -> grow r n max_int) predicted_at;
          Array.iter (fun r -> grow r n 0) captured;
          capacity := n
        end;
        for id = !synced to np - 1 do
          let p = Path_table.path table id in
          !heads.(id) <- Path.head p;
          !branches.(id) <- p.Path.n_branches;
          !blocks.(id) <- Array.length p.Path.blocks
        done;
        synced := np
      end
    in
    let total = ref 0 in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          f sm l ~upto ~n_paths:!synced ~captured_arr:!(captured.(l))
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    let rec consume () =
      match Stream.next rd with
      | Error _ as e -> e
      | Ok None -> Ok ()
      | Ok (Some chunk) ->
        sync ();
        let ids = chunk.Stream.ids in
        let arrs = chunk.Stream.arrivals in
        let n = Array.length ids in
        ignore (Atomic.fetch_and_add reads n);
        let heads = !heads
        and branches = !branches
        and blocks = !blocks
        and freq = !freq in
        for j = 0 to n - 1 do
          let pid = ids.(j) in
          let i = !total + j in
          freq.(pid) <- freq.(pid) + 1;
          let head = heads.(pid)
          and n_branches = branches.(pid)
          and n_blocks = blocks.(pid)
          and arrival = Recorder.arrival_of_code (Bytes.get arrs j) in
          for l = 0 to k - 1 do
            let pa = !(predicted_at.(l)) in
            if pa.(pid) < i then begin
              let cap = !(captured.(l)) in
              cap.(pid) <- cap.(pid) + 1;
              captured_total.(l) <- captured_total.(l) + 1
            end
            else begin
              profiled.(l) <- profiled.(l) + 1;
              match
                S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
                  ~n_blocks
              with
              | Some target when pa.(target) = max_int ->
                pa.(target) <- i;
                S.collect states.(l) ~n_blocks:blocks.(target);
                Vec.push predictions.(l) { target; at_instance = i }
              | Some _ | None -> ()
            end
          done;
          if i + 1 >= !next_sample then begin
            sample_lanes Sampler.sample (i + 1);
            next_sample := !next_sample + (Option.get ev).ev_window
          end
        done;
        total := !total + n;
        consume ()
    in
    (match consume () with
     | Error _ as e -> e
     | Ok () ->
       sync ();
       sample_lanes Sampler.final !total;
       let np = Path_table.size table in
       Ok
         (List.init k (fun l ->
              {
                scheme_name = S.name;
                delay = lanes.(l);
                total_instances = !total;
                predictions = Vec.to_array predictions.(l);
                predicted_at = Array.sub !(predicted_at.(l)) 0 np;
                freq = Array.sub !freq 0 np;
                captured = Array.sub !(captured.(l)) 0 np;
                profiled_instances = profiled.(l);
                captured_instances = captured_total.(l);
                counter_space = S.counter_space states.(l);
                profiling_ops = S.profiling_ops states.(l);
                collection_ops = S.collection_ops states.(l);
              })))

let run_stream ?events scheme ~delay rd =
  match run_many_stream ?events scheme ~delays:[ delay ] rd with
  | Error _ as e -> e
  | Ok [ o ] -> Ok o
  | Ok _ -> assert false

let predicted_paths o =
  Array.to_list o.predictions
  |> List.map (fun p -> p.target)
  |> List.sort Int.compare

let pp_summary ppf o =
  Format.fprintf ppf
    "@[<h>%s(delay=%d): instances=%d predicted=%d profiled=%d captured=%d \
     counters=%d ops=%d collect=%d@]"
    o.scheme_name o.delay o.total_instances
    (Array.length o.predictions)
    o.profiled_instances o.captured_instances o.counter_space o.profiling_ops
    o.collection_ops
