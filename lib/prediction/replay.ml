module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Batch = Hotpath_trace.Batch
module Cfg = Hotpath_cfg.Cfg
module Vec = Hotpath_util.Vec
module Events = Hotpath_util.Events
module Pool = Hotpath_util.Pool

(* The shared per-lane replay vocabulary — prediction/outcome records,
   events configuration, the window sampler — lives in [Session], whose
   online push API is the primitive this batch engine drives.  The
   equations re-export the records so existing field accesses compile
   against either module. *)

type prediction = Session.prediction = { target : int; at_instance : int }

type outcome = Session.outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type events = Session.events = {
  ev_sink : Events.sink;
  ev_window : int;
  ev_is_hot : (int -> bool) option;
}

let default_events_window = Session.default_events_window

let events = Session.events

module Sampler = Session.Sampler

(* Logical instance-stream reads performed by [run]/[run_many], for the
   one-pass guarantee: multiplexing k delays must read the trace once,
   not k times.  Atomic because experiment fan-out replays from several
   domains.  The count is per logical traversal and independent of
   [?jobs]: a chunk-sharded run still consumes the stream once (phase A
   reads each chunk exactly once; lane groups replay cache-resident
   chunk buffers, not the stream). *)
let reads = Atomic.make 0

let instance_reads () = Atomic.get reads

let reset_instance_reads () = Atomic.set reads 0

let live = Session.live

(* ------------------------------------------------------------------ *)
(* Lane plumbing                                                       *)
(* ------------------------------------------------------------------ *)

(* A lane runner replays the instance stream for a subset of the delay
   lanes, accumulating path frequencies into [freq] along the way and
   sampling through [ev]'s sink.  Both the generic functor below and the
   monomorphized kernels produce one; the sharding driver [drive] is the
   single owner of chunking, domain fan-out, event reconciliation, and
   outcome assembly. *)
type lane_result = {
  lr_predictions : prediction array;
  lr_predicted_at : int array;
  lr_captured : int array;
  lr_profiled : int;
  lr_captured_total : int;
  lr_counter_space : int;
  lr_profiling_ops : int;
  lr_collection_ops : int;
}

(* A chunk walker owns the full replay state for its lanes and replays
   instance-stream chunks [lo, hi) in ascending order.  All state — lane
   counters, predicted-at marks, sampler cursors — carries across calls,
   so walking [0, n) in one call or in many contiguous chunks is the
   same computation; the chunk boundary is pure loop tiling here.
   [cw_finish] emits the final event samples and packages the results.

   [cw_walk_batch], when present, is the same walk over a pre-decoded
   dense {!Batch.t} whose instance 0 sits at global index [base]: the
   driver decodes each chunk once (ids, widened arrival codes, gathered
   per-path descriptors) and every lane group replays the cache-resident
   batch instead of re-reading the recording — the compressed-chunk
   trick the NET/path-profile fast engines use, generalized to walkers
   whose scheme state is opaque.  Walkers without batch support (the
   monomorphized kernels, which either have a fast engine or flatten
   their own state) leave it [None]. *)
type chunk_walker = {
  cw_walk : lo:int -> hi:int -> unit;
  cw_walk_batch : (Batch.t -> base:int -> unit) option;
  cw_finish : unit -> lane_result array;
}

(* Built-in kernels whose per-lane state is dense and seam-mergeable get
   the compressed stream-sharded engine below.  [Last_executed_tail] is
   the exception: at a trip it predicts a path other than the tripping
   one, and captured accounting then needs that other path's occurrence
   count at the trip index, which the compressed phase-A stream does not
   carry — it replays through the chunked per-instance walker instead. *)
type fast = Fast_net_rearm | Fast_net_once | Fast_pp

type lane_runner = {
  lr_scheme : string;
  lr_make :
    ev:events option ->
    lanes:int array ->
    freq:int array ->
    Recorder.t ->
    chunk_walker;
  lr_fast : fast option;
}

(* Contiguous lane slices, sizes differing by at most one. *)
let shard_slices lanes shards =
  let k = Array.length lanes in
  let base = k / shards and extra = k mod shards in
  let off = ref 0 in
  Array.init shards (fun s ->
      let len = base + if s < extra then 1 else 0 in
      let slice = Array.sub lanes !off len in
      off := !off + len;
      slice)

(* Every shard's sampler emits, per window round, one line per lane in
   lane order, and all lanes across all shards hit the same window
   boundaries (same trace length, same window).  Shards hold contiguous
   lane slices, so the serial stream — round-major, lane-minor over the
   global lane order — is recovered by concatenating each round's
   per-shard groups in shard order. *)
let merge_event_lines sink slices bufs =
  let rounds =
    let k0 = Array.length slices.(0) in
    if k0 = 0 then 0 else Vec.length bufs.(0) / k0
  in
  Array.iteri
    (fun s buf ->
       if Vec.length buf <> rounds * Array.length slices.(s) then
         invalid_arg "Replay: parallel event streams out of step")
    bufs;
  for round = 0 to rounds - 1 do
    Array.iteri
      (fun s buf ->
         let k = Array.length slices.(s) in
         for j = 0 to k - 1 do
           Events.raw sink (Vec.get buf ((round * k) + j))
         done)
      bufs
  done

(* ------------------------------------------------------------------ *)
(* Stream-sharded fast engines                                         *)
(* ------------------------------------------------------------------ *)

(* [drive] used to shard the *delay lanes*: each of [min jobs k] domains
   re-walked the entire trace for a contiguous lane slice, so jobs > 1
   multiplied total work by the shard count and wall time *grew* with
   jobs whenever domains outnumbered cores (BENCH_replay.json recorded
   the net kernel falling from 43.3M instances/s at jobs=1 to 31.7M at
   jobs=4).  The engines below shard the *instance stream* instead:

   - Phase A walks the stream exactly once, compressing it — for NET,
     into the recording-level loop index ([Recorder.loop_index]: the
     loop-head event stream as trace index + occurrence count of the
     event's own path, grouped into maximal same-path runs, built once
     per recording and cached); for path-profile, into per-chunk
     occurrence-threshold trigger buffers.  Phase A is the only
     consumer of the raw trace and the only writer of [freq] (for NET,
     [freq] is a blit of the index's final counts).
   - Phase C replays every delay lane against the compressed buffers:
     O(1) per run per lane for NET (a run either skips — its path is
     already predicted — or advances one head counter by the run length
     with at most one trip inside), O(1) per trigger for path-profile.
     Lanes are independent, so phase C fans contiguous lane groups over
     pool workers, each group replaying the same cache-resident buffers.

   The chunk-seam carry protocol is what makes chunking invisible: head
   counters, predicted-at marks and occurrence bases live in per-lane
   arrays that persist across chunks, and a run split by a chunk
   boundary is simply two shorter runs advancing the same counter — the
   automaton never relies on run maximality (property-tested
   bit-identical to serial for adversarial chunk sizes, 1 included).

   Captured flow needs no per-instance work at all: at an accepted
   prediction of [target] at instance [i] the engine stores
   occ(target, <= i) as the capture base, and at the end
   captured(target) = freq(target) - base.  This closed form is exact
   because a predicted path's later instances are captured by
   definition, and for these kernels the predicted path is the tripping
   path itself, whose occurrence count phase A already carries.

   Per-chunk buffers are reused and sized to the chunk, so phase C reads
   cache-resident data where the lane-sharded loops streamed the whole
   trace from memory once per shard — which is why jobs > 1 beats the
   fused serial kernel even on a single core: it does strictly less
   work per lane, not merely the same work elsewhere. *)
module Fast = struct
  let lane_groups k workers =
    shard_slices (Array.init k Fun.id) (max 1 (min workers k))

  (* Fan phase C over lane groups.  The per-chunk pool teardown costs a
     domain spawn per worker per chunk — noise at the default chunk size
     — and the single-group case (1-core machines included) runs inline
     with no domain machinery at all. *)
  let run_groups groups process =
    match Array.length groups with
    | 1 -> process groups.(0)
    | ng -> ignore (Pool.map_array ~jobs:ng process groups)

  let net variant ~lanes ~chunk:_ ~workers ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let n_blocks = Array.length r.Recorder.program.Cfg.blocks in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads and blocks = d.Recorder.d_blocks in
    let n = Array.length r.Recorder.instances in
    let v_once = variant = Fast_net_once in
    (* Phase A is the recording-level loop index: the loop-head event
       stream grouped into maximal same-path runs, plus final
       frequencies — built once per recording ([Recorder.loop_index]
       caches it) and shared by every lane group, every delay set, and
       every subsequent replay of the same recording.  A maximal run is
       just the chunk-truncated runs of the old per-chunk phase A
       merged: splitting a run anywhere yields two shorter runs
       advancing the same carried counter, so phase C is bit-identical
       on either form and the chunk loop disappears entirely. *)
    let li = Recorder.loop_index r in
    let ev_idx = li.Recorder.li_idx in
    let ev_occ = li.Recorder.li_occ in
    let run_pid = li.Recorder.li_run_pid in
    let run_off = li.Recorder.li_run_off in
    let run_len = li.Recorder.li_run_len in
    Array.blit li.Recorder.li_freq 0 freq 0 n_paths;
    let nr = Array.length run_pid in
    (* Per-lane state. *)
    let pa = Array.init k (fun _ -> Array.make n_paths max_int) in
    let cap_base = Array.init k (fun _ -> Array.make n_paths 0) in
    let counts = Array.init k (fun _ -> Array.make n_blocks (-1)) in
    let retired =
      Array.init k (fun _ -> if v_once then Array.make n_blocks false else [||])
    in
    let seen = Array.make k 0 in
    let ops = Array.make k 0 in
    let coll = Array.make k 0 in
    let preds = Array.init k (fun _ -> Vec.create ()) in
    let groups = lane_groups k workers in
    (* One streaming pass over the run arrays, lanes inner.  Run-outer
       beats lane-outer here: the run arrays are tens of megabytes on a
       full-scale trace and stream through exactly once this way (each
       lane pass of the lane-outer shape would re-stream them, and
       memory bandwidth — not the per-run arithmetic — is the binding
       constraint), while the per-lane counter state is small enough to
       stay cache-resident across the inner loop. *)
    let process_group g =
      (* Hot closure captures into locals (see Net_kernel.make_walker). *)
      let run_pid = Sys.opaque_identity run_pid
      and run_off = Sys.opaque_identity run_off
      and run_len = Sys.opaque_identity run_len
      and ev_idx = Sys.opaque_identity ev_idx
      and ev_occ = Sys.opaque_identity ev_occ
      and heads = Sys.opaque_identity heads
      and blocks = Sys.opaque_identity blocks
      and lanes = Sys.opaque_identity lanes
      and pa = Sys.opaque_identity pa
      and cap_base = Sys.opaque_identity cap_base
      and counts = Sys.opaque_identity counts
      and retired = Sys.opaque_identity retired
      and seen = Sys.opaque_identity seen
      and ops = Sys.opaque_identity ops
      and coll = Sys.opaque_identity coll
      and preds = Sys.opaque_identity preds
      and v_once = Sys.opaque_identity v_once in
      let gk = Array.length g in
      for ri = 0 to nr - 1 do
        let pid = Array.unsafe_get run_pid ri in
        let off = Array.unsafe_get run_off ri in
        let len = Array.unsafe_get run_len ri in
        let h = Array.unsafe_get heads pid in
        for j = 0 to gk - 1 do
          let l = Array.unsafe_get g j in
          let pal = Array.unsafe_get pa l in
          (* Predicted path => the whole run is captured flow: skip. *)
          if Array.unsafe_get pal pid = max_int then
            if not (v_once && Array.unsafe_get (Array.unsafe_get retired l) h)
            then begin
              let cl = Array.unsafe_get counts l in
              let c0 = Array.unsafe_get cl h in
              let c0 =
                if c0 < 0 then begin
                  Array.unsafe_set seen l (Array.unsafe_get seen l + 1);
                  0
                end
                else c0
              in
              let delay = Array.unsafe_get lanes l in
              if c0 + len < delay then begin
                Array.unsafe_set cl h (c0 + len);
                Array.unsafe_set ops l (Array.unsafe_get ops l + len)
              end
              else begin
                (* The counter trips at the run's [delay - c0]-th event;
                   everything after that event is captured flow of the
                   now-predicted path, so the run finishes in O(1). *)
                let e = delay - c0 in
                Array.unsafe_set ops l (Array.unsafe_get ops l + e);
                Array.unsafe_set cl h 0;
                if v_once then
                  Array.unsafe_set (Array.unsafe_get retired l) h true;
                let at = Array.unsafe_get ev_idx (off + e - 1) in
                Array.unsafe_set pal pid at;
                Array.unsafe_set (Array.unsafe_get cap_base l) pid
                  (Array.unsafe_get ev_occ (off + e - 1));
                Array.unsafe_set coll l
                  (Array.unsafe_get coll l + Array.unsafe_get blocks pid);
                Vec.push
                  (Array.unsafe_get preds l)
                  { target = pid; at_instance = at }
              end
            end
        done
      done
    in
    process_group |> run_groups groups;
    Array.init k (fun l ->
        let captured = Array.make n_paths 0 in
        let pal = pa.(l) and cb = cap_base.(l) in
        let total = ref 0 in
        for pid = 0 to n_paths - 1 do
          if Array.unsafe_get pal pid <> max_int then begin
            let c = Array.unsafe_get freq pid - Array.unsafe_get cb pid in
            Array.unsafe_set captured pid c;
            total := !total + c
          end
        done;
        {
          lr_predictions = Vec.to_array preds.(l);
          lr_predicted_at = pal;
          lr_captured = captured;
          lr_profiled = n - !total;
          lr_captured_total = !total;
          lr_counter_space = seen.(l);
          lr_profiling_ops = ops.(l);
          lr_collection_ops = coll.(l);
        })

  (* Path-profile predicts a path at exactly its [delay]-th profiled
     occurrence (its first [min freq delay] occurrences are profiled,
     the rest captured), so phase A only records threshold crossings —
     (path, occurrence, index) triggers — and everything else is closed
     form over the final [freq]. *)
  let path_profile ~lanes ~chunk ~workers ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let branches = d.Recorder.d_branches in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let csz = max 1 (min chunk n) in
    (* Occurrence counts never exceed n, so delays beyond n can never
       trigger and need no slot in the membership table. *)
    let cap = min (Array.fold_left max 1 lanes) n in
    let is_delay = Array.make (cap + 1) false in
    Array.iter (fun dl -> if dl >= 1 && dl <= cap then is_delay.(dl) <- true) lanes;
    let tr_pid = Array.make csz 0 in
    let tr_occ = Array.make csz 0 in
    let tr_idx = Array.make csz 0 in
    let pa = Array.init k (fun _ -> Array.make n_paths max_int) in
    let preds = Array.init k (fun _ -> Vec.create ()) in
    let groups = lane_groups k workers in
    let n_triggers = ref 0 in
    let process_group g =
      (* Hot closure captures into locals (see Net_kernel.make_walker). *)
      let tr_pid = Sys.opaque_identity tr_pid
      and tr_occ = Sys.opaque_identity tr_occ
      and tr_idx = Sys.opaque_identity tr_idx in
      let nt = !n_triggers in
      Array.iter
        (fun l ->
           let delay = lanes.(l) in
           let pal = pa.(l) and pr = preds.(l) in
           for t = 0 to nt - 1 do
             if Array.unsafe_get tr_occ t = delay then begin
               let pid = Array.unsafe_get tr_pid t in
               let at = Array.unsafe_get tr_idx t in
               Array.unsafe_set pal pid at;
               Vec.push pr { target = pid; at_instance = at }
             end
           done)
        g
    in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + csz) in
      let nt = ref 0 in
      for i = !lo to hi - 1 do
        let pid = Array.unsafe_get instances i in
        let f = Array.unsafe_get freq pid + 1 in
        Array.unsafe_set freq pid f;
        if f <= cap && Array.unsafe_get is_delay f then begin
          let t = !nt in
          Array.unsafe_set tr_pid t pid;
          Array.unsafe_set tr_occ t f;
          Array.unsafe_set tr_idx t i;
          nt := t + 1
        end
      done;
      n_triggers := !nt;
      process_group |> run_groups groups;
      lo := hi
    done;
    let seen = ref 0 in
    for pid = 0 to n_paths - 1 do
      if freq.(pid) > 0 then incr seen
    done;
    let seen = !seen in
    Array.init k (fun l ->
        let delay = lanes.(l) in
        let captured = Array.make n_paths 0 in
        let pal = pa.(l) in
        let total = ref 0 and ops = ref 0 in
        for pid = 0 to n_paths - 1 do
          let f = Array.unsafe_get freq pid in
          let profiled_occ = if f < delay then f else delay in
          ops := !ops + (profiled_occ * (Array.unsafe_get branches pid + 1));
          if Array.unsafe_get pal pid <> max_int then begin
            let c = f - delay in
            Array.unsafe_set captured pid c;
            total := !total + c
          end
        done;
        {
          lr_predictions = Vec.to_array preds.(l);
          lr_predicted_at = pal;
          lr_captured = captured;
          lr_profiled = n - !total;
          lr_captured_total = !total;
          lr_counter_space = seen;
          lr_profiling_ops = !ops;
          lr_collection_ops = 0;
        })
end

(* Chunks large enough to amortize per-chunk work, small enough that the
   phase-A buffers (a few machine words per instance) stay L2-resident
   while every lane group replays them. *)
let default_chunk = 65_536

let drive ?events:ev ?(jobs = 1) ?(chunk = default_chunk)
    (runner : lane_runner) ~delays (r : Recorder.t) =
  if jobs < 1 then invalid_arg "Replay.run_many: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Replay.run_many: chunk must be >= 1";
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> []
  | lanes ->
    let k = Array.length lanes in
    let n = Array.length r.Recorder.instances in
    let n_paths = Recorder.num_paths r in
    let assemble lrs freq =
      List.init k (fun l ->
          let lr = lrs.(l) in
          {
            scheme_name = runner.lr_scheme;
            delay = lanes.(l);
            total_instances = n;
            predictions = lr.lr_predictions;
            predicted_at = lr.lr_predicted_at;
            freq = (if l = 0 then freq else Array.copy freq);
            captured = lr.lr_captured;
            profiled_instances = lr.lr_profiled;
            captured_instances = lr.lr_captured_total;
            counter_space = lr.lr_counter_space;
            profiling_ops = lr.lr_profiling_ops;
            collection_ops = lr.lr_collection_ops;
          })
    in
    (* One logical traversal of the stream regardless of [jobs]. *)
    ignore (Atomic.fetch_and_add reads n);
    (* Fan-out width: the [jobs] ask clamped to the machine's domain
       budget and the lane count — never oversubscribed.  Results are
       worker-count independent (lanes never interact), so clamping is
       pure scheduling. *)
    let workers = min (Pool.effective_workers ~jobs) k in
    let serial_walk w =
      w.cw_walk ~lo:0 ~hi:n;
      w.cw_finish ()
    in
    if jobs = 1 then begin
      let freq = Array.make n_paths 0 in
      assemble (serial_walk (runner.lr_make ~ev ~lanes ~freq r)) freq
    end
    else begin
      match runner.lr_fast with
      | Some fast when ev = None ->
        let freq = Array.make n_paths 0 in
        let lrs =
          match fast with
          | Fast_net_rearm | Fast_net_once ->
            Fast.net fast ~lanes ~chunk ~workers ~freq r
          | Fast_pp -> Fast.path_profile ~lanes ~chunk ~workers ~freq r
        in
        assemble lrs freq
      | _ when workers <= 1 ->
        (* One worker: a single walker over all lanes, chunk-tiled so
           the seam path stays the one exercised at any job count. *)
        let freq = Array.make n_paths 0 in
        let w = runner.lr_make ~ev ~lanes ~freq r in
        let lo = ref 0 in
        while !lo < n do
          let hi = min n (!lo + chunk) in
          w.cw_walk ~lo:!lo ~hi;
          lo := hi
        done;
        assemble (w.cw_finish ()) freq
      | _ ->
        (* Per-instance walkers (events enabled, Last_executed_tail, or
           a non-built-in scheme): scheme state is opaque or the sampler
           needs per-instance order, so each lane group replays the
           chunk-tiled stream itself.  Sampling goes to a per-group line
           buffer, merged after the join; each group accumulates its own
           (identical) freq. *)
        let slices = shard_slices lanes workers in
        let bufs = Array.map (fun _ -> Vec.create ()) slices in
        let freqs = Array.map (fun _ -> Array.make n_paths 0) slices in
        let walkers =
          Array.mapi
            (fun s slice ->
               let ev_s =
                 Option.map
                   (fun e ->
                      { e with ev_sink = Events.of_fn (Vec.push bufs.(s)) })
                   ev
               in
               runner.lr_make ~ev:ev_s ~lanes:slice ~freq:freqs.(s) r)
            slices
        in
        let lrs =
          if Array.for_all (fun w -> w.cw_walk_batch <> None) walkers then begin
            (* Compressed-chunk fan-out for opaque-state walkers: decode
               each chunk once into a shared dense batch (ids, widened
               arrival codes, gathered descriptors), then let every lane
               group replay the cache-resident batch.  The groups read
               the batch concurrently and never write it; the driver
               refills it only after the fan-out joins. *)
            let d = Recorder.descriptors r in
            let dh = d.Recorder.d_heads
            and dbr = d.Recorder.d_branches
            and dbl = d.Recorder.d_blocks in
            let instances = r.Recorder.instances in
            let arrivals = r.Recorder.arrivals in
            let batch = Batch.create ~capacity:(max 1 (min chunk n)) () in
            let walks =
              Array.map (fun w -> Option.get w.cw_walk_batch) walkers
            in
            let lo = ref 0 in
            while !lo < n do
              let hi = min n (!lo + chunk) in
              let m = hi - !lo in
              Batch.ensure batch m;
              Batch.ensure_descriptors batch m;
              let ids = batch.Batch.ids
              and arrs = batch.Batch.arrs
              and bh = batch.Batch.heads
              and bbr = batch.Batch.branches
              and bbl = batch.Batch.blocks in
              let base = !lo in
              for j = 0 to m - 1 do
                let pid = Array.unsafe_get instances (base + j) in
                Array.unsafe_set ids j pid;
                Array.unsafe_set arrs j
                  (Char.code (Bytes.unsafe_get arrivals (base + j)));
                Array.unsafe_set bh j (Array.unsafe_get dh pid);
                Array.unsafe_set bbr j (Array.unsafe_get dbr pid);
                Array.unsafe_set bbl j (Array.unsafe_get dbl pid)
              done;
              Batch.set_length batch m;
              ignore
                (Pool.map_array ~jobs:workers (fun wb -> wb batch ~base) walks);
              lo := hi
            done;
            Array.map (fun w -> w.cw_finish ()) walkers
          end
          else
            Pool.map_array ~jobs:workers
              (fun w ->
                 let lo = ref 0 in
                 while !lo < n do
                   let hi = min n (!lo + chunk) in
                   w.cw_walk ~lo:!lo ~hi;
                   lo := hi
                 done;
                 w.cw_finish ())
              walkers
        in
        Option.iter (fun e -> merge_event_lines e.ev_sink slices bufs) ev;
        assemble (Array.concat (Array.to_list lrs)) freqs.(0)
    end

(* ------------------------------------------------------------------ *)
(* Generic kernel: one compilation of the multiplexed loop per scheme   *)
(* ------------------------------------------------------------------ *)

module Make (S : Scheme.S) = struct
  let make_walker ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads
    and branches = d.Recorder.d_branches
    and blocks = d.Recorder.d_blocks in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map (fun delay -> S.create ~delay ~program:r.Recorder.program) lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    let walk ~lo ~hi =
      (* Hoist the hot closure captures into locals ([opaque_identity]
         keeps the simplifier from substituting the aliases back into
         per-iteration env reads — worth ~15% on this loop). *)
      let instances = Sys.opaque_identity instances
      and arrivals = Sys.opaque_identity arrivals
      and heads = Sys.opaque_identity heads
      and branches = Sys.opaque_identity branches
      and blocks = Sys.opaque_identity blocks
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and k = Sys.opaque_identity k in
      for i = lo to hi - 1 do
        let pid = instances.(i) in
        freq.(pid) <- freq.(pid) + 1;
        let head = heads.(pid)
        and n_branches = branches.(pid)
        and n_blocks = blocks.(pid)
        and arrival = arrivals.(i) in
        for l = 0 to k - 1 do
          let pa = predicted_at.(l) in
          if pa.(pid) < i then begin
            let cap = captured.(l) in
            cap.(pid) <- cap.(pid) + 1;
            captured_total.(l) <- captured_total.(l) + 1
          end
          else begin
            profiled.(l) <- profiled.(l) + 1;
            match
              S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
                ~n_blocks
            with
            | Some target when pa.(target) = max_int ->
              pa.(target) <- i;
              S.collect states.(l) ~n_blocks:blocks.(target);
              Vec.push predictions.(l) { target; at_instance = i }
            | Some _ | None -> ()
          end
        done;
        if i + 1 >= !next_sample then begin
          sample_lanes Sampler.sample (i + 1);
          next_sample := !next_sample + (Option.get ev).ev_window
        end
      done
    in
    let walk_batch (b : Batch.t) ~base =
      (* [walk] over the driver's pre-decoded batch: ids, arrival codes,
         and the per-path descriptors arrive as dense per-instance
         arrays, so the hot loop reads sequentially instead of chasing
         [heads]/[branches]/[blocks] through a path-id indirection per
         instance.  [base + j] is the instance's global index — sampler
         windows and prediction indices stay stream-absolute.  The batch
         is the driver's scratch: read-only here, never retained. *)
      let ids = Sys.opaque_identity b.Batch.ids
      and arrs = Sys.opaque_identity b.Batch.arrs
      and b_heads = Sys.opaque_identity b.Batch.heads
      and b_branches = Sys.opaque_identity b.Batch.branches
      and b_blocks = Sys.opaque_identity b.Batch.blocks
      and m = Sys.opaque_identity (Batch.length b)
      and blocks = Sys.opaque_identity blocks
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and k = Sys.opaque_identity k in
      for j = 0 to m - 1 do
        let i = base + j in
        let pid = ids.(j) in
        freq.(pid) <- freq.(pid) + 1;
        let head = b_heads.(j)
        and n_branches = b_branches.(j)
        and n_blocks = b_blocks.(j)
        and arrival = Batch.kind_of_code arrs.(j) in
        for l = 0 to k - 1 do
          let pa = predicted_at.(l) in
          if pa.(pid) < i then begin
            let cap = captured.(l) in
            cap.(pid) <- cap.(pid) + 1;
            captured_total.(l) <- captured_total.(l) + 1
          end
          else begin
            profiled.(l) <- profiled.(l) + 1;
            match
              S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
                ~n_blocks
            with
            | Some target when pa.(target) = max_int ->
              pa.(target) <- i;
              S.collect states.(l) ~n_blocks:blocks.(target);
              Vec.push predictions.(l) { target; at_instance = i }
            | Some _ | None -> ()
          end
        done;
        if i + 1 >= !next_sample then begin
          sample_lanes Sampler.sample (i + 1);
          next_sample := !next_sample + (Option.get ev).ev_window
        end
      done
    in
    let finish () =
      sample_lanes Sampler.final n;
      Array.init k (fun l ->
          {
            lr_predictions = Vec.to_array predictions.(l);
            lr_predicted_at = predicted_at.(l);
            lr_captured = captured.(l);
            lr_profiled = profiled.(l);
            lr_captured_total = captured_total.(l);
            lr_counter_space = S.counter_space states.(l);
            lr_profiling_ops = S.profiling_ops states.(l);
            lr_collection_ops = S.collection_ops states.(l);
          })
    in
    { cw_walk = walk; cw_walk_batch = Some walk_batch; cw_finish = finish }

  let runner = { lr_scheme = S.name; lr_make = make_walker; lr_fast = None }

  let run_many ?events ?jobs ?chunk ~delays r =
    drive ?events ?jobs ?chunk runner ~delays r

  let run ?events ~delay r =
    match run_many ?events ~delays:[ delay ] r with
    | [ o ] -> o
    | _ -> assert false
end

(* ------------------------------------------------------------------ *)
(* Monomorphized kernels for the built-in schemes                      *)
(* ------------------------------------------------------------------ *)

(* The generic loop pays one module-indirected call per profiled
   instance per lane, and the built-in schemes keep their state in
   hashtables keyed by dense integer ids (block ids for NET, path ids
   for path-profile).  The kernels inline the scheme logic into the loop
   and flatten each hashtable into a plain array over those ids —
   behaviourally identical (property-tested byte-identical against the
   generic loop), with no call, no hashing, and no option allocation on
   the per-instance path.  Without flambda this data-structure
   specialization, not functor inlining, is where the kernel speedup
   comes from.

   The [Array.unsafe_*] accesses rely on recording-time validation:
   every instance id is a table path and every path head a program
   block, so [pid < n_paths] and [head < n_blocks] always hold. *)

module Net_kernel = struct
  type variant = Rearm | Once | Prev

  (* Net.state with the head-keyed hashtables flattened: counts.(h) < 0
     means "no counter yet" (hashtable absence), last_tail.(h) < 0 "no
     previous tail".  [seen] tracks counters ever allocated — NET's
     counter space. *)
  type lane = {
    delay : int;
    counts : int array;
    mutable seen : int;
    retired : bool array;
    last_tail : int array;
    mutable ops : int;
    mutable collection : int;
  }

  let make_lane variant ~n_blocks ~delay =
    {
      delay;
      counts = Array.make n_blocks (-1);
      seen = 0;
      retired = (if variant = Once then Array.make n_blocks false else [||]);
      last_tail = (if variant = Prev then Array.make n_blocks (-1) else [||]);
      ops = 0;
      collection = 0;
    }

  let make_walker variant scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let n_blocks = Array.length r.Recorder.program.Cfg.blocks in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads and blocks = d.Recorder.d_blocks in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map (fun delay -> make_lane variant ~n_blocks ~delay) lanes
    in
    let v_once = variant = Once and v_prev = variant = Prev in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:st.seen ~profiling_ops:st.ops
            ~collection_ops:st.collection
        done
    in
    let walk ~lo ~hi =
      (* Hoist the hot closure captures into locals: the walk body lives
         in a closure now, and reloading env fields per iteration costs
         ~15% on this loop.  [opaque_identity] stops the simplifier from
         substituting the aliases back into env reads. *)
      let instances = Sys.opaque_identity instances
      and arrivals = Sys.opaque_identity arrivals
      and heads = Sys.opaque_identity heads
      and blocks = Sys.opaque_identity blocks
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and v_once = Sys.opaque_identity v_once
      and v_prev = Sys.opaque_identity v_prev
      and k = Sys.opaque_identity k in
      for i = lo to hi - 1 do
        let pid = Array.unsafe_get instances i in
        Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
        let is_loop_head =
        match Array.unsafe_get arrivals i with
        | Path.Loop_head -> true
        | Path.Entry | Path.Continuation -> false
      in
      let head = Array.unsafe_get heads pid in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if Array.unsafe_get pa pid < i then begin
          let cap = captured.(l) in
          Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          (* NET profiles only targets of backward taken transfers. *)
          if is_loop_head then begin
            let st = states.(l) in
            if not (v_once && Array.unsafe_get st.retired head) then begin
              st.ops <- st.ops + 1;
              let c0 = Array.unsafe_get st.counts head in
              let count =
                if c0 < 0 then begin
                  st.seen <- st.seen + 1;
                  1
                end
                else c0 + 1
              in
              if count < st.delay then begin
                Array.unsafe_set st.counts head count;
                if v_prev then Array.unsafe_set st.last_tail head pid
              end
              else begin
                (* Counter trips: re-arm and predict. *)
                Array.unsafe_set st.counts head 0;
                if v_once then Array.unsafe_set st.retired head true;
                let target =
                  if v_prev then begin
                    let prev = Array.unsafe_get st.last_tail head in
                    Array.unsafe_set st.last_tail head pid;
                    (* Fall back to the current tail when the head has no
                       history. *)
                    if prev >= 0 then prev else pid
                  end
                  else pid
                in
                if Array.unsafe_get pa target = max_int then begin
                  Array.unsafe_set pa target i;
                  (* Incremental instrumentation: one breakpoint per
                     block, charged on accepted predictions only. *)
                  st.collection <-
                    st.collection + Array.unsafe_get blocks target;
                  Vec.push predictions.(l) { target; at_instance = i }
                end
              end
            end
          end
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
      done
    in
    let finish () =
      sample_lanes Sampler.final n;
      Array.init k (fun l ->
          let st = states.(l) in
          {
            lr_predictions = Vec.to_array predictions.(l);
            lr_predicted_at = predicted_at.(l);
            lr_captured = captured.(l);
            lr_profiled = profiled.(l);
            lr_captured_total = captured_total.(l);
            lr_counter_space = st.seen;
            lr_profiling_ops = st.ops;
            lr_collection_ops = st.collection;
          })
    in
    { cw_walk = walk; cw_walk_batch = None; cw_finish = finish }

  let runner variant scheme =
    {
      lr_scheme = scheme;
      lr_make = make_walker variant scheme;
      (* Rearm/Once qualify for the compressed stream-sharded engine;
         Prev predicts a path other than the tripping one (see [fast]). *)
      lr_fast =
        (match variant with
         | Rearm -> Some Fast_net_rearm
         | Once -> Some Fast_net_once
         | Prev -> None);
    }
end

module Path_profile_kernel = struct
  (* Path_profile.t with the path-id-keyed counter table flattened;
     absence and a zero count coincide, so [seen] (counter space) ticks
     on the 0 -> 1 transition. *)
  type lane = {
    delay : int;
    counts : int array;
    mutable seen : int;
    mutable ops : int;
  }

  let make_walker scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let branches = d.Recorder.d_branches in
    let states =
      Array.map
        (fun delay ->
           { delay; counts = Array.make n_paths 0; seen = 0; ops = 0 })
        lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:st.seen ~profiling_ops:st.ops ~collection_ops:0
        done
    in
    let walk ~lo ~hi =
      (* Hoist the hot closure captures into locals; see Net_kernel. *)
      let instances = Sys.opaque_identity instances
      and branches = Sys.opaque_identity branches
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and k = Sys.opaque_identity k in
      for i = lo to hi - 1 do
        let pid = Array.unsafe_get instances i in
        Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
        let n_branches = Array.unsafe_get branches pid in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if Array.unsafe_get pa pid < i then begin
          let cap = captured.(l) in
          Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          let st = states.(l) in
          (* Bit tracing: one shift per branch on the path, one table
             update. *)
          st.ops <- st.ops + n_branches + 1;
          let count = Array.unsafe_get st.counts pid + 1 in
          Array.unsafe_set st.counts pid count;
          if count = 1 then st.seen <- st.seen + 1;
          (* [>=] rather than [=]: a counter already past the threshold
             (code-cache flush scenarios) must re-predict immediately.
             Collection is free — path-profile already holds the path. *)
          if count >= st.delay && Array.unsafe_get pa pid = max_int then begin
            Array.unsafe_set pa pid i;
            Vec.push predictions.(l) { target = pid; at_instance = i }
          end
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
      done
    in
    let finish () =
      sample_lanes Sampler.final n;
      Array.init k (fun l ->
          let st = states.(l) in
          {
            lr_predictions = Vec.to_array predictions.(l);
            lr_predicted_at = predicted_at.(l);
            lr_captured = captured.(l);
            lr_profiled = profiled.(l);
            lr_captured_total = captured_total.(l);
            lr_counter_space = st.seen;
            lr_profiling_ops = st.ops;
            lr_collection_ops = 0;
          })
    in
    { cw_walk = walk; cw_walk_batch = None; cw_finish = finish }

  let runner scheme =
    {
      lr_scheme = scheme;
      lr_make = make_walker scheme;
      lr_fast = Some Fast_pp;
    }
end

(* The k-iteration kernels mirror the scheme modules with the per-lane
   state flattened (NET-k's head table into a dense block array,
   path-profile-k's suffix trie into [Kpath.Flat] with a node-id-indexed
   counts array) and the scheme logic inlined — no module-indirected
   call, no option allocation per instance.  Neither qualifies for the compressed stream-sharded engine
   ([lr_fast = None], like [Last_executed_tail]): both carry a per-lane
   chain cursor/window whose evolution depends on which instances that
   lane still profiles, so the lane-blind phase-A compression cannot
   represent them.  At jobs > 1 they go through the chunk-tiled
   per-instance lane shards, bit-identical to serial. *)

module Kpath = Hotpath_trace.Kpath

module Path_profile_k_kernel = struct
  (* Path_profile_k.state with the module indirection gone and the
     suffix trie swapped for [Kpath.Flat] — dense level-1 array plus an
     open-addressed int table for deeper children, allocating node ids
     in exactly the reference interner's order so counter registries
     and node-indexed counts stay bit-identical.  The stdlib hashtable
     walk (hash + bucket chase per instance per lane) was what held the
     packed k-trie kernel below the generic loop. *)
  type lane = {
    delay : int;
    trie : Kpath.Flat.t;
    mutable counts : int array;
    mutable cur : int;
    mutable ops : int;
  }

  let make_walker k_iter scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let d = Recorder.descriptors r in
    let branches = d.Recorder.d_branches in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map
        (fun delay ->
           { delay; trie = Kpath.Flat.create ~k:k_iter;
             counts = Array.make 64 0; cur = Kpath.root; ops = 0 })
        lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(Kpath.Flat.num_nodes st.trie - 1) ~profiling_ops:st.ops
            ~collection_ops:0
        done
    in
    let walk ~lo ~hi =
      (* Hoist the hot closure captures into locals; see Net_kernel. *)
      let instances = Sys.opaque_identity instances
      and arrivals = Sys.opaque_identity arrivals
      and branches = Sys.opaque_identity branches
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and k = Sys.opaque_identity k in
      for i = lo to hi - 1 do
        let pid = Array.unsafe_get instances i in
        Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
        let n_branches = Array.unsafe_get branches pid in
        let arrival = Array.unsafe_get arrivals i in
        for l = 0 to k - 1 do
          let pa = predicted_at.(l) in
          if Array.unsafe_get pa pid < i then begin
            let cap = captured.(l) in
            Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
            captured_total.(l) <- captured_total.(l) + 1
          end
          else begin
            profiled.(l) <- profiled.(l) + 1;
            let st = states.(l) in
            (* Bit tracing plus the window cursor ride-along. *)
            st.ops <- st.ops + n_branches + 1;
            let node = Kpath.Flat.advance st.trie ~cur:st.cur ~arrival ~pid in
            st.cur <- node;
            let counts =
              let c = st.counts in
              if node < Array.length c then c
              else begin
                let c' = Array.make (max (node + 1) (2 * Array.length c)) 0 in
                Array.blit c 0 c' 0 (Array.length c);
                st.counts <- c';
                c'
              end
            in
            let count = Array.unsafe_get counts node + 1 in
            Array.unsafe_set counts node count;
            if count >= st.delay && Array.unsafe_get pa pid = max_int then begin
              Array.unsafe_set pa pid i;
              Vec.push predictions.(l) { target = pid; at_instance = i }
            end
          end
        done;
        if i + 1 >= !next_sample then begin
          sample_lanes Sampler.sample (i + 1);
          next_sample := !next_sample + (Option.get ev).ev_window
        end
      done
    in
    let finish () =
      sample_lanes Sampler.final n;
      Array.init k (fun l ->
          let st = states.(l) in
          {
            lr_predictions = Vec.to_array predictions.(l);
            lr_predicted_at = predicted_at.(l);
            lr_captured = captured.(l);
            lr_profiled = profiled.(l);
            lr_captured_total = captured_total.(l);
            lr_counter_space = Kpath.Flat.num_nodes st.trie - 1;
            lr_profiling_ops = st.ops;
            lr_collection_ops = 0;
          })
    in
    { cw_walk = walk; cw_walk_batch = None; cw_finish = finish }

  let runner k_iter scheme =
    {
      lr_scheme = scheme;
      lr_make = make_walker k_iter scheme;
      lr_fast = None;
    }
end

module Net_k_kernel = struct
  (* Net_k.state with the head counter table flattened like Net_kernel:
     counts.(h) < 0 means "no counter yet". *)
  type lane = {
    delay : int;
    counts : int array;
    mutable seen : int;
    mutable remaining : int;
    mutable ops : int;
    mutable collection : int;
  }

  let make_walker k_iter scheme ~ev ~lanes ~freq (r : Recorder.t) =
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let n_blocks = Array.length r.Recorder.program.Cfg.blocks in
    let d = Recorder.descriptors r in
    let heads = d.Recorder.d_heads and blocks = d.Recorder.d_blocks in
    let arrivals = Recorder.arrival_view r in
    let states =
      Array.map
        (fun delay ->
           { delay; counts = Array.make n_blocks (-1); seen = 0; remaining = 0;
             ops = 0; collection = 0 })
        lanes
    in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          let st = states.(l) in
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:st.seen ~profiling_ops:st.ops
            ~collection_ops:st.collection
        done
    in
    let walk ~lo ~hi =
      (* Hoist the hot closure captures into locals; see Net_kernel. *)
      let instances = Sys.opaque_identity instances
      and arrivals = Sys.opaque_identity arrivals
      and heads = Sys.opaque_identity heads
      and blocks = Sys.opaque_identity blocks
      and freq = Sys.opaque_identity freq
      and states = Sys.opaque_identity states
      and predicted_at = Sys.opaque_identity predicted_at
      and captured = Sys.opaque_identity captured
      and predictions = Sys.opaque_identity predictions
      and profiled = Sys.opaque_identity profiled
      and captured_total = Sys.opaque_identity captured_total
      and next_sample = Sys.opaque_identity next_sample
      and k = Sys.opaque_identity k in
      for i = lo to hi - 1 do
        let pid = Array.unsafe_get instances i in
        Array.unsafe_set freq pid (Array.unsafe_get freq pid + 1);
        let is_loop_head =
          match Array.unsafe_get arrivals i with
          | Path.Loop_head -> true
          | Path.Entry | Path.Continuation -> false
        in
        let head = Array.unsafe_get heads pid in
        for l = 0 to k - 1 do
          let pa = predicted_at.(l) in
          if Array.unsafe_get pa pid < i then begin
            let cap = captured.(l) in
            Array.unsafe_set cap pid (Array.unsafe_get cap pid + 1);
            captured_total.(l) <- captured_total.(l) + 1
          end
          else begin
            profiled.(l) <- profiled.(l) + 1;
            let st = states.(l) in
            if is_loop_head then begin
              st.ops <- st.ops + 1;
              let c0 = Array.unsafe_get st.counts head in
              let count =
                if c0 < 0 then begin
                  st.seen <- st.seen + 1;
                  1
                end
                else c0 + 1
              in
              let offer =
                if count >= st.delay then begin
                  (* Trip: re-arm, predict, open (or restart) the
                     window. *)
                  Array.unsafe_set st.counts head 0;
                  st.remaining <- k_iter - 1;
                  true
                end
                else begin
                  Array.unsafe_set st.counts head count;
                  if st.remaining > 0 then begin
                    st.remaining <- st.remaining - 1;
                    true
                  end
                  else false
                end
              in
              if offer && Array.unsafe_get pa pid = max_int then begin
                Array.unsafe_set pa pid i;
                st.collection <- st.collection + Array.unsafe_get blocks pid;
                Vec.push predictions.(l) { target = pid; at_instance = i }
              end
            end
            else
              (* The back-edge chain broke: close the window. *)
              st.remaining <- 0
          end
        done;
        if i + 1 >= !next_sample then begin
          sample_lanes Sampler.sample (i + 1);
          next_sample := !next_sample + (Option.get ev).ev_window
        end
      done
    in
    let finish () =
      sample_lanes Sampler.final n;
      Array.init k (fun l ->
          let st = states.(l) in
          {
            lr_predictions = Vec.to_array predictions.(l);
            lr_predicted_at = predicted_at.(l);
            lr_captured = captured.(l);
            lr_profiled = profiled.(l);
            lr_captured_total = captured_total.(l);
            lr_counter_space = st.seen;
            lr_profiling_ops = st.ops;
            lr_collection_ops = st.collection;
          })
    in
    { cw_walk = walk; cw_walk_batch = None; cw_finish = finish }

  let runner k_iter scheme =
    {
      lr_scheme = scheme;
      lr_make = make_walker k_iter scheme;
      lr_fast = None;
    }
end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* A packed module is recognized as a built-in by the physical identity
   of its [observe] closure — allocated once at scheme-module init and
   preserved by signature coercions, which copy module blocks but never
   wrap regular value fields.  [Obj.repr] only erases the state-type
   difference for the pointer comparison; nothing is read through it.
   Unrecognized schemes (including look-alikes that merely reuse a
   built-in's name) fall back to the generic kernel. *)
let same_fn f g = Obj.repr f == Obj.repr g

let builtin_runner (module S : Scheme.S) =
  if same_fn S.observe Net.observe then
    Some (Net_kernel.runner Net_kernel.Rearm S.name)
  else if same_fn S.observe Net.Net_once.observe then
    Some (Net_kernel.runner Net_kernel.Once S.name)
  else if same_fn S.observe Net.Last_executed_tail.observe then
    Some (Net_kernel.runner Net_kernel.Prev S.name)
  else if same_fn S.observe Path_profile.observe then
    Some (Path_profile_kernel.runner S.name)
  else
    match Path_profile_k.recognize (module S) with
    | Some k -> Some (Path_profile_k_kernel.runner k S.name)
    | None ->
      (match Net_k.recognize (module S) with
       | Some k -> Some (Net_k_kernel.runner k S.name)
       | None -> None)

let run_many ?events ?jobs ?chunk (module S : Scheme.S) ~delays
    (r : Recorder.t) =
  match builtin_runner (module S) with
  | Some runner ->
    (* The kernels do not re-validate delays; keep each scheme's own
       validation (and exception message) for the invalid ones. *)
    List.iter
      (fun d ->
         if d < 1 then ignore (S.create ~delay:d ~program:r.Recorder.program))
      delays;
    drive ?events ?jobs ?chunk runner ~delays r
  | None ->
    let module M = Make (S) in
    M.run_many ?events ?jobs ?chunk ~delays r

let run ?events scheme ~delay r =
  match run_many ?events scheme ~delays:[ delay ] r with
  | [ o ] -> o
  | _ -> assert false

(* Streamed replay: a driver over online [Session]s.  Each lane group is
   one session (the same per-instance body as [run_many], with per-path
   state grown as the stream declares paths; nothing is ever O(trace)),
   and every decoded chunk is pushed into every session.  Because the
   batch path and the public online path share the session walker, their
   bit-for-bit equivalence is structural, not duplicated code kept in
   step by tests alone.

   [?jobs] maps the HOTPATH3 frame chunks onto the same fan-out design
   as the materialized engine: each decoded chunk is replayed by
   contiguous lane groups (clamped to the machine's domain budget), all
   lane state carried across chunk seams inside its owning session.
   Sessions read the shared [Path_table] concurrently during a chunk
   fan-out; the driver only grows it between fan-outs ([Stream.next]).
   Results and the merged event stream are byte-identical at every job
   count. *)
module Stream = Hotpath_trace.Serialize.Stream

let run_many_stream ?events:ev ?(jobs = 1) (module S : Scheme.S) ~delays rd =
  if jobs < 1 then invalid_arg "Replay.run_many_stream: jobs must be >= 1";
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> Ok []
  | lanes ->
    let k = Array.length lanes in
    let program = Stream.program rd in
    let table = Stream.table rd in
    let workers = min (Pool.effective_workers ~jobs) k in
    let slices =
      if workers <= 1 then [| lanes |] else shard_slices lanes workers
    in
    let ng = Array.length slices in
    let bufs = Array.map (fun _ -> Vec.create ()) slices in
    let sessions =
      Array.mapi
        (fun s slice ->
           (* Sampling goes to the group's line buffer, directly to the
              sink when there is a single group. *)
           let ev_s =
             if ng = 1 then ev
             else
               Option.map
                 (fun e -> { e with ev_sink = Events.of_fn (Vec.push bufs.(s)) })
                 ev
           in
           (* The stream decoder already validated frame structure, ids,
              and arrival codes; linting belongs to callers that opt in
              (sessions over a socket), not to every batch replay. *)
           match
             Session.create ?events:ev_s ~lint:false (module S)
               ~delays:(Array.to_list slice) ~program ~table
           with
           | Ok sess -> sess
           | Error _ -> assert false (* lint off: create cannot fail *))
        slices
    in
    let rec consume () =
      match Stream.next rd with
      | Error _ as e -> e
      | Ok None -> Ok ()
      | Ok (Some chunk) ->
        let ids = chunk.Stream.ids in
        let arrs = chunk.Stream.arrivals in
        (* One logical read of the chunk, independent of the fan-out. *)
        ignore (Atomic.fetch_and_add reads (Array.length ids));
        let push sess =
          match Session.push_chunk sess ~ids ~arrivals:arrs with
          | Ok () -> ()
          | Error e ->
            (* Unreachable: decoder-validated chunks against the shared
               table cannot be rejected by an unlinted session. *)
            invalid_arg ("Replay.run_many_stream: " ^ e)
        in
        if ng = 1 then push sessions.(0)
        else ignore (Pool.map_array ~jobs:ng push sessions);
        consume ()
    in
    (match consume () with
     | Error _ as e -> e
     | Ok () ->
       let lrs =
         Array.concat
           (Array.to_list
              (Array.map (fun sess -> Array.of_list (Session.finish sess)) sessions))
       in
       if ng > 1 then
         Option.iter (fun e -> merge_event_lines e.ev_sink slices bufs) ev;
       Ok (Array.to_list lrs))

let run_stream ?events scheme ~delay rd =
  match run_many_stream ?events scheme ~delays:[ delay ] rd with
  | Error _ as e -> e
  | Ok [ o ] -> Ok o
  | Ok _ -> assert false

(* Mapped replay: [run_many_stream] over the zero-copy reader.  The
   frame payload is decoded once per instance frame into one shared
   [Batch.t] — ids and widened arrival codes, no Bytes.blit, no
   per-chunk array allocation — and every lane-group session replays
   the batch via [Session.push_batch].  Sessions only read the batch
   during a push, so the groups share it concurrently and the driver
   refills it after the fan-out joins; the table grows only between
   fan-outs ([Mapped.next_batch]), like the pull-reader driver. *)
let run_many_mapped ?events:ev ?(jobs = 1) (module S : Scheme.S) ~delays m =
  if jobs < 1 then invalid_arg "Replay.run_many_mapped: jobs must be >= 1";
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> Ok []
  | lanes ->
    let k = Array.length lanes in
    let program = Stream.Mapped.program m in
    let table = Stream.Mapped.table m in
    let workers = min (Pool.effective_workers ~jobs) k in
    let slices =
      if workers <= 1 then [| lanes |] else shard_slices lanes workers
    in
    let ng = Array.length slices in
    let bufs = Array.map (fun _ -> Vec.create ()) slices in
    let sessions =
      Array.mapi
        (fun s slice ->
           let ev_s =
             if ng = 1 then ev
             else
               Option.map
                 (fun e -> { e with ev_sink = Events.of_fn (Vec.push bufs.(s)) })
                 ev
           in
           match
             Session.create ?events:ev_s ~lint:false (module S)
               ~delays:(Array.to_list slice) ~program ~table
           with
           | Ok sess -> sess
           | Error _ -> assert false (* lint off: create cannot fail *))
        slices
    in
    let batch = Batch.create () in
    let rec consume () =
      match Stream.Mapped.next_batch m batch with
      | Error _ as e -> e
      | Ok false -> Ok ()
      | Ok true ->
        (* One logical read of the frame, independent of the fan-out. *)
        ignore (Atomic.fetch_and_add reads (Batch.length batch));
        let push sess =
          match Session.push_batch sess batch with
          | Ok () -> ()
          | Error e ->
            (* Unreachable: reader-validated batches against the shared
               table cannot be rejected by an unlinted session. *)
            invalid_arg ("Replay.run_many_mapped: " ^ e)
        in
        if ng = 1 then push sessions.(0)
        else ignore (Pool.map_array ~jobs:ng push sessions);
        consume ()
    in
    (match consume () with
     | Error _ as e -> e
     | Ok () ->
       let lrs =
         Array.concat
           (Array.to_list
              (Array.map (fun sess -> Array.of_list (Session.finish sess)) sessions))
       in
       if ng > 1 then
         Option.iter (fun e -> merge_event_lines e.ev_sink slices bufs) ev;
       Ok (Array.to_list lrs))

let run_mapped ?events scheme ~delay m =
  match run_many_mapped ?events scheme ~delays:[ delay ] m with
  | Error _ as e -> e
  | Ok [ o ] -> Ok o
  | Ok _ -> assert false

let predicted_paths o =
  Array.to_list o.predictions
  |> List.map (fun p -> p.target)
  |> List.sort Int.compare

let pp_summary ppf o =
  Format.fprintf ppf
    "@[<h>%s(delay=%d): instances=%d predicted=%d profiled=%d captured=%d \
     counters=%d ops=%d collect=%d@]"
    o.scheme_name o.delay o.total_instances
    (Array.length o.predictions)
    o.profiled_instances o.captured_instances o.counter_space o.profiling_ops
    o.collection_ops
