module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Vec = Hotpath_util.Vec
module Events = Hotpath_util.Events

type prediction = { target : int; at_instance : int }

type outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type events = {
  ev_sink : Events.sink;
  ev_window : int;
  ev_is_hot : (int -> bool) option;
}

(* The replay loop runs at a handful of ns per instance, so a sample
   window must amortize a ~µs JSON line over enough instances to keep
   the enabled overhead under the bench's 3% budget. *)
let default_events_window = 32_768

let events ?(window = default_events_window) ?is_hot sink =
  if window < 1 then invalid_arg "Replay.events: window must be >= 1";
  { ev_sink = sink; ev_window = window; ev_is_hot = is_hot }

(* Per-lane window sampling.  All sampling work happens at window
   boundaries — the only per-instance cost events add is one integer
   comparison against [next_sample], which is [max_int] when disabled —
   and nothing here feeds back into the replay state, so outcomes are
   byte-identical with events on and off (property-tested). *)
module Sampler = struct
  type lane = { mutable hw : int; mutable seq : int; mutable last_upto : int }

  type t = {
    ev : events;
    scheme : string;
    delays : int array;
    lanes : lane array;
    c_windows : Events.Registry.counter;
    c_instances : Events.Registry.counter;
  }

  let create ev ~scheme ~delays =
    {
      ev;
      scheme;
      delays;
      lanes = Array.map (fun _ -> { hw = 0; seq = 0; last_upto = 0 }) delays;
      c_windows = Events.Registry.counter "replay.windows";
      c_instances = Events.Registry.counter "replay.instances";
    }

  (* Cumulative hits/noise so far are read off the captured array — the
     operational definition restricted to the instances seen so far —
     rather than tracked per instance, keeping the hot loop untouched. *)
  let sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if counter_space > lane.hw then lane.hw <- counter_space;
    let hits, noise =
      match t.ev.ev_is_hot with
      | None -> (None, None)
      | Some is_hot ->
        let h = ref 0 and nz = ref 0 in
        for pid = 0 to n_paths - 1 do
          let c = captured_arr.(pid) in
          if c > 0 then if is_hot pid then h := !h + c else nz := !nz + c
        done;
        (Some !h, Some !nz)
    in
    Events.replay_window t.ev.ev_sink ~scheme:t.scheme ~delay:t.delays.(l)
      ~seq:lane.seq ~upto
      ~instances:(upto - lane.last_upto)
      ~predictions ~profiled ~captured:captured_total ~profiling_ops
      ~collection_ops ~counter_space ~counter_space_hw:lane.hw ?hits ?noise ();
    Events.Registry.incr t.c_windows;
    Events.Registry.add t.c_instances (upto - lane.last_upto);
    lane.seq <- lane.seq + 1;
    lane.last_upto <- upto

  (* The final (possibly short) window: every lane always gets at least
     one sample, and the last sample's cumulative fields equal the
     outcome's totals — the invariant the differential suite checks. *)
  let final t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if lane.last_upto < upto || lane.seq = 0 then
      sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
        ~captured_total ~counter_space ~profiling_ops ~collection_ops
end

(* Instance reads performed by [run]/[run_many], for the one-pass
   guarantee: multiplexing k delays must read the trace once, not k
   times.  Atomic because experiment fan-out replays from several
   domains. *)
let reads = Atomic.make 0

let instance_reads () = Atomic.get reads

let reset_instance_reads () = Atomic.set reads 0

(* Per-path descriptors, cached once per traversal; the replay loop is
   hot. *)
let descriptors (r : Recorder.t) =
  let n_paths = Recorder.num_paths r in
  let heads = Array.make n_paths 0
  and branches = Array.make n_paths 0
  and blocks = Array.make n_paths 0 in
  Path_table.iter
    (fun p ->
       heads.(p.Path.id) <- Path.head p;
       branches.(p.Path.id) <- p.Path.n_branches;
       blocks.(p.Path.id) <- Array.length p.Path.blocks)
    r.Recorder.table;
  (heads, branches, blocks)

(* A null-sink events value is "disabled": callers may thread a sink
   unconditionally and still pay nothing when it is the null one. *)
let live = function
  | Some e when Events.is_null e.ev_sink -> None
  | ev -> ev

let run ?events:ev (module S : Scheme.S) ~delay (r : Recorder.t) =
  let ev = live ev in
  let n_paths = Recorder.num_paths r in
  let heads, branches, blocks = descriptors r in
  let state = S.create ~delay ~program:r.Recorder.program in
  let predicted_at = Array.make n_paths max_int in
  let freq = Array.make n_paths 0 in
  let captured = Array.make n_paths 0 in
  let predictions = Vec.create () in
  let profiled = ref 0 and captured_total = ref 0 in
  let instances = r.Recorder.instances in
  let n = Array.length instances in
  let sampler =
    Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:[| delay |]) ev
  in
  let next_sample =
    ref (match ev with None -> max_int | Some e -> e.ev_window)
  in
  let take_sample upto =
    match sampler with
    | None -> ()
    | Some sm ->
      Sampler.sample sm 0 ~upto ~n_paths ~captured_arr:captured
        ~predictions:(Vec.length predictions) ~profiled:!profiled
        ~captured_total:!captured_total ~counter_space:(S.counter_space state)
        ~profiling_ops:(S.profiling_ops state)
        ~collection_ops:(S.collection_ops state)
  in
  ignore (Atomic.fetch_and_add reads n);
  for i = 0 to n - 1 do
    let pid = instances.(i) in
    freq.(pid) <- freq.(pid) + 1;
    (if predicted_at.(pid) < i then begin
       captured.(pid) <- captured.(pid) + 1;
       incr captured_total
     end
     else begin
       incr profiled;
       match
         S.observe state ~head:heads.(pid) ~arrival:(Recorder.arrival r i)
           ~path_id:pid ~n_branches:branches.(pid) ~n_blocks:blocks.(pid)
       with
       | Some target when predicted_at.(target) = max_int ->
         predicted_at.(target) <- i;
         S.collect state ~n_blocks:blocks.(target);
         Vec.push predictions { target; at_instance = i }
       | Some _ | None -> ()
     end);
    if i + 1 >= !next_sample then begin
      take_sample (i + 1);
      next_sample := !next_sample + (Option.get ev).ev_window
    end
  done;
  (match sampler with
   | None -> ()
   | Some sm ->
     Sampler.final sm 0 ~upto:n ~n_paths ~captured_arr:captured
       ~predictions:(Vec.length predictions) ~profiled:!profiled
       ~captured_total:!captured_total ~counter_space:(S.counter_space state)
       ~profiling_ops:(S.profiling_ops state)
       ~collection_ops:(S.collection_ops state));
  {
    scheme_name = S.name;
    delay;
    total_instances = n;
    predictions = Vec.to_array predictions;
    predicted_at;
    freq;
    captured;
    profiled_instances = !profiled;
    captured_instances = !captured_total;
    counter_space = S.counter_space state;
    profiling_ops = S.profiling_ops state;
    collection_ops = S.collection_ops state;
  }

(* One scheme state per delay, all driven through a single traversal of
   the instance stream.  The states are independent (an instance captured
   under one delay is still profiled under another), so each lane keeps
   its own predicted_at/captured arrays; freq is delay-independent and
   computed once. *)
let run_many ?events:ev (module S : Scheme.S) ~delays (r : Recorder.t) =
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> []
  | lanes ->
    let k = Array.length lanes in
    let n_paths = Recorder.num_paths r in
    let heads, branches, blocks = descriptors r in
    let states = Array.map (fun delay -> S.create ~delay ~program:r.Recorder.program) lanes in
    let predicted_at = Array.init k (fun _ -> Array.make n_paths max_int) in
    let captured = Array.init k (fun _ -> Array.make n_paths 0) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let freq = Array.make n_paths 0 in
    let instances = r.Recorder.instances in
    let n = Array.length instances in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          f sm l ~upto ~n_paths ~captured_arr:captured.(l)
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    ignore (Atomic.fetch_and_add reads n);
    for i = 0 to n - 1 do
      let pid = instances.(i) in
      freq.(pid) <- freq.(pid) + 1;
      let head = heads.(pid)
      and n_branches = branches.(pid)
      and n_blocks = blocks.(pid)
      and arrival = Recorder.arrival r i in
      for l = 0 to k - 1 do
        let pa = predicted_at.(l) in
        if pa.(pid) < i then begin
          let cap = captured.(l) in
          cap.(pid) <- cap.(pid) + 1;
          captured_total.(l) <- captured_total.(l) + 1
        end
        else begin
          profiled.(l) <- profiled.(l) + 1;
          match
            S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches ~n_blocks
          with
          | Some target when pa.(target) = max_int ->
            pa.(target) <- i;
            S.collect states.(l) ~n_blocks:blocks.(target);
            Vec.push predictions.(l) { target; at_instance = i }
          | Some _ | None -> ()
        end
      done;
      if i + 1 >= !next_sample then begin
        sample_lanes Sampler.sample (i + 1);
        next_sample := !next_sample + (Option.get ev).ev_window
      end
    done;
    sample_lanes Sampler.final n;
    List.init k (fun l ->
        {
          scheme_name = S.name;
          delay = lanes.(l);
          total_instances = n;
          predictions = Vec.to_array predictions.(l);
          predicted_at = predicted_at.(l);
          freq = (if l = 0 then freq else Array.copy freq);
          captured = captured.(l);
          profiled_instances = profiled.(l);
          captured_instances = captured_total.(l);
          counter_space = S.counter_space states.(l);
          profiling_ops = S.profiling_ops states.(l);
          collection_ops = S.collection_ops states.(l);
        })

(* Streamed replay: the same per-instance body as [run_many], driven by a
   chunk iterator instead of the materialized arrays.  Per-path state
   (descriptors, freq, predicted_at, captured) grows with the path table
   as the stream declares paths; nothing is ever O(trace).  Schemes only
   predict path ids they have observed, so every target is already
   declared by the time it is predicted. *)
module Stream = Hotpath_trace.Serialize.Stream

let run_many_stream ?events:ev (module S : Scheme.S) ~delays rd =
  let ev = live ev in
  match Array.of_list delays with
  | [||] -> Ok []
  | lanes ->
    let k = Array.length lanes in
    let program = Stream.program rd in
    let table = Stream.table rd in
    let states = Array.map (fun delay -> S.create ~delay ~program) lanes in
    let capacity = ref 0 in
    let heads = ref [||]
    and branches = ref [||]
    and blocks = ref [||]
    and freq = ref [||] in
    let predicted_at = Array.init k (fun _ -> ref [||]) in
    let captured = Array.init k (fun _ -> ref [||]) in
    let predictions = Array.init k (fun _ -> Vec.create ()) in
    let profiled = Array.make k 0 in
    let captured_total = Array.make k 0 in
    let synced = ref 0 in
    let grow arr n default =
      let old = !arr in
      let a = Array.make n default in
      Array.blit old 0 a 0 (Array.length old);
      arr := a
    in
    (* Extend per-path state to cover every path declared so far. *)
    let sync () =
      let np = Path_table.size table in
      if np > !synced then begin
        if np > !capacity then begin
          let n = max np (max 64 (2 * !capacity)) in
          grow heads n 0;
          grow branches n 0;
          grow blocks n 0;
          grow freq n 0;
          Array.iter (fun r -> grow r n max_int) predicted_at;
          Array.iter (fun r -> grow r n 0) captured;
          capacity := n
        end;
        for id = !synced to np - 1 do
          let p = Path_table.path table id in
          !heads.(id) <- Path.head p;
          !branches.(id) <- p.Path.n_branches;
          !blocks.(id) <- Array.length p.Path.blocks
        done;
        synced := np
      end
    in
    let total = ref 0 in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to k - 1 do
          f sm l ~upto ~n_paths:!synced ~captured_arr:!(captured.(l))
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    let rec consume () =
      match Stream.next rd with
      | Error _ as e -> e
      | Ok None -> Ok ()
      | Ok (Some chunk) ->
        sync ();
        let ids = chunk.Stream.ids in
        let arrs = chunk.Stream.arrivals in
        let n = Array.length ids in
        ignore (Atomic.fetch_and_add reads n);
        let heads = !heads
        and branches = !branches
        and blocks = !blocks
        and freq = !freq in
        for j = 0 to n - 1 do
          let pid = ids.(j) in
          let i = !total + j in
          freq.(pid) <- freq.(pid) + 1;
          let head = heads.(pid)
          and n_branches = branches.(pid)
          and n_blocks = blocks.(pid)
          and arrival = Recorder.arrival_of_code (Bytes.get arrs j) in
          for l = 0 to k - 1 do
            let pa = !(predicted_at.(l)) in
            if pa.(pid) < i then begin
              let cap = !(captured.(l)) in
              cap.(pid) <- cap.(pid) + 1;
              captured_total.(l) <- captured_total.(l) + 1
            end
            else begin
              profiled.(l) <- profiled.(l) + 1;
              match
                S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
                  ~n_blocks
              with
              | Some target when pa.(target) = max_int ->
                pa.(target) <- i;
                S.collect states.(l) ~n_blocks:blocks.(target);
                Vec.push predictions.(l) { target; at_instance = i }
              | Some _ | None -> ()
            end
          done;
          if i + 1 >= !next_sample then begin
            sample_lanes Sampler.sample (i + 1);
            next_sample := !next_sample + (Option.get ev).ev_window
          end
        done;
        total := !total + n;
        consume ()
    in
    (match consume () with
     | Error _ as e -> e
     | Ok () ->
       sync ();
       sample_lanes Sampler.final !total;
       let np = Path_table.size table in
       Ok
         (List.init k (fun l ->
              {
                scheme_name = S.name;
                delay = lanes.(l);
                total_instances = !total;
                predictions = Vec.to_array predictions.(l);
                predicted_at = Array.sub !(predicted_at.(l)) 0 np;
                freq = Array.sub !freq 0 np;
                captured = Array.sub !(captured.(l)) 0 np;
                profiled_instances = profiled.(l);
                captured_instances = captured_total.(l);
                counter_space = S.counter_space states.(l);
                profiling_ops = S.profiling_ops states.(l);
                collection_ops = S.collection_ops states.(l);
              })))

let run_stream ?events scheme ~delay rd =
  match run_many_stream ?events scheme ~delays:[ delay ] rd with
  | Error _ as e -> e
  | Ok [ o ] -> Ok o
  | Ok _ -> assert false

let predicted_paths o =
  Array.to_list o.predictions
  |> List.map (fun p -> p.target)
  |> List.sort Int.compare

let pp_summary ppf o =
  Format.fprintf ppf
    "@[<h>%s(delay=%d): instances=%d predicted=%d profiled=%d captured=%d \
     counters=%d ops=%d collect=%d@]"
    o.scheme_name o.delay o.total_instances
    (Array.length o.predictions)
    o.profiled_instances o.captured_instances o.counter_space o.profiling_ops
    o.collection_ops
