module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Batch = Hotpath_trace.Batch
module Lint = Hotpath_trace.Lint
module Diag = Hotpath_analysis.Diag
module Cfg = Hotpath_cfg.Cfg
module Vec = Hotpath_util.Vec
module Events = Hotpath_util.Events

type prediction = { target : int; at_instance : int }

type outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type events = {
  ev_sink : Events.sink;
  ev_window : int;
  ev_is_hot : (int -> bool) option;
}

(* The replay loop runs at a handful of ns per instance, so a sample
   window must amortize a ~µs JSON line over enough instances to keep
   the enabled overhead under the bench's 3% budget. *)
let default_events_window = 32_768

let events ?(window = default_events_window) ?is_hot sink =
  if window < 1 then invalid_arg "Replay.events: window must be >= 1";
  { ev_sink = sink; ev_window = window; ev_is_hot = is_hot }

(* A null-sink events value is "disabled": callers may thread a sink
   unconditionally and still pay nothing when it is the null one. *)
let live = function
  | Some e when Events.is_null e.ev_sink -> None
  | ev -> ev

(* Per-lane window sampling.  All sampling work happens at window
   boundaries — the only per-instance cost events add is one integer
   comparison against [next_sample], which is [max_int] when disabled —
   and nothing here feeds back into the replay state, so outcomes are
   byte-identical with events on and off (property-tested). *)
module Sampler = struct
  type lane = { mutable hw : int; mutable seq : int; mutable last_upto : int }

  type t = {
    ev : events;
    scheme : string;
    delays : int array;
    lanes : lane array;
    c_windows : Events.Registry.counter;
    c_instances : Events.Registry.counter;
  }

  let create ev ~scheme ~delays =
    {
      ev;
      scheme;
      delays;
      lanes = Array.map (fun _ -> { hw = 0; seq = 0; last_upto = 0 }) delays;
      c_windows = Events.Registry.counter "replay.windows";
      c_instances = Events.Registry.counter "replay.instances";
    }

  (* Cumulative hits/noise so far are read off the captured array — the
     operational definition restricted to the instances seen so far —
     rather than tracked per instance, keeping the hot loop untouched. *)
  let sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if counter_space > lane.hw then lane.hw <- counter_space;
    let hits, noise =
      match t.ev.ev_is_hot with
      | None -> (None, None)
      | Some is_hot ->
        let h = ref 0 and nz = ref 0 in
        for pid = 0 to n_paths - 1 do
          let c = captured_arr.(pid) in
          if c > 0 then if is_hot pid then h := !h + c else nz := !nz + c
        done;
        (Some !h, Some !nz)
    in
    Events.replay_window t.ev.ev_sink ~scheme:t.scheme ~delay:t.delays.(l)
      ~seq:lane.seq ~upto
      ~instances:(upto - lane.last_upto)
      ~predictions ~profiled ~captured:captured_total ~profiling_ops
      ~collection_ops ~counter_space ~counter_space_hw:lane.hw ?hits ?noise ();
    Events.Registry.incr t.c_windows;
    Events.Registry.add t.c_instances (upto - lane.last_upto);
    lane.seq <- lane.seq + 1;
    lane.last_upto <- upto

  (* The final (possibly short) window: every lane always gets at least
     one sample, and the last sample's cumulative fields equal the
     outcome's totals — the invariant the differential suite checks. *)
  let final t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
      ~captured_total ~counter_space ~profiling_ops ~collection_ops =
    let lane = t.lanes.(l) in
    if lane.last_upto < upto || lane.seq = 0 then
      sample t l ~upto ~n_paths ~captured_arr ~predictions ~profiled
        ~captured_total ~counter_space ~profiling_ops ~collection_ops
end

(* ------------------------------------------------------------------ *)
(* Online sessions                                                     *)
(* ------------------------------------------------------------------ *)

(* The scheme-state type is existential to the session; instead of a
   first-class-module wrapper per push, [create] closes the typed state
   into three monomorphic closures.  Everything the batch engine does
   per chunk lives in [s_walk]; [Replay.run_many_stream] is a driver
   over these same sessions, which is what makes the online/batch
   equivalence hold by construction rather than by parallel
   maintenance. *)
type t = {
  s_lint : Lint.Incremental.t option;
  s_sync : unit -> unit;
  s_walk : int array -> Bytes.t -> int -> unit;
  s_walk_batch : Batch.t -> unit;
  s_outcomes : unit -> outcome list;
  s_synced : unit -> int;
  s_instances : unit -> int;
  mutable s_done : outcome list option;
}

let first_error diags =
  match List.find_opt (fun d -> d.Diag.severity = Diag.Error) diags with
  | Some d -> Diag.to_string d
  | None -> "trace rejected by linter"

let create ?events:ev ?(lint = true) ?on_predict (module S : Scheme.S) ~delays
    ~program ~table =
  let ev = live ev in
  let lanes = Array.of_list delays in
  let gk = Array.length lanes in
  (* Scheme-side delay validation first, with each scheme's own message
     — same exception surface as the batch engine. *)
  let states = Array.map (fun delay -> S.create ~delay ~program) lanes in
  let linted =
    if lint then
      match Lint.Incremental.create ~program ~table with
      | Error diags -> Error (first_error diags)
      | Ok l -> Ok (Some l)
    else Ok None
  in
  match linted with
  | Error _ as e -> e
  | Ok s_lint ->
    (* Per-path state, grown as the table declares paths. *)
    let capacity = ref 0 in
    let heads = ref [||] and branches = ref [||] and blocks = ref [||] in
    let freq = ref [||] in
    let pa = Array.init gk (fun _ -> ref [||]) in
    let cap = Array.init gk (fun _ -> ref [||]) in
    let synced = ref 0 in
    let grow arr n default =
      let old = !arr in
      let a = Array.make n default in
      Array.blit old 0 a 0 (Array.length old);
      arr := a
    in
    let sync () =
      let np = Path_table.size table in
      if np > !synced then begin
        if np > !capacity then begin
          let n = max np (max 64 (2 * !capacity)) in
          grow heads n 0;
          grow branches n 0;
          grow blocks n 0;
          grow freq n 0;
          Array.iter (fun r -> grow r n max_int) pa;
          Array.iter (fun r -> grow r n 0) cap;
          capacity := n
        end;
        for id = !synced to np - 1 do
          let p = Path_table.path table id in
          !heads.(id) <- Path.head p;
          !branches.(id) <- p.Path.n_branches;
          !blocks.(id) <- Array.length p.Path.blocks
        done;
        synced := np
      end
    in
    let predictions = Array.init gk (fun _ -> Vec.create ()) in
    let profiled = Array.make gk 0 in
    let captured_total = Array.make gk 0 in
    let sampler =
      Option.map (fun e -> Sampler.create e ~scheme:S.name ~delays:lanes) ev
    in
    let next_sample =
      ref (match ev with None -> max_int | Some e -> e.ev_window)
    in
    let total = ref 0 in
    let sample_lanes f upto =
      match sampler with
      | None -> ()
      | Some sm ->
        for l = 0 to gk - 1 do
          f sm l ~upto ~n_paths:!synced ~captured_arr:!(cap.(l))
            ~predictions:(Vec.length predictions.(l))
            ~profiled:profiled.(l) ~captured_total:captured_total.(l)
            ~counter_space:(S.counter_space states.(l))
            ~profiling_ops:(S.profiling_ops states.(l))
            ~collection_ops:(S.collection_ops states.(l))
        done
    in
    (* The per-instance body, identical to the batch engine's walker:
       lane state persists across calls, so pushing [0, n) in one chunk
       or instance-by-instance is the same computation.  Generic over
       how instance [j]'s arrival code is fetched, so the packed-bytes
       chunk and the batched int decode drive the very same loop. *)
    let walk_core ids code_at nc =
      let heads = !heads
      and branches = !branches
      and blocks = !blocks
      and freq = !freq
      and base = !total in
      for j = 0 to nc - 1 do
        let pid = ids.(j) in
        let i = base + j in
        freq.(pid) <- freq.(pid) + 1;
        let head = heads.(pid)
        and n_branches = branches.(pid)
        and n_blocks = blocks.(pid)
        and arrival = Batch.kind_of_code (code_at j) in
        for l = 0 to gk - 1 do
          let pa = !(pa.(l)) in
          if pa.(pid) < i then begin
            let cap = !(cap.(l)) in
            cap.(pid) <- cap.(pid) + 1;
            captured_total.(l) <- captured_total.(l) + 1
          end
          else begin
            profiled.(l) <- profiled.(l) + 1;
            match
              S.observe states.(l) ~head ~arrival ~path_id:pid ~n_branches
                ~n_blocks
            with
            | Some target when pa.(target) = max_int ->
              pa.(target) <- i;
              S.collect states.(l) ~n_blocks:blocks.(target);
              Vec.push predictions.(l) { target; at_instance = i };
              (match on_predict with
               | None -> ()
               | Some f -> f ~delay:lanes.(l) ~target ~at_instance:i)
            | Some _ | None -> ()
          end
        done;
        if i + 1 >= !next_sample then begin
          sample_lanes Sampler.sample (i + 1);
          next_sample := !next_sample + (Option.get ev).ev_window
        end
      done;
      total := base + nc
    in
    let walk ids arrs nc =
      walk_core ids (fun j -> Char.code (Bytes.unsafe_get arrs j)) nc
    in
    let walk_batch (b : Batch.t) =
      let arrs = b.Batch.arrs in
      walk_core b.Batch.ids (fun j -> Array.unsafe_get arrs j) (Batch.length b)
    in
    let outcomes () =
      sync ();
      sample_lanes Sampler.final !total;
      let np = !synced in
      List.init gk (fun l ->
          {
            scheme_name = S.name;
            delay = lanes.(l);
            total_instances = !total;
            predictions = Vec.to_array predictions.(l);
            predicted_at = Array.sub !(pa.(l)) 0 np;
            freq = Array.sub !freq 0 np;
            captured = Array.sub !(cap.(l)) 0 np;
            profiled_instances = profiled.(l);
            captured_instances = captured_total.(l);
            counter_space = S.counter_space states.(l);
            profiling_ops = S.profiling_ops states.(l);
            collection_ops = S.collection_ops states.(l);
          })
    in
    Ok
      { s_lint; s_sync = sync; s_walk = walk; s_walk_batch = walk_batch;
        s_outcomes = outcomes; s_synced = (fun () -> !synced);
        s_instances = (fun () -> !total); s_done = None }

let instances t = t.s_instances ()

let push_chunk t ~ids ~arrivals =
  match t.s_done with
  | Some _ -> Error "Session.push_chunk: session already finished"
  | None ->
    let n = Array.length ids in
    if Bytes.length arrivals <> n then
      Error
        (Printf.sprintf "Session.push_chunk: %d arrivals for %d instances"
           (Bytes.length arrivals) n)
    else begin
      (* The lint gate runs before any session state moves: a rejected
         chunk leaves counters, predictions, and the event stream exactly
         as they were. *)
      let gate =
        match t.s_lint with
        | Some lt ->
          let diags = Lint.Incremental.check_chunk lt ~ids ~arrivals in
          if Diag.has_errors diags then Error (first_error diags) else Ok ()
        | None ->
          (* Unlinted sessions still refuse ids and arrival bytes the
             walker cannot process — undeclared paths would silently read
             zeroed descriptor slots. *)
          t.s_sync ();
          let np = t.s_synced () in
          let err = ref None in
          (try
             Array.iteri
               (fun j id ->
                  if id < 0 || id >= np then begin
                    err :=
                      Some
                        (Printf.sprintf
                           "Session.push_chunk: path id %d out of range (%d \
                            paths)"
                           id np);
                    raise Exit
                  end;
                  let c = Char.code (Bytes.get arrivals j) in
                  if c > 2 then begin
                    err :=
                      Some
                        (Printf.sprintf
                           "Session.push_chunk: invalid arrival code %d" c);
                    raise Exit
                  end)
               ids
           with Exit -> ());
          (match !err with Some e -> Error e | None -> Ok ())
      in
      match gate with
      | Error _ as e -> e
      | Ok () ->
        t.s_sync ();
        t.s_walk ids arrivals n;
        Ok ()
    end

(* Same protocol as [push_chunk] — finished check, validation gate
   before any state moves, then the shared walker — reading the widened
   int codes of a decoded batch.  [push_batch b] after [fill_of_chunk]
   is bit-identical to pushing the chunk itself. *)
let push_batch t (b : Batch.t) =
  match t.s_done with
  | Some _ -> Error "Session.push_batch: session already finished"
  | None ->
    let n = Batch.length b in
    let gate =
      match t.s_lint with
      | Some lt ->
        let diags = Lint.Incremental.check_batch lt b in
        if Diag.has_errors diags then Error (first_error diags) else Ok ()
      | None ->
        t.s_sync ();
        let np = t.s_synced () in
        let ids = b.Batch.ids and arrs = b.Batch.arrs in
        let err = ref None in
        (try
           for j = 0 to n - 1 do
             let id = ids.(j) in
             if id < 0 || id >= np then begin
               err :=
                 Some
                   (Printf.sprintf
                      "Session.push_batch: path id %d out of range (%d paths)"
                      id np);
               raise Exit
             end;
             let c = arrs.(j) in
             if c < 0 || c > 2 then begin
               err :=
                 Some
                   (Printf.sprintf
                      "Session.push_batch: invalid arrival code %d" c);
               raise Exit
             end
           done
         with Exit -> ());
        (match !err with Some e -> Error e | None -> Ok ())
    in
    (match gate with
     | Error _ as e -> e
     | Ok () ->
       t.s_sync ();
       t.s_walk_batch b;
       Ok ())

let code_of_arrival = function
  | Path.Loop_head -> '\000'
  | Path.Entry -> '\001'
  | Path.Continuation -> '\002'

let push t ~path_id ~arrival =
  push_chunk t ~ids:[| path_id |] ~arrivals:(Bytes.make 1 (code_of_arrival arrival))

let finish t =
  match t.s_done with
  | Some os -> os
  | None ->
    let os = t.s_outcomes () in
    t.s_done <- Some os;
    os
