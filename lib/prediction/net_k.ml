module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

(* k-iteration NET: the per-head counter and trip point are exactly
   NET's, but a trip opens a collection window — the tripping tail plus
   the next [k - 1] back-edge-chained tails are all offered, so the
   consumer materializes a k-iteration hot region from one trip.  An
   [Entry]/[Continuation] arrival breaks the chain and closes the
   window early.

   At [k = 1] the window is empty after the trip and the scheme reduces
   bit-identically to [Net] (property-tested). *)

type state = {
  delay : int;
  counters : (Cfg.block_id, int) Hashtbl.t;
  mutable remaining : int;  (* tails still owed by the open window *)
  mutable ops : int;
  mutable collection : int;
}

let make_module k : Scheme.packed =
  (module struct
    type t = state

    let name = "net-k" ^ string_of_int k

    let create ~delay ~program =
      ignore program;
      if delay < 1 then invalid_arg ("Net_k." ^ name ^ ": delay must be >= 1");
      { delay; counters = Hashtbl.create 256; remaining = 0; ops = 0;
        collection = 0 }

    let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
      ignore n_branches;
      ignore n_blocks;
      match arrival with
      | Path.Entry | Path.Continuation ->
        (* The back-edge chain broke: whatever the window still owed is
           not a continuation of the tripping iteration. *)
        t.remaining <- 0;
        None
      | Path.Loop_head ->
        t.ops <- t.ops + 1;
        let count =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.counters head)
        in
        if count >= t.delay then begin
          (* Counter trips: re-arm, predict, and open the window.  A
             trip inside an open window restarts it — the fresher
             evidence wins. *)
          Hashtbl.replace t.counters head 0;
          t.remaining <- k - 1;
          Some path_id
        end
        else begin
          Hashtbl.replace t.counters head count;
          if t.remaining > 0 then begin
            t.remaining <- t.remaining - 1;
            Some path_id
          end
          else None
        end

    let collect t ~n_blocks = t.collection <- t.collection + n_blocks

    let counter_space t = Hashtbl.length t.counters

    let profiling_ops t = t.ops

    let collection_ops t = t.collection
  end : Scheme.S)

let table : (int, Scheme.packed) Hashtbl.t = Hashtbl.create 8

let make k =
  if k < 1 then invalid_arg "Net_k.make: k must be >= 1";
  match Hashtbl.find_opt table k with
  | Some m -> m
  | None ->
    let m = make_module k in
    Hashtbl.add table k m;
    m

(* Same coercion-robust identity trick as [Path_profile_k.recognize]:
   compare the per-[k] [create] closure, the one guaranteed fresh per
   instantiation. *)
let recognize (module M : Scheme.S) =
  Hashtbl.fold
    (fun k (module M' : Scheme.S) acc ->
       if Obj.repr M.create == Obj.repr M'.create then Some k else acc)
    table None
