(** [path-profile-kauto] — k-iteration path profiling with the window
    depth chosen per loop head by {!Hotpath_analysis.Kselect}.

    Windows are interned directly (newest instance first) rather than
    via the fixed-k {!Hotpath_trace.Kpath} trie, so counter space is
    exactly the number of live window counters.  On a program whose
    every head selects k = 1 the scheme keeps the same counters,
    predictions, and profiling ops as {!Path_profile}
    (property-tested). *)

include Scheme.S
