module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Kpath = Hotpath_trace.Kpath
module Vec = Hotpath_util.Vec

(* k-iteration path profiling (D'Elia & Demetrescu): the counter key is
   the window of up to [k] consecutive path instances chained by loop
   back-edges, not the single instance.  The scheme still offers the
   *acyclic* tail id when a window counter trips — the consumer's
   fragment unit is unchanged; only the evidence it trips on is richer.

   At [k = 1] every window is one instance, so the scheme reduces
   bit-identically to [Path_profile]: same ops, same per-path counters,
   same predictions, same counter space (property-tested). *)

type state = {
  delay : int;
  trie : Kpath.t;
  counts : int Vec.t;  (* window node id -> executions seen *)
  mutable cur : int;  (* current window (trie node) of this lane *)
  mutable ops : int;
}

let count_incr counts node =
  while Vec.length counts <= node do
    Vec.push counts 0
  done;
  let c = Vec.get counts node + 1 in
  Vec.set counts node c;
  c

let make_module k : Scheme.packed =
  (module struct
    type t = state

    let name = "path-profile-k" ^ string_of_int k

    let create ~delay ~program =
      ignore program;
      if delay < 1 then
        invalid_arg ("Path_profile_k." ^ name ^ ": delay must be >= 1");
      { delay; trie = Kpath.create ~k; counts = Vec.create (); cur = Kpath.root;
        ops = 0 }

    let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
      ignore head;
      ignore n_blocks;
      (* Same instrumentation charge as acyclic bit tracing: one shift
         per branch plus one table update — the window cursor ride-along
         is the k-slab trick, not extra per-branch work. *)
      t.ops <- t.ops + n_branches + 1;
      t.cur <- Kpath.advance t.trie ~cur:t.cur ~arrival ~pid:path_id;
      let count = count_incr t.counts t.cur in
      if count >= t.delay then Some path_id else None

    let collect _ ~n_blocks = ignore n_blocks

    let counter_space t = Kpath.num_nodes t.trie - 1

    let profiling_ops t = t.ops

    let collection_ops _ = 0
  end : Scheme.S)

let table : (int, Scheme.packed) Hashtbl.t = Hashtbl.create 8

let make k =
  if k < 1 then invalid_arg "Path_profile_k.make: k must be >= 1";
  match Hashtbl.find_opt table k with
  | Some m -> m
  | None ->
    let m = make_module k in
    Hashtbl.add table k m;
    m

(* Module coercions copy module blocks (value fields preserved), so the
   packed value itself is not stable under re-packing — a per-[make k]
   closure is.  [create] is the one that provably captures [k] (via the
   trie constructor and the name): [observe] here does not mention [k]
   at all, so the compiler lifts it to a single static closure shared by
   every instantiation, which would make every k recognize as the same
   one. *)
let recognize (module M : Scheme.S) =
  Hashtbl.fold
    (fun k (module M' : Scheme.S) acc ->
       if Obj.repr M.create == Obj.repr M'.create then Some k else acc)
    table None
