(** Online hot-path prediction schemes (Section 4 of the paper).

    A scheme observes path instances in execution order and occasionally
    predicts a path as hot.  The {!Replay} engine drives a scheme over a
    recorded trace, withholding instances of already-predicted paths (they
    execute inside the code cache in a real system) and accounting the
    scheme's runtime costs:

    - {e profiling operations} — recurring work per observed instance
      (bit shifts and table updates for path-profile-based prediction,
      one counter increment per loop-head arrival for NET);
    - {e collection operations} — one-time work to materialize a predicted
      path (NET's incremental breakpoints; free for path-profile-based
      prediction, which already holds the path);
    - {e counter space} — live counters allocated so far. *)

module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

module type S = sig
  type t

  val name : string

  val create : delay:int -> program:Cfg.program -> t
  (** Fresh scheme state with prediction delay [delay] (the paper's τ).
      @raise Invalid_argument when [delay < 1]. *)

  val observe :
    t ->
    head:Cfg.block_id ->
    arrival:Path.head_kind ->
    path_id:int ->
    n_branches:int ->
    n_blocks:int ->
    int option
  (** Feed one (not-yet-predicted) path instance; [Some p] predicts path
      [p] as hot, effective for subsequent instances.  Offering a path is
      free: collection work is charged via {!collect} only when the
      driver {e accepts} the prediction (the target was not already in
      the code cache) and actually materializes the path. *)

  val collect : t -> n_blocks:int -> unit
  (** Charge the one-time collection cost of materializing an accepted
      prediction whose path spans [n_blocks] blocks.  Called by the
      driver exactly once per accepted prediction; a dropped offer (the
      target was already predicted) costs nothing. *)

  val counter_space : t -> int

  val profiling_ops : t -> int

  val collection_ops : t -> int
end

type packed = (module S)

val name : packed -> string
