module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Kselect = Hotpath_analysis.Kselect
module Vec = Hotpath_util.Vec

(* path-profile-kauto: k-iteration path profiling where the window
   depth follows the statically-selected k of the arriving head.  The
   fixed-k [Kpath] trie cannot host per-head depths, so windows are
   interned directly: on a back-edge arrival at head [h] the previous
   window is truncated to [k_for h - 1] instances before the new one is
   consed on; an [Entry]/[Continuation] arrival restarts the window.

   Counter space counts materialized windows only — unlike the fixed-k
   trie there are no suffix-link interior nodes, so the number is the
   live-counter count exactly (see DESIGN.md).  With k = 1 selected
   everywhere each window is a single instance and the scheme keeps the
   same counters, predictions, and ops as [Path_profile]
   (property-tested). *)

type t = {
  delay : int;
  ksel : Kselect.t;
  ids : (int list, int) Hashtbl.t;  (* window (newest first) -> dense id *)
  counts : int Vec.t;
  mutable window : int list;
  mutable ops : int;
}

let name = "path-profile-kauto"

let create ~delay ~program =
  if delay < 1 then
    invalid_arg "Path_profile_kauto.create: delay must be >= 1";
  {
    delay;
    ksel = Kselect.cached program;
    ids = Hashtbl.create 1024;
    counts = Vec.create ();
    window = [];
    ops = 0;
  }

let rec take n xs =
  if n <= 0 then []
  else match xs with [] -> [] | x :: tl -> x :: take (n - 1) tl

let intern t w =
  match Hashtbl.find_opt t.ids w with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.ids in
    Hashtbl.add t.ids w id;
    Vec.push t.counts 0;
    id

let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
  ignore n_blocks;
  (* Same per-instance charge as the k-trie scheme: one shift per
     branch plus one table update. *)
  t.ops <- t.ops + n_branches + 1;
  (match arrival with
   | Path.Entry | Path.Continuation -> t.window <- [ path_id ]
   | Path.Loop_head ->
     t.window <- path_id :: take (Kselect.k_for t.ksel head - 1) t.window);
  let id = intern t t.window in
  let c = Vec.get t.counts id + 1 in
  Vec.set t.counts id c;
  if c >= t.delay then Some path_id else None

let collect _ ~n_blocks = ignore n_blocks

let counter_space t = Hashtbl.length t.ids

let profiling_ops t = t.ops

let collection_ops _ = 0
