(** [static] — zero-profiling hot-path prediction from the Wu–Larus
    estimate alone.

    At [create], the {!Hotpath_analysis.Freq} estimate ranks the static
    head set by estimated flow; heads clearing the paper's 0.1% hot
    threshold are armed.  At run time the scheme keeps no counters and
    charges zero profiling operations: the first tail executing at an
    armed head is predicted outright (each head fires once).  The
    prediction delay is validated but inert — the series is flat in tau
    by construction.

    This is the "how much accuracy with {e zero} profiling?" baseline:
    fig2/3/4/5's static column, the row every profiled scheme must
    beat. *)

include Scheme.S
