(** Online prediction sessions: the replay engine's per-instance walker
    exposed as an incremental push API.

    A session holds the full multiplexed replay state for one scheme and
    a set of delay lanes — scheme state, per-path frequency and capture
    counters, accepted predictions, event sampler cursors — and accepts
    the instance stream in caller-chosen pieces: one instance at a time
    ({!push}), decoded HOTPATH3 chunks ({!push_chunk}), or anything in
    between.  Chunking is pure loop tiling: pushing a trace in any
    granularity (the differential suite drives 1, prime-sized, and
    larger-than-trace chunks) produces outcomes, counter registries, and
    event streams bit-identical to the batch engine on the same stream —
    a guarantee that holds by construction, because
    {!Replay.run_many_stream} is itself a driver over these sessions.

    Sessions also carry the trace lint gate online (on by default): each
    chunk is checked against the program — newly declared paths, then
    every inter-instance hand-off including the seam from the previous
    chunk — {e before} any session state moves, so a malformed trace
    pushed over a socket is rejected without corrupting the session
    ([Hotpath_trace.Lint.Incremental]).

    Sessions are single-owner (not thread-safe), like the rest of the
    per-lane replay state. *)

module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Cfg = Hotpath_cfg.Cfg
module Events = Hotpath_util.Events

type prediction = { target : int; at_instance : int }
(** An accepted prediction: path [target] predicted hot at (0-based)
    instance index [at_instance]. *)

type outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}
(** One delay lane's result; identical to [Replay.outcome] (which is a
    re-export of this type). *)

type events = {
  ev_sink : Events.sink;
  ev_window : int;
  ev_is_hot : (int -> bool) option;
}
(** Event-emission configuration, shared with [Replay].  Exposed
    concretely so drivers can rebind [ev_sink] (per-group line buffers in
    parallel replay). *)

val default_events_window : int

val events : ?window:int -> ?is_hot:(int -> bool) -> Events.sink -> events
(** See [Replay.events].  @raise Invalid_argument when [window < 1]. *)

val live : events option -> events option
(** Treat a null-sink events value as disabled. *)

(** Per-lane window sampler, shared with the batch engine's kernels.
    Internal plumbing — exposed for [Replay], not part of the stable
    surface. *)
module Sampler : sig
  type t

  val create : events -> scheme:string -> delays:int array -> t

  val sample :
    t ->
    int ->
    upto:int ->
    n_paths:int ->
    captured_arr:int array ->
    predictions:int ->
    profiled:int ->
    captured_total:int ->
    counter_space:int ->
    profiling_ops:int ->
    collection_ops:int ->
    unit

  val final :
    t ->
    int ->
    upto:int ->
    n_paths:int ->
    captured_arr:int array ->
    predictions:int ->
    profiled:int ->
    captured_total:int ->
    counter_space:int ->
    profiling_ops:int ->
    collection_ops:int ->
    unit
end

type t

val create :
  ?events:events ->
  ?lint:bool ->
  ?on_predict:(delay:int -> target:int -> at_instance:int -> unit) ->
  (module Scheme.S) ->
  delays:int list ->
  program:Cfg.program ->
  table:Path_table.t ->
  (t, string) result
(** [create (module S) ~delays ~program ~table] opens a session
    multiplexing one lane per delay, against a path table that may keep
    growing (the streaming decode protocol extends it between chunks; the
    session syncs per-path state on every push).

    [lint] (default [true]) runs the attach-time program gate
    immediately — [Error] if the program fails the structural linter —
    and the chunk-wise trace linter on every push.  [on_predict] is
    called synchronously at each accepted prediction, in lane order
    within an instance — the online counterpart of reading
    [outcome.predictions] at the end.  It must not mutate the session.

    @raise Invalid_argument for delays the scheme itself rejects
    (mirroring the batch engine). *)

val push_chunk : t -> ids:int array -> arrivals:Bytes.t -> (unit, string) result
(** Feed one decoded chunk ([Serialize.Stream.chunk] parts).  On
    [Error] — lint rejection, undeclared path id, invalid arrival byte,
    length mismatch, or a finished session — no session state has
    changed: counters, predictions, and the event stream are exactly as
    before the call, so a server can drop one bad client without
    poisoning the session-independent state it shares. *)

val push_batch : t -> Hotpath_trace.Batch.t -> (unit, string) result
(** {!push_chunk} over a decoded {!Hotpath_trace.Batch.t} — the same
    validation gate (incremental lint when enabled, id-range and
    arrival-code checks otherwise), the same no-state-change-on-[Error]
    contract, the same walker.  Pushing a batch filled from a chunk is
    bit-identical to pushing the chunk; the batch is read only during
    the call and may be refilled immediately after. *)

val push : t -> path_id:int -> arrival:Path.head_kind -> (unit, string) result
(** Single-instance {!push_chunk}. *)

val instances : t -> int
(** Instances accepted so far. *)

val finish : t -> outcome list
(** Close the session: emit each lane's final event sample and return
    the outcomes in delay order — bit-identical to the batch engine run
    over the concatenation of everything pushed.  Idempotent; after
    [finish] every push returns [Error]. *)
