module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

type t = {
  delay : int;
  counters : (int, int) Hashtbl.t;  (* path id -> executions seen *)
  mutable ops : int;
}

let name = "path-profile"

let create ~delay ~program =
  ignore program;
  if delay < 1 then invalid_arg "Path_profile.create: delay must be >= 1";
  { delay; counters = Hashtbl.create 1024; ops = 0 }

let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
  ignore head;
  ignore arrival;
  ignore n_blocks;
  (* Bit tracing: one shift per branch on the path, one table update. *)
  t.ops <- t.ops + n_branches + 1;
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counters path_id) in
  Hashtbl.replace t.counters path_id count;
  (* [>=] rather than [=]: after a code-cache flush a consumer may observe
     a path whose counter is already past the threshold, and the path must
     be re-predicted immediately rather than never. *)
  if count >= t.delay then Some path_id else None

(* Path-profile-based prediction already holds the predicted path in its
   profile: materializing it is free. *)
let collect _ ~n_blocks = ignore n_blocks

let counter_space t = Hashtbl.length t.counters

let profiling_ops t = t.ops

let collection_ops _ = 0
