(** Online prediction serving: a Unix-domain-socket daemon that ingests
    HOTPATH3 trace streams from many concurrent clients and replays each
    through an online {!Hotpath_prediction.Session}.

    {2 Wire protocol}

    A client connects, sends one handshake line

    {v HPSERVE1 <tenant> <scheme> <d1,d2,...>\n v}

    (scheme per the {!Hotpath_prediction.Schemes} grammar —
    [net|net-once|let|path-profile|static|net-k<k>|net-kauto|path-profile-k<k>|path-profile-kauto],
    [k] a canonical decimal in [\[1, 32\]]; delays positive integers),
    then
    streams a raw HOTPATH3 trace — exactly the bytes
    {!Hotpath_trace.Serialize.Stream} writes — in arbitrarily sized
    pieces, half-closes its send side, and reads the reply to EOF.  The
    reply is JSON-Lines in the {!Hotpath_util.Events} wire format: one
    [serve.result] line per delay lane (instances, predictions,
    profiled/captured counts, cost-model totals, and [pred_hash] — an
    order-sensitive hash of the (target, at_instance) prediction pairs)
    followed by [serve.ok]; or a single [serve.error] line with a typed
    [code]: ["handshake"], ["busy"] (tenant already streaming),
    ["decode"] (framing/CRC), ["lint"] (trace rejected by the
    attach/push gate), ["disconnect"] (EOF mid-frame), ["io"].

    {2 Semantics}

    The daemon is one single-threaded select loop; each connection owns
    a frame decoder, a bounded chunk queue, and a session, so a failure
    is always confined to its own tenant.  Backpressure is structural:
    when a tenant's queue is full its socket leaves the read set, the
    kernel buffer fills, and the client's writes stall — server memory
    stays bounded at [queue_capacity] decoded chunks per tenant.  Lint
    runs online (program gate at attach, chunk gate before any state
    moves), so a malformed trace is refused without partial mutation and
    the reply says which diagnostic fired. *)

val outcome_hash : Hotpath_prediction.Session.outcome -> int
(** The [pred_hash] reply field: order-sensitive fold over the lane's
    (target, at_instance) prediction pairs.  Exposed so clients and
    tests can recompute it from a local replay. *)

module Server : sig
  type t

  type stats = {
    accepted : int;  (** Connections accepted. *)
    completed : int;  (** Tenant streams replayed to a [serve.ok]. *)
    errored : int;  (** Typed per-connection failures. *)
    chunks : int;  (** Instance chunks replayed across all tenants. *)
    instances : int;  (** Instances replayed in completed streams. *)
    queue_high_water : int;
        (** Max occupancy any tenant's chunk queue ever reached — proof
            the backpressure bound actually bit (or never needed to). *)
  }

  val create :
    ?events:Hotpath_util.Events.sink ->
    ?queue_capacity:int ->
    ?drain_burst:int ->
    socket_path:string ->
    unit ->
    (t, string) result
  (** Bind and listen on [socket_path] (an existing file there is
      removed first).  The socket accepts connections as soon as this
      returns, so a server can be created in one domain and {!run} in
      another with no ready-handshake.  [events] (default null)
      receives the daemon's [serve.*] lifecycle events.
      [queue_capacity] (default 8) bounds in-flight decoded chunks per
      tenant; [drain_burst] (default 4) caps chunks replayed per tenant
      per loop tick, so one huge stream cannot starve the others.
      @raise Invalid_argument when either is [< 1]. *)

  val run : t -> unit
  (** Serve until {!stop}.  Blocks; run it in its own domain.  On
      shutdown every still-active connection gets a typed ["io"] error,
      a final [serve.stats] event is emitted, and the socket file is
      removed. *)

  val stop : t -> unit
  (** Ask a running {!run} to shut down (domain-safe, idempotent; a
      self-pipe wakes the select loop). *)

  val stats : t -> stats
  (** Lifetime counters.  Read after {!run} returns (the loop mutates
      them without synchronization). *)

  val socket_path : t -> string
end

module Client : sig
  val wait_ready : ?attempts:int -> ?delay_s:float -> string -> bool
  (** Poll-connect until the daemon accepts (default 500 × 10ms).  The
      probe connection is closed without a handshake; the server treats
      that as silent, not an error. *)

  val send :
    socket_path:string ->
    tenant:string ->
    scheme:string ->
    delays:int list ->
    ?chunk_bytes:int ->
    string ->
    ((string * Hotpath_util.Events.value) list list, string) result
  (** [send ~socket_path ~tenant ~scheme ~delays trace] runs one whole
      client exchange: handshake, stream [trace] (a serialized HOTPATH3
      string, sent in [chunk_bytes]-sized writes, default 64 KiB),
      half-close, read the reply to EOF.  Returns the parsed reply
      lines in order — inspect with {!Hotpath_util.Events.kind} /
      [find_int] / [find_str].  [Error] is transport-level only
      (connect failure, no reply); a [serve.error] reply is [Ok] with
      the error line in it, so callers can distinguish "could not
      reach the daemon" from "the daemon refused the stream".
      Blocking; safe to call from many domains at once (one socket per
      call).  @raise Invalid_argument when [chunk_bytes < 1]. *)
end
