(* Online prediction serving over Unix domain sockets.

   One single-threaded select loop multiplexes every client: per
   connection a handshake line names the tenant, scheme, and delay
   lanes, then the client streams a raw HOTPATH3 trace.  Frames are
   reassembled by [Serialize.Stream.Decoder] and decoded straight into
   pooled dense [Batch] buffers ([Decoder.next_batch] — no per-frame
   ids/arrivals allocation) that queue into a bounded [Bqueue] per
   tenant (queue full -> the fd leaves the read set, so backpressure is
   the kernel socket buffer filling up, not server memory), and a
   [Session] replays them through the lint gate ([Session.push_batch]).
   Pump and drain run on the same thread, so the batch free list needs
   no synchronization: a batch is either in the pool, in the queue, or
   being pushed.
   Every failure mode — torn handshake, duplicate tenant, decode error,
   lint rejection, mid-stream disconnect — downgrades exactly one
   connection to a typed error reply; sessions never share mutable
   state, so tenants cannot cross-contaminate. *)

module Events = Hotpath_util.Events
module Bqueue = Hotpath_util.Bqueue
module Stream = Hotpath_trace.Serialize.Stream
module Decoder = Hotpath_trace.Serialize.Stream.Decoder
module Batch = Hotpath_trace.Batch
module Session = Hotpath_prediction.Session
module Scheme = Hotpath_prediction.Scheme

module Schemes = Hotpath_prediction.Schemes

(* Order-sensitive FNV-1a-style fold over (target, at_instance) pairs:
   lets a client assert two serves of the same trace predicted the same
   paths at the same positions without shipping the full list back. *)
let outcome_hash (o : Session.outcome) =
  let h = ref 0x811c9dc5 in
  let mix v = h := (!h lxor v) * 0x01000193 land max_int in
  Array.iter
    (fun (p : Session.prediction) ->
      mix p.Session.target;
      mix p.Session.at_instance)
    o.Session.predictions;
  !h

let ignore_sigpipe () =
  (* A peer that disappears between select and write must surface as
     EPIPE, not kill the process. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let max_handshake = 4096

module Server = struct
  type stats = {
    accepted : int;
    completed : int;
    errored : int;
    chunks : int;
    instances : int;
    queue_high_water : int;
  }

  type stream_state = {
    st_tenant : string;
    st_scheme : string;
    st_packed : (module Scheme.S);
    st_delays : int list;
    st_decoder : Decoder.t;
    st_queue : Batch.t Bqueue.t;
    (* Free batches, recycled by [drain]; at most queue capacity + 1
       ever live per tenant. *)
    mutable st_pool : Batch.t list;
    mutable st_session : Session.t option;
    mutable st_end : bool;
    mutable st_chunks : int;
  }

  type closing = { cl_reply : string; mutable cl_off : int }

  type conn_state =
    | Handshake of Buffer.t
    | Streaming of stream_state
    | Closing of closing

  type conn = {
    c_fd : Unix.file_descr;
    c_id : int;
    mutable c_tenant : string;
    mutable c_owns_tenant : bool;
    mutable c_eof : bool;
    mutable c_state : conn_state;
    mutable c_closed : bool;
  }

  type t = {
    t_listen : Unix.file_descr;
    t_path : string;
    t_events : Events.sink;
    t_queue_capacity : int;
    t_drain_burst : int;
    t_stop_r : Unix.file_descr;
    t_stop_w : Unix.file_descr;
    t_scratch : Bytes.t;
    t_tenants : (string, int) Hashtbl.t;
    mutable t_conns : conn list;
    mutable t_next_id : int;
    mutable t_stopping : bool;
    mutable t_accepted : int;
    mutable t_completed : int;
    mutable t_errored : int;
    mutable t_chunks : int;
    mutable t_instances : int;
    mutable t_queue_hw : int;
  }

  let socket_path t = t.t_path

  let create ?(events = Events.null) ?(queue_capacity = 8) ?(drain_burst = 4)
      ~socket_path () =
    if queue_capacity < 1 then
      invalid_arg "Serve.Server.create: queue_capacity must be >= 1";
    if drain_burst < 1 then
      invalid_arg "Serve.Server.create: drain_burst must be >= 1";
    ignore_sigpipe ();
    (try if Sys.file_exists socket_path then Sys.remove socket_path
     with Sys_error _ -> ());
    let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind listen (Unix.ADDR_UNIX socket_path) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "bind %s: %s" socket_path (Unix.error_message e))
    | () ->
      Unix.listen listen 64;
      Unix.set_nonblock listen;
      let stop_r, stop_w = Unix.pipe () in
      Ok
        {
          t_listen = listen;
          t_path = socket_path;
          t_events = events;
          t_queue_capacity = queue_capacity;
          t_drain_burst = drain_burst;
          t_stop_r = stop_r;
          t_stop_w = stop_w;
          t_scratch = Bytes.create 65536;
          t_tenants = Hashtbl.create 16;
          t_conns = [];
          t_next_id = 0;
          t_stopping = false;
          t_accepted = 0;
          t_completed = 0;
          t_errored = 0;
          t_chunks = 0;
          t_instances = 0;
          t_queue_hw = 0;
        }

  let stop t =
    try ignore (Unix.write t.t_stop_w (Bytes.make 1 'x') 0 1 : int)
    with Unix.Unix_error _ -> ()

  let stats t =
    {
      accepted = t.t_accepted;
      completed = t.t_completed;
      errored = t.t_errored;
      chunks = t.t_chunks;
      instances = t.t_instances;
      queue_high_water = t.t_queue_hw;
    }

  (* ---------------------------------------------------------------- *)
  (* Per-connection transitions                                        *)
  (* ---------------------------------------------------------------- *)

  let release_tenant t conn =
    if conn.c_owns_tenant then begin
      conn.c_owns_tenant <- false;
      match Hashtbl.find_opt t.t_tenants conn.c_tenant with
      | Some id when id = conn.c_id -> Hashtbl.remove t.t_tenants conn.c_tenant
      | _ -> ()
    end

  let note_queue_hw t conn =
    match conn.c_state with
    | Streaming st ->
      t.t_queue_hw <- max t.t_queue_hw (Bqueue.high_water st.st_queue)
    | Handshake _ | Closing _ -> ()

  let set_closing t conn reply =
    note_queue_hw t conn;
    conn.c_state <- Closing { cl_reply = reply; cl_off = 0 }

  let error_reply ~conn ~tenant ~code ~message =
    let buf = Buffer.create 128 in
    Events.serve_error (Events.of_buffer buf) ~conn ~tenant ~code ~message;
    Buffer.contents buf

  let fail t conn ~code ~message =
    t.t_errored <- t.t_errored + 1;
    Events.serve_error t.t_events ~conn:conn.c_id ~tenant:conn.c_tenant ~code
      ~message;
    release_tenant t conn;
    set_closing t conn
      (error_reply ~conn:conn.c_id ~tenant:conn.c_tenant ~code ~message)

  let close_conn t conn =
    if not conn.c_closed then begin
      conn.c_closed <- true;
      release_tenant t conn;
      note_queue_hw t conn;
      try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
    end

  let attach t conn st program =
    match
      Session.create ~lint:true st.st_packed ~delays:st.st_delays ~program
        ~table:(Decoder.table st.st_decoder)
    with
    | exception Invalid_argument m -> fail t conn ~code:"handshake" ~message:m
    | Error e -> fail t conn ~code:"lint" ~message:e
    | Ok session ->
      st.st_session <- Some session;
      Events.serve_attach t.t_events ~conn:conn.c_id ~tenant:st.st_tenant
        ~scheme:st.st_scheme ~delays:(List.length st.st_delays)

  let acquire_batch st =
    match st.st_pool with
    | b :: rest ->
      st.st_pool <- rest;
      b
    | [] -> Batch.create ()

  let release_batch st b =
    Batch.clear b;
    st.st_pool <- b :: st.st_pool

  (* Decode buffered bytes into the batch queue until the queue is full,
     the frames run out, or the end frame lands.  Instance frames decode
     straight into a pooled batch; cold frames borrow one and return it
     untouched. *)
  let rec pump t conn st =
    match conn.c_state with
    | Streaming _ when (not st.st_end) && not (Bqueue.is_full st.st_queue)
      -> (
      let batch = acquire_batch st in
      match Decoder.next_batch st.st_decoder batch with
      | Error e ->
        release_batch st batch;
        fail t conn ~code:"decode" ~message:e
      | Ok Decoder.B_need_more -> release_batch st batch
      | Ok (Decoder.B_program program) ->
        release_batch st batch;
        attach t conn st program;
        pump t conn st
      | Ok Decoder.B_batch ->
        let pushed = Bqueue.push st.st_queue batch in
        assert pushed;
        pump t conn st
      | Ok (Decoder.B_end _) ->
        release_batch st batch;
        st.st_end <- true)
    | _ -> ()

  let reply_ok ~tenant outcomes =
    let buf = Buffer.create 512 in
    let sink = Events.of_buffer buf in
    List.iter
      (fun (o : Session.outcome) ->
        Events.emit sink ~kind:"serve.result"
          [
            ("tenant", Events.Str tenant);
            ("scheme", Events.Str o.Session.scheme_name);
            ("delay", Events.Int o.Session.delay);
            ("instances", Events.Int o.Session.total_instances);
            ("predictions", Events.Int (Array.length o.Session.predictions));
            ("profiled", Events.Int o.Session.profiled_instances);
            ("captured", Events.Int o.Session.captured_instances);
            ("counter_space", Events.Int o.Session.counter_space);
            ("profiling_ops", Events.Int o.Session.profiling_ops);
            ("collection_ops", Events.Int o.Session.collection_ops);
            ("pred_hash", Events.Int (outcome_hash o));
          ])
      outcomes;
    Events.emit sink ~kind:"serve.ok" [ ("tenant", Events.Str tenant) ];
    Buffer.contents buf

  let finish_conn t conn st session =
    let outcomes = Session.finish session in
    let instances = Session.instances session in
    let predictions =
      List.fold_left
        (fun a (o : Session.outcome) -> a + Array.length o.Session.predictions)
        0 outcomes
    in
    t.t_instances <- t.t_instances + instances;
    t.t_completed <- t.t_completed + 1;
    Events.serve_done t.t_events ~conn:conn.c_id ~tenant:st.st_tenant
      ~instances ~chunks:st.st_chunks ~predictions;
    release_tenant t conn;
    set_closing t conn (reply_ok ~tenant:st.st_tenant outcomes)

  let drain t conn st session =
    let budget = ref t.t_drain_burst in
    let blocked = ref false in
    while (not !blocked) && !budget > 0 do
      match Bqueue.pop st.st_queue with
      | None -> blocked := true
      | Some batch -> (
        decr budget;
        let res = Session.push_batch session batch in
        release_batch st batch;
        match res with
        | Ok () ->
          st.st_chunks <- st.st_chunks + 1;
          t.t_chunks <- t.t_chunks + 1
        | Error e ->
          blocked := true;
          fail t conn ~code:"lint" ~message:e)
    done

  (* One scheduling step for a streaming connection: replay up to a
     burst of queued chunks, refill the queue from the decoder, then
     settle — finish (end frame seen and fully replayed) or declare a
     disconnect (EOF with the decoder stuck mid-frame). *)
  let process t conn =
    match conn.c_state with
    | Handshake _ | Closing _ -> ()
    | Streaming st -> (
      (match st.st_session with
      | Some session -> drain t conn st session
      | None -> ());
      match conn.c_state with
      | Handshake _ | Closing _ -> ()
      | Streaming _ -> (
        pump t conn st;
        match conn.c_state with
        | Handshake _ | Closing _ -> ()
        | Streaming _ ->
          if st.st_end then begin
            if Bqueue.is_empty st.st_queue then
              match st.st_session with
              | Some session -> finish_conn t conn st session
              | None -> ()
          end
          else if conn.c_eof && not (Bqueue.is_full st.st_queue) then
            fail t conn ~code:"disconnect"
              ~message:
                (Printf.sprintf
                   "connection closed mid-stream (%d bytes buffered)"
                   (Decoder.buffered st.st_decoder))))

  let on_eof t conn =
    conn.c_eof <- true;
    match conn.c_state with
    | Handshake buf ->
      if Buffer.length buf = 0 then
        (* Silent connect/close probe (readiness checks); not an error. *)
        close_conn t conn
      else
        fail t conn ~code:"handshake"
          ~message:"connection closed during handshake"
    | Streaming _ | Closing _ ->
      (* Streaming: legal — the client half-closed after its last byte;
         [process] settles it into finish or disconnect. *)
      ()

  let handshake t conn line =
    let parts =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    match parts with
    | [ magic; tenant; scheme; delays ] when magic = "HPSERVE1" -> (
      match Schemes.of_name scheme with
      | Error message -> fail t conn ~code:"handshake" ~message
      | Ok packed -> (
        match
          String.split_on_char ',' delays
          |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some d when d >= 1 -> d
                 | Some _ | None -> raise Exit)
        with
        | exception Exit ->
          fail t conn ~code:"handshake"
            ~message:"delays must be a comma-separated list of integers >= 1"
        | ds ->
          if Hashtbl.mem t.t_tenants tenant then begin
            conn.c_tenant <- tenant;
            fail t conn ~code:"busy"
              ~message:(Printf.sprintf "tenant %s is already streaming" tenant)
          end
          else begin
            conn.c_tenant <- tenant;
            conn.c_owns_tenant <- true;
            Hashtbl.replace t.t_tenants tenant conn.c_id;
            conn.c_state <-
              Streaming
                {
                  st_tenant = tenant;
                  st_scheme = scheme;
                  st_packed = packed;
                  st_delays = ds;
                  st_decoder = Decoder.create ();
                  st_queue = Bqueue.create ~capacity:t.t_queue_capacity;
                  st_pool = [];
                  st_session = None;
                  st_end = false;
                  st_chunks = 0;
                }
          end))
    | _ ->
      fail t conn ~code:"handshake"
        ~message:
          "malformed handshake (want: HPSERVE1 <tenant> <scheme> <d1,d2,...>)"

  let rec feed_bytes t conn data pos len =
    match conn.c_state with
    | Closing _ ->
      (* Draining a failed client so it can finish writing and collect
         the error reply; bytes go nowhere. *)
      ()
    | Streaming st ->
      Decoder.feed st.st_decoder data ~pos ~len;
      pump t conn st
    | Handshake buf -> (
      let nl = ref (-1) in
      (try
         for i = pos to pos + len - 1 do
           if data.[i] = '\n' then begin
             nl := i;
             raise Exit
           end
         done
       with Exit -> ());
      match !nl with
      | -1 ->
        Buffer.add_substring buf data pos len;
        if Buffer.length buf > max_handshake then
          fail t conn ~code:"handshake" ~message:"handshake line too long"
      | nl ->
        Buffer.add_substring buf data pos (nl - pos);
        if Buffer.length buf > max_handshake then
          fail t conn ~code:"handshake" ~message:"handshake line too long"
        else begin
          handshake t conn (Buffer.contents buf);
          let rest = pos + len - (nl + 1) in
          if rest > 0 then feed_bytes t conn data (nl + 1) rest
        end)

  let handle_read t conn =
    match Unix.read conn.c_fd t.t_scratch 0 (Bytes.length t.t_scratch) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> on_eof t conn
    | 0 -> on_eof t conn
    | n -> feed_bytes t conn (Bytes.sub_string t.t_scratch 0 n) 0 n

  let handle_write _t conn cl =
    let len = String.length cl.cl_reply - cl.cl_off in
    if len > 0 then
      match Unix.write_substring conn.c_fd cl.cl_reply cl.cl_off len with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
        (* Peer is gone; abandon the reply so the conn can close. *)
        cl.cl_off <- String.length cl.cl_reply;
        conn.c_eof <- true
      | n -> cl.cl_off <- cl.cl_off + n

  let accept_burst t =
    let rec go () =
      match Unix.accept t.t_listen with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((ECONNABORTED | EINTR), _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
        Unix.set_nonblock fd;
        let id = t.t_next_id in
        t.t_next_id <- id + 1;
        t.t_accepted <- t.t_accepted + 1;
        Events.serve_accept t.t_events ~conn:id;
        t.t_conns <-
          t.t_conns
          @ [
              {
                c_fd = fd;
                c_id = id;
                c_tenant = "";
                c_owns_tenant = false;
                c_eof = false;
                c_state = Handshake (Buffer.create 64);
                c_closed = false;
              };
            ];
        go ()
    in
    go ()

  let work_pending t =
    List.exists
      (fun conn ->
        match conn.c_state with
        | Streaming st ->
          conn.c_eof || not (Bqueue.is_empty st.st_queue)
        | Handshake _ | Closing _ -> false)
      t.t_conns

  let drain_stop_pipe t =
    let b = Bytes.create 16 in
    try ignore (Unix.read t.t_stop_r b 0 16 : int)
    with Unix.Unix_error _ -> ()

  let run t =
    ignore_sigpipe ();
    let rec loop () =
      t.t_conns <- List.filter (fun c -> not c.c_closed) t.t_conns;
      if not t.t_stopping then begin
        List.iter (process t) t.t_conns;
        List.iter
          (fun conn ->
            match conn.c_state with
            | Closing cl
              when cl.cl_off >= String.length cl.cl_reply && conn.c_eof ->
              close_conn t conn
            | _ -> ())
          t.t_conns;
        t.t_conns <- List.filter (fun c -> not c.c_closed) t.t_conns;
        let reads =
          t.t_stop_r :: t.t_listen
          :: List.filter_map
               (fun conn ->
                 if conn.c_eof then None
                 else
                   match conn.c_state with
                   | Handshake _ | Closing _ -> Some conn.c_fd
                   | Streaming st ->
                     (* Backpressure: a full chunk queue takes the fd out
                        of the read set; bytes pile up in the kernel
                        buffer and the client's writes stall. *)
                     if Bqueue.is_full st.st_queue then None
                     else Some conn.c_fd)
               t.t_conns
        in
        let writes =
          List.filter_map
            (fun conn ->
              match conn.c_state with
              | Closing cl when cl.cl_off < String.length cl.cl_reply ->
                Some conn.c_fd
              | _ -> None)
            t.t_conns
        in
        let timeout = if work_pending t then 0.0 else 0.2 in
        let rs, ws, _ =
          try Unix.select reads writes [] timeout
          with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        if List.mem t.t_stop_r rs then begin
          drain_stop_pipe t;
          t.t_stopping <- true
        end;
        if (not t.t_stopping) && List.mem t.t_listen rs then accept_burst t;
        List.iter
          (fun conn ->
            if (not conn.c_closed) && List.mem conn.c_fd rs then
              handle_read t conn)
          t.t_conns;
        List.iter
          (fun conn ->
            if not conn.c_closed then
              match conn.c_state with
              | Closing cl when List.mem conn.c_fd ws -> handle_write t conn cl
              | _ -> ())
          t.t_conns;
        loop ()
      end
    in
    loop ();
    (* Shutdown: best-effort flush of pending replies, typed error for
       anything still mid-flight, then emit lifetime stats. *)
    let active =
      List.fold_left
        (fun n conn ->
          (match conn.c_state with
          | Closing cl -> handle_write t conn cl
          | Handshake _ | Streaming _ ->
            t.t_errored <- t.t_errored + 1;
            Events.serve_error t.t_events ~conn:conn.c_id
              ~tenant:conn.c_tenant ~code:"io" ~message:"server shutting down");
          close_conn t conn;
          n + 1)
        0 t.t_conns
    in
    t.t_conns <- [];
    Events.serve_stats t.t_events ~accepted:t.t_accepted
      ~completed:t.t_completed ~errored:t.t_errored ~active
      ~instances:t.t_instances;
    (try Unix.close t.t_listen with Unix.Unix_error _ -> ());
    (try Unix.close t.t_stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.t_stop_w with Unix.Unix_error _ -> ());
    try Sys.remove t.t_path with Sys_error _ -> ()
end

module Client = struct
  let wait_ready ?(attempts = 500) ?(delay_s = 0.01) socket_path =
    let rec go n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n <= 1 then false
        else begin
          Unix.sleepf delay_s;
          go (n - 1)
        end
    in
    go attempts

  let send ~socket_path ~tenant ~scheme ~delays ?(chunk_bytes = 65536) trace =
    if chunk_bytes < 1 then
      invalid_arg "Serve.Client.send: chunk_bytes must be >= 1";
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" socket_path (Unix.error_message e))
    | () ->
      let send_all s pos len =
        let off = ref pos in
        while !off < pos + len do
          off := !off + Unix.write_substring fd s !off (pos + len - !off)
        done
      in
      let read_reply () =
        let buf = Buffer.create 1024 in
        let b = Bytes.create 4096 in
        let rec go () =
          match Unix.read fd b 0 4096 with
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf b 0 n;
            go ()
        in
        go ();
        Buffer.contents buf
      in
      let raw =
        let header =
          Printf.sprintf "HPSERVE1 %s %s %s\n" tenant scheme
            (String.concat "," (List.map string_of_int delays))
        in
        match send_all header 0 (String.length header) with
        | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
          (* The server rejected us mid-send; its reply (if any) may
             still be in our receive buffer. *)
          read_reply ()
        | () -> (
          match
            let len = String.length trace in
            let off = ref 0 in
            while !off < len do
              let n = min chunk_bytes (len - !off) in
              send_all trace !off n;
              off := !off + n
            done
          with
          | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
            read_reply ()
          | () ->
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            read_reply ())
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if raw = "" then Error "no reply from server"
      else begin
        let lines =
          String.split_on_char '\n' raw
          |> List.filter (fun l -> String.trim l <> "")
        in
        let parsed =
          List.map
            (fun l ->
              match Events.parse_line l with
              | Ok fields -> fields
              | Error e ->
                [
                  ("ev", Events.Str "client.parse-error");
                  ("message", Events.Str e);
                  ("line", Events.Str l);
                ])
            lines
        in
        Ok parsed
      end
end
