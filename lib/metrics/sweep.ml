module Replay = Hotpath_prediction.Replay
module Events = Hotpath_util.Events

type point = {
  delay : int;
  profiled_pct : float;
  hit_rate : float;
  noise_rate : float;
  predictions : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

type timing = { wall_s : float; instances : int; instances_per_s : float }

(* The paper sweeps 10 .. 1,000,000 on runs with flow in the billions.  At
   this reproduction's scaled flow (~10^5), small delays map to the same
   freq(p)/tau regime the paper's 10..100 occupies, so the sweep starts at
   2. *)
let default_delays =
  [ 2; 3; 5; 10; 20; 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000;
    50_000; 100_000; 200_000; 500_000; 1_000_000 ]

let point_of_outcome (o : Replay.outcome) hot =
  let rates = Rates.operational o hot in
  {
    delay = o.Replay.delay;
    profiled_pct = rates.Rates.profiled_flow_pct;
    hit_rate = rates.Rates.hit_rate;
    noise_rate = rates.Rates.noise_rate;
    predictions = Array.length o.Replay.predictions;
    counter_space = o.Replay.counter_space;
    profiling_ops = o.Replay.profiling_ops;
    collection_ops = o.Replay.collection_ops;
  }

let scheme_name = Hotpath_prediction.Scheme.name

(* Sweep-level emission: one [sweep_point] per delay (after the shared
   traversal finishes — points exist only then) and, on the timed
   variants, a [sweep_done] with the wall clock.  The same sink is also
   handed down to Replay so the per-window time series and the per-delay
   summary land interleaved in one stream. *)
let emit_points sink scheme points =
  if not (Events.is_null sink) then begin
    let name = scheme_name scheme in
    let total = List.length points in
    List.iteri
      (fun idx p ->
        Events.sweep_point sink ~scheme:name ~delay:p.delay ~idx ~total
          ~profiled_pct:p.profiled_pct ~hit_rate:p.hit_rate
          ~noise_rate:p.noise_rate ~predictions:p.predictions
          ~counter_space:p.counter_space ~profiling_ops:p.profiling_ops
          ~collection_ops:p.collection_ops)
      points
  end

let emit_done sink scheme ~delays t =
  if not (Events.is_null sink) then
    Events.sweep_done sink ~scheme:(scheme_name scheme)
      ~delays:(List.length delays) ~wall_s:t.wall_s ~instances:t.instances
      ~instances_per_s:t.instances_per_s

let replay_events ?events ?is_hot ?events_window () =
  match events with
  | Some sink when not (Events.is_null sink) ->
    Some (Replay.events ?window:events_window ?is_hot sink)
  | _ -> None

(* All delays are multiplexed through one traversal of the trace
   (Replay.run_many); a sweep costs one replay, not one per delay. *)
let run ?events ?events_window ?jobs ?chunk scheme r ~hot ~delays =
  let ev =
    replay_events ?events ~is_hot:(Hot_set.is_hot hot) ?events_window ()
  in
  let points =
    List.map
      (fun o -> point_of_outcome o hot)
      (Replay.run_many ?events:ev ?jobs ?chunk scheme ~delays r)
  in
  Option.iter (fun sink -> emit_points sink scheme points) events;
  points

let run_timed ?events ?events_window ?jobs ?chunk scheme r ~hot ~delays =
  let t0 = Unix.gettimeofday () in
  let points = run ?events ?events_window ?jobs ?chunk scheme r ~hot ~delays in
  let wall_s = Unix.gettimeofday () -. t0 in
  let instances = Array.length r.Hotpath_trace.Recorder.instances in
  let instances_per_s =
    if wall_s > 0.0 then float_of_int instances /. wall_s else 0.0
  in
  let t = { wall_s; instances; instances_per_s } in
  Option.iter (fun sink -> emit_done sink scheme ~delays t) events;
  (points, t)

(* Streamed sweep: the hot set is ground truth derived from full-run
   frequencies, so it cannot exist before the trace has been walked; it
   is computed from the first outcome's [freq] (identical across lanes)
   after the single streamed traversal. *)
let run_stream ?events ?events_window ?jobs scheme rd ~threshold ~delays =
  (* A single pass cannot know the hot set while it runs, so the streamed
     replay_window samples carry no hits/noise fields. *)
  let ev = replay_events ?events ?events_window () in
  match Replay.run_many_stream ?events:ev ?jobs scheme ~delays rd with
  | Error _ as e -> e
  | Ok [] -> Ok []
  | Ok (o :: _ as outcomes) ->
    let hot = Hot_set.of_outcome o ~threshold in
    let points = List.map (fun o -> point_of_outcome o hot) outcomes in
    Option.iter (fun sink -> emit_points sink scheme points) events;
    Ok points

let run_stream_timed ?events ?events_window ?jobs scheme rd ~threshold ~delays
    =
  let t0 = Unix.gettimeofday () in
  match run_stream ?events ?events_window ?jobs scheme rd ~threshold ~delays
  with
  | Error _ as e -> e
  | Ok points ->
    let wall_s = Unix.gettimeofday () -. t0 in
    let instances = Hotpath_trace.Serialize.Stream.instances_read rd in
    let instances_per_s =
      if wall_s > 0.0 then float_of_int instances /. wall_s else 0.0
    in
    let t = { wall_s; instances; instances_per_s } in
    Option.iter (fun sink -> emit_done sink scheme ~delays t) events;
    Ok (points, t)

let pp_timing ppf t =
  Format.fprintf ppf "@[<h>%.3fs over %d instances (%.2e instances/s)@]"
    t.wall_s t.instances t.instances_per_s

let interpolate field points ~profiled_pct =
  (* Points ordered by increasing delay are increasing in profiled flow;
     sort defensively and scan for the bracketing pair. *)
  let pts =
    List.sort (fun a b -> Float.compare a.profiled_pct b.profiled_pct) points
  in
  (* An exact query (within 1e-9) on any swept point returns that point's
     value, duplicated or boundary points included; interpolation is only
     for queries strictly between points. *)
  match
    List.find_opt (fun p -> Float.abs (p.profiled_pct -. profiled_pct) < 1e-9) pts
  with
  | Some p -> Some (field p)
  | None ->
    let rec scan = function
      | [] | [ _ ] -> None
      | a :: (b :: _ as rest) ->
        if profiled_pct < a.profiled_pct then None
        else if profiled_pct <= b.profiled_pct then begin
          let span = b.profiled_pct -. a.profiled_pct in
          if span <= 0.0 then Some (field a)
          else
            let w = (profiled_pct -. a.profiled_pct) /. span in
            Some ((field a *. (1.0 -. w)) +. (field b *. w))
        end
        else scan rest
    in
    scan pts

let interpolate_hit_at points ~profiled_pct =
  interpolate (fun p -> p.hit_rate) points ~profiled_pct

let interpolate_noise_at points ~profiled_pct =
  interpolate (fun p -> p.noise_rate) points ~profiled_pct

let pp_point ppf p =
  Format.fprintf ppf
    "@[<h>delay=%d profiled=%.2f%% hit=%.1f%% noise=%.1f%% preds=%d counters=%d@]"
    p.delay p.profiled_pct p.hit_rate p.noise_rate p.predictions p.counter_space
