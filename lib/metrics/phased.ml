module Scheme = Hotpath_prediction.Scheme
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Stats = Hotpath_util.Stats

type retirement =
  | No_retirement
  | Flush_every of int
  | Flush_on_spike of { window : int; factor : float; min_preds : int }
  | Ttl of int

type window_row = {
  w_index : int;
  w_flow : int;
  w_hot_paths : int;
  w_hot_flow : int;
  w_hits : int;
  w_phase_noise : int;
  w_hit_rate : float;
  w_phase_noise_rate : float;
  w_live_predictions : int;
  w_stale_predictions : int;
}

type outcome = {
  windows : window_row list;
  avg_hit_rate : float;
  avg_phase_noise_rate : float;
  avg_stale_fraction : float;
  retired : int;
}

let validate_retirement = function
  | No_retirement -> ()
  | Flush_every n when n < 1 -> invalid_arg "Phased.run: Flush_every period < 1"
  | Flush_on_spike { window; factor; min_preds } ->
    if window < 1 || factor <= 0.0 || min_preds < 1 then
      invalid_arg "Phased.run: malformed Flush_on_spike policy"
  | Flush_every _ | Ttl _ -> ()

(* Per-window hot sets: a path is hot in window w when its frequency there
   exceeds threshold x window flow. *)
let window_hot_sets (r : Recorder.t) ~window ~threshold =
  let n = Recorder.num_instances r in
  let n_windows = (n + window - 1) / window in
  let n_paths = Recorder.num_paths r in
  let hot = Array.init n_windows (fun _ -> Hashtbl.create 32) in
  let hot_flow = Array.make n_windows 0 in
  let flow = Array.make n_windows 0 in
  let freq = Array.make n_paths 0 in
  let w = ref 0 in
  let flush_window upto =
    let cutoff = threshold *. float_of_int (upto) in
    Array.iteri
      (fun pid f ->
         if f > 0 then begin
           if float_of_int f > cutoff then begin
             Hashtbl.replace hot.(!w) pid ();
             hot_flow.(!w) <- hot_flow.(!w) + f
           end;
           freq.(pid) <- 0
         end)
      freq
  in
  Array.iteri
    (fun i pid ->
       let wi = i / window in
       if wi <> !w then begin
         flush_window flow.(!w);
         w := wi
       end;
       freq.(pid) <- freq.(pid) + 1;
       flow.(wi) <- flow.(wi) + 1)
    r.Recorder.instances;
  if n > 0 then flush_window flow.(!w);
  (n_windows, hot, hot_flow, flow)

let run scheme ~delay ~window ~retirement ~threshold (r : Recorder.t) =
  if window < 1 then invalid_arg "Phased.run: window must be >= 1";
  if delay < 1 then invalid_arg "Phased.run: delay must be >= 1";
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Phased.run: threshold must be in (0,1)";
  validate_retirement retirement;
  let (module S : Scheme.S) = scheme in
  let n_paths = Recorder.num_paths r in
  let paths = Path_table.paths r.Recorder.table in
  let n_windows, hot, hot_flow, flow = window_hot_sets r ~window ~threshold in
  let state = S.create ~delay ~program:r.Recorder.program in
  (* Prediction set with removal support; [last_use] drives TTL and the
     stale count. *)
  let predicted : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let last_use = Array.make n_paths (-1) in
  let executed_in_window : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let retired = ref 0 in
  let hits = Array.make n_windows 0 in
  let phase_noise = Array.make n_windows 0 in
  let live_at_end = Array.make n_windows 0 in
  let stale_at_end = Array.make n_windows 0 in
  (* Spike-flush state. *)
  let spike_preds = ref 0 and spike_baseline = ref None and spike_windows = ref 0 in
  let flush_all () =
    retired := !retired + Hashtbl.length predicted;
    Hashtbl.reset predicted
  in
  let spike_boundary ~factor ~min_preds =
    let count = !spike_preds in
    spike_preds := 0;
    incr spike_windows;
    if !spike_windows > 1 then
      match !spike_baseline with
      | None -> spike_baseline := Some (float_of_int count)
      | Some b ->
        if count >= min_preds && float_of_int count > factor *. (b +. 1.0) then
          flush_all ();
        spike_baseline := Some ((0.7 *. b) +. (0.3 *. float_of_int count))
  in
  let close_window wi =
    live_at_end.(wi) <- Hashtbl.length predicted;
    let stale = ref 0 in
    Hashtbl.iter
      (fun pid () -> if not (Hashtbl.mem executed_in_window pid) then incr stale)
      predicted;
    stale_at_end.(wi) <- !stale;
    Hashtbl.reset executed_in_window
  in
  let instances = r.Recorder.instances in
  let n = Array.length instances in
  for i = 0 to n - 1 do
    let wi = i / window in
    if i > 0 && i mod window = 0 then close_window (wi - 1);
    let pid = instances.(i) in
    Hashtbl.replace executed_in_window pid ();
    (* TTL retirement is lazy: an expired entry no longer captures. *)
    let live =
      Hashtbl.mem predicted pid
      &&
      match retirement with
      | Ttl ttl when last_use.(pid) >= 0 && i - last_use.(pid) > ttl ->
        Hashtbl.remove predicted pid;
        incr retired;
        false
      | _ -> true
    in
    if live && Hashtbl.mem predicted pid then begin
      if Hashtbl.mem hot.(wi) pid then hits.(wi) <- hits.(wi) + 1
      else phase_noise.(wi) <- phase_noise.(wi) + 1;
      last_use.(pid) <- i
    end
    else begin
      let p = paths.(pid) in
      match
        S.observe state ~head:(Path.head p) ~arrival:(Recorder.arrival r i)
          ~path_id:pid ~n_branches:p.Path.n_branches
          ~n_blocks:(Array.length p.Path.blocks)
      with
      | Some target when not (Hashtbl.mem predicted target) ->
        S.collect state ~n_blocks:(Array.length paths.(target).Path.blocks);
        Hashtbl.replace predicted target ();
        last_use.(target) <- i;
        incr spike_preds
      | Some _ | None -> ()
    end;
    (* Retirement policies tick on every instance. *)
    (match retirement with
     | Flush_every every when (i + 1) mod every = 0 -> flush_all ()
     | Flush_on_spike { window = sw; factor; min_preds } when (i + 1) mod sw = 0 ->
       spike_boundary ~factor ~min_preds
     | No_retirement | Flush_every _ | Flush_on_spike _ | Ttl _ -> ())
  done;
  if n > 0 then close_window ((n - 1) / window);
  let rows =
    List.init n_windows (fun wi ->
        {
          w_index = wi;
          w_flow = flow.(wi);
          w_hot_paths = Hashtbl.length hot.(wi);
          w_hot_flow = hot_flow.(wi);
          w_hits = hits.(wi);
          w_phase_noise = phase_noise.(wi);
          w_hit_rate = Stats.pct (float_of_int hits.(wi)) (float_of_int hot_flow.(wi));
          w_phase_noise_rate =
            Stats.pct (float_of_int phase_noise.(wi)) (float_of_int hot_flow.(wi));
          w_live_predictions = live_at_end.(wi);
          w_stale_predictions = stale_at_end.(wi);
        })
  in
  let total_hot = Array.fold_left ( + ) 0 hot_flow in
  let total_hits = Array.fold_left ( + ) 0 hits in
  let total_noise = Array.fold_left ( + ) 0 phase_noise in
  let stale_fractions =
    List.filter_map
      (fun row ->
         if row.w_live_predictions = 0 then None
         else
           Some
             (float_of_int row.w_stale_predictions
              /. float_of_int row.w_live_predictions))
      rows
  in
  {
    windows = rows;
    avg_hit_rate = Stats.pct (float_of_int total_hits) (float_of_int total_hot);
    avg_phase_noise_rate =
      Stats.pct (float_of_int total_noise) (float_of_int total_hot);
    avg_stale_fraction = Stats.mean (Array.of_list stale_fractions);
    retired = !retired;
  }

let pp_window ppf w =
  Format.fprintf ppf
    "@[<h>window %d: flow=%d hot=%d(%d) hit=%.1f%% phase-noise=%.1f%% live=%d \
     stale=%d@]"
    w.w_index w.w_flow w.w_hot_paths w.w_hot_flow w.w_hit_rate w.w_phase_noise_rate
    w.w_live_predictions w.w_stale_predictions
