(** Hit rate, noise rate, and missed-opportunity cost (Section 3).

    Given a replay outcome and the ground-truth hot set:

    - {e hits} — hot flow captured after prediction;
    - {e noise} — cold flow captured after prediction;
    - {e missed-opportunity cost (MOC)} — hot flow of predicted hot paths
      that executed before their prediction, i.e. the reuse forfeited to
      the prediction delay.

    Both rates are normalized to the hot flow, as in the paper:
    [HitRate = 100 * Hits / freq(HotPath)],
    [NoiseRate = 100 * Noise / freq(HotPath)].

    {!operational} measures these directly from the trace replay — the
    numbers the reproduction reports.  {!closed_form} evaluates the
    paper's aggregate formulas ([Hits = freq(P∩Hot) - |P∩Hot|·τ], etc.);
    for path-profile-based prediction the two agree exactly (a predicted
    path has executed exactly τ times at prediction), which is tested. *)

type t = {
  hit_rate : float;  (** Percentage of hot flow captured. *)
  noise_rate : float;  (** Captured cold flow as a percentage of hot flow. *)
  profiled_flow_pct : float;  (** Share of total flow consumed by profiling. *)
  hits : int;
  noise : int;
  moc : int;
  predicted_hot : int;  (** |P ∩ HotPath| *)
  predicted_cold : int;  (** |P − HotPath| *)
}

val operational : Hotpath_prediction.Replay.outcome -> Hot_set.t -> t

val closed_form : Hotpath_prediction.Replay.outcome -> Hot_set.t -> t
(** The paper's formulas evaluated with τ = the outcome's delay.  For
    NET-style prediction the per-path subtraction of a full τ is an
    approximation.  Under the non-re-arming variant ([Net_once]) a
    predicted tail has executed at most τ times, so the closed form can
    only {e undershoot} the operational hits and noise (and overshoot
    MOC) — property-tested.  Under re-arming NET a tail can sit out
    several firings and exceed τ pre-prediction executions, so the error
    runs in either direction; what always holds is the conservation
    [hits + moc = predicted hot flow], identical in both views. *)

val pp : Format.formatter -> t -> unit
