(** Prediction-delay sweeps — the data behind Figures 2 and 3.

    For each delay τ the scheme is replayed over the recorded trace and one
    point (profiled-flow %, hit rate, noise rate, costs) is produced.  The
    X axis of the paper's figures is the profiled-flow share, which grows
    monotonically with τ. *)

type point = {
  delay : int;
  profiled_pct : float;
  hit_rate : float;
  noise_rate : float;
  predictions : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

type timing = {
  wall_s : float;  (** Wall-clock seconds for the whole sweep. *)
  instances : int;  (** Trace length (instances read once, not per delay). *)
  instances_per_s : float;
}

val default_delays : int list
(** The paper's range: 10 to 1,000,000, log-spaced. *)

val run :
  ?events:Hotpath_util.Events.sink ->
  ?events_window:int ->
  ?jobs:int ->
  ?chunk:int ->
  Hotpath_prediction.Scheme.packed ->
  Hotpath_trace.Recorder.t ->
  hot:Hot_set.t ->
  delays:int list ->
  point list
(** One point per delay, in the given order.  All delays are multiplexed
    through a single traversal of the trace ({!Replay.run_many}), so a
    full sweep costs one replay rather than one per delay.  [jobs]
    (default 1) parallelizes that traversal along the instance stream in
    [chunk]-sized segments ({!Replay.run_many}'s chunk sharding; worker
    count is clamped to the machine's domain budget); the points — and
    any emitted events — are byte-identical for every job count and
    chunk size.

    When [events] is a live sink, the replay emits per-window
    [replay_window] samples (every [events_window] instances; hits/noise
    included, since the hot set is known up front) and the sweep follows
    them with one [sweep_point] per delay.  Emission never changes the
    returned points. *)

val run_timed :
  ?events:Hotpath_util.Events.sink ->
  ?events_window:int ->
  ?jobs:int ->
  ?chunk:int ->
  Hotpath_prediction.Scheme.packed ->
  Hotpath_trace.Recorder.t ->
  hot:Hot_set.t ->
  delays:int list ->
  point list * timing
(** {!run} plus wall-clock accounting for throughput reporting (and a
    final [sweep_done] event when [events] is live). *)

val run_stream :
  ?events:Hotpath_util.Events.sink ->
  ?events_window:int ->
  ?jobs:int ->
  Hotpath_prediction.Scheme.packed ->
  Hotpath_trace.Serialize.Stream.reader ->
  threshold:float ->
  delays:int list ->
  (point list, string) result
(** {!run} over an HOTPATH3 stream ({!Replay.run_many_stream}): one
    traversal of the chunk stream, constant memory in the trace length.
    The hot set is ground truth from full-run frequencies, so it cannot
    pre-exist the walk; it is computed at [threshold] from the streamed
    outcome's frequencies — [run_stream ~threshold] equals [run] with
    [hot = Hot_set.compute ... ~threshold] on the materialized trace.
    Stream decode errors surface as [Error].  [events] behaves as in
    {!run} except the single-pass [replay_window] samples omit
    hits/noise — the hot set does not exist until the walk ends.  [jobs]
    fans each decoded frame chunk over lane groups
    ({!Replay.run_many_stream}); results stay byte-identical. *)

val run_stream_timed :
  ?events:Hotpath_util.Events.sink ->
  ?events_window:int ->
  ?jobs:int ->
  Hotpath_prediction.Scheme.packed ->
  Hotpath_trace.Serialize.Stream.reader ->
  threshold:float ->
  delays:int list ->
  (point list * timing, string) result

val pp_timing : Format.formatter -> timing -> unit

val interpolate_hit_at : point list -> profiled_pct:float -> float option
(** Linear interpolation of the hit rate at a given profiled-flow
    percentage ([None] outside the swept range).  Used to read "hit rate at
    10% profiled flow" off a sweep, as the paper does. *)

val interpolate_noise_at : point list -> profiled_pct:float -> float option

val pp_point : Format.formatter -> point -> unit
