open Hotpath_cfg

let default_max_k = 3

let default_budget = 4096

type choice = {
  head : Cfg.block_id;
  k : int;
  iterations : float;
  body_paths : Bounds.count;
}

type t = {
  by_head : (Cfg.block_id, choice) Hashtbl.t;
  choices : choice list;
  max_selected : int;
}

(* Branching-factor product over the loop body — the saturating proxy
   for the number of acyclic iteration paths the window interner can
   see from this head. *)
let body_paths prog body =
  List.fold_left
    (fun acc b ->
       match (Cfg.block prog b).Cfg.term with
       | Cfg.Branch { taken; fallthrough } when taken <> fallthrough ->
         Bounds.count_mul ~cap:Bounds.default_cap acc (Bounds.Exact 2)
       | Cfg.Indirect targets ->
         let n = List.length (List.sort_uniq compare (Array.to_list targets)) in
         if n > 1 then
           Bounds.count_mul ~cap:Bounds.default_cap acc (Bounds.Exact n)
         else acc
       | _ -> acc)
    (Bounds.Exact 1) body

let pick ~max_k ~budget ~iterations ~paths =
  let rec windows k acc =
    if k = 0 then acc else windows (k - 1) (Bounds.count_mul ~cap:Bounds.default_cap acc paths)
  in
  let rec go k =
    if k <= 1 then 1
    else if
      iterations >= 2.0 *. float_of_int k
      && Bounds.count_le (windows k (Bounds.Exact 1)) (Bounds.Exact budget)
    then k
    else go (k - 1)
  in
  go max_k

let analyze ?(max_k = default_max_k) ?(budget = default_budget) freq =
  if max_k < 1 then invalid_arg "Kselect.analyze: max_k must be >= 1";
  let prog = Freq.program freq in
  let by_head = Hashtbl.create 64 in
  let choices = ref [] in
  let max_selected = ref 1 in
  Cfg.iter_procs
    (fun proc ->
       let g = Procgraph.build prog ~proc:proc.Cfg.pid in
       let loops = Loops.analyze (Dominators.compute g) in
       let pf = Freq.of_proc freq proc.Cfg.pid in
       List.iter
         (fun (l : Loops.loop) ->
            let cp =
              Option.value ~default:0.0 (Freq.cyclic_prob pf l.Loops.head)
            in
            let iterations = 1.0 /. (1.0 -. cp) in
            let paths = body_paths prog l.Loops.blocks in
            let k = pick ~max_k ~budget ~iterations ~paths in
            let c = { head = l.Loops.head; k; iterations; body_paths = paths } in
            Hashtbl.replace by_head l.Loops.head c;
            choices := c :: !choices;
            if k > !max_selected then max_selected := k)
         (Loops.loops loops))
    prog;
  {
    by_head;
    choices = List.sort (fun a b -> compare a.head b.head) !choices;
    max_selected = !max_selected;
  }

let k_for t head =
  match Hashtbl.find_opt t.by_head head with Some c -> c.k | None -> 1

let choices t = t.choices

let max_selected t = t.max_selected

let cache_lock = Mutex.create ()

let cache : (Cfg.program * t) list ref = ref []

let cache_limit = 8

let cached prog =
  Mutex.protect cache_lock (fun () ->
      match List.find_opt (fun (p, _) -> p == prog) !cache with
      | Some (_, t) -> t
      | None ->
        let t = analyze (Freq.cached prog) in
        cache :=
          (prog, t)
          :: (if List.length !cache >= cache_limit then
                List.filteri (fun i _ -> i < cache_limit - 1) !cache
              else !cache);
        t)
