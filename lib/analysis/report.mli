(** Human-readable rendering of the static analyses: one row per
    procedure (blocks, branches, loops, nesting, reducibility,
    Ball–Larus paths) plus the program-level counter-space summary, the
    {!Freq} head-flow estimate, and the {!Kselect} window distribution. *)

open Hotpath_cfg

val render : ?cap:int -> Cfg.program -> string
(** Aligned-text table and summary lines for one program. *)

val render_csv : ?cap:int -> Cfg.program -> string
(** The per-procedure table as CSV (no summary lines). *)
