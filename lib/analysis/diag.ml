type severity = Error | Warning | Info

type location =
  | Program
  | Proc of Hotpath_cfg.Cfg.proc_id
  | Block of Hotpath_cfg.Cfg.block_id
  | Path of int
  | Instance of int

type t = { code : string; severity : severity; loc : location; message : string }

let make severity ~code ~loc fmt =
  Printf.ksprintf (fun message -> { code; severity; loc; message }) fmt

let error ~code ~loc fmt = make Error ~code ~loc fmt
let warning ~code ~loc fmt = make Warning ~code ~loc fmt
let info ~code ~loc fmt = make Info ~code ~loc fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let location_to_string = function
  | Program -> "program"
  | Proc p -> Printf.sprintf "proc %d" p
  | Block b -> Printf.sprintf "block %d" b
  | Path p -> Printf.sprintf "path %d" p
  | Instance i -> Printf.sprintf "instance %d" i

let count sev diags =
  List.fold_left (fun acc d -> if d.severity = sev then acc + 1 else acc) 0 diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code
    (location_to_string d.loc)
    d.message

let to_string d = Format.asprintf "%a" pp d
