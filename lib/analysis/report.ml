open Hotpath_cfg
module Tablefmt = Hotpath_util.Tablefmt

let build_table ?cap p =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("proc", Tablefmt.Left);
          ("blocks", Tablefmt.Right);
          ("branches", Tablefmt.Right);
          ("loops", Tablefmt.Right);
          ("max-nest", Tablefmt.Right);
          ("reducible", Tablefmt.Left);
          ("unreachable", Tablefmt.Right);
          ("bl-paths", Tablefmt.Right);
        ]
  in
  Cfg.iter_procs
    (fun pr ->
       let pid = pr.Cfg.pid in
       let g = Procgraph.build p ~proc:pid in
       let dom = Dominators.compute g in
       let loops = Loops.analyze dom in
       let branches =
         Array.fold_left
           (fun acc b ->
              match (Cfg.block p b).Cfg.term with Cfg.Branch _ -> acc + 1 | _ -> acc)
           0 pr.Cfg.blocks
       in
       Tablefmt.add_row t
         [
           pr.Cfg.name;
           Tablefmt.cell_int (Array.length pr.Cfg.blocks);
           Tablefmt.cell_int branches;
           Tablefmt.cell_int (Loops.loop_count loops);
           Tablefmt.cell_int (Loops.max_depth loops);
           (if Loops.reducible loops then "yes" else "NO");
           Tablefmt.cell_int (List.length (Procgraph.unreachable_blocks g));
           Bounds.count_to_string (Bounds.bl_paths ?cap p ~proc:pid);
         ])
    p;
  t

let render ?cap p =
  let r = Bounds.counter_space_report ?cap p in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.Cfg.pname);
  Buffer.add_string buf (Tablefmt.render (build_table ?cap p));
  Buffer.add_string buf
    (Printf.sprintf
       "\nstatic counter space: NET heads %d (paper definition %d), B-L paths %s, \
        interproc path bound %s\n"
       r.Bounds.r_full_heads r.Bounds.r_paper_heads
       (Bounds.count_to_string r.Bounds.r_bl_total)
       (Bounds.count_to_string r.Bounds.r_forward_walks));
  (match r.Bounds.r_net_to_bl_pct with
   | Some pct ->
     Buffer.add_string buf
       (Printf.sprintf "NET/B-L counter ratio (static): %s\n" (Tablefmt.cell_pct pct))
   | None ->
     Buffer.add_string buf
       "NET/B-L counter ratio (static): ~0% (path count overflows the cap)\n");
  let freq = Freq.cached p in
  let heads = Freq.ranked_heads freq in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 heads in
  Buffer.add_string buf
    (Printf.sprintf
       "static frequency estimate: %d heads ranked, total head flow %s%s%s\n"
       (List.length heads)
       (Tablefmt.cell_float ~digits:1 total)
       (match Freq.degraded_procs freq with
        | [] -> ""
        | ps -> Printf.sprintf ", %d degraded procs (P113)" (List.length ps))
       (if Freq.recursion_capped freq then ", recursion-capped invocations"
        else ""));
  let ks = Kselect.cached p in
  let kdist = Hashtbl.create 4 in
  List.iter
    (fun (c : Kselect.choice) ->
       Hashtbl.replace kdist c.Kselect.k
         (1 + Option.value ~default:0 (Hashtbl.find_opt kdist c.Kselect.k)))
    (Kselect.choices ks);
  Buffer.add_string buf
    (Printf.sprintf "kauto window selection: %s\n"
       (if Kselect.choices ks = [] then "no loop heads"
        else
          String.concat ", "
            (List.map
               (fun (k, n) -> Printf.sprintf "k=%d x%d" k n)
               (List.sort compare
                  (Hashtbl.fold (fun k n acc -> (k, n) :: acc) kdist [])))));
  Buffer.contents buf

let render_csv ?cap p = Tablefmt.render_csv (build_table ?cap p)
