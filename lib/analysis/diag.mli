(** Diagnostics for the static analyses and linters.

    Every finding carries a stable machine-readable code, a severity,
    and a location.  Codes are namespaced by the subject of the check:
    [P1xx] for program well-formedness (emitted by
    {!Hotpath_analysis.Lint}), [T1xx]/[T2xx] for trace-vs-program
    consistency (emitted by [Hotpath_trace.Lint]).  Codes are part of the
    tool's public surface — tests and CI match on them — so existing
    codes must never be renumbered. *)

type severity = Error | Warning | Info

type location =
  | Program  (** The program as a whole (or the trace container). *)
  | Proc of Hotpath_cfg.Cfg.proc_id
  | Block of Hotpath_cfg.Cfg.block_id
  | Path of int  (** A path id in a trace's path table. *)
  | Instance of int  (** An index into a trace's instance stream. *)

type t = {
  code : string;  (** Stable code, e.g. ["P103"]. *)
  severity : severity;
  loc : location;
  message : string;
}

val error : code:string -> loc:location -> ('a, unit, string, t) format4 -> 'a
val warning : code:string -> loc:location -> ('a, unit, string, t) format4 -> 'a
val info : code:string -> loc:location -> ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"] — the JSON-Lines field values. *)

val location_to_string : location -> string
(** ["program"], ["proc 3"], ["block 17"], ["path 42"], ["instance 7"]. *)

val count : severity -> t list -> int

val has_errors : t list -> bool

val pp : Format.formatter -> t -> unit
(** One line: [error[P103] block 17: jump target 99 out of range]. *)

val to_string : t -> string
