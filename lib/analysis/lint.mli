(** Program well-formedness linter.

    Accumulates diagnostics instead of failing fast: structural errors
    ([P1xx] with severity [Error]) cover everything {!Cfg.validate}
    rejects, with one diagnostic per defect; when the structure is sound
    the graph-level passes add warnings (unreachable blocks, irreducible
    flow, non-adjacent fallthroughs, call/return pairing, Ball–Larus
    path-count explosion).

    Codes:
    - [P100] empty program / procedure with no blocks
    - [P101] non-dense or inconsistent ids (block/proc numbering,
      foreign block membership, main out of range)
    - [P102] procedure entry is not its first block
    - [P103] terminator target out of range
    - [P104] terminator target crosses into another procedure
    - [P105] non-positive block weight
    - [P106] indirect terminator with no targets
    - [P107] call to an out-of-range procedure
    - [P108] (warning) branch fallthrough not adjacent in layout
    - [P109] (warning) block unreachable from its procedure's entry
    - [P110] (warning) irreducible control flow
    - [P111] (warning) procedure is called but has no [Return] block
    - [P112] (warning) Ball–Larus path-count explosion
    - [P113] (warning) static frequency estimation degraded (irreducible
      region solved iteratively, or loop nesting beyond
      {!static_depth_threshold} compounding the {!Freq.cp_cap}) *)

open Hotpath_cfg

val explosion_threshold : int
(** [2{^20}] paths — above this a procedure draws [P112]. *)

val static_depth_threshold : int
(** [16] — loop nesting deeper than this draws [P113] even when
    reducible: each level multiplies frequencies by up to
    [1 / (1 - Freq.cp_cap)], so the estimate loses meaning. *)

val check_program : ?cap:int -> Cfg.program -> Diag.t list
(** All diagnostics, structural first.  Graph passes run only when no
    structural error was found (they need a well-formed program).
    [cap] bounds the Ball–Larus count (default
    {!Bounds.default_cap}). *)

val structural : Cfg.program -> Diag.t list
(** Just the [P100]–[P107] structural pass; empty iff [Cfg.validate]
    succeeds (property-tested). *)
