type t = {
  graph : Procgraph.t;
  idom : int array;  (* local -> local; entry maps to itself; -1 unreachable *)
}

let compute g =
  let n = Procgraph.size g in
  let visited = Array.make n false in
  let postnum = Array.make n (-1) in
  let counter = ref 0 in
  let rpo = ref [] in
  let rec dfs i =
    visited.(i) <- true;
    Array.iter (fun j -> if not visited.(j) then dfs j) (Procgraph.succ g i);
    postnum.(i) <- !counter;
    incr counter;
    rpo := i :: !rpo
  in
  if n > 0 then dfs 0;
  let rpo = !rpo in
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while postnum.(!f1) < postnum.(!f2) do
        f1 := idom.(!f1)
      done;
      while postnum.(!f2) < postnum.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         if b <> 0 then begin
           let new_idom = ref (-1) in
           Array.iter
             (fun p ->
                if idom.(p) <> -1 then
                  if !new_idom = -1 then new_idom := p
                  else new_idom := intersect p !new_idom)
             (Procgraph.pred g b);
           if !new_idom <> -1 && idom.(b) <> !new_idom then begin
             idom.(b) <- !new_idom;
             changed := true
           end
         end)
      rpo
  done;
  { graph = g; idom }

let graph t = t.graph

let idom_local t i = t.idom.(i)

let idom t g =
  let i = Procgraph.local t.graph g in
  if t.idom.(i) = -1 || i = 0 then None else Some (Procgraph.global t.graph t.idom.(i))

let dominates t ga gb =
  let a = Procgraph.local t.graph ga and b = Procgraph.local t.graph gb in
  if t.idom.(a) = -1 || t.idom.(b) = -1 then false
  else begin
    let x = ref b and result = ref false and continue = ref true in
    while !continue do
      if !x = a then begin
        result := true;
        continue := false
      end
      else if !x = 0 then continue := false
      else x := t.idom.(!x)
    done;
    !result
  end
