(** Per-procedure successor/predecessor maps over local block indices.

    A procedure's blocks are re-indexed [0 .. n-1] in layout order (so
    local index 0 is the entry and local order is address order).  Edge
    lists are deduplicated: a conditional branch whose arms coincide, or
    an indirect jump listing a target twice, contributes a single graph
    edge — the graph analyses care about reachability and dominance, not
    edge multiplicity. *)

open Hotpath_cfg

type t

val build : Cfg.program -> proc:Cfg.proc_id -> t
(** @raise Invalid_argument when [proc] is out of range. *)

val program : t -> Cfg.program
val proc_id : t -> Cfg.proc_id

val size : t -> int
(** Number of blocks in the procedure. *)

val entry : t -> int
(** Local index of the entry block — always [0]. *)

val global : t -> int -> Cfg.block_id
(** Global block id of a local index. *)

val local : t -> Cfg.block_id -> int
(** Local index of a global block id.
    @raise Invalid_argument when the block is not in this procedure. *)

val succ : t -> int -> int array
(** Local successor indices, deduplicated, ascending. *)

val pred : t -> int -> int array
(** Local predecessor indices, deduplicated, ascending. *)

val reachable : t -> bool array
(** Per local index: reachable from the entry along intra-procedural
    edges. *)

val unreachable_blocks : t -> Cfg.block_id list
(** Global ids of blocks not reachable from the entry, ascending. *)
