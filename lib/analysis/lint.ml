open Hotpath_cfg

let explosion_threshold = 1 lsl 20

(* Beyond this nesting depth the per-loop frequency multipliers (each
   up to [1 / (1 - Freq.cp_cap)] = 50x) compound past any useful
   precision, so the estimate is flagged even though the closed form
   still runs. *)
let static_depth_threshold = 16

let structural (p : Cfg.program) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let nblocks = Array.length p.Cfg.blocks and nprocs = Array.length p.Cfg.procs in
  let ok_block i = i >= 0 && i < nblocks in
  let ok_proc i = i >= 0 && i < nprocs in
  if nblocks = 0 then
    add (Diag.error ~code:"P100" ~loc:Diag.Program "program has no blocks");
  if nprocs = 0 then
    add (Diag.error ~code:"P100" ~loc:Diag.Program "program has no procedures");
  if nblocks > 0 && nprocs > 0 then begin
    if not (ok_proc p.Cfg.main) then
      add
        (Diag.error ~code:"P101" ~loc:Diag.Program
           "main procedure id %d out of range" p.Cfg.main);
    Array.iteri
      (fun i pr ->
         if pr.Cfg.pid <> i then
           add (Diag.error ~code:"P101" ~loc:(Diag.Proc i) "has pid %d" pr.Cfg.pid);
         if Array.length pr.Cfg.blocks = 0 then
           add
             (Diag.error ~code:"P100" ~loc:(Diag.Proc i) "procedure %s has no blocks"
                pr.Cfg.name)
         else if pr.Cfg.blocks.(0) <> pr.Cfg.entry then
           add
             (Diag.error ~code:"P102" ~loc:(Diag.Proc i)
                "entry %d is not the first block (%d)" pr.Cfg.entry pr.Cfg.blocks.(0));
         Array.iter
           (fun b ->
              if not (ok_block b) then
                add
                  (Diag.error ~code:"P101" ~loc:(Diag.Proc i)
                     "lists block %d out of range" b)
              else if p.Cfg.blocks.(b).Cfg.proc <> i then
                add
                  (Diag.error ~code:"P101" ~loc:(Diag.Proc i)
                     "lists block %d owned by procedure %d" b p.Cfg.blocks.(b).Cfg.proc))
           pr.Cfg.blocks)
      p.Cfg.procs;
    Array.iteri
      (fun i b ->
         if b.Cfg.id <> i then
           add (Diag.error ~code:"P101" ~loc:(Diag.Block i) "has id %d" b.Cfg.id);
         if not (ok_proc b.Cfg.proc) then
           add
             (Diag.error ~code:"P101" ~loc:(Diag.Block i) "proc %d out of range"
                b.Cfg.proc);
         if b.Cfg.weight <= 0 then
           add
             (Diag.error ~code:"P105" ~loc:(Diag.Block i) "non-positive weight %d"
                b.Cfg.weight);
         let check_local what t =
           if not (ok_block t) then
             add
               (Diag.error ~code:"P103" ~loc:(Diag.Block i) "%s target %d out of range"
                  what t)
           else if ok_proc b.Cfg.proc && p.Cfg.blocks.(t).Cfg.proc <> b.Cfg.proc then
             add
               (Diag.error ~code:"P104" ~loc:(Diag.Block i)
                  "%s target %d crosses into procedure %d" what t
                  p.Cfg.blocks.(t).Cfg.proc)
         in
         match b.Cfg.term with
         | Cfg.Branch { taken; fallthrough } ->
           check_local "taken" taken;
           check_local "fallthrough" fallthrough
         | Cfg.Jump t -> check_local "jump" t
         | Cfg.Indirect targets ->
           if Array.length targets = 0 then
             add (Diag.error ~code:"P106" ~loc:(Diag.Block i) "indirect with no targets")
           else Array.iter (check_local "indirect") targets
         | Cfg.Call { callee; return_to } ->
           if not (ok_proc callee) then
             add
               (Diag.error ~code:"P107" ~loc:(Diag.Block i) "callee %d out of range"
                  callee)
           else check_local "return_to" return_to
         | Cfg.Return | Cfg.Exit -> ())
      p.Cfg.blocks
  end;
  List.rev !diags

let graph_passes ?(cap = Bounds.default_cap) (p : Cfg.program) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Fallthrough layout adjacency. *)
  Cfg.iter_blocks
    (fun b ->
       match b.Cfg.term with
       | Cfg.Branch { fallthrough; _ } when fallthrough <> b.Cfg.id + 1 ->
         add
           (Diag.warning ~code:"P108" ~loc:(Diag.Block b.Cfg.id)
              "fallthrough %d is not the next block in layout" fallthrough)
       | _ -> ())
    p;
  (* Called procedures without a Return block. *)
  let called = Hashtbl.create 8 in
  List.iter
    (fun (_site, callee, _ret) -> Hashtbl.replace called callee ())
    (Cfg.call_sites p);
  Hashtbl.iter
    (fun callee () ->
       if Cfg.return_blocks p callee = [] then
         add
           (Diag.warning ~code:"P111" ~loc:(Diag.Proc callee)
              "procedure %s is called but has no return block"
              (Cfg.proc p callee).Cfg.name))
    called;
  Cfg.iter_procs
    (fun pr ->
       let pid = pr.Cfg.pid in
       let g = Procgraph.build p ~proc:pid in
       List.iter
         (fun b ->
            add
              (Diag.warning ~code:"P109" ~loc:(Diag.Block b)
                 "unreachable from the entry of procedure %s" pr.Cfg.name))
         (Procgraph.unreachable_blocks g);
       let dom = Dominators.compute g in
       let loops = Loops.analyze dom in
       (match Loops.irreducible_edges loops with
        | [] -> ()
        | (src, dst) :: _ ->
          add
            (Diag.warning ~code:"P110" ~loc:(Diag.Proc pid)
               "irreducible control flow (retreating edge %d -> %d without a \
                dominating header)"
               src dst);
          add
            (Diag.warning ~code:"P113" ~loc:(Diag.Proc pid)
               "static frequency estimation degraded: irreducible region \
                forces the bounded iterative solver"));
       if Loops.reducible loops && Loops.max_depth loops > static_depth_threshold
       then
         add
           (Diag.warning ~code:"P113" ~loc:(Diag.Proc pid)
              "static frequency estimation degraded: loop nesting depth %d \
               exceeds %d, compounding the cyclic-probability cap"
              (Loops.max_depth loops) static_depth_threshold);
       match Bounds.bl_paths ~cap p ~proc:pid with
       | Bounds.Overflow ->
         add
           (Diag.warning ~code:"P112" ~loc:(Diag.Proc pid)
              "Ball–Larus path-count explosion: acyclic path count exceeds the cap")
       | Bounds.Exact n when n > explosion_threshold ->
         add
           (Diag.warning ~code:"P112" ~loc:(Diag.Proc pid)
              "Ball–Larus path-count explosion: %d acyclic paths (threshold %d)" n
              explosion_threshold)
       | Bounds.Exact _ -> ())
    p;
  List.rev !diags

let check_program ?cap p =
  let s = structural p in
  if Diag.has_errors s then s else s @ graph_passes ?cap p
