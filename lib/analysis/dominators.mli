(** Dominator trees via the Cooper–Harvey–Kennedy iterative algorithm
    ("A Simple, Fast Dominance Algorithm").

    Dominance is computed over the reachable part of a {!Procgraph.t};
    unreachable blocks have no dominator and dominate nothing. *)

open Hotpath_cfg

type t

val compute : Procgraph.t -> t

val graph : t -> Procgraph.t

val idom_local : t -> int -> int
(** Immediate dominator as a local index.  The entry's idom is itself;
    unreachable blocks report [-1]. *)

val idom : t -> Cfg.block_id -> Cfg.block_id option
(** Immediate dominator by global block id — [None] for the entry and
    for unreachable blocks. *)

val dominates : t -> Cfg.block_id -> Cfg.block_id -> bool
(** [dominates t a b] — does [a] dominate [b] (reflexively)?  [false]
    whenever either block is unreachable. *)
