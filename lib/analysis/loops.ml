open Hotpath_cfg

type loop = {
  head : Cfg.block_id;
  back_edges : (Cfg.block_id * Cfg.block_id) list;
  blocks : Cfg.block_id list;
  depth : int;
  parent : Cfg.block_id option;
}

type t = {
  graph : Procgraph.t;
  loops : loop list;
  depth : int array;  (* per local index *)
  irreducible : (Cfg.block_id * Cfg.block_id) list;
}

let analyze dom =
  let g = Dominators.graph dom in
  let n = Procgraph.size g in
  let reach = Procgraph.reachable g in
  (* Dominance back edges (tail, head), in local indices. *)
  let back = ref [] in
  for u = 0 to n - 1 do
    if reach.(u) then
      Array.iter
        (fun v ->
           if
             reach.(v)
             && Dominators.dominates dom (Procgraph.global g v) (Procgraph.global g u)
           then back := (u, v) :: !back)
        (Procgraph.succ g u)
  done;
  let back = List.rev !back in
  let by_head = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
       let tails = try Hashtbl.find by_head v with Not_found -> [] in
       Hashtbl.replace by_head v (u :: tails))
    back;
  let heads = List.sort_uniq compare (List.map snd back) in
  (* Natural-loop bodies: backward reachability from the tails, stopping
     at the head. *)
  let bodies =
    List.map
      (fun head ->
         let tails = Hashtbl.find by_head head in
         let inloop = Array.make n false in
         inloop.(head) <- true;
         let rec visit u =
           if reach.(u) && not inloop.(u) then begin
             inloop.(u) <- true;
             Array.iter visit (Procgraph.pred g u)
           end
         in
         List.iter visit tails;
         (head, inloop))
      heads
  in
  let depth = Array.make n 0 in
  List.iter
    (fun (_, inloop) ->
       for i = 0 to n - 1 do
         if inloop.(i) then depth.(i) <- depth.(i) + 1
       done)
    bodies;
  let loops =
    List.map
      (fun (head, inloop) ->
         let blocks = ref [] in
         for i = n - 1 downto 0 do
           if inloop.(i) then blocks := Procgraph.global g i :: !blocks
         done;
         let back_edges =
           List.filter_map
             (fun (u, v) ->
                if v = head then Some (Procgraph.global g u, Procgraph.global g v)
                else None)
             back
           |> List.sort compare
         in
         (* Innermost strictly-enclosing loop: among the other loops
            containing this head, the one with the deepest head. *)
         let parent =
           List.filter (fun (h, body) -> h <> head && body.(head)) bodies
           |> List.fold_left
                (fun best (h, _) ->
                   match best with
                   | Some b when depth.(b) >= depth.(h) -> best
                   | _ -> Some h)
                None
           |> Option.map (Procgraph.global g)
         in
         { head = Procgraph.global g head; back_edges; blocks = !blocks;
           depth = depth.(head); parent })
      bodies
    |> List.sort (fun a b -> compare a.head b.head)
  in
  (* Reducibility: remove the dominance back edges and look for a cycle
     in what remains of the reachable subgraph. *)
  let back_set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace back_set e ()) back;
  let color = Array.make n 0 in
  let witnesses = ref [] in
  let rec dfs u =
    color.(u) <- 1;
    Array.iter
      (fun v ->
         if not (Hashtbl.mem back_set (u, v)) then
           if color.(v) = 0 then dfs v
           else if color.(v) = 1 then
             witnesses := (Procgraph.global g u, Procgraph.global g v) :: !witnesses)
      (Procgraph.succ g u);
    color.(u) <- 2
  in
  if n > 0 then dfs 0;
  { graph = g; loops; depth; irreducible = List.rev !witnesses }

let loops t = t.loops
let loop_count t = List.length t.loops
let depth_of t b = t.depth.(Procgraph.local t.graph b)
let max_depth t = Array.fold_left max 0 t.depth
let reducible t = t.irreducible = []
let irreducible_edges t = t.irreducible
