open Hotpath_cfg

(* {1 Head sets} *)

type head_sets = { paper : bool array; full : bool array }

let static_heads p =
  let n = Cfg.num_blocks p in
  let paper = Array.make n false and full = Array.make n false in
  Cfg.iter_blocks
    (fun b ->
       let src = b.Cfg.id in
       let backward dst = Cfg.is_backward p ~src ~dst in
       let paper_mark dst = if backward dst then begin
           paper.(dst) <- true;
           full.(dst) <- true
         end
       in
       let full_mark dst = if backward dst then full.(dst) <- true in
       match b.Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         paper_mark taken;
         (* A backward fallthrough is not a "taken branch" under the
            paper's definition but still arrives backward at runtime. *)
         full_mark fallthrough
       | Cfg.Jump t -> paper_mark t
       | Cfg.Indirect targets -> Array.iter paper_mark targets
       | Cfg.Call { callee; _ } -> full_mark (Cfg.proc p callee).Cfg.entry
       | Cfg.Return | Cfg.Exit -> ())
    p;
  (* Backward matched returns: a call site's return_to is a backward
     arrival when some Return block of the callee sits at or past it. *)
  List.iter
    (fun (_site, callee, return_to) ->
       if List.exists (fun r -> return_to <= r) (Cfg.return_blocks p callee) then
         full.(return_to) <- true)
    (Cfg.call_sites p);
  { paper; full }

let count_true a = Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 a

let paper_head_count hs = count_true hs.paper
let full_head_count hs = count_true hs.full

let full_heads hs =
  let out = ref [] in
  for i = Array.length hs.full - 1 downto 0 do
    if hs.full.(i) then out := i :: !out
  done;
  !out

(* {1 Saturating counts} *)

type count = Exact of int | Overflow

let default_cap = 1 lsl 50

let count_to_string = function
  | Exact n -> string_of_int n
  | Overflow -> ">2^50"

let count_add ~cap a b =
  match (a, b) with
  | Exact x, Exact y -> if x + y > cap then Overflow else Exact (x + y)
  | _ -> Overflow

let count_mul ~cap a b =
  match (a, b) with
  | Exact x, Exact y ->
    if x = 0 || y = 0 then Exact 0
    (* [x * y > cap] tested without overflowing the native int:
       for positive y, [x * y > cap <=> x > cap / y] (floor division). *)
    else if x > cap / y then Overflow
    else Exact (x * y)
  | _ -> Overflow

let count_le a b =
  match (a, b) with
  | Exact x, Exact y -> x <= y
  | Exact _, Overflow -> true
  | Overflow, Exact _ -> false
  | Overflow, Overflow -> true

(* {1 Ball–Larus static counts}

   Mirrors Ball_larus.build_edges / the NumPaths pass without
   materializing edges: np(EXIT) = 1; blocks in descending address order
   (reverse topological for the forward subgraph); np(b) sums np over
   b's out-edges — a pseudo exit edge if b is the source of some back
   edge, a To_exit edge for Return/Exit terminators, and one Real edge
   per forward target (branch arms kept distinct even when their targets
   coincide, indirect targets deduplicated).  num_paths = sum of np over
   the pseudo-entry heads (the procedure entry plus every back-edge
   target).  The cap reproduces Ball_larus.overflow_limit: we saturate
   where the instrumentation raises. *)

let bl_paths ?(cap = default_cap) p ~proc =
  let procedure = Cfg.proc p proc in
  let blocks = procedure.Cfg.blocks in
  let pentry = Hashtbl.create 8 and pexit = Hashtbl.create 8 in
  Hashtbl.replace pentry procedure.Cfg.entry ();
  let forward_targets = Hashtbl.create 16 in  (* src -> dst list (multiplicity) *)
  let intra src dst =
    if Cfg.is_backward p ~src ~dst then begin
      Hashtbl.replace pexit src ();
      Hashtbl.replace pentry dst ()
    end
    else begin
      let prev = Option.value ~default:[] (Hashtbl.find_opt forward_targets src) in
      Hashtbl.replace forward_targets src (dst :: prev)
    end
  in
  Array.iter
    (fun b ->
       match (Cfg.block p b).Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         intra b taken;
         intra b fallthrough
       | Cfg.Jump dst -> intra b dst
       | Cfg.Indirect targets ->
         let seen = Hashtbl.create 4 in
         Array.iter
           (fun dst ->
              if not (Hashtbl.mem seen dst) then begin
                Hashtbl.add seen dst ();
                intra b dst
              end)
           targets
       | Cfg.Call { return_to; _ } -> intra b return_to
       | Cfg.Return | Cfg.Exit -> ())
    blocks;
  let np = Hashtbl.create 16 in  (* global block id -> path count *)
  let capped = ref false in
  let blocks_desc = Array.copy blocks in
  Array.sort (fun a b -> Int.compare b a) blocks_desc;
  Array.iter
    (fun b ->
       let total = ref 0 in
       let add x =
         total := !total + x;
         if !total > cap then begin
           capped := true;
           total := cap
         end
       in
       if Hashtbl.mem pexit b then add 1;
       (match (Cfg.block p b).Cfg.term with
        | Cfg.Return | Cfg.Exit -> add 1
        | _ -> ());
       List.iter
         (fun dst -> add (Hashtbl.find np dst))
         (Option.value ~default:[] (Hashtbl.find_opt forward_targets b));
       Hashtbl.replace np b !total)
    blocks_desc;
  let entry_total = ref 0 in
  Hashtbl.iter
    (fun h () ->
       entry_total := !entry_total + Hashtbl.find np h;
       if !entry_total > cap then begin
         capped := true;
         entry_total := cap
       end)
    pentry;
  if !capped then Overflow else Exact !entry_total

let bl_total ?(cap = default_cap) p =
  let total = ref (Exact 0) in
  Cfg.iter_procs
    (fun pr -> total := count_add ~cap !total (bl_paths ~cap p ~proc:pr.Cfg.pid))
    p;
  !total

(* {1 k-iteration Ball–Larus bounds}

   Saturating mirror of [Ball_larus.num_kpaths]: chains of up to [k]
   acyclic components linked by the procedure's actual back edges.  The
   arithmetic replays num_kpaths' operations in the same order — both
   compute identical intermediates until the first value past the
   limit, where num_kpaths raises and this clamps and sets a sticky
   flag — so at [cap = default_cap], [Overflow] here iff the
   instrumented analyzer raises (property-tested). *)

let bl_kpaths ?(cap = default_cap) p ~proc ~k =
  if k < 1 then invalid_arg "Bounds.bl_kpaths: k must be >= 1";
  let capped = ref false in
  let add a b =
    let s = a + b in
    if s > cap then begin
      capped := true;
      cap
    end
    else s
  in
  let mul a b =
    if a = 0 || b = 0 then 0
    else if a > cap / b then begin
      capped := true;
      cap
    end
    else a * b
  in
  let procedure = Cfg.proc p proc in
  let blocks = procedure.Cfg.blocks in
  let pentry = Hashtbl.create 8 and pexit = Hashtbl.create 8 in
  Hashtbl.replace pentry procedure.Cfg.entry ();
  let forward_targets = Hashtbl.create 16 in
  let back_pairs = Hashtbl.create 8 in
  let intra src dst =
    if Cfg.is_backward p ~src ~dst then begin
      Hashtbl.replace pexit src ();
      Hashtbl.replace pentry dst ();
      Hashtbl.replace back_pairs (src, dst) ()
    end
    else begin
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt forward_targets src)
      in
      Hashtbl.replace forward_targets src (dst :: prev)
    end
  in
  Array.iter
    (fun b ->
       match (Cfg.block p b).Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         intra b taken;
         intra b fallthrough
       | Cfg.Jump dst -> intra b dst
       | Cfg.Indirect targets ->
         let seen = Hashtbl.create 4 in
         Array.iter
           (fun dst ->
              if not (Hashtbl.mem seen dst) then begin
                Hashtbl.add seen dst ();
                intra b dst
              end)
           targets
       | Cfg.Call { return_to; _ } -> intra b return_to
       | Cfg.Return | Cfg.Exit -> ())
    blocks;
  let blocks_desc = Array.copy blocks in
  Array.sort (fun a b -> Int.compare b a) blocks_desc;
  let fwd b = Option.value ~default:[] (Hashtbl.find_opt forward_targets b) in
  let np = Hashtbl.create 16 in
  Array.iter
    (fun b ->
       let total = ref 0 in
       if Hashtbl.mem pexit b then total := add !total 1;
       (match (Cfg.block p b).Cfg.term with
        | Cfg.Return | Cfg.Exit -> total := add !total 1
        | _ -> ());
       List.iter (fun dst -> total := add !total (Hashtbl.find np dst)) (fwd b);
       Hashtbl.replace np b !total)
    blocks_desc;
  let sources =
    Hashtbl.fold (fun s () acc -> s :: acc) pexit [] |> List.sort Int.compare
  in
  let ws = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let w = Hashtbl.create 16 in
       Array.iter
         (fun b ->
            let total = ref (if b = s then 1 else 0) in
            List.iter
              (fun dst -> total := add !total (Hashtbl.find w dst))
              (fwd b);
            Hashtbl.replace w b !total)
         blocks_desc;
       Hashtbl.replace ws s w)
    sources;
  let heads =
    Hashtbl.fold (fun h () acc -> h :: acc) pentry [] |> List.sort Int.compare
  in
  let pairs =
    Hashtbl.fold (fun pr () acc -> pr :: acc) back_pairs []
    |> List.sort compare
  in
  let c = Hashtbl.create 8 in
  List.iter (fun h -> Hashtbl.replace c h (Hashtbl.find np h)) heads;
  let total = ref 0 in
  List.iter (fun h -> total := add !total (Hashtbl.find c h)) heads;
  for _d = 2 to k do
    let c' = Hashtbl.create 8 in
    List.iter
      (fun h ->
         let sum = ref 0 in
         List.iter
           (fun (s, h2) ->
              let reach = Hashtbl.find (Hashtbl.find ws s) h in
              sum := add !sum (mul reach (Hashtbl.find c h2)))
           pairs;
         Hashtbl.replace c' h !sum)
      heads;
    List.iter (fun h -> Hashtbl.replace c h (Hashtbl.find c' h)) heads;
    List.iter (fun h -> total := add !total (Hashtbl.find c h)) heads
  done;
  if !capped then Overflow else Exact !total

let bl_ktotal ?(cap = default_cap) p ~k =
  let total = ref (Exact 0) in
  Cfg.iter_procs
    (fun pr ->
       total := count_add ~cap !total (bl_kpaths ~cap p ~proc:pr.Cfg.pid ~k))
    p;
  !total

(* {1 Interprocedural forward-walk bound}

   The segmenter only ever extends a path along forward transfers, so
   every distinct recorded path is a forward walk through the
   context-insensitive interprocedural forward graph — a DAG, since
   forward edges strictly increase the address.  walks(b) counts walks
   starting at b (a walk may stop anywhere: every path-end reason cuts
   the walk short).  Branch arms stay distinct (they produce distinct
   signatures even when the targets coincide); indirect and return
   targets are deduplicated (the signature records only the target). *)

(* The walk DP shared by [forward_walks] and [kpath_walks]: the
   per-block walk counts, the any-start set, the head sets, and the
   saturation flag. *)
let forward_walks_dp ~cap p =
  let n = Cfg.num_blocks p in
  let hs = static_heads p in
  let capped = ref false in
  let walks = Array.make n 0 in
  let starts = Array.make n false in
  starts.(Cfg.entry_block p) <- true;
  Array.iteri (fun i h -> if h then starts.(i) <- true) hs.full;
  let forward_next src =
    let b = Cfg.block p src in
    let fwd dst = dst > src in
    match b.Cfg.term with
    | Cfg.Branch { taken; fallthrough } ->
      List.filter fwd [ taken; fallthrough ]
    | Cfg.Jump t -> List.filter fwd [ t ]
    | Cfg.Indirect targets ->
      List.filter fwd (List.sort_uniq compare (Array.to_list targets))
    | Cfg.Call { callee; _ } -> List.filter fwd [ (Cfg.proc p callee).Cfg.entry ]
    | Cfg.Return -> List.filter fwd (Cfg.return_targets p b.Cfg.proc)
    | Cfg.Exit -> []
  in
  (* Forward continuation targets can also head a path: the arms of a
     capped branch and the return_to of a forward matched return. *)
  Cfg.iter_blocks
    (fun b ->
       let src = b.Cfg.id in
       match b.Cfg.term with
       | Cfg.Branch { taken; fallthrough } ->
         if taken > src then starts.(taken) <- true;
         if fallthrough > src then starts.(fallthrough) <- true
       | _ -> ())
    p;
  List.iter
    (fun (_site, callee, return_to) ->
       if List.exists (fun r -> r < return_to) (Cfg.return_blocks p callee) then
         starts.(return_to) <- true)
    (Cfg.call_sites p);
  for b = n - 1 downto 0 do
    let total = ref 1 in
    List.iter
      (fun dst ->
         total := !total + walks.(dst);
         if !total > cap then begin
           capped := true;
           total := cap
         end)
      (forward_next b);
    walks.(b) <- !total
  done;
  (walks, starts, hs, capped)

(* Saturating sum of walk counts over a start predicate. *)
let sum_walks ~cap ~capped walks pred =
  let sum = ref 0 and capped = ref capped in
  for b = 0 to Array.length walks - 1 do
    if pred b then begin
      sum := !sum + walks.(b);
      if !sum > cap then begin
        capped := true;
        sum := cap
      end
    end
  done;
  (!sum, !capped)

let forward_walks ?(cap = default_cap) p =
  let walks, starts, _hs, capped = forward_walks_dp ~cap p in
  let sum, capped = sum_walks ~cap ~capped:!capped walks (fun b -> starts.(b)) in
  if capped then Overflow else Exact sum

(* A k-iteration window is a sequence of up to [k] components: the
   first starts at any path start, each later one at a full-set head (it
   arrived over a back edge).  So the distinct windows a [Kpath] trie
   can ever intern — suffix-link nodes included, since a suffix window's
   first component starts at a full head, a subset of any-start — are at
   most sum over d of all_walks * head_walks^(d-1). *)
let kpath_walks ?(cap = default_cap) p ~k =
  if k < 1 then invalid_arg "Bounds.kpath_walks: k must be >= 1";
  let walks, starts, hs, capped = forward_walks_dp ~cap p in
  let all, capped = sum_walks ~cap ~capped:!capped walks (fun b -> starts.(b)) in
  let head, capped = sum_walks ~cap ~capped walks (fun b -> hs.full.(b)) in
  let all = if capped then Overflow else Exact all in
  let head = if capped then Overflow else Exact head in
  let total = ref (Exact 0) in
  let term = ref all in
  for d = 1 to k do
    if d > 1 then term := count_mul ~cap !term head;
    total := count_add ~cap !total !term
  done;
  !total

(* {1 Report} *)

type proc_paths = { pp_proc : Cfg.proc_id; pp_name : string; pp_paths : count }

type report = {
  r_blocks : int;
  r_branches : int;
  r_paper_heads : int;
  r_full_heads : int;
  r_bl_total : count;
  r_per_proc : proc_paths list;
  r_forward_walks : count;
  r_net_to_bl_pct : float option;
}

let counter_space_report ?(cap = default_cap) p =
  let hs = static_heads p in
  let per_proc = ref [] in
  Cfg.iter_procs
    (fun pr ->
       per_proc :=
         { pp_proc = pr.Cfg.pid; pp_name = pr.Cfg.name;
           pp_paths = bl_paths ~cap p ~proc:pr.Cfg.pid }
         :: !per_proc)
    p;
  let per_proc = List.rev !per_proc in
  let bl =
    List.fold_left (fun acc pp -> count_add ~cap acc pp.pp_paths) (Exact 0) per_proc
  in
  let full = full_head_count hs in
  let pct =
    match bl with
    | Exact n when n > 0 -> Some (100.0 *. float_of_int full /. float_of_int n)
    | _ -> None
  in
  {
    r_blocks = Cfg.num_blocks p;
    r_branches = Cfg.branch_count p;
    r_paper_heads = paper_head_count hs;
    r_full_heads = full;
    r_bl_total = bl;
    r_per_proc = per_proc;
    r_forward_walks = forward_walks ~cap p;
    r_net_to_bl_pct = pct;
  }
