(** Wu–Larus-style branch-probability heuristics (Ball–Larus 1993,
    Wu–Larus 1994) over one procedure's control flow.

    Each conditional branch is assigned a taken-probability by combining
    the structural heuristics that apply to it with the Dempster–Shafer
    evidence rule, starting from an uninformative 0.5 prior.  The
    abstract ISA carries no instruction content, so the opcode/store
    heuristics of the original papers are approximated by the only
    content proxy a block has — its weight — and the pointer heuristic
    by the presence of an indirect-dispatch terminator (see DESIGN.md).

    The probabilities feed {!Freq}'s static frequency propagation; the
    per-branch evidence lists feed the [hotpath static] report and the
    heuristic unit tests. *)

open Hotpath_cfg

type heuristic =
  | Loop_branch  (** Back edges are taken (0.88). *)
  | Loop_exit  (** The arm staying in the innermost loop wins (0.80). *)
  | Loop_header  (** An arm entering a loop (its head) wins (0.75). *)
  | Call  (** An arm whose target performs a call loses (0.78). *)
  | Return  (** An arm whose target returns loses (0.72). *)
  | Pointer_guard
      (** An arm whose target is an indirect dispatch wins — the guard
          in front of a pointer dispatch usually passes (0.60). *)
  | Opcode_weight
      (** The arm with the heavier target block wins — the straight-line
          work proxy for the store/opcode content heuristics (0.55). *)
  | Fallback_not_taken
      (** No structural heuristic fired: forward branches fall through
          (taken 0.45) — the standard not-taken fallback. *)

val name : heuristic -> string
(** Short stable identifier, e.g. ["loop-branch"]. *)

val confidence : heuristic -> float
(** The Wu–Larus table probability of the heuristic's preferred arm. *)

val combine : float -> float -> float
(** Dempster–Shafer evidence combination of two taken-probabilities:
    [p*q / (p*q + (1-p)*(1-q))].  [combine 0.5 q = q]. *)

type branch = {
  br_block : Cfg.block_id;
  br_taken : Cfg.block_id;
  br_fallthrough : Cfg.block_id;
  br_taken_prob : float;  (** Combined evidence, in (0, 1). *)
  br_fired : heuristic list;  (** Heuristics that applied, fixed order. *)
}

type t

val analyze : Procgraph.t -> Loops.t -> t
(** Branch probabilities for the procedure of the graph.  The loop
    analysis must come from the same procedure
    ([Loops.analyze (Dominators.compute g)]). *)

val proc_id : t -> Cfg.proc_id

val branches : t -> branch list
(** Every conditional branch of the procedure with distinct arms,
    ascending by block.  A branch whose arms coincide is a single graph
    edge of probability 1 and is not listed. *)

val taken_prob : t -> Cfg.block_id -> float
(** Taken-probability of a branch block ([1.0] when both arms coincide).
    @raise Invalid_argument when the block is not a [Branch] of this
    procedure. *)

val succ_probs : t -> Cfg.block_id -> (Cfg.block_id * float) list
(** Intra-procedural successor distribution of any block of the
    procedure, over the deduplicated {!Procgraph} edges: branch arms by
    {!taken_prob}, indirect targets uniform, jump/call-continuation 1.0,
    return/exit empty.  Probabilities sum to 1 for every block with at
    least one successor (property-tested to 1e-9). *)
