open Hotpath_cfg

type heuristic =
  | Loop_branch
  | Loop_exit
  | Loop_header
  | Call
  | Return
  | Pointer_guard
  | Opcode_weight
  | Fallback_not_taken

let name = function
  | Loop_branch -> "loop-branch"
  | Loop_exit -> "loop-exit"
  | Loop_header -> "loop-header"
  | Call -> "call"
  | Return -> "return"
  | Pointer_guard -> "pointer-guard"
  | Opcode_weight -> "opcode-weight"
  | Fallback_not_taken -> "fallback-not-taken"

(* The Wu–Larus table values (Static Branch Frequency and Program
   Profile Analysis, MICRO-27), with the weight proxy at the store
   heuristic's 0.55 and the not-taken fallback at a mild 0.55. *)
let confidence = function
  | Loop_branch -> 0.88
  | Loop_exit -> 0.80
  | Loop_header -> 0.75
  | Call -> 0.78
  | Return -> 0.72
  | Pointer_guard -> 0.60
  | Opcode_weight -> 0.55
  | Fallback_not_taken -> 0.55

let combine p q = p *. q /. ((p *. q) +. ((1.0 -. p) *. (1.0 -. q)))

type branch = {
  br_block : Cfg.block_id;
  br_taken : Cfg.block_id;
  br_fallthrough : Cfg.block_id;
  br_taken_prob : float;
  br_fired : heuristic list;
}

type t = {
  program : Cfg.program;
  proc : Cfg.proc_id;
  branches : branch list;
  taken_prob : (Cfg.block_id, float) Hashtbl.t;
}

let proc_id t = t.proc

let branches t = t.branches

(* Innermost loop containing a block: among the loops whose body holds
   it, the one with the deepest head. *)
let innermost_loop loops b =
  List.fold_left
    (fun best (l : Loops.loop) ->
       if List.mem b l.Loops.blocks then
         match best with
         | Some (bl : Loops.loop) when bl.Loops.depth >= l.Loops.depth -> best
         | _ -> Some l
       else best)
    None (Loops.loops loops)

let analyze g loops =
  let p = Procgraph.program g in
  let proc = Procgraph.proc_id g in
  let back = Hashtbl.create 16 in
  let heads = Hashtbl.create 8 in
  List.iter
    (fun (l : Loops.loop) ->
       Hashtbl.replace heads l.Loops.head ();
       List.iter (fun e -> Hashtbl.replace back e ()) l.Loops.back_edges)
    (Loops.loops loops);
  let is_back src dst = Hashtbl.mem back (src, dst) in
  let is_head b = Hashtbl.mem heads b in
  let term b = (Cfg.block p b).Cfg.term in
  let taken_prob = Hashtbl.create 64 in
  let branch_infos = ref [] in
  Array.iter
    (fun b ->
       match term b with
       | Cfg.Branch { taken; fallthrough } when taken <> fallthrough ->
         let fired = ref [] in
         (* Each heuristic contributes a taken-probability; the rule is
            skipped when it cannot tell the arms apart. *)
         let apply h taken_favored =
           fired := h :: !fired;
           let c = confidence h in
           if taken_favored then c else 1.0 -. c
         in
         let votes = ref [] in
         let vote v = votes := v :: !votes in
         (* Loop branch: a back-edge arm is taken. *)
         (match (is_back b taken, is_back b fallthrough) with
          | true, false -> vote (apply Loop_branch true)
          | false, true -> vote (apply Loop_branch false)
          | _ -> ());
         (* Loop exit: the arm staying in the innermost loop around the
            branch wins. *)
         (match innermost_loop loops b with
          | Some l ->
            let stays x = List.mem x l.Loops.blocks in
            (match (stays taken, stays fallthrough) with
             | true, false -> vote (apply Loop_exit true)
             | false, true -> vote (apply Loop_exit false)
             | _ -> ())
          | None -> ());
         (* Loop header: an arm entering a loop (without being its back
            edge) wins. *)
         (match
            ( is_head taken && not (is_back b taken),
              is_head fallthrough && not (is_back b fallthrough) )
          with
          | true, false -> vote (apply Loop_header true)
          | false, true -> vote (apply Loop_header false)
          | _ -> ());
         (* Call / Return: an arm leading straight to a call or a return
            is off the fast path. *)
         let is_call x = match term x with Cfg.Call _ -> true | _ -> false in
         (match (is_call taken, is_call fallthrough) with
          | true, false -> vote (apply Call false)
          | false, true -> vote (apply Call true)
          | _ -> ());
         let is_ret x = match term x with Cfg.Return -> true | _ -> false in
         (match (is_ret taken, is_ret fallthrough) with
          | true, false -> vote (apply Return false)
          | false, true -> vote (apply Return true)
          | _ -> ());
         (* Pointer guard: an arm reaching an indirect dispatch wins. *)
         let is_ind x =
           match term x with Cfg.Indirect _ -> true | _ -> false
         in
         (match (is_ind taken, is_ind fallthrough) with
          | true, false -> vote (apply Pointer_guard true)
          | false, true -> vote (apply Pointer_guard false)
          | _ -> ());
         (* Weight proxy for the opcode/store content heuristics. *)
         let wt = (Cfg.block p taken).Cfg.weight
         and wf = (Cfg.block p fallthrough).Cfg.weight in
         if wt > wf then vote (apply Opcode_weight true)
         else if wf > wt then vote (apply Opcode_weight false);
         if !votes = [] then vote (apply Fallback_not_taken false);
         let prob = List.fold_left combine 0.5 (List.rev !votes) in
         (* Evidence keeps probabilities strictly inside (0, 1); the
            clamp guards the frequency propagation against any future
            heuristic that could saturate. *)
         let prob = Float.min 0.99 (Float.max 0.01 prob) in
         Hashtbl.replace taken_prob b prob;
         branch_infos :=
           {
             br_block = b;
             br_taken = taken;
             br_fallthrough = fallthrough;
             br_taken_prob = prob;
             br_fired = List.rev !fired;
           }
           :: !branch_infos
       | Cfg.Branch _ -> Hashtbl.replace taken_prob b 1.0
       | _ -> ())
    (Cfg.proc p proc).Cfg.blocks;
  { program = p; proc; branches = List.rev !branch_infos; taken_prob }

let taken_prob t b =
  match Hashtbl.find_opt t.taken_prob b with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Heuristics.taken_prob: block %d is not a branch of proc %d"
         b t.proc)

let succ_probs t b =
  let p = t.program in
  let blk = Cfg.block p b in
  if blk.Cfg.proc <> t.proc then
    invalid_arg
      (Printf.sprintf "Heuristics.succ_probs: block %d not in proc %d" b t.proc);
  let probs =
    match blk.Cfg.term with
    | Cfg.Branch { taken; fallthrough } when taken = fallthrough ->
      [ (taken, 1.0) ]
    | Cfg.Branch { taken; fallthrough } ->
      let pt = taken_prob t b in
      [ (taken, pt); (fallthrough, 1.0 -. pt) ]
    | Cfg.Jump d -> [ (d, 1.0) ]
    | Cfg.Indirect targets ->
      let distinct = List.sort_uniq compare (Array.to_list targets) in
      let u = 1.0 /. float_of_int (List.length distinct) in
      List.map (fun d -> (d, u)) distinct
    | Cfg.Call { return_to; _ } -> [ (return_to, 1.0) ]
    | Cfg.Return | Cfg.Exit -> []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) probs
