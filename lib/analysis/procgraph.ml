open Hotpath_cfg

type t = {
  program : Cfg.program;
  proc : Cfg.proc_id;
  blocks : Cfg.block_id array;  (* local -> global, layout order *)
  local_of : (Cfg.block_id, int) Hashtbl.t;
  succ : int array array;
  pred : int array array;
}

let dedup_sorted l = List.sort_uniq compare l

let build program ~proc =
  let pr = Cfg.proc program proc in
  let blocks = Array.copy pr.Cfg.blocks in
  let n = Array.length blocks in
  let local_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i g -> Hashtbl.replace local_of g i) blocks;
  let succ_lists = Array.make n [] in
  let pred_lists = Array.make n [] in
  Array.iteri
    (fun i g ->
       let targets = ref [] in
       Cfg.iter_succ (fun dst -> targets := dst :: !targets) program g;
       let locals = dedup_sorted (List.map (Hashtbl.find local_of) !targets) in
       succ_lists.(i) <- locals;
       List.iter (fun j -> pred_lists.(j) <- i :: pred_lists.(j)) locals)
    blocks;
  let succ = Array.map Array.of_list succ_lists in
  let pred = Array.map (fun l -> Array.of_list (dedup_sorted l)) pred_lists in
  { program; proc; blocks; local_of; succ; pred }

let program t = t.program
let proc_id t = t.proc
let size t = Array.length t.blocks
let entry _t = 0
let global t i = t.blocks.(i)

let local t g =
  match Hashtbl.find_opt t.local_of g with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Procgraph.local: block %d not in procedure %d" g t.proc)

let succ t i = t.succ.(i)
let pred t i = t.pred.(i)

let reachable t =
  let n = size t in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Array.iter visit t.succ.(i)
    end
  in
  if n > 0 then visit 0;
  seen

let unreachable_blocks t =
  let seen = reachable t in
  let out = ref [] in
  for i = size t - 1 downto 0 do
    if not seen.(i) then out := t.blocks.(i) :: !out
  done;
  !out
