open Hotpath_cfg

let cp_cap = 0.98

(* Sweep budget of the irreducible fallback solver; with branch
   probabilities clamped to <= 0.99 the sweep-to-sweep contraction is
   at worst the largest cycle gain, so this is an explicit
   approximation, flagged as such (P113). *)
let max_sweeps = 200

let sweep_epsilon = 1e-10

type proc_freq = {
  g : Procgraph.t;
  bfreq : float array;  (* local index -> executions per invocation *)
  efreq : float array array;  (* aligned with [Procgraph.succ] *)
  cp : float array;  (* capped cyclic probability; 0 for non-heads *)
  is_head : bool array;
  capped : bool array;
  degraded : bool;
}

let local_exn g b = Procgraph.local g b

let block_freq t b = t.bfreq.(local_exn t.g b)

let succ_index t u gdst =
  let su = Procgraph.succ t.g u in
  let rec find i =
    if i >= Array.length su then
      invalid_arg
        (Printf.sprintf "Freq.edge_freq: %d -> %d is not an edge"
           (Procgraph.global t.g u) gdst)
    else if Procgraph.global t.g su.(i) = gdst then i
    else find (i + 1)
  in
  find 0

let edge_freq t ~src ~dst =
  let u = local_exn t.g src in
  t.efreq.(u).(succ_index t u dst)

let cyclic_prob t b =
  let u = local_exn t.g b in
  if t.is_head.(u) then Some t.cp.(u) else None

let capped_heads t =
  let acc = ref [] in
  for u = Array.length t.capped - 1 downto 0 do
    if t.capped.(u) then acc := Procgraph.global t.g u :: !acc
  done;
  !acc

let proc_degraded t = t.degraded

(* Index of local successor [v] in [succ g u] — the pre-[t] version of
   [succ_index] for use during analysis. *)
let succ_index_local g u v =
  let su = Procgraph.succ g u in
  let rec find i =
    if i >= Array.length su then assert false
    else if su.(i) = v then i
    else find (i + 1)
  in
  find 0

let analyze_proc g loops heur =
  let n = Procgraph.size g in
  let probs =
    Array.init n (fun u ->
        let sp = Heuristics.succ_probs heur (Procgraph.global g u) in
        Array.map
          (fun v ->
             match List.assoc_opt (Procgraph.global g v) sp with
             | Some pr -> pr
             | None -> assert false (* same dedup'd successor set *))
          (Procgraph.succ g u))
  in
  (* (pred, edge index in pred's succ array) per block. *)
  let incoming = Array.make n [] in
  for u = 0 to n - 1 do
    Array.iteri
      (fun i v -> incoming.(v) <- (u, i) :: incoming.(v))
      (Procgraph.succ g u)
  done;
  let back = Hashtbl.create 16 in
  let is_head = Array.make n false in
  List.iter
    (fun (l : Loops.loop) ->
       is_head.(Procgraph.local g l.Loops.head) <- true;
       List.iter
         (fun (t, h) ->
            Hashtbl.replace back (Procgraph.local g t, Procgraph.local g h) ())
         l.Loops.back_edges)
    (Loops.loops loops);
  let is_back u v = Hashtbl.mem back (u, v) in
  let bfreq = Array.make n 0.0 in
  let efreq = Array.map (fun ps -> Array.make (Array.length ps) 0.0) probs in
  let cp = Array.make n 0.0 in
  let capped = Array.make n false in
  let reachable = Procgraph.reachable g in
  let degraded = not (Loops.reducible loops) in
  let set_out u =
    Array.iteri (fun i pr -> efreq.(u).(i) <- pr *. bfreq.(u)) probs.(u)
  in
  if degraded then begin
    (* Irreducible: bounded Gauss–Seidel over the full linear system,
       all edges included.  Approximate by construction; the procedure
       is reported degraded and lint surfaces it as P113. *)
    let entry = Procgraph.entry g in
    let sweep () =
      let delta = ref 0.0 in
      for u = 0 to n - 1 do
        if reachable.(u) then begin
          let f = ref (if u = entry then 1.0 else 0.0) in
          List.iter
            (fun (p, i) -> f := !f +. (probs.(p).(i) *. bfreq.(p)))
            incoming.(u);
          delta := Float.max !delta (Float.abs (!f -. bfreq.(u)));
          bfreq.(u) <- !f
        end
      done;
      !delta
    in
    let rec run s = if s < max_sweeps && sweep () > sweep_epsilon then run (s + 1) in
    run 0;
    for u = 0 to n - 1 do
      set_out u
    done
  end
  else begin
    (* Reverse post-order of the graph minus dominance back edges —
       acyclic for reducible procedures, so a single in-order walk has
       every (non-back) predecessor ready. *)
    let rpo =
      let seen = Array.make n false in
      let post = ref [] in
      let entry = Procgraph.entry g in
      let stack = ref [ (entry, ref 0) ] in
      seen.(entry) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, i) :: rest ->
          let su = Procgraph.succ g u in
          if !i < Array.length su then begin
            let v = su.(!i) in
            incr i;
            if (not (is_back u v)) && not seen.(v) then begin
              seen.(v) <- true;
              stack := (v, ref 0) :: !stack
            end
          end
          else begin
            stack := rest;
            post := u :: !post
          end
      done;
      !post
    in
    (* One pass: compute member frequencies relative to [freq head =
       head_f], refreshing outgoing edge flows; [stamp] distinguishes
       this pass's flows from stale ones. *)
    let mark = Array.make n 0 in
    let pass = ref 0 in
    let run_pass ~members ~head ~head_f =
      incr pass;
      List.iter (fun u -> mark.(u) <- !pass) members;
      List.iter
        (fun u ->
           if mark.(u) = !pass then begin
             (if u = head then bfreq.(u) <- head_f
              else begin
                let inflow = ref 0.0 in
                List.iter
                  (fun (p, i) ->
                     if mark.(p) = !pass && not (is_back p u) then
                       inflow := !inflow +. efreq.(p).(i))
                  incoming.(u);
                bfreq.(u) <-
                  (if is_head.(u) then !inflow /. (1.0 -. cp.(u)) else !inflow)
              end);
             set_out u
           end)
        rpo
    in
    (* Innermost-first: each loop pass freezes its head's cyclic
       probability before any enclosing pass reads it. *)
    let by_depth =
      List.sort
        (fun (a : Loops.loop) (b : Loops.loop) ->
           compare (b.Loops.depth, a.Loops.head) (a.Loops.depth, b.Loops.head))
        (Loops.loops loops)
    in
    List.iter
      (fun (l : Loops.loop) ->
         let h = Procgraph.local g l.Loops.head in
         run_pass
           ~members:(List.map (Procgraph.local g) l.Loops.blocks)
           ~head:h ~head_f:1.0;
         let raw =
           List.fold_left
             (fun acc (t, hd) ->
                let tl = Procgraph.local g t in
                acc +. efreq.(tl).(succ_index_local g tl (Procgraph.local g hd)))
             0.0 l.Loops.back_edges
         in
         capped.(h) <- raw > cp_cap;
         cp.(h) <- Float.min cp_cap raw)
      by_depth;
    let entry = Procgraph.entry g in
    let entry_f = if is_head.(entry) then 1.0 /. (1.0 -. cp.(entry)) else 1.0 in
    run_pass ~members:rpo ~head:entry ~head_f:entry_f
  end;
  { g; bfreq; efreq; cp; is_head; capped; degraded }

(* ------------------------------------------------------------------ *)

type t = {
  prog : Cfg.program;
  pfs : proc_freq array;
  inv : float array;
  recursion_capped : bool;
  heads : (Cfg.block_id * float) list;
}

let program t = t.prog

let of_proc t pid =
  if pid < 0 || pid >= Array.length t.pfs then
    invalid_arg (Printf.sprintf "Freq.of_proc: no procedure %d" pid);
  t.pfs.(pid)

let invocation_freq t pid =
  if pid < 0 || pid >= Array.length t.inv then
    invalid_arg (Printf.sprintf "Freq.invocation_freq: no procedure %d" pid);
  t.inv.(pid)

let global_freq t b =
  let pid = (Cfg.block t.prog b).Cfg.proc in
  t.inv.(pid) *. block_freq t.pfs.(pid) b

let degraded_procs t =
  let acc = ref [] in
  for pid = Array.length t.pfs - 1 downto 0 do
    if t.pfs.(pid).degraded then acc := pid :: !acc
  done;
  !acc

let recursion_capped t = t.recursion_capped

let ranked_heads t = t.heads

(* Invocation frequencies over the call graph: closed form in
   topological order when acyclic; otherwise bounded iteration with an
   explicit cap — gain-above-one recursion diverges in reality too. *)
let inv_cap = 1e15

let inv_sweeps = 32

let solve_invocations prog pfs =
  let np = Cfg.num_procs prog in
  let out = Array.make np [] in
  List.iter
    (fun (site, callee, _) ->
       let caller = (Cfg.block prog site).Cfg.proc in
       let w = block_freq pfs.(caller) site in
       out.(caller) <- (callee, w) :: out.(caller))
    (Cfg.call_sites prog);
  let base = Array.make np 0.0 in
  base.(prog.Cfg.main) <- 1.0;
  let indeg = Array.make np 0 in
  Array.iter (List.iter (fun (q, _) -> indeg.(q) <- indeg.(q) + 1)) out;
  let queue = Queue.create () in
  Array.iteri (fun pid d -> if d = 0 then Queue.add pid queue) indeg;
  let topo = ref [] and visited = ref 0 in
  while not (Queue.is_empty queue) do
    let pid = Queue.pop queue in
    incr visited;
    topo := pid :: !topo;
    List.iter
      (fun (q, _) ->
         indeg.(q) <- indeg.(q) - 1;
         if indeg.(q) = 0 then Queue.add q queue)
      out.(pid)
  done;
  if !visited = np then begin
    let inv = Array.copy base in
    List.iter
      (fun pid ->
         List.iter
           (fun (q, w) -> inv.(q) <- inv.(q) +. (inv.(pid) *. w))
           out.(pid))
      (List.rev !topo);
    (inv, false)
  end
  else begin
    let inv = Array.copy base in
    for _ = 1 to inv_sweeps do
      let acc = Array.copy base in
      Array.iteri
        (fun pid edges ->
           List.iter
             (fun (q, w) ->
                acc.(q) <- Float.min inv_cap (acc.(q) +. (inv.(pid) *. w)))
             edges)
        out;
      Array.blit acc 0 inv 0 np
    done;
    (inv, true)
  end

let estimate prog =
  let pfs =
    Array.init (Cfg.num_procs prog) (fun pid ->
        let g = Procgraph.build prog ~proc:pid in
        let loops = Loops.analyze (Dominators.compute g) in
        analyze_proc g loops (Heuristics.analyze g loops))
  in
  let inv, recursion_capped = solve_invocations prog pfs in
  let t0 = { prog; pfs; inv; recursion_capped; heads = [] } in
  let heads =
    Bounds.full_heads (Bounds.static_heads prog)
    |> List.map (fun h -> (h, global_freq t0 h))
    |> List.sort (fun (ha, fa) (hb, fb) -> compare (fb, ha) (fa, hb))
  in
  { t0 with heads }

(* Schemes call [create] once per delay lane on the same loaded
   program; the estimate is pure, so share it by physical identity. *)
let cache_lock = Mutex.create ()

let cache : (Cfg.program * t) list ref = ref []

let cache_limit = 8

let cached prog =
  Mutex.protect cache_lock (fun () ->
      match List.find_opt (fun (p, _) -> p == prog) !cache with
      | Some (_, t) -> t
      | None ->
        let t = estimate prog in
        cache :=
          (prog, t)
          :: (if List.length !cache >= cache_limit then
                List.filteri (fun i _ -> i < cache_limit - 1) !cache
              else !cache);
        t)
