(** Natural-loop detection and reducibility over one procedure.

    A back edge is an edge [tail -> head] whose head dominates its tail;
    the natural loop of a head is the head plus every block that can
    reach some back-edge tail without passing through the head.  Back
    edges sharing a head are merged into one loop (the usual
    convention).  A procedure is {e reducible} when removing all such
    dominance back edges leaves the reachable subgraph acyclic — any
    remaining cycle is entered at two or more points and has no unique
    header. *)

open Hotpath_cfg

type loop = {
  head : Cfg.block_id;
  back_edges : (Cfg.block_id * Cfg.block_id) list;
      (** [(tail, head)] pairs, ascending by tail. *)
  blocks : Cfg.block_id list;  (** Loop body including the head, ascending. *)
  depth : int;  (** Nesting depth; 1 = outermost. *)
  parent : Cfg.block_id option;
      (** Head of the innermost strictly-enclosing loop. *)
}

type t

val analyze : Dominators.t -> t

val loops : t -> loop list
(** All natural loops, ascending by head address. *)

val loop_count : t -> int

val depth_of : t -> Cfg.block_id -> int
(** Number of natural loops containing the block ([0] = not in a
    loop). *)

val max_depth : t -> int

val reducible : t -> bool

val irreducible_edges : t -> (Cfg.block_id * Cfg.block_id) list
(** Witnesses of irreducibility: retreating edges (reached while the
    destination was still on the DFS stack, after all dominance back
    edges were removed).  Empty iff {!reducible}. *)
