(** Static block/edge frequency estimation (Wu–Larus 1994) from the
    {!Heuristics} branch probabilities.

    Per procedure, loops are processed innermost-first: one propagation
    pass per loop computes the head's {e cyclic probability} (expected
    back-edge flow per loop entry, capped at {!cp_cap}), and a final
    pass from the procedure entry scales every loop head by
    [1 / (1 - cp)].  The propagation is exact on reducible flow graphs;
    irreducible procedures fall back to a bounded iterative solver and
    are flagged {!proc_degraded} (surfaced as lint code P113).

    Program-level estimates combine per-procedure frequencies with
    call-graph invocation counts (closed form when the call graph is
    acyclic, bounded capped iteration under recursion). *)

open Hotpath_cfg

val cp_cap : float
(** [0.98] — ceiling on any cyclic probability, bounding the frequency
    multiplier of a single loop at 50 iterations per entry (the
    Wu–Larus convention).  Heads where the cap binds violate exact flow
    conservation; {!capped_heads} lists them. *)

(** {1 Per-procedure frequencies} *)

type proc_freq

val analyze_proc : Procgraph.t -> Loops.t -> Heuristics.t -> proc_freq
(** All three analyses must describe the same procedure. *)

val block_freq : proc_freq -> Cfg.block_id -> float
(** Expected executions of the block per invocation of its procedure
    (entry = 1, or [1/(1-cp)] when the entry heads a loop).
    @raise Invalid_argument when the block is not in the procedure. *)

val edge_freq : proc_freq -> src:Cfg.block_id -> dst:Cfg.block_id -> float
(** Expected traversals of the intra-procedural edge per invocation.
    @raise Invalid_argument when [src -> dst] is not a {!Procgraph}
    edge of the procedure. *)

val cyclic_prob : proc_freq -> Cfg.block_id -> float option
(** [Some cp] when the block heads a natural loop ([None] otherwise);
    already capped at {!cp_cap}. *)

val capped_heads : proc_freq -> Cfg.block_id list
(** Loop heads whose raw cyclic probability exceeded {!cp_cap},
    ascending.  Flow conservation is inexact at these blocks. *)

val proc_degraded : proc_freq -> bool
(** The procedure is irreducible and was solved by the bounded
    iterative fallback instead of the closed form. *)

(** {1 Whole-program estimate} *)

type t

val estimate : Cfg.program -> t

val cached : Cfg.program -> t
(** Memoized {!estimate}, keyed on physical program identity — schemes
    call this once per delay lane on the same loaded program. *)

val program : t -> Cfg.program

val of_proc : t -> Cfg.proc_id -> proc_freq

val invocation_freq : t -> Cfg.proc_id -> float
(** Estimated invocations of the procedure per program run ([main] gets
    one plus any incoming calls). *)

val global_freq : t -> Cfg.block_id -> float
(** [invocation_freq (proc of b) * block_freq b] — expected executions
    of the block per program run. *)

val degraded_procs : t -> Cfg.proc_id list
(** Procedures solved by the irreducible fallback, ascending. *)

val recursion_capped : t -> bool
(** The call graph is cyclic, so invocation frequencies come from the
    bounded capped iteration rather than the closed form. *)

val ranked_heads : t -> (Cfg.block_id * float) list
(** The {!Bounds.static_heads} [full] set — every block a backward
    transfer can reach at runtime — ranked by descending
    {!global_freq}, ties broken by ascending block id.  The static
    prediction scheme and the [hotpath static] report both read hot
    heads off this ranking. *)
