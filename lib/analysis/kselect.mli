(** Profile-guided k selection for the k-iteration scheme family
    (ROADMAP item 4): choose a per-loop-head window length k from the
    static estimate alone.

    A longer window only pays off when (a) the loop is expected to
    iterate long enough to fill and trip a k-window — the {!Freq}
    cyclic probability gives expected iterations per entry — and (b)
    the k-th power of the loop body's path count stays within a counter
    budget, since distinct windows (and so counter space) grow like
    [paths^k].  Each head gets the largest [k <= max_k] satisfying
    both; every other block (including non-loop-head members of the
    dynamic head set) stays at [k = 1]. *)

open Hotpath_cfg

val default_max_k : int
(** [3] — matches the fixed-k range evaluated in EXPERIMENTS.md. *)

val default_budget : int
(** [4096] — per-head ceiling on the estimated distinct k-windows. *)

type choice = {
  head : Cfg.block_id;
  k : int;
  iterations : float;  (** Estimated iterations per loop entry. *)
  body_paths : Bounds.count;
      (** Acyclic-path proxy of the loop body: the product of the
          branching factors of its multi-way terminators. *)
}

type t

val analyze : ?max_k:int -> ?budget:int -> Freq.t -> t

val cached : Cfg.program -> t
(** Memoized [analyze (Freq.cached program)] at the default parameters,
    keyed on physical program identity (the kauto schemes call this
    once per delay lane). *)

val k_for : t -> Cfg.block_id -> int
(** Selected window length for a head block; [1] for any block that
    heads no natural loop. *)

val choices : t -> choice list
(** One entry per natural-loop head, ascending by head block. *)

val max_selected : t -> int
(** Largest selected k across the program ([1] when loop-free). *)
