(** Static prediction bounds: path-head sets, Ball–Larus path counts,
    and the counter-space comparison of NET vs path profiling — the
    paper's Section 4.2 argument, derived from the CFG alone.

    Counts saturate at an explicit cap instead of overflowing: real
    workloads (the gcc/go-shaped generators) have more than [2^60]
    acyclic paths, which is precisely the paper's point about
    path-profiling counter space. *)

open Hotpath_cfg

(** {1 Static path-head sets} *)

type head_sets = {
  paper : bool array;
      (** Per block id: target of a backward taken-branch, jump, or
          indirect edge — the paper's potential-path-head definition
          (mirrors {!Cfg.backward_branch_target_count}). *)
  full : bool array;
      (** Per block id: every block at which a backward transfer can
          arrive at runtime — [paper] plus backward branch fallthroughs,
          backward call entries, and backward return targets.  The
          dynamic loop-head set of any trace of the program is contained
          in this set. *)
}

val static_heads : Cfg.program -> head_sets

val paper_head_count : head_sets -> int

val full_head_count : head_sets -> int

val full_heads : head_sets -> Cfg.block_id list
(** Blocks of the [full] set, ascending. *)

(** {1 Saturating path counts} *)

type count = Exact of int | Overflow  (** Exceeds the cap. *)

val default_cap : int
(** [2{^50}] — the same limit at which [Ball_larus.analyze] raises, so
    [bl_paths] returns [Overflow] exactly when the instrumentation
    would refuse the procedure. *)

val count_to_string : count -> string
(** ["1234"] or [">2^50"] (cap-dependent). *)

val count_add : cap:int -> count -> count -> count

val count_mul : cap:int -> count -> count -> count
(** Saturating product: [Overflow] when either operand is [Overflow] or
    the exact product exceeds [cap] (checked without native-int
    overflow). *)

val count_le : count -> count -> bool
(** [count_le a b] — is [a <= b]?  [Overflow] compares above every
    [Exact] and equal to itself. *)

(** {1 Ball–Larus bounds} *)

val bl_paths : ?cap:int -> Cfg.program -> proc:Cfg.proc_id -> count
(** Static Ball–Larus path count of one procedure, mirroring
    [Ball_larus.analyze]'s edge construction (pseudo entry/exit edges
    for loop back edges, deduplicated indirect targets, parallel branch
    arms kept distinct).  [Exact n] equals [Ball_larus.num_paths] when
    [n] is below the cap. *)

val bl_total : ?cap:int -> Cfg.program -> count
(** Saturating sum of {!bl_paths} over all procedures — the static
    counter-space requirement of exhaustive path profiling. *)

val bl_kpaths : ?cap:int -> Cfg.program -> proc:Cfg.proc_id -> k:int -> count
(** Static k-iteration path count of one procedure (chains of up to [k]
    acyclic components linked by the procedure's back edges), the
    saturating mirror of [Ball_larus.num_kpaths]: at the default cap,
    [Overflow] iff the instrumented analyzer raises, because both replay
    the same arithmetic in the same order.  [bl_kpaths ~k:1] equals
    {!bl_paths}.
    @raise Invalid_argument when [k < 1]. *)

val bl_ktotal : ?cap:int -> Cfg.program -> k:int -> count
(** Saturating sum of {!bl_kpaths} over all procedures. *)

val forward_walks : ?cap:int -> Cfg.program -> count
(** Upper bound on the number of {e distinct interprocedural paths} the
    trace segmenter can ever intern for this program: the number of
    forward walks through the context-insensitive interprocedural
    forward DAG, starting from any block that can head a path (the
    program entry, the [full] head set, and forward continuation
    targets).  Every recorded path id is one such walk, so any replay's
    path-table size and path-profile counter space are [<=] this. *)

val kpath_walks : ?cap:int -> Cfg.program -> k:int -> count
(** Upper bound on the distinct k-iteration windows any trace of this
    program can produce — and so on a [path-profile-k<k>] replay's
    counter space, suffix-link trie nodes included: the first window
    component is any forward walk ({!forward_walks} starts), every later
    component starts at a [full]-set head, giving
    [sum over d in 1..k of all_walks * head_walks^(d-1)].
    [kpath_walks ~k:1] equals {!forward_walks}.
    @raise Invalid_argument when [k < 1]. *)

(** {1 Counter-space report} *)

type proc_paths = { pp_proc : Cfg.proc_id; pp_name : string; pp_paths : count }

type report = {
  r_blocks : int;
  r_branches : int;
  r_paper_heads : int;  (** NET counter-space bound, paper definition. *)
  r_full_heads : int;  (** NET counter-space bound, all backward arrivals. *)
  r_bl_total : count;  (** Path-profiling counter-space requirement. *)
  r_per_proc : proc_paths list;
  r_forward_walks : count;
  r_net_to_bl_pct : float option;
      (** [100 * full_heads / bl_total] when the latter is exact — the
          static analogue of the paper's ~60% NET-to-path-profile
          counter ratio. *)
}

val counter_space_report : ?cap:int -> Cfg.program -> report
