(** Facade: the library's public surface under one namespace.

    {b hotpath} is an OCaml reproduction of Duesterwald & Bala,
    {e Software Profiling for Hot Path Prediction: Less is More}
    (ASPLOS 2000).  The layers, bottom up:

    - {!Prng}, {!Vec}, {!Stats}, {!Tablefmt} — deterministic utilities;
    - {!Cfg} — the virtual CFG ISA standing in for PA-RISC binaries;
    - {!Diag}, {!Dominators}, {!Loops}, {!Bounds}, {!Lint}, {!Report},
      {!Check} — static CFG analyses (dominators, natural loops, path
      bounds) and the program/trace linter behind [hotpath check];
    - {!Behavior}, {!Vm} — stochastic branch models and the interpreter;
    - {!Signature}, {!Path}, {!Path_table}, {!Recorder} — the paper's
      interprocedural forward paths and the record-once/replay-many trace;
    - {!Ball_larus}, {!Bit_tracing}, {!Young_smith} — offline path
      profilers;
    - {!Scheme}, {!Path_profile_scheme}, {!Net}, {!Path_profile_k},
      {!Net_k}, {!Schemes}, {!Replay}, {!Session} — online prediction
      (batch and incremental-push), the k-iteration scheme families, and
      the scheme-name registry;
    - {!Serve} — the [hotpath serve] daemon: per-tenant sessions over
      Unix sockets with bounded-queue backpressure ({!Bqueue});
    - {!Hot_set}, {!Rates}, {!Sweep} — the abstract evaluation metrics;
    - {!Generator}, {!Figure1}, {!Suite} — synthetic workloads;
    - {!Cost_model}, {!Fragment_cache}, {!Engine} — the Dynamo simulator;
    - {!Experiments} — one driver per paper table/figure.

    Quickstart:
    {[
      let bench = Hotpath.Suite.find_exn "compress" in
      let recorded = Hotpath.Suite.record ~scale:0.1 bench in
      let hot =
        Hotpath.Hot_set.compute
          ~freq:(Hotpath.Recorder.frequencies recorded)
          ~total_flow:(Hotpath.Recorder.num_instances recorded)
          ~threshold:0.001
      in
      let outcome = Hotpath.Replay.run (module Hotpath.Net) ~delay:50 recorded in
      let rates = Hotpath.Rates.operational outcome hot in
      Format.printf "NET hit rate: %.1f%%@." rates.Hotpath.Rates.hit_rate
    ]} *)

module Prng = Hotpath_util.Prng
module Events = Hotpath_util.Events
module Vec = Hotpath_util.Vec
module Bqueue = Hotpath_util.Bqueue
module Pool = Hotpath_util.Pool
module Stats = Hotpath_util.Stats
module Tablefmt = Hotpath_util.Tablefmt
module Cfg = Hotpath_cfg.Cfg
module Diag = Hotpath_analysis.Diag
module Dominators = Hotpath_analysis.Dominators
module Loops = Hotpath_analysis.Loops
module Bounds = Hotpath_analysis.Bounds
module Lint = Hotpath_analysis.Lint
module Report = Hotpath_analysis.Report
module Check = Hotpath_trace.Check
module Behavior = Hotpath_vm.Behavior
module Vm = Hotpath_vm.Vm
module Signature = Hotpath_trace.Signature
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Kpath = Hotpath_trace.Kpath
module Recorder = Hotpath_trace.Recorder
module Batch = Hotpath_trace.Batch
module Serialize = Hotpath_trace.Serialize
module Ball_larus = Hotpath_profiling.Ball_larus
module Bit_tracing = Hotpath_profiling.Bit_tracing
module Young_smith = Hotpath_profiling.Young_smith
module Edge_profile = Hotpath_profiling.Edge_profile
module Sampling = Hotpath_profiling.Sampling
module Scheme = Hotpath_prediction.Scheme
module Path_profile_scheme = Hotpath_prediction.Path_profile
module Net = Hotpath_prediction.Net
module Path_profile_k = Hotpath_prediction.Path_profile_k
module Net_k = Hotpath_prediction.Net_k
module Schemes = Hotpath_prediction.Schemes
module Branch_profile = Hotpath_prediction.Branch_profile
module Replay = Hotpath_prediction.Replay
module Session = Hotpath_prediction.Session
module Serve = Hotpath_serve.Serve
module Hot_set = Hotpath_metrics.Hot_set
module Rates = Hotpath_metrics.Rates
module Sweep = Hotpath_metrics.Sweep
module Phased = Hotpath_metrics.Phased
module Generator = Hotpath_workloads.Generator
module Figure1 = Hotpath_workloads.Figure1
module Correlated = Hotpath_workloads.Correlated
module Suite = Hotpath_workloads.Suite
module Cost_model = Hotpath_dynamo.Cost_model
module Fragment_cache = Hotpath_dynamo.Fragment_cache
module Engine = Hotpath_dynamo.Engine
module Online = Hotpath_dynamo.Online

module Experiments = struct
  module Runs = Hotpath_experiments.Runs
  module Table1 = Hotpath_experiments.Table1
  module Table2 = Hotpath_experiments.Table2
  module Figures23 = Hotpath_experiments.Figures23
  module Fig4 = Hotpath_experiments.Fig4
  module Fig5 = Hotpath_experiments.Fig5
  module Ablations = Hotpath_experiments.Ablations
  module Offline = Hotpath_experiments.Offline
  module Phases = Hotpath_experiments.Phases
  module Events_summary = Hotpath_experiments.Events_summary
end
