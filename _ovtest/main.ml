(* Craft a HOTPATH3 stream with many empty k_paths frames *)
module S = Hotpath_trace.Serialize
module Cfg = Hotpath_cfg.Cfg

let frame buf ~kind payload =
  let hdr = Bytes.create 5 in
  Bytes.set_uint8 hdr 0 kind;
  Bytes.set_int32_le hdr 1 (Int32.of_int (String.length payload));
  let crc = Hotpath_util.Crc32.update_bytes Hotpath_util.Crc32.empty hdr ~pos:0 ~len:5 in
  let crc = Hotpath_util.Crc32.update_string crc payload ~pos:0 ~len:(String.length payload) in
  Buffer.add_bytes buf hdr;
  Buffer.add_string buf payload;
  let tl = Bytes.create 4 in
  Bytes.set_int32_le tl 0 crc;
  Buffer.add_bytes buf tl

let () =
  (* take the program frame from a real tiny stream *)
  let b = Hotpath_workloads.Suite.find_exn "fig5_compress" in
  let real = Buffer.create 4096 in
  ignore (Hotpath_workloads.Suite.record_stream ~scale:0.001 b ~sink:(Buffer.add_string real));
  let real = Buffer.contents real in
  (* parse out magic + program frame: magic(8) + 5 + plen + 4 *)
  let plen = Int32.to_int (String.get_int32_le real 9) in
  let prefix = String.sub real 0 (8 + 5 + plen + 4) in
  let buf = Buffer.create (1 lsl 22) in
  Buffer.add_string buf prefix;
  let empty_paths = let p = Buffer.create 4 in Buffer.add_int32_le p 0l; Buffer.contents p in
  for _ = 1 to 2_000_000 do frame buf ~kind:1 empty_paths done;
  match S.Stream.open_string (Buffer.contents buf) with
  | Error e -> Printf.printf "open error: %s\n" e
  | Ok rd ->
    (match S.Stream.next rd with
     | Ok _ -> print_endline "ok"
     | Error e -> Printf.printf "Error: %s\n" e
     | exception e -> Printf.printf "UNCAUGHT EXCEPTION: %s\n" (Printexc.to_string e))
