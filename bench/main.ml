(* Benchmark harness: regenerates every table and figure of the paper and
   times the computational kernel behind each with Bechamel.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- quick     # microbenchmarks only
     dune exec bench/main.exe -- tables    # reproductions only
     dune exec bench/main.exe -- events    # event-stream overhead proof

   Reproduction output mirrors `hotpath table1|table2|fig2|fig3|fig4|fig5`
   and is recorded in EXPERIMENTS.md. *)

open Hotpath

let heading title =
  Format.printf "@.============================================================@.";
  Format.printf "%s@." title;
  Format.printf "============================================================@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one per table/figure kernel, plus the      *)
(* profiling primitives whose costs the paper's argument rests on.      *)
(* ------------------------------------------------------------------ *)

(* Defeat the packed entry points' kernel dispatch (keyed on the physical
   identity of [observe]) without changing behaviour: the eta-expansion
   allocates a fresh closure, so [Replay.run_many] falls back to the
   generic first-class-module loop.  This is how the benchmarks price the
   packed loop against the monomorphized kernels on the same scheme. *)
module Degrade (S : Scheme.S) : Scheme.S = struct
  include S

  let observe t ~head ~arrival ~path_id ~n_branches ~n_blocks =
    S.observe t ~head ~arrival ~path_id ~n_branches ~n_blocks
end

module Net_generic = Degrade (Net)
module Pp_generic = Degrade (Path_profile_scheme)

(* The k-iteration kernels are recognized by the identity of [create]
   ([observe] alone captures nothing instantiation-specific and is
   shared across every k), so their generic twins eta-expand [create]
   instead. *)
module Degrade_k (S : Scheme.S) : Scheme.S = struct
  include S

  let create ~delay ~program = S.create ~delay ~program
end

module Net_k2 = (val Net_k.make 2)
module Pp_k2 = (val Path_profile_k.make 2)
module Net_k2_generic = Degrade_k (Net_k2)
module Pp_k2_generic = Degrade_k (Pp_k2)

let ops_tests () =
  (* Profiling primitives, measured per operation. *)
  let sig_builder = Signature.Builder.create ~head:0 in
  let flip = ref false in
  let shift =
    Bechamel.Test.make ~name:"op/bit-trace-shift"
      (Bechamel.Staged.stage (fun () ->
           if Signature.Builder.branch_count sig_builder >= Signature.max_branches
           then Signature.Builder.reset sig_builder ~head:0;
           flip := not !flip;
           Signature.Builder.add_branch sig_builder ~taken:!flip))
  in
  let program =
    let b = Cfg.Builder.create ~name:"bench" in
    let p = Cfg.Builder.add_proc b ~name:"main" in
    let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
    Cfg.Builder.set_term b b0 Cfg.Exit;
    Cfg.Builder.finish b
  in
  let net_state = Net.create ~delay:1_000_000_000 ~program in
  let counter = ref 0 in
  let net_observe =
    Bechamel.Test.make ~name:"op/net-head-counter"
      (Bechamel.Staged.stage (fun () ->
           incr counter;
           ignore
             (Net.observe net_state ~head:(!counter land 255) ~arrival:Path.Loop_head
                ~path_id:!counter ~n_branches:8 ~n_blocks:10)))
  in
  let pp_state = Path_profile_scheme.create ~delay:1_000_000_000 ~program in
  let pp_observe =
    Bechamel.Test.make ~name:"op/path-profile-update"
      (Bechamel.Staged.stage (fun () ->
           incr counter;
           ignore
             (Path_profile_scheme.observe pp_state ~head:0 ~arrival:Path.Loop_head
                ~path_id:(!counter land 4095) ~n_branches:8 ~n_blocks:10)))
  in
  [ shift; net_observe; pp_observe ]

let experiment_tests () =
  (* One kernel per table/figure, at reduced scale so each iteration is
     milliseconds. *)
  let bench = Suite.find_exn "deltablue" in
  let recorded = Suite.record ~scale:0.05 bench in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:Suite.hot_threshold
  in
  let table1 =
    Bechamel.Test.make ~name:"table1/record+hot-set"
      (Bechamel.Staged.stage (fun () ->
           let r = Suite.record ~scale:0.02 bench in
           ignore
             (Hot_set.compute ~freq:(Recorder.frequencies r)
                ~total_flow:(Recorder.num_instances r) ~threshold:Suite.hot_threshold)))
  in
  let table2 =
    Bechamel.Test.make ~name:"table2/unique-heads"
      (Bechamel.Staged.stage (fun () ->
           ignore (Path_table.unique_heads recorded.Recorder.table);
           ignore (Recorder.unique_loop_heads recorded)))
  in
  let fig2 =
    Bechamel.Test.make ~name:"fig2/net-replay-sweep"
      (Bechamel.Staged.stage (fun () ->
           ignore (Sweep.run (module Net) recorded ~hot ~delays:[ 5; 50; 500 ])))
  in
  let fig3 =
    Bechamel.Test.make ~name:"fig3/path-profile-replay-sweep"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sweep.run
                (module Path_profile_scheme)
                recorded ~hot ~delays:[ 5; 50; 500 ])))
  in
  let fig4 =
    Bechamel.Test.make ~name:"fig4/counter-space-replay"
      (Bechamel.Staged.stage (fun () ->
           let net = Replay.run (module Net) ~delay:50 recorded in
           let pp = Replay.run (module Path_profile_scheme) ~delay:50 recorded in
           ignore (net.Replay.counter_space, pp.Replay.counter_space)))
  in
  let cost = Cost_model.default in
  let fig5 =
    Bechamel.Test.make ~name:"fig5/dynamo-engine"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Engine.run
                (Engine.config ~cost
                   ~scheme:(module Net : Scheme.S)
                   ~scheme_costs:(Engine.net_costs cost) ~delay:50 ())
                recorded)))
  in
  (* The multiplexing payoff: a full default-delay sweep as one pass vs
     one Replay.run per delay. *)
  let sweep_delays = Sweep.default_delays in
  let sweep_naive =
    Bechamel.Test.make ~name:"sweep/naive-pass-per-delay"
      (Bechamel.Staged.stage (fun () ->
           List.iter
             (fun delay -> ignore (Replay.run (module Net) ~delay recorded))
             sweep_delays))
  in
  let sweep_multiplexed =
    Bechamel.Test.make ~name:"sweep/multiplexed-single-pass"
      (Bechamel.Staged.stage (fun () ->
           ignore (Replay.run_many (module Net) ~delays:sweep_delays recorded)))
  in
  (* Streamed vs materialized replay over the same trace: the HOTPATH3
     stream is framed and CRC-checked, so this prices the decode overhead
     the constant-memory path pays. *)
  let blob = Serialize.Stream.to_string recorded in
  let replay_materialized =
    Bechamel.Test.make ~name:"stream/replay-materialized"
      (Bechamel.Staged.stage (fun () ->
           ignore (Replay.run (module Net) ~delay:50 recorded)))
  in
  let replay_streamed =
    Bechamel.Test.make ~name:"stream/replay-streamed"
      (Bechamel.Staged.stage (fun () ->
           match Serialize.Stream.open_string blob with
           | Error e -> failwith e
           | Ok rd ->
             (match Replay.run_stream (module Net) ~delay:50 rd with
              | Error e -> failwith e
              | Ok o -> ignore o)))
  in
  (* The monomorphization payoff: the same multiplexed replay through the
     generic packed loop vs the specialized kernel (see `kernel` mode for
     the full-trace measurement). *)
  let kernel_delays = [ 5; 50; 500 ] in
  let replay_packed =
    Bechamel.Test.make ~name:"replay/packed-generic-loop"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Replay.run_many (module Net_generic) ~delays:kernel_delays recorded)))
  in
  let replay_kernel =
    Bechamel.Test.make ~name:"replay/monomorphized-kernel"
      (Bechamel.Staged.stage (fun () ->
           ignore (Replay.run_many (module Net) ~delays:kernel_delays recorded)))
  in
  [ table1; table2; fig2; fig3; fig4; fig5; sweep_naive; sweep_multiplexed;
    replay_materialized; replay_streamed; replay_packed; replay_kernel ]

let run_bechamel tests =
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second 0.5)
      ~kde:(Some 1000) ()
  in
  let raw =
    Bechamel.Benchmark.all cfg instances
      (Bechamel.Test.make_grouped ~name:"hotpath" tests)
  in
  let results =
    List.map (fun instance -> Bechamel.Analyze.all ols instance raw) instances
  in
  let results = Bechamel.Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _metric by_test ->
       let rows =
         Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) by_test []
         |> List.sort compare
       in
       List.iter
         (fun (name, ols_result) ->
            match Bechamel.Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Format.printf "  %-40s %12.1f ns/run@." name est
            | Some _ | None -> Format.printf "  %-40s (no estimate)@." name)
         rows)
    results

(* ------------------------------------------------------------------ *)
(* Streaming demonstration: constant-memory record + replay            *)
(* ------------------------------------------------------------------ *)

(* Peak resident set (VmHWM, kB) from /proc/self/status; -1 where the
   proc filesystem is unavailable.  The watermark is monotonic for the
   life of the process, so the streamed phase must run first — whatever
   the materialized phase adds on top is attributable to holding the
   whole trace. *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> -1
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> -1
      | line ->
        (try Scanf.sscanf line "VmHWM: %d kB" (fun v -> v)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> scan ())
    in
    let v = scan () in
    close_in ic;
    v

let pp_hwm label =
  match vm_hwm_kb () with
  | -1 -> Format.printf "  peak RSS %s: unavailable@." label
  | kb -> Format.printf "  peak RSS %s: %.1f MB@." label (float_of_int kb /. 1024.0)

let bench_ingest_file = "BENCH_ingest.json"

(* Same flat JSON-lines shape as BENCH_replay.json: one line per ingest
   variant, parseable by Events.parse_line. *)
let bench_ingest_line ~variant ~scale ~instances ~wall_s ~peak_rss_kb =
  let buf = Buffer.create 256 in
  Events.emit (Events.of_buffer buf) ~kind:"bench_ingest"
    [
      ("variant", Events.Str variant);
      ("scale", Events.Float scale);
      ("instances", Events.Int instances);
      ("wall_s", Events.Float wall_s);
      ("instances_per_s", Events.Float (float_of_int instances /. wall_s));
      ("peak_rss_kb", Events.Int peak_rss_kb);
    ];
  Buffer.contents buf

let streaming_demo ~smoke ~scale =
  heading
    (Printf.sprintf
       "Streaming vs mapped vs materialized — deltablue at scale %.1f%s" scale
       (if smoke then " (smoke)" else ""));
  let bench = Suite.find_exn "deltablue" in
  let path = Filename.temp_file "hotpath_stream" ".trace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* Phase 1: record straight to disk, no materialized instance stream. *)
  let t0 = Unix.gettimeofday () in
  let oc = open_out_bin path in
  let summary =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Suite.record_stream ~scale bench ~sink:(output_string oc))
  in
  let record_s = Unix.gettimeofday () -. t0 in
  Format.printf "  streamed record: %d instances, %d paths, %d bytes in %.2fs@."
    summary.Recorder.cs_instances summary.Recorder.cs_paths
    (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> -1)
    record_s;
  pp_hwm "after streamed record";
  (* Replay timings are best-of with the read and mmap reps
     interleaved: the mmap-vs-read comparison gates CI, and running one
     variant's reps back to back would let a single slow scheduling
     patch poison that variant's whole sample while leaving the other
     untouched.  Interleaving makes both minima see the same noise
     environment. *)
  let reps = if smoke then 5 else 3 in
  let lines = ref [] in
  let report ~variant ~instances ~peak_rss_kb wall_s =
    Format.printf "  %-26s %.2fs (%.2e instances/s)@."
      (variant ^ " replay:") wall_s
      (float_of_int instances /. wall_s);
    lines :=
      bench_ingest_line ~variant ~scale ~instances ~wall_s ~peak_rss_kb
      :: !lines
  in
  let read_once () =
    match Serialize.Stream.open_file ~path with
    | Error e -> failwith e
    | Ok rd ->
      let result = Replay.run_stream (module Net) ~delay:50 rd in
      Serialize.Stream.close rd;
      (match result with Error e -> failwith e | Ok o -> o)
  in
  let mmap_once () =
    match Serialize.Stream.Mapped.map_file ~path with
    | Error e -> failwith e
    | Ok m ->
      (match Replay.run_mapped (module Net) ~delay:50 m with
       | Error e -> failwith e
       | Ok o -> o)
  in
  (* RSS attribution passes, in order: pull-reader replay first (read(2)
     into reused buffers, one frame in memory at a time), then the
     zero-copy mapped replay — the watermark is monotonic, so whatever
     the mapped pass adds on top is the resident cost of the mapping
     itself.  The timed reps below run after both watermarks are
     established and cannot disturb them. *)
  Gc.compact ();
  let streamed = read_once () in
  let read_rss = vm_hwm_kb () in
  pp_hwm "after read replay";
  Gc.compact ();
  let mapped = mmap_once () in
  let mmap_rss = vm_hwm_kb () in
  pp_hwm "after mmap replay";
  let best_read = ref infinity and best_mmap = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (read_once ());
    let t = Unix.gettimeofday () -. t0 in
    if t < !best_read then best_read := t;
    let t0 = Unix.gettimeofday () in
    ignore (mmap_once ());
    let t = Unix.gettimeofday () -. t0 in
    if t < !best_mmap then best_mmap := t
  done;
  let read_s = !best_read and mmap_s = !best_mmap in
  report ~variant:"read" ~instances:streamed.Replay.total_instances
    ~peak_rss_kb:read_rss read_s;
  report ~variant:"mmap" ~instances:mapped.Replay.total_instances
    ~peak_rss_kb:mmap_rss mmap_s;
  (* Materialized load + replay of the same file, last: it holds the
     whole instance stream and dominates the final watermark. *)
  Gc.compact ();
  let materialized_s, materialized =
    let best = ref infinity and result = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let recorded =
        match Serialize.load ~path with Error e -> failwith e | Ok r -> r
      in
      let o = Replay.run (module Net) ~delay:50 recorded in
      let t = Unix.gettimeofday () -. t0 in
      if t < !best then best := t;
      result := Some o
    done;
    (!best, Option.get !result)
  in
  report ~variant:"materialized"
    ~instances:materialized.Replay.total_instances
    ~peak_rss_kb:(vm_hwm_kb ()) materialized_s;
  pp_hwm "after materialized replay";
  let identical a b =
    a.Replay.total_instances = b.Replay.total_instances
    && a.Replay.predictions = b.Replay.predictions
    && a.Replay.predicted_at = b.Replay.predicted_at
    && a.Replay.freq = b.Replay.freq
    && a.Replay.captured = b.Replay.captured
    && a.Replay.profiled_instances = b.Replay.profiled_instances
    && a.Replay.captured_instances = b.Replay.captured_instances
    && a.Replay.counter_space = b.Replay.counter_space
    && a.Replay.profiling_ops = b.Replay.profiling_ops
    && a.Replay.collection_ops = b.Replay.collection_ops
  in
  let same = identical streamed materialized && identical streamed mapped in
  Format.printf "  outcomes bit-identical (read == mmap == materialized): %b@."
    same;
  if not same then exit 1;
  if smoke then begin
    (* The mapped reader exists to beat the pull reader: it skips the
       read(2) round trips and the per-frame ring-buffer copies.  The
       timed region is decode + replay and the walk cost is common to
       both sides, so the decode advantage is a modest slice of the
       ratio; on a loaded 1-core box best-of-5 minima still jitter a few
       percent either way.  10% slack sits above that noise band and
       well below the signature of the regression class this gate
       exists to catch — a mapped path that re-grew a per-frame copy or
       lost its in-place decode shows up as categorically slower, not
       10% slower. *)
    let pass = mmap_s <= read_s *. 1.10 in
    Format.printf "  smoke gate (mmap %.2e >= read %.2e instances/s): %s@."
      (float_of_int mapped.Replay.total_instances /. mmap_s)
      (float_of_int streamed.Replay.total_instances /. read_s)
      (if pass then "PASS" else "FAIL");
    if not pass then exit 1
  end
  else begin
    let oc = open_out bench_ingest_file in
    List.iter (output_string oc) (List.rev !lines);
    close_out oc;
    Format.printf "  wrote %s@." bench_ingest_file
  end

(* ------------------------------------------------------------------ *)
(* Events overhead: emission must be ~free disabled, <3% enabled       *)
(* ------------------------------------------------------------------ *)

let events_overhead_demo ~scale =
  heading
    (Printf.sprintf "Event-stream overhead — deltablue at scale %.1f" scale);
  let bench = Suite.find_exn "deltablue" in
  let recorded = Suite.record ~scale bench in
  let n = Recorder.num_instances recorded in
  Format.printf "  trace: %d instances, %d paths@." n (Recorder.num_paths recorded);
  let time f =
    (* Best of 15: emission cost is per *window*, so the signal is small;
       the minimum is the standard noise-resistant estimator for "how
       fast can this go". *)
    List.fold_left
      (fun (best_t, _) (t, r) -> if t < best_t then (t, r) else (best_t, r))
      (infinity, f ())
      (List.init 15 (fun _ ->
           let t0 = Unix.gettimeofday () in
           let r = f () in
           (Unix.gettimeofday () -. t0, r)))
  in
  let baseline_s, baseline =
    time (fun () -> Replay.run (module Net) ~delay:50 recorded)
  in
  (* A null sink must behave exactly like not passing events at all. *)
  let disabled_s, disabled =
    time (fun () ->
        Replay.run ~events:(Replay.events Events.null) (module Net) ~delay:50
          recorded)
  in
  let path = Filename.temp_file "hotpath_events" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* The sink is opened once, outside the timed region: the claim priced
     here is per-window emission, not file open/close. *)
  let sink = Events.open_file path in
  let enabled_s, enabled =
    Fun.protect
      ~finally:(fun () -> Events.close sink)
      (fun () ->
         time (fun () ->
             Replay.run
               ~events:(Replay.events ~window:Replay.default_events_window sink)
               (module Net) ~delay:50 recorded))
  in
  let lines = ref (Events.emitted sink) in
  let overhead t = ((t -. baseline_s) /. baseline_s) *. 100.0 in
  Format.printf "  baseline (no events):      %.3fs (%.2e instances/s)@."
    baseline_s (float_of_int n /. baseline_s);
  Format.printf "  null sink (disabled):      %.3fs (%+.2f%%)@." disabled_s
    (overhead disabled_s);
  Format.printf "  file sink (every %d):    %.3fs (%+.2f%%), %d events@."
    Replay.default_events_window enabled_s (overhead enabled_s) !lines;
  let identical o o' =
    o.Replay.predictions = o'.Replay.predictions
    && o.Replay.predicted_at = o'.Replay.predicted_at
    && o.Replay.freq = o'.Replay.freq
    && o.Replay.captured = o'.Replay.captured
    && o.Replay.profiled_instances = o'.Replay.profiled_instances
    && o.Replay.counter_space = o'.Replay.counter_space
    && o.Replay.profiling_ops = o'.Replay.profiling_ops
    && o.Replay.collection_ops = o'.Replay.collection_ops
  in
  let same = identical baseline disabled && identical baseline enabled in
  Format.printf "  outcomes bit-identical across all three: %b@." same;
  let disabled_ok = overhead disabled_s < 1.0
  and enabled_ok = overhead enabled_s < 3.0 in
  Format.printf "  overhead within budget (<1%% disabled, <3%% enabled): %b@."
    (disabled_ok && enabled_ok);
  if not (same && disabled_ok && enabled_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Replay kernel benchmark: packed loop vs monomorphized kernel vs      *)
(* chunk-sharded parallel replay, with bit-identity checks and a        *)
(* recorded baseline (BENCH_replay.json)                                *)
(* ------------------------------------------------------------------ *)

let bench_replay_file = "BENCH_replay.json"

(* One line per measured variant, in the same flat JSON the event stream
   uses, so the baseline is greppable and parseable by Events.parse_line
   without a JSON dependency. *)
let bench_replay_line ~scheme ~variant ~jobs ~scale ~instances ~delays ~wall_s
    ~speedup =
  let buf = Buffer.create 256 in
  Events.emit (Events.of_buffer buf) ~kind:"bench_replay"
    [
      ("scheme", Events.Str scheme);
      ("variant", Events.Str variant);
      ("jobs", Events.Int jobs);
      ("scale", Events.Float scale);
      ("instances", Events.Int instances);
      ("delays", Events.Int delays);
      ("wall_s", Events.Float wall_s);
      ("instances_per_s", Events.Float (float_of_int instances /. wall_s));
      (* Aggregate lane throughput: the multiplexed pass advances every
         delay lane per trace instance, so lane-instances/s (n * delays /
         wall) is the figure comparable to running the delay sweep as
         separate passes. *)
      ( "lane_instances_per_s",
        Events.Float (float_of_int (instances * delays) /. wall_s) );
      ("speedup_vs_packed", Events.Float speedup);
    ];
  Buffer.contents buf

(* The committed baseline's packed->kernel speedup for one scheme: the
   one number in BENCH_replay.json that is a machine-independent ratio,
   which is why the smoke regression gate keys on it rather than on
   absolute instances/s. *)
let baseline_speedup ~scheme =
  match open_in bench_replay_file with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        let acc =
          match Events.parse_line line with
          | Error _ -> acc
          | Ok fields ->
            if
              Events.kind fields = Some "bench_replay"
              && Events.find_str fields "scheme" = Some scheme
              && Events.find_str fields "variant" = Some "kernel"
              && Events.find_int fields "jobs" = Some 1
            then Events.find_float fields "speedup_vs_packed"
            else acc
        in
        scan acc
    in
    let v = scan None in
    close_in ic;
    v

let outcome_equal (a : Replay.outcome) (b : Replay.outcome) =
  a.Replay.scheme_name = b.Replay.scheme_name
  && a.Replay.delay = b.Replay.delay
  && a.Replay.total_instances = b.Replay.total_instances
  && a.Replay.predictions = b.Replay.predictions
  && a.Replay.predicted_at = b.Replay.predicted_at
  && a.Replay.freq = b.Replay.freq
  && a.Replay.captured = b.Replay.captured
  && a.Replay.profiled_instances = b.Replay.profiled_instances
  && a.Replay.captured_instances = b.Replay.captured_instances
  && a.Replay.counter_space = b.Replay.counter_space
  && a.Replay.profiling_ops = b.Replay.profiling_ops
  && a.Replay.collection_ops = b.Replay.collection_ops

let kernel_bench ~smoke ~scale =
  heading
    (Printf.sprintf "Replay kernels — deltablue at scale %.1f%s" scale
       (if smoke then " (smoke)" else ""));
  let bench = Suite.find_exn "deltablue" in
  let recorded = Suite.record ~scale bench in
  let n = Recorder.num_instances recorded in
  let delays = [ 2; 5; 10; 50; 100; 500; 1_000; 5_000 ] in
  let k = List.length delays in
  Format.printf "  trace: %d instances, %d paths; %d delay lanes@." n
    (Recorder.num_paths recorded) k;
  if (not smoke) && n < 1_000_000 then begin
    Format.printf "  FAIL: full kernel bench requires >= 1M instances@.";
    exit 1
  end;
  let ok = ref true in
  let check label cond =
    Format.printf "  %-52s %s@." label (if cond then "ok" else "FAIL");
    if not cond then ok := false
  in
  (* Bit-identity across all three loops, per scheme, before any timing:
     a fast wrong kernel is worthless. *)
  let schemes =
    [
      ("net", (module Net : Scheme.S), (module Net_generic : Scheme.S));
      ( "path-profile",
        (module Path_profile_scheme : Scheme.S),
        (module Pp_generic : Scheme.S) );
      ("net-k2", (module Net_k2 : Scheme.S), (module Net_k2_generic : Scheme.S));
      ( "path-profile-k2",
        (module Pp_k2 : Scheme.S),
        (module Pp_k2_generic : Scheme.S) );
    ]
  in
  List.iter
    (fun (name, packed, generic) ->
       let reference = Replay.run_many generic ~delays recorded in
       let kernel = Replay.run_many packed ~delays recorded in
       check
         (Printf.sprintf "%s: kernel == packed loop" name)
         (List.for_all2 outcome_equal reference kernel);
       List.iter
         (fun jobs ->
            let sharded = Replay.run_many ~jobs packed ~delays recorded in
            check
              (Printf.sprintf "%s: chunk-sharded jobs=%d == serial" name jobs)
              (List.for_all2 outcome_equal reference sharded))
         [ 2; 4 ])
    schemes;
  (* Event streams must merge back into the exact serial byte sequence,
     is_hot sampling included (the closure runs on worker domains). *)
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:n ~threshold:Suite.hot_threshold
  in
  let event_bytes jobs =
    let buf = Buffer.create 65_536 in
    let ev =
      Replay.events ~window:8_192 ~is_hot:(Hot_set.is_hot hot)
        (Events.of_buffer buf)
    in
    ignore (Replay.run_many ~events:ev ~jobs (module Net) ~delays recorded);
    Buffer.contents buf
  in
  let serial_events = event_bytes 1 in
  check "net: event stream jobs=4 byte-identical to serial"
    (String.length serial_events > 0 && event_bytes 4 = serial_events);
  (* Timings: best-of, same delay set everywhere, throughput in trace
     instances/s (n / wall — the multiplexed pass makes one logical
     traversal of the trace at every job count; jobs>1 shards that
     traversal into chunks instead of re-walking it per shard). *)
  (* Best-of over enough reps that the minimum is stable: the smoke
     scaling gates compare two minima, and at smoke scale a single
     descheduled rep can swing one side by 30%. *)
  let reps = if smoke then 5 else 5 in
  let time f =
    ignore (f ());
    List.fold_left min infinity
      (List.init reps (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (f ());
           Unix.gettimeofday () -. t0))
  in
  let lines = ref [] in
  let report ~scheme ~variant ~jobs ~packed_s wall_s =
    let speedup = packed_s /. wall_s in
    Format.printf "  %-12s %-10s jobs=%d  %8.3fs  %10.2e instances/s  %5.2fx@."
      scheme variant jobs wall_s
      (float_of_int n /. wall_s)
      speedup;
    lines :=
      bench_replay_line ~scheme ~variant ~jobs ~scale ~instances:n ~delays:k
        ~wall_s ~speedup
      :: !lines
  in
  let measured =
    List.map
      (fun (name, packed, generic) ->
         let packed_s = time (fun () -> Replay.run_many generic ~delays recorded) in
         report ~scheme:name ~variant:"packed" ~jobs:1 ~packed_s packed_s;
         let kernel_s = time (fun () -> Replay.run_many packed ~delays recorded) in
         report ~scheme:name ~variant:"kernel" ~jobs:1 ~packed_s kernel_s;
         (* Full scheme x jobs matrix: a scaling regression in any kernel
            must be visible in the baseline, not just net's. *)
         let sharded_s =
           List.map
             (fun jobs ->
                let t =
                  time (fun () -> Replay.run_many ~jobs packed ~delays recorded)
                in
                report ~scheme:name ~variant:"kernel" ~jobs ~packed_s t;
                (jobs, t))
             [ 2; 4 ]
         in
         (name, packed_s /. kernel_s, kernel_s, sharded_s))
      schemes
  in
  if smoke then begin
    (* Floor gate: a monomorphized kernel that loses to the packed loop
       it replaces is a regression outright, whatever the baseline file
       says.  Every scheme is held to >= 1.0x (measured best-of-5 on
       both sides, so the ratio is stable even at smoke scale); the
       flattened k-trie is additionally held to the 1.5x it was built to
       deliver over the hashtable walk. *)
    List.iter
      (fun (name, ratio, _, _) ->
         check
           (Printf.sprintf "%s: kernel %.2fx >= 1.0x over packed" name ratio)
           (ratio >= 1.0))
      measured;
    (match
       List.find_opt (fun (name, _, _, _) -> name = "path-profile-k2") measured
     with
     | Some (_, ratio, _, _) ->
       check
         (Printf.sprintf
            "path-profile-k2: flattened trie %.2fx >= 1.5x over packed" ratio)
         (ratio >= 1.5)
     | None -> ());
    (* Aggregate throughput floor for the NET fast engine: at jobs=4 the
       multiplexed sweep must clear 1e8 lane-instances/s (n * delay
       lanes / wall).  The loop-index engine replays from per-recording
       run summaries, so this holds even clamped to one worker. *)
    (match List.find_opt (fun (name, _, _, _) -> name = "net") measured with
     | Some (_, _, _, sharded_s) ->
       (match List.assoc_opt 4 sharded_s with
        | None -> ()
        | Some t4 ->
          let aggregate = float_of_int (n * k) /. t4 in
          check
            (Printf.sprintf
               "net: jobs=4 aggregate %.2e >= 1e8 lane-instances/s" aggregate)
            (aggregate >= 1e8))
     | None -> ());
    (* Regression gate against the committed baseline: the packed->kernel
       speedup is a ratio of two loops over the same data on the same
       machine, so it transfers across hosts where raw instances/s does
       not.  >5% below the recorded ratio fails. *)
    List.iter
      (fun (name, measured, _, _) ->
         (* The ratio gate covers the paper's schemes only: the k-kernels'
            packed->kernel ratio hovers near 1x (they strip module
            indirection but keep the per-instance trie/counter walk), so
            a 5% band on it would gate on noise.  Their rows still land
            in the baseline file for trend reading. *)
         if List.mem name [ "net"; "path-profile" ] then
           match baseline_speedup ~scheme:name with
           | None ->
             Format.printf "  %s: no baseline in %s@." name bench_replay_file;
             ok := false
           | Some recorded_speedup ->
             let floor = 0.95 *. recorded_speedup in
             check
               (Printf.sprintf
                  "%s: kernel speedup %.2fx within 5%% of baseline %.2fx" name
                  measured recorded_speedup)
               (measured >= floor))
      measured;
    (* Scaling gate: chunk sharding must never make more cores a
       regression again — jobs=4 at least matches jobs=1 on the net
       kernel, on this machine, right now. *)
    List.iter
      (fun (name, _, kernel_s, sharded_s) ->
         if name = "net" then
           match List.assoc_opt 4 sharded_s with
           | None -> ()
           | Some t4 ->
             check
               (Printf.sprintf
                  "net: jobs=4 throughput %.2e >= jobs=1 %.2e inst/s"
                  (float_of_int n /. t4)
                  (float_of_int n /. kernel_s))
               (t4 <= kernel_s)
         else if name = "path-profile-k2" then
           (* The k-trie kernel has no compressed-summary fast path:
              each lane group re-walks the instance stream, so at smoke
              scale the parallel gain and the cross-domain memory
              contention are the same order and the measured t4/t1
              ratio spans 0.8-1.4 run to run (on a core-starved CI box
              jobs=4 even clamps to one worker).  The gate therefore
              allows 50% slack — above that noise band, still well
              below the >=2x signature of the lane re-walk regression
              class this gate exists to catch. *)
           match List.assoc_opt 4 sharded_s with
           | None -> ()
           | Some t4 ->
             check
               (Printf.sprintf
                  "path-profile-k2: jobs=4 %.2e vs jobs=1 %.2e inst/s (50%% \
                   slack)"
                  (float_of_int n /. t4)
                  (float_of_int n /. kernel_s))
               (t4 <= kernel_s *. 1.5))
      measured
  end
  else begin
    let oc = open_out bench_replay_file in
    List.iter (output_string oc) (List.rev !lines);
    close_out oc;
    Format.printf "  wrote %s@." bench_replay_file
  end;
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Full reproductions                                                  *)
(* ------------------------------------------------------------------ *)

let reproductions () =
  heading "Table 1 — benchmark set (measured vs paper)";
  print_string (Experiments.Table1.render ());
  heading "Table 2 — paths vs unique path heads (measured vs paper)";
  print_string (Experiments.Table2.render ());
  (* Figures 2 and 3 share the sweep; compute once. *)
  let figures = Hotpath_experiments.Figures23.compute () in
  let render_fig ~hit ~zoom title =
    heading title;
    print_string
      (Tablefmt.render (Hotpath_experiments.Figures23.to_table figures ~hit ~zoom))
  in
  render_fig ~hit:true ~zoom:true
    "Figure 2 (zoom) — hit rate vs profiled flow, <= 10% region";
  render_fig ~hit:false ~zoom:true
    "Figure 3 (zoom) — noise rate vs profiled flow, <= 10% region";
  heading "Figures 2/3 — summary of the average series";
  List.iter
    (fun su ->
       let show = function Some v -> Printf.sprintf "%.1f%%" v | None -> "n/a" in
       Format.printf
         "  %-13s hit@10%%flow=%s (%d benchmarks)  noise@10%%flow=%s  \
          hit@tau50=%.1f%%  noise@tau50=%.1f%%@."
         su.Hotpath_experiments.Figures23.su_scheme
         (show su.Hotpath_experiments.Figures23.su_hit_at_10pct)
         su.Hotpath_experiments.Figures23.su_hit_at_10pct_n
         (show su.Hotpath_experiments.Figures23.su_noise_at_10pct)
         su.Hotpath_experiments.Figures23.su_hit_at_delay50
         su.Hotpath_experiments.Figures23.su_noise_at_delay50)
    (Hotpath_experiments.Figures23.summarize figures);
  heading "Figure 4 — NET counter space normalized to path-profile";
  print_string (Experiments.Fig4.render ());
  heading "Figure 5 — Dynamo speedup over native (no-bail-out set, 8x flow)";
  print_string (Experiments.Fig5.render ());
  heading "Figure 5 (extended) — all benchmarks, showing gcc/go bail-out";
  print_string (Experiments.Fig5.render ~all:true ());
  heading "Ablation — NET variants (re-arm vs once vs last-executed-tail)";
  print_string (Experiments.Ablations.render_net_variants ());
  heading "Ablation — NET vs Boa branch-profile construction (Section 7)";
  print_string (Experiments.Ablations.render_boa ());
  heading "Ablation — hot-threshold sensitivity";
  print_string (Experiments.Ablations.render_thresholds ());
  heading "Ablation — Dynamo cost-model sensitivity (tau=50 averages)";
  print_string (Experiments.Ablations.render_cost_sensitivity ());
  heading "Offline — edge-vs-path showdown (Ball-Mataga-Sagiv)";
  print_string (Experiments.Offline.render_showdown ());
  heading "Offline — sampling profiler accuracy";
  print_string (Experiments.Offline.render_sampling ());
  heading "Phase-change study — retirement policies (Section 6.1 future work)";
  print_string (Experiments.Phases.render ());
  heading "Ablation — fragment-cache pressure policies (flush vs LRU)";
  print_string (Experiments.Ablations.render_cache_policies ());
  heading "Robustness — hit rates across 5 regenerated workload seeds";
  print_string (Experiments.Ablations.render_seed_robustness ())

(* ------------------------------------------------------------------ *)
(* Serve daemon: sustained ingest and per-tenant latency               *)
(* ------------------------------------------------------------------ *)

let serve_bench ~smoke ~scale =
  heading
    (Printf.sprintf "Serve daemon — concurrent tenants%s"
       (if smoke then " (smoke)" else ""));
  let bench = Suite.find_exn "compress" in
  let buf = Buffer.create (1 lsl 20) in
  let summary =
    Suite.record_stream ~scale bench ~sink:(Buffer.add_string buf)
  in
  let trace = Buffer.contents buf in
  Format.printf "  trace per tenant: %d instances, %d paths, %d bytes@."
    summary.Recorder.cs_instances summary.Recorder.cs_paths
    (String.length trace);
  let n_clients = if smoke then 4 else 8 in
  let sends_each = if smoke then 2 else 4 in
  let socket_path = Filename.temp_file "hotpath_serve" ".sock" in
  match
    Serve.Server.create ~queue_capacity:8 ~drain_burst:4 ~socket_path ()
  with
  | Error e ->
    Format.printf "  cannot start server: %s@." e;
    exit 1
  | Ok server ->
    let server_domain = Domain.spawn (fun () -> Serve.Server.run server) in
    if not (Serve.Client.wait_ready socket_path) then begin
      Format.printf "  server never became ready@.";
      exit 1
    end;
    let t0 = Unix.gettimeofday () in
    let per_client client =
      (* Each send is a distinct tenant: the latency sample is the whole
         exchange (connect, handshake, stream, replay, reply). *)
      List.init sends_each (fun k ->
          let tenant = Printf.sprintf "tenant-%d-%d" client k in
          let s0 = Unix.gettimeofday () in
          let reply =
            Serve.Client.send ~socket_path ~tenant ~scheme:"net"
              ~delays:[ 10; 50 ] ~chunk_bytes:65536 trace
          in
          let latency = Unix.gettimeofday () -. s0 in
          let ok =
            match reply with
            | Ok lines ->
              List.exists (fun f -> Events.kind f = Some "serve.ok") lines
            | Error _ -> false
          in
          (latency, ok))
    in
    let results =
      Pool.map ~cap:false ~jobs:n_clients per_client
        (List.init n_clients Fun.id)
      |> List.concat
    in
    let wall = Unix.gettimeofday () -. t0 in
    Serve.Server.stop server;
    Domain.join server_domain;
    let st = Serve.Server.stats server in
    let lats = Array.of_list (List.map fst results) in
    let oks = List.length (List.filter snd results) in
    let total = n_clients * sends_each in
    let ingest = float_of_int st.Serve.Server.instances /. wall in
    let pct p = 1000. *. Stats.percentile lats ~p in
    Format.printf "  %d clients x %d sends: %d/%d serve.ok in %.2fs@."
      n_clients sends_each oks total wall;
    Format.printf "  ingest: %.2e instances/s sustained (%d instances)@."
      ingest st.Serve.Server.instances;
    Format.printf "  tenant latency: p50=%.1fms p95=%.1fms p99=%.1fms@."
      (pct 50.) (pct 95.) (pct 99.);
    Format.printf "  server: completed=%d errored=%d queue high-water=%d@."
      st.Serve.Server.completed st.Serve.Server.errored
      st.Serve.Server.queue_high_water;
    if smoke then begin
      (* CI gate: every tenant served (zero dropped), no server-side
         errors, and sustained ingest above a floor set ~10x below what
         a loaded CI box measures. *)
      let floor = 100_000. in
      let pass =
        oks = total && st.Serve.Server.completed = total
        && st.Serve.Server.errored = 0 && ingest >= floor
      in
      Format.printf "  smoke gate (ok=%d/%d, errored=%d, ingest>=%.0e): %s@."
        oks total st.Serve.Server.errored floor
        (if pass then "PASS" else "FAIL");
      if not pass then exit 1
    end

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (* Microbenchmarks run first: the reproductions cache hundreds of MB of
     recordings, and the resulting GC pressure would distort per-op
     timings. *)
  if mode = "all" || mode = "quick" then begin
    heading "Bechamel microbenchmarks — profiling primitives";
    run_bechamel (ops_tests ());
    heading "Bechamel microbenchmarks — per-experiment kernels";
    run_bechamel (experiment_tests ())
  end;
  if mode = "events" then
    (* Prices the observability layer: a replay with events disabled must
       match the no-events baseline, and per-window emission to a real
       file must stay under 3% of throughput. *)
    events_overhead_demo
      ~scale:(if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 32.0);
  if mode = "kernel" then begin
    (* Packed loop vs monomorphized kernels vs lane-parallel sharding.
       Full mode measures a 1M+-instance trace and (re)writes the
       BENCH_replay.json baseline; --smoke is the CI gate — identity
       assertions plus a ratio regression check against that baseline. *)
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    let scale =
      if smoke then 2.0
      else if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2)
      else 16.0
    in
    kernel_bench ~smoke ~scale
  end;
  if mode = "serve" then begin
    (* The serving path priced end to end: concurrent clients stream
       traces at a daemon, per-tenant latency percentiles and sustained
       ingest rate come back.  --smoke is the CI gate. *)
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    let scale =
      if smoke then 1.0
      else if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2)
      else 4.0
    in
    serve_bench ~smoke ~scale
  end;
  if mode = "streaming" then begin
    (* Its own mode, not part of "all": VmHWM is a process-lifetime
       watermark, so the demonstration needs a process that has not
       already materialized the reproduction caches.  Full mode
       (re)writes the BENCH_ingest.json baseline; --smoke is the CI
       gate (bit-identity plus mmap >= read throughput). *)
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    let scale =
      (* Smoke runs at scale 4: big enough that the replay phases take
         tens of milliseconds (the mmap-vs-read gate compares best-of
         minima, and shorter runs put scheduler jitter at the same order
         as the signal), small enough for a CI lane. *)
      if smoke then 4.0
      else if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2)
      else 8.0
    in
    streaming_demo ~smoke ~scale
  end;
  if mode = "all" || mode = "tables" then reproductions ()
