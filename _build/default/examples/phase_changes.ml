(* Phase changes and phase-induced noise (Section 6.1 of the paper).

     dune exec examples/phase_changes.exe

   A workload whose dominant branch directions flip at phase boundaries.
   Three effects from the paper are made visible:

   - the prediction rate spikes at each transition — the signal Dynamo's
     flush heuristic watches for;
   - formerly-hot paths turn into phase-induced noise: fragments that sit
     in the cache but stop executing after the transition;
   - the flush heuristic fires at the spike, clearing that noise out. *)

open Hotpath

let () =
  let recorded = Suite.record_phased () in
  Format.printf "recorded %d instances (%d blocks, phase flips every 300k blocks)@."
    (Recorder.num_instances recorded)
    recorded.Recorder.vm_stats.Vm.blocks;

  (* Prediction activity per window: spikes mark the phase transitions. *)
  let o = Replay.run (module Net) ~delay:20 recorded in
  let window = 4096 in
  let n_windows = (Replay.(o.total_instances) / window) + 1 in
  let counts = Array.make n_windows 0 in
  Array.iter
    (fun (p : Replay.prediction) ->
       let w = p.Replay.at_instance / window in
       counts.(w) <- counts.(w) + 1)
    o.Replay.predictions;
  Format.printf "@.NET predictions per %d-instance window:@." window;
  Array.iteri
    (fun w c ->
       if c > 0 then
         Format.printf "  window %2d: %-4d %s@." w c (String.make (min c 60) '#'))
    counts;

  (* Phase boundaries in instance terms: the spec flips every 300k blocks;
     scale by the recording's instances-per-block ratio. *)
  ignore n_windows;
  let per_block =
    float_of_int Replay.(o.total_instances)
    /. float_of_int recorded.Recorder.vm_stats.Vm.blocks
  in
  let b1 = int_of_float (300_000.0 *. per_block) in
  let b2 = 2 * b1 in
  Format.printf
    "@.first phase boundary near instance %d (window %d) — note the prediction \
     spike there@."
    b1 (b1 / window);

  (* Phase-induced noise: paths predicted during phase 1 that do not
     execute at all during phase 2 — dead fragments occupying the cache
     until phase 1's behaviour returns (or a flush removes them). *)
  let executes_in_phase2 = Array.make (Recorder.num_paths recorded) false in
  Array.iteri
    (fun i pid -> if i >= b1 && i < b2 then executes_in_phase2.(pid) <- true)
    recorded.Recorder.instances;
  let stale = ref 0 and live = ref 0 in
  Array.iter
    (fun (p : Replay.prediction) ->
       if p.Replay.at_instance < b1 then
         if executes_in_phase2.(p.Replay.target) then incr live else incr stale)
    o.Replay.predictions;
  Format.printf
    "of the fragments predicted during phase 1: %d still execute in phase 2, %d \
     turned to phase-induced noise@."
    !live !stale;

  (* The flush heuristic fires at the spike. *)
  let cost = Cost_model.default in
  let result =
    Engine.run
      (Engine.config ~cost
         ~flush_policy:(Some { Engine.fp_window = 2048; fp_factor = 2.0; fp_min = 8 })
         ~scheme:(module Net : Scheme.S)
         ~scheme_costs:(Engine.net_costs cost) ~delay:20 ())
      recorded
  in
  Format.printf
    "@.Dynamo (NET, delay 20) with the spike-triggered flush heuristic:@.";
  Format.printf "  speedup %+.1f%%, flushes %d — the flush removes the stale@."
    result.Engine.r_speedup_pct result.Engine.r_flushes;
  Format.printf
    "  fragments at roughly the moment the new phase's predictions surge.@.";
  Format.printf
    "@.Note: prolonging the prediction delay cannot remove this kind of noise@.";
  Format.printf
    "(Section 6.1) — the delay must stay short to recognize the transition,@.";
  Format.printf "so an explicit retirement mechanism such as flushing is needed.@."
