examples/correlation_blindness.mli:
