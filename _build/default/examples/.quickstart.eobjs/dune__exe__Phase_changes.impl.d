examples/phase_changes.ml: Array Cost_model Engine Format Hotpath Net Recorder Replay Scheme String Suite Vm
