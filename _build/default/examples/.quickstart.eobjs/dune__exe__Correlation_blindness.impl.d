examples/correlation_blindness.ml: Array Branch_profile Correlated Format Hot_set Hotpath List Net Path Path_table Prng Rates Recorder Replay Signature
