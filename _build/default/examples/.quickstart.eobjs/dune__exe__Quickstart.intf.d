examples/quickstart.mli:
