examples/offline_profilers.mli:
