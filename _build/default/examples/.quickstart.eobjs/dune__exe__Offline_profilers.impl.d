examples/offline_profilers.ml: Array Ball_larus Bit_tracing Edge_profile Figure1 Format Hot_set Hotpath List Path Prng Recorder Sampling Signature String Vm Young_smith
