examples/loop_paths.ml: Array Figure1 Format Hot_set Hotpath Int List Net Path Path_profile_scheme Path_table Prng Rates Recorder Replay Scheme Signature String
