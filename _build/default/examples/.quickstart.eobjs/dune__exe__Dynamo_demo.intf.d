examples/dynamo_demo.mli:
