examples/loop_paths.mli:
