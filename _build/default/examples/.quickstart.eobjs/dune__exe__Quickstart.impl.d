examples/quickstart.ml: Array Behavior Cfg Format Hot_set Hotpath Net Path Path_table Prng Rates Recorder Replay Signature
