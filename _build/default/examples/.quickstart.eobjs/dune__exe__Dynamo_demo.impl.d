examples/dynamo_demo.ml: Array Cost_model Engine Format Hotpath List Net Path_profile_scheme Recorder Scheme Suite Sys
