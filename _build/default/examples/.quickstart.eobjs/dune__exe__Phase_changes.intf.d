examples/phase_changes.mli:
