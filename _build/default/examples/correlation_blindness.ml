(* Correlation blindness: why paths must be observed, not constructed.

     dune exec examples/correlation_blindness.exe

   Section 7 of the paper criticizes Boa's prediction scheme — build the
   hot path by following each branch's most likely direction — because
   isolated branch frequencies ignore correlation, so the constructed path
   "as a whole, may never execute".

   This example runs a loop whose third branch fires exactly when one of
   the two preceding branches did.  Each branch's marginal frequencies look
   unremarkable, yet the frequency-argmax combination has probability zero.
   NET simply grabs a tail that just executed and cannot make this
   mistake. *)

open Hotpath

let () =
  let program, behavior = Correlated.build ~triples:1 ~iterations:5_000 () in
  let recorded =
    Recorder.record ~max_paths:40_000 ~max_steps:2_500_000 program behavior
      ~rng:(Prng.create ~seed:99)
  in
  Format.printf "recorded %d instances, %d distinct paths@."
    (Recorder.num_instances recorded)
    (Recorder.num_paths recorded);

  (* The executed loop paths and their frequencies. *)
  let freq = Recorder.frequencies recorded in
  Format.printf "@.executed loop paths (bits: b1 b2 b3 latch):@.";
  Path_table.iter
    (fun p ->
       if p.Path.n_branches = 4 && freq.(p.Path.id) > 10 then
         Format.printf "  %-12s %6d executions@."
           (Signature.to_string p.Path.signature)
           freq.(p.Path.id))
    recorded.Recorder.table;
  let phantom = Correlated.phantom_signature program in
  Format.printf "@.the per-branch argmax combination is %s —@."
    (Signature.to_string phantom);
  Format.printf "present in the trace: %b@."
    (Path_table.find recorded.Recorder.table phantom <> None);

  (* Predict with both schemes. *)
  let hot =
    Hot_set.compute ~freq ~total_flow:(Recorder.num_instances recorded)
      ~threshold:0.001
  in
  let net_rates =
    Rates.operational (Replay.run (module Net) ~delay:400 recorded) hot
  in
  let boa = Branch_profile.run ~delay:400 recorded in
  let boa_rates = Rates.operational boa.Branch_profile.base hot in
  Format.printf "@.NET (tau=400):  hit rate %.1f%%@." net_rates.Rates.hit_rate;
  Format.printf "Boa (tau=400):  hit rate %.1f%%, %d phantom construction(s):@."
    boa_rates.Rates.hit_rate
    (List.length boa.Branch_profile.phantoms);
  List.iter
    (fun s -> Format.printf "    %s  (never executes)@." (Signature.to_string s))
    boa.Branch_profile.phantoms;
  Format.printf
    "@.Boa keeps rebuilding the impossible path and captures nothing; NET@.";
  Format.printf "predicts only tails that actually ran.@."
