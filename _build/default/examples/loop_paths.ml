(* The paper's Figure 1: five paths through one loop.

     dune exec examples/loop_paths.exe

   Enumerates the five paths and their bit-tracing signatures exactly as
   printed in the paper, then contrasts NET and path-profile-based
   prediction on the two regimes Section 4.1 discusses: a loop with a
   dominant path (NET is statistically likely to pick the right tail) and
   a flat loop (no scheme can make a better prediction). *)

open Hotpath

let describe name config =
  let program, behavior = Figure1.build ~config () in
  let recorded =
    Recorder.record ~max_paths:100_000 ~max_steps:5_000_000 program behavior
      ~rng:(Prng.create ~seed:77)
  in
  let freq = Recorder.frequencies recorded in
  Format.printf "@.=== %s configuration ===@." name;
  Format.printf "loop paths by frequency:@.";
  let entries =
    Array.to_list (Array.mapi (fun id f -> (id, f)) freq)
    |> List.filter (fun (id, _) ->
        let p = Path_table.path recorded.Recorder.table id in
        Path.head p = Figure1.block "A"
        && p.Path.end_kind = Path.Backward_transfer)
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  List.iter
    (fun (id, f) ->
       let p = Path_table.path recorded.Recorder.table id in
       let labels =
         String.concat ""
           (List.map Figure1.label (Array.to_list p.Path.blocks))
       in
       Format.printf "  %-6s %-10s %6d executions@." labels
         (Signature.to_string p.Path.signature)
         f)
    entries;
  let hot =
    Hot_set.compute ~freq ~total_flow:(Recorder.num_instances recorded)
      ~threshold:0.001
  in
  List.iter
    (fun (scheme_name, scheme) ->
       let o = Replay.run scheme ~delay:10 recorded in
       let rates = Rates.operational o hot in
       Format.printf
         "  %-13s (tau=10) hit %5.1f%%  noise %5.1f%%  counters %d  profiling ops %d@."
         scheme_name rates.Rates.hit_rate rates.Rates.noise_rate
         o.Replay.counter_space o.Replay.profiling_ops)
    [
      ("net", (module Net : Scheme.S));
      ("path-profile", (module Path_profile_scheme : Scheme.S));
    ]

let () =
  Format.printf "Figure 1 paths and signatures (paper notation):@.";
  List.iter
    (fun (path, signature) -> Format.printf "  %-6s %s@." path signature)
    Figure1.paper_signatures;
  describe "dominant (ABDG hot)" Figure1.dominant;
  describe "flat (all five paths even)" Figure1.flat
