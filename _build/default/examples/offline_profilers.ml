(* A tour of the offline profiling substrates (Sections 1-2 of the paper).

     dune exec examples/offline_profilers.exe

   The same execution of the paper's Figure 1 loop, seen through every
   profiler in the library: Ball-Larus path numbering, bit tracing,
   Young-Smith k-bounded general paths, edge counts, and sampling. *)

open Hotpath

let () =
  let program, behavior = Figure1.build ~config:Figure1.flat () in

  (* Ball-Larus: static numbering first - no execution needed. *)
  let bl = Ball_larus.analyze program ~proc:0 in
  Format.printf "=== Ball-Larus (static) ===@.";
  Format.printf "acyclic paths: %d, instrumented edges (chords): %d of %d@."
    (Ball_larus.num_paths bl) (Ball_larus.num_chords bl) (Ball_larus.num_edges bl);
  Array.iteri
    (fun n blocks ->
       Format.printf "  path %2d: %s@." n
         (String.concat "" (List.map Figure1.label blocks)))
    (Ball_larus.enumerate bl);

  (* One shared execution for the dynamic profilers. *)
  let rng = Prng.create ~seed:515 in
  let vm = Vm.create program behavior ~rng in
  let bl_rt = Ball_larus.Runtime.create program in
  let ys = Young_smith.create ~k:3 in
  let _ =
    Vm.run ~max_steps:60_000 vm ~on_transfer:(fun tr ->
        Ball_larus.Runtime.on_transfer bl_rt tr;
        Young_smith.on_transfer ys tr)
  in
  Format.printf "@.=== Ball-Larus runtime (same run) ===@.";
  List.iteri
    (fun i (n, c) ->
       if i < 5 then
         Format.printf "  #%d: path %s x %d@." (i + 1)
           (String.concat ""
              (List.map Figure1.label (Ball_larus.regenerate bl n)))
           c)
    (Ball_larus.Runtime.counts bl_rt 0);

  Format.printf "@.=== Young-Smith 3-bounded general paths ===@.";
  List.iter
    (fun (w, c) ->
       Format.printf "  %s x %d@." (Young_smith.window_to_string w) c)
    (Young_smith.top ys ~n:5);

  (* Bit tracing, edge profiling and sampling work off a recording. *)
  let recorded =
    Recorder.record ~max_steps:60_000 program behavior
      ~rng:(Prng.create ~seed:515)
  in
  let profile = Bit_tracing.profile recorded in
  Format.printf "@.=== Bit tracing ===@.";
  Format.printf "%d paths, %d shift ops, %d table updates@."
    profile.Bit_tracing.counter_space profile.Bit_tracing.shift_ops
    profile.Bit_tracing.table_updates;
  Array.iteri
    (fun i (p, freq) ->
       if i < 5 then
         Format.printf "  #%d: %-10s x %d@." (i + 1)
           (Signature.to_string p.Path.signature)
           freq)
    profile.Bit_tracing.entries;

  let edges = Edge_profile.collect recorded in
  Format.printf "@.=== Edge profile ===@.";
  List.iteri
    (fun i ((src, dst), c) ->
       if i < 5 then
         Format.printf "  %s->%s x %d@." (Figure1.label src) (Figure1.label dst) c)
    (Edge_profile.edges edges);
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:0.001
  in
  let identified, hot_size, flow = Edge_profile.showdown_stats recorded ~hot in
  Format.printf "edge-vs-path showdown: %d of %d hot paths, %.1f%% of hot flow@."
    identified hot_size flow;

  Format.printf "@.=== Sampling (every 100th path) ===@.";
  let acc = Sampling.accuracy recorded ~hot ~period:100 in
  Format.printf "precision %.2f, recall %.2f, %.1f%% hot flow recovered@."
    acc.Sampling.acc_precision acc.Sampling.acc_recall acc.Sampling.acc_flow_pct
