(* End-to-end Dynamo simulation on one suite benchmark.

     dune exec examples/dynamo_demo.exe            # compress
     dune exec examples/dynamo_demo.exe -- li 20   # benchmark and delay

   Replays the benchmark's recorded trace through the
   interpret / profile / predict / optimize / cache-execute loop for both
   prediction schemes and prints the cycle breakdown — the machinery
   behind Figure 5 of the paper. *)

open Hotpath

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let delay =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 50
  in
  let bench = Suite.find_exn bench_name in
  Format.printf "benchmark %s: %s@." bench.Suite.b_name bench.Suite.b_description;
  let recorded = Suite.record ~scale:4.0 bench in
  Format.printf "recorded %d path instances, %d distinct paths@.@."
    (Recorder.num_instances recorded)
    (Recorder.num_paths recorded);
  let cost = Cost_model.default in
  Format.printf "cost model: %a@.@." Cost_model.pp cost;
  List.iter
    (fun (scheme, costs) ->
       let result =
         Engine.run (Engine.config ~cost ~scheme ~scheme_costs:costs ~delay ()) recorded
       in
       Format.printf "%a@.@." Engine.pp_result result)
    [
      ((module Net : Scheme.S), Engine.net_costs cost);
      ((module Path_profile_scheme : Scheme.S), Engine.path_profile_costs cost);
    ]
