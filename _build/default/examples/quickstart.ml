(* Quickstart: build a little program, record its execution, and let NET
   predict its hot path.

     dune exec examples/quickstart.exe

   The program is a counted loop whose body branches 90/10 between a fast
   arm and a slow arm.  NET keeps one counter at the loop head; when it
   trips, the next executing tail is predicted hot — statistically the
   90% arm.  The prediction delay is 20 head arrivals. *)

open Hotpath

let () =
  (* 1. Build the control-flow graph. *)
  let b = Cfg.Builder.create ~name:"quickstart" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let entry = Cfg.Builder.add_block b ~proc:main ~weight:2 in
  let head = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let cond = Cfg.Builder.add_block b ~proc:main ~weight:2 in
  let fast = Cfg.Builder.add_block b ~proc:main ~weight:3 in
  let slow = Cfg.Builder.add_block b ~proc:main ~weight:9 in
  let latch = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let exit_blk = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  Cfg.Builder.set_term b entry (Cfg.Jump head);
  Cfg.Builder.set_term b head (Cfg.Jump cond);
  Cfg.Builder.set_term b cond (Cfg.Branch { taken = slow; fallthrough = fast });
  Cfg.Builder.set_term b fast (Cfg.Jump latch);
  Cfg.Builder.set_term b slow (Cfg.Jump latch);
  Cfg.Builder.set_term b latch (Cfg.Branch { taken = head; fallthrough = exit_blk });
  Cfg.Builder.set_term b exit_blk Cfg.Exit;
  let program = Cfg.Builder.finish b in

  (* 2. Describe branch behaviour: 10% slow arm, ~1000 loop iterations. *)
  let behavior = Behavior.create program () in
  Behavior.set_branch behavior cond (Behavior.Bias 0.1);
  Behavior.set_branch behavior latch (Behavior.Bias 0.9995);

  (* 3. Record one execution as a sequence of interprocedural paths. *)
  let recorded =
    Recorder.record program behavior ~rng:(Prng.create ~seed:2024)
  in
  Format.printf "recorded %d path instances over %d distinct paths@."
    (Recorder.num_instances recorded)
    (Recorder.num_paths recorded);

  (* 4. Run NET prediction with delay tau = 50 over the recording. *)
  let outcome = Replay.run (module Net) ~delay:20 recorded in
  Format.printf "%a@." Replay.pp_summary outcome;
  Array.iter
    (fun (p : Replay.prediction) ->
       let path = Path_table.path recorded.Recorder.table p.Replay.target in
       Format.printf "predicted hot: %a (at instance %d)@." Signature.pp
         path.Path.signature p.Replay.at_instance)
    outcome.Replay.predictions;

  (* 5. Score the prediction against the ground-truth 0.1% hot set. *)
  let hot = Hot_set.of_outcome outcome ~threshold:0.001 in
  let rates = Rates.operational outcome hot in
  Format.printf
    "hit rate %.1f%%  noise %.1f%%  profiled flow %.2f%%  counters %d@."
    rates.Rates.hit_rate rates.Rates.noise_rate rates.Rates.profiled_flow_pct
    outcome.Replay.counter_space
