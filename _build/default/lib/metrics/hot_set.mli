(** The hot-path set [HotPath_h] (Section 3 of the paper).

    A path is hot when its execution frequency exceeds [h] — a fraction of
    the total flow; the paper evaluates [h = 0.1%].  The set is computed
    from full-run frequencies: it is the ground truth a prediction scheme
    is scored against, not something a scheme gets to see. *)

type t = private {
  threshold : float;  (** The fraction [h]. *)
  cutoff : float;  (** Absolute frequency above which a path is hot. *)
  members : bool array;  (** Per path id. *)
  ids : int array;  (** Hot path ids, descending frequency. *)
  hot_flow : int;  (** [freq(HotPath)] — total executions of hot paths. *)
  total_flow : int;
}

val compute : freq:int array -> total_flow:int -> threshold:float -> t
(** @raise Invalid_argument unless [0 < threshold < 1] and [total_flow]
    equals the sum of [freq]. *)

val of_outcome : Hotpath_prediction.Replay.outcome -> threshold:float -> t
(** Convenience: hot set from a replay outcome's full-run frequencies. *)

val is_hot : t -> int -> bool

val size : t -> int
(** Number of hot paths (the paper's Table 1 #Paths column for the 0.1%
    set). *)

val flow_pct : t -> float
(** Percentage of total flow the hot set captures (Table 1 %Flow). *)
