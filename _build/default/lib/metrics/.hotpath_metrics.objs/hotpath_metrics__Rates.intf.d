lib/metrics/rates.mli: Format Hot_set Hotpath_prediction
