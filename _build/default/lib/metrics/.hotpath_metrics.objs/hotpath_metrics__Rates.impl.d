lib/metrics/rates.ml: Array Format Hot_set Hotpath_prediction Hotpath_util
