lib/metrics/phased.ml: Array Format Hashtbl Hotpath_prediction Hotpath_trace Hotpath_util List
