lib/metrics/sweep.mli: Format Hot_set Hotpath_prediction Hotpath_trace
