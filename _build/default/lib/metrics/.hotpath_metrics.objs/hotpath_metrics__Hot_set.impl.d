lib/metrics/hot_set.ml: Array Hotpath_prediction Hotpath_util Int List Printf
