lib/metrics/phased.mli: Format Hotpath_prediction Hotpath_trace
