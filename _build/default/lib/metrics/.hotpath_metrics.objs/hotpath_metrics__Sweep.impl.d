lib/metrics/sweep.ml: Array Float Format Hotpath_prediction List Rates
