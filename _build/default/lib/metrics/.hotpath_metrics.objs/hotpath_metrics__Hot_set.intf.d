lib/metrics/hot_set.mli: Hotpath_prediction
